"""Quickstart: obfuscate a graph and inspect the published release.

Runs in a few seconds::

    python examples/quickstart.py

Walks the paper's core loop end to end: build a graph, ask for a
(k, ε)-obfuscation, verify it independently, and peek at what the
published uncertain graph looks like.
"""

from repro import obfuscate, is_k_eps_obfuscation
from repro.graphs import dblp_like

K = 10          # entropy of the adversary's posterior must reach log2(10)
EPS = 0.05      # up to 5% of vertices may stay under-obfuscated


def main() -> None:
    # A small co-authorship-style surrogate (heavy-tail degrees, triangles).
    graph = dblp_like(scale=0.15, seed=0)
    print(f"original graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # Algorithm 1: binary-search the minimal uncertainty sigma.
    result = obfuscate(graph, k=K, eps=EPS, seed=42, attempts=3, delta=1e-3)
    assert result.success, "obfuscation failed — try a larger eps or c"

    print(f"minimal sigma found: {result.sigma:.6f}")
    print(f"achieved tolerance:  {result.eps_achieved:.4f} (<= {EPS})")
    print(f"search probes:       {len(result.trace)}")
    print(f"throughput:          {result.edges_per_second:,.0f} edges/sec")

    published = result.uncertain
    print(f"\npublished uncertain graph: {published.num_candidate_pairs} candidate pairs")
    print(f"expected edges: {published.expected_num_edges():.1f} "
          f"(original had {graph.num_edges})")

    # Definition 2, verified from scratch on the published object.
    assert is_k_eps_obfuscation(published, graph, K, EPS)
    print(f"\nverified: the release is a ({K}, {EPS})-obfuscation")

    # What the probabilities look like: mostly near-1 on true edges,
    # near-0 on injected non-edges — the paper's partial perturbations.
    kept = [p for u, v, p in published.candidate_pairs() if graph.has_edge(u, v)]
    injected = [p for u, v, p in published.candidate_pairs() if not graph.has_edge(u, v)]
    print(f"mean p(e) on true edges:      {sum(kept)/len(kept):.3f}")
    print(f"mean p(e) on injected pairs:  {sum(injected)/len(injected):.3f}")


if __name__ == "__main__":
    main()
