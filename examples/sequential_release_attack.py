"""Scenario: the degree-trail attack on sequential releases (§8).

    python examples/sequential_release_attack.py

The paper's conclusions flag Medforth & Wang's degree-trail attack as an
open question for probabilistic releases: if the same evolving network
is published repeatedly, can an adversary who watched a target's degree
evolve re-identify it across the releases?

This script measures that risk on a growing network published three
ways:

1. plain releases (no protection) — the upper bound of the risk;
2. uncertain releases, attacked through *expected* degrees;
3. uncertain releases, attacked through a sampled world.
"""

import numpy as np

from repro import obfuscate
from repro.attacks import (
    degree_trails,
    expected_degree_trails,
    reidentification_rate,
    trail_uniqueness_rate,
)
from repro.graphs import dblp_like
from repro.uncertain import sample_world

SNAPSHOTS = 3
K, EPS = 10, 0.1


def main() -> None:
    # An evolving network: the dblp surrogate gains edges between snapshots.
    rng = np.random.default_rng(0)
    base = dblp_like(scale=0.12, seed=0)
    snapshots = []
    g = base
    for _ in range(SNAPSHOTS):
        g = g.copy()
        added = 0
        while added < int(0.05 * g.num_edges):
            u, v = int(rng.integers(len(g))), int(rng.integers(len(g)))
            if u != v and not g.has_edge(u, v):
                g.add_edge(u, v)
                added += 1
        snapshots.append(g)

    original_trails = degree_trails(snapshots)
    print(f"{len(snapshots)} snapshots of {snapshots[0].num_vertices} vertices")
    print(f"unique degree trails in the original sequence: "
          f"{trail_uniqueness_rate(original_trails):.1%}")

    # 1. Naive sequential publication.
    naive = reidentification_rate(original_trails, original_trails)
    print(f"\nre-identification, plain releases:            {naive:.1%}")

    # 2. Each snapshot published as an uncertain graph.
    releases = []
    for i, snap in enumerate(snapshots):
        result = obfuscate(snap, k=K, eps=EPS, seed=100 + i, attempts=2, delta=5e-3)
        assert result.success
        releases.append(result.uncertain)

    expected = expected_degree_trails(releases)
    via_expected = reidentification_rate(original_trails, expected, tol=0.5)
    print(f"re-identification via expected degrees:       {via_expected:.1%}")

    sampled = np.stack(
        [sample_world(r, seed=7).degrees() for r in releases], axis=1
    ).astype(float)
    via_sampled = reidentification_rate(original_trails, sampled, tol=0.5)
    print(f"re-identification via one sampled world:      {via_sampled:.1%}")

    print("\nuncertainty injection shrinks the degree-trail attack surface, "
          "but does not eliminate it — the open problem the paper poses.")


if __name__ == "__main__":
    main()
