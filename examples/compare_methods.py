"""Scenario: uncertainty injection vs whole-edge randomization (§7.3).

    python examples/compare_methods.py

Reproduces the paper's comparative argument on a small surrogate:

1. obfuscate by uncertainty at (k, ε);
2. calibrate random sparsification and random perturbation to reach the
   *same* anonymity level (the Figure-4 protocol);
3. compare how much each method damages the graph statistics.

The expected outcome — the paper's headline — is that the finer-grained
partial perturbations achieve the anonymity at a fraction of the
utility cost.
"""

import numpy as np

from repro import obfuscate_with_fallback
from repro.baselines import (
    original_anonymity_levels,
    random_perturbation,
    random_sparsification,
    randomization_anonymity_levels,
)
from repro.core import compute_degree_posterior
from repro.graphs import dblp_like
from repro.stats import paper_statistics

K, EPS = 20, 0.02


def achieved_level(levels: np.ndarray, eps: float) -> float:
    """Least anonymity after disregarding the ⌊ε·n⌋ weakest vertices."""
    skip = int(np.floor(eps * len(levels)))
    return float(np.sort(levels)[min(skip, len(levels) - 1)])


def main() -> None:
    graph = dblp_like(scale=0.25, seed=0)
    stats = paper_statistics(distance_backend="anf")
    original = {name: func(graph) for name, func in stats.items()}
    print(f"graph: {graph.num_vertices} vertices / {graph.num_edges} edges")
    print(f"original degree-anonymity at eps={EPS}: "
          f"{achieved_level(original_anonymity_levels(graph), EPS):.1f}")

    # --- our method ---------------------------------------------------
    result = obfuscate_with_fallback(
        graph, K, EPS, c_values=(2.0, 3.0, 5.0), seed=2, attempts=3, delta=1e-3
    )
    assert result.success, "try a larger eps or extend the c escalation chain"
    post = compute_degree_posterior(
        result.uncertain, width=int(graph.degrees().max()) + 2
    )
    ours_level = achieved_level(post.obfuscation_levels(graph.degrees()), EPS)

    from repro.uncertain import WorldSampler

    sampler = WorldSampler(result.uncertain)
    rng = np.random.default_rng(5)
    ours_means = {name: [] for name in stats}
    for _ in range(20):
        world = sampler.sample(seed=rng)
        for name, func in stats.items():
            ours_means[name].append(func(world))

    # --- baselines, calibrated to the same anonymity ------------------
    released = {}
    for scheme, sample in (
        ("sparsification", random_sparsification),
        ("perturbation", random_perturbation),
    ):
        for p in (0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 0.9):
            published = sample(graph, p, seed=11)
            levels = randomization_anonymity_levels(graph, published, scheme, p)
            if achieved_level(levels, EPS) >= ours_level:
                released[scheme] = (p, published)
                break

    # --- report --------------------------------------------------------
    def rel_err(values: dict) -> float:
        errs = []
        for name, ref in original.items():
            got = values[name]
            errs.append(abs(got - ref) / abs(ref) if ref else float(got != ref))
        return float(np.mean(errs))

    print(f"\nanonymity level matched across methods: >= {ours_level:.1f}")
    ours = {name: float(np.mean(vals)) for name, vals in ours_means.items()}
    print(f"{'method':<28} {'avg rel. err':>12}")
    print(f"{'uncertainty injection':<28} {rel_err(ours):>12.2%}")
    for scheme, (p, published) in released.items():
        vals = {name: func(published) for name, func in stats.items()}
        print(f"{scheme + f' (p={p})':<28} {rel_err(vals):>12.2%}")


if __name__ == "__main__":
    main()
