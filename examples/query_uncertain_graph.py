"""Scenario: analysing a published uncertain graph as a consumer (§6).

    python examples/query_uncertain_graph.py

You received an uncertain graph — someone else's (k, ε)-obfuscated
release — and want trustworthy statistics out of it.  This script shows
the §6 toolkit:

* exact closed forms for the linear statistics (edge count, average
  degree);
* Hoeffding-planned possible-world sampling for everything else,
  with the sample size chosen from Corollary 1;
* jackknifed HyperANF for the distance-based statistics.
"""

import numpy as np

from repro import obfuscate
from repro.anf import anf_distance_histogram, jackknife
from repro.graphs import y360_like
from repro.stats import (
    average_distance,
    effective_diameter,
    estimate_statistic,
    expected_average_degree,
    expected_num_edges,
    hoeffding_sample_size,
)
from repro.graphs.triangles import clustering_coefficient
from repro.uncertain import WorldSampler


def main() -> None:
    # Stand-in for "a release you downloaded": obfuscate a Y360 surrogate.
    graph = y360_like(scale=0.15, seed=0)
    published = obfuscate(graph, k=10, eps=0.1, seed=0, attempts=2, delta=1e-3).uncertain
    print(f"received uncertain graph: {published.num_vertices} vertices, "
          f"{published.num_candidate_pairs} uncertain pairs")

    # 1. Linear statistics: no sampling needed (§6.2).
    print(f"\nexact E[S_NE] = {expected_num_edges(published):.2f}")
    print(f"exact E[S_AD] = {expected_average_degree(published):.4f}")

    # 2. Bounded statistic with a guarantee: clustering coefficient.
    #    S_CC ∈ [0, 1]; how many worlds for ±0.05 at 95% confidence?
    r = hoeffding_sample_size(0.05, 0.05, 0.0, 1.0)
    print(f"\nCorollary 1: r = {r} worlds for |error| < 0.05 w.p. 0.95")
    r_used = min(r, 100)  # cap for demo runtime; bound then holds at ±eps'
    summary = estimate_statistic(
        published, clustering_coefficient, worlds=r_used, seed=1, name="S_CC"
    )
    print(f"S_CC over {r_used} worlds: mean={summary.mean:.4f} "
          f"(rel. SEM {summary.relative_sem:.2%})")

    # 3. Distance statistics via HyperANF + jackknife (§6.3 protocol).
    sampler = WorldSampler(published)
    rng = np.random.default_rng(2)
    runs = []
    for i in range(8):
        world = sampler.sample(seed=rng)
        runs.append(anf_distance_histogram(world, seed=i))
    apd, apd_se = jackknife(runs, lambda hs: float(np.mean([average_distance(h) for h in hs])))
    edi, edi_se = jackknife(runs, lambda hs: float(np.mean([effective_diameter(h) for h in hs])))
    print(f"\nS_APD   = {apd:.3f}  (jackknife SE {apd_se:.3f})")
    print(f"S_EDiam = {edi:.3f}  (jackknife SE {edi_se:.3f})")

    # 4. Per-pair queries from the uncertain-graph literature the paper
    #    cites: reliability, distance distributions, majority k-NN.
    from repro.uncertain import k_nearest_neighbors, median_distance, reliability

    hub = int(np.argmax(published.expected_degrees()))
    far = (hub + published.num_vertices // 2) % published.num_vertices
    rel = reliability(published, hub, far, worlds=100, seed=3)
    med = median_distance(published, hub, far, worlds=100, seed=3)
    print(f"\nreliability({hub} -> {far})      = {rel:.2f}")
    print(f"median distance({hub} -> {far})  = {med}")
    knn = k_nearest_neighbors(published, hub, 3, worlds=100, seed=4)
    print(f"majority 3-NN of vertex {hub}: "
          + ", ".join(f"{v} (support {s:.2f})" for v, s in knn))


if __name__ == "__main__":
    main()
