"""Scenario: a data owner publishes a co-authorship network.

    python examples/publish_coauthorship.py

The intro scenario of the paper: an institution wants to release its
collaboration graph for research without exposing who is who.  The
script:

1. builds a co-authorship workload with the affiliation (clique-union)
   generator — papers are cliques of their authors;
2. obfuscates it at (k = 20, ε = 0.05);
3. writes the publishable artefact (``u v p`` triples) to disk;
4. produces the utility report a reviewer would ask for: original vs
   published statistics, with possible-world sample means and SEMs.
"""

import tempfile
from pathlib import Path

from repro import obfuscate, read_uncertain_graph, write_uncertain_graph
from repro.graphs import affiliation_graph
from repro.stats import WorldStatisticsEstimator, paper_statistics

K, EPS = 20, 0.05


def main() -> None:
    # ~700 authors, 900 papers of 2-5 authors, preferential participation.
    graph = affiliation_graph(
        700, 900, [0.35, 0.40, 0.18, 0.07], novelty=0.35, seed=7
    )
    print(f"co-authorship graph: {graph.num_vertices} authors, "
          f"{graph.num_edges} collaboration edges")

    result = obfuscate(graph, k=K, eps=EPS, seed=1, attempts=3, delta=1e-3)
    assert result.success
    print(f"obfuscated at sigma = {result.sigma:.6f} "
          f"(eps achieved {result.eps_achieved:.4f})")

    # The publishable artefact.
    out_dir = Path(tempfile.mkdtemp(prefix="repro_publish_"))
    out_path = out_dir / "coauthorship_uncertain.txt"
    write_uncertain_graph(result.uncertain, out_path)
    print(f"published file: {out_path} "
          f"({result.uncertain.num_candidate_pairs} uncertain pairs)")

    # A consumer loads it back and analyses it by possible-world sampling.
    published = read_uncertain_graph(out_path)
    stats = paper_statistics(distance_backend="anf")
    originals = {name: func(graph) for name, func in stats.items()}
    estimator = WorldStatisticsEstimator(published, stats)
    summaries = estimator.run(worlds=30, seed=3)

    print(f"\n{'statistic':<10} {'original':>12} {'published':>12} "
          f"{'rel.err':>8} {'rel.SEM':>8}")
    for name, summary in summaries.items():
        rel_err = summary.relative_error(originals[name])
        print(f"{name:<10} {originals[name]:>12.4f} {summary.mean:>12.4f} "
              f"{rel_err:>8.2%} {summary.relative_sem:>8.2%}")


if __name__ == "__main__":
    main()
