"""Batched vs scalar posterior engine on a dblp-like surrogate.

The headline perf claim of the batched Poisson-binomial engine
(:mod:`repro.core.posterior_batch`): computing the full ``X_v(ω)``
matrix of an obfuscated dblp surrogate (n ≈ 2k) must be ≥5× faster than
the scalar per-vertex loop it replaced, while agreeing to 1e-12.
Compare the two ``test_posterior_*`` rows of the benchmark table; the
equivalence assertion runs inline on every invocation.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_posterior_batch.py

``REPRO_BENCH_POSTERIOR_SCALE`` overrides the surrogate size (default
0.45 ≈ 2000 vertices; CI smoke-runs at 0.1).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.generate import generate_obfuscation
from repro.core.obfuscation_check import (
    compute_degree_posterior,
    compute_degree_posterior_scalar,
)
from repro.core.types import ObfuscationParams
from repro.graphs.datasets import dblp_like


@pytest.fixture(scope="module")
def surrogate():
    # scale=0.45 puts the surrogate at n ≈ 2000, m ≈ 6000.
    scale = float(os.environ.get("REPRO_BENCH_POSTERIOR_SCALE", 0.45))
    graph = dblp_like(scale=scale, seed=0)
    params = ObfuscationParams(k=1, eps=0.9, attempts=1)
    uncertain = generate_obfuscation(graph, 0.05, params, seed=0).uncertain
    width = int(graph.degrees().max()) + 2
    return graph, uncertain, width


def test_posterior_batched(benchmark, surrogate):
    _, uncertain, width = surrogate
    uncertain.incident_probability_csr()  # steady-state: CSR cached
    post = benchmark(
        compute_degree_posterior, uncertain, method="auto", width=width
    )
    assert post.num_vertices == uncertain.num_vertices


def test_posterior_scalar_baseline(benchmark, surrogate):
    _, uncertain, width = surrogate
    post = benchmark.pedantic(
        compute_degree_posterior_scalar,
        args=(uncertain,),
        kwargs={"method": "auto", "width": width},
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    assert post.num_vertices == uncertain.num_vertices


def test_batched_matches_scalar_on_surrogate(surrogate):
    _, uncertain, width = surrogate
    batched = compute_degree_posterior(uncertain, method="auto", width=width)
    scalar = compute_degree_posterior_scalar(
        uncertain, method="auto", width=width
    )
    np.testing.assert_allclose(
        batched.matrix, scalar.matrix, atol=1e-12, rtol=0
    )


def test_posterior_cold_cache(benchmark, surrogate):
    """Engine cost including the CSR export (first call on a fresh graph)."""
    _, uncertain, width = surrogate
    us, vs, ps = uncertain.pair_arrays()

    def cold():
        from repro.uncertain.graph import UncertainGraph

        fresh = UncertainGraph.from_arrays(
            uncertain.num_vertices, us, vs, ps, keep_zero=True
        )
        return compute_degree_posterior(fresh, method="auto", width=width)

    post = benchmark(cold)
    assert post.num_vertices == uncertain.num_vertices
