"""Table 2 — minimal σ achieving (k, ε)-obfuscation per (dataset, k, ε).

Paper reference values (q = 0.01, c = 2, (*) = c = 3):

    dblp   k=20  ε=1e-3: 5.96e-8     ε=1e-4: 1.62e-5
    dblp   k=60:         2.98e-7              3.22e-3
    dblp   k=100:        1.88e-5              1.07e-2
    flickr k=20:         2.29e-5              2.63e-2
    flickr k=60:         1.04e-3              7.33e-2 (*)
    flickr k=100:        5.86e-3              2.93e-1 (*)
    Y360   k=20..100:    5.96e-8 ..           5.96e-8 .. 1.11e-5

Reproduction target is the *shape*: σ grows with k, grows as ε shrinks,
flickr needs the most noise (and c escalation at the hard corner), Y360
the least.  Absolute values differ because our surrogates are ~50×
smaller and the binary-search floor is coarser (see EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.harness import table2_rows
from repro.experiments.report import render_table


def test_table2_sigma(benchmark, cache, config):
    sweep = benchmark.pedantic(
        lambda: cache.sweep(), rounds=1, iterations=1, warmup_rounds=0
    )
    rows = table2_rows(sweep)
    emit(
        "Table 2: minimal sigma for (k, eps)-obfuscation",
        render_table(rows),
        rows,
        "table2_sigma.csv",
    )

    by_cell = {(r["dataset"], r["k"], r["eps"]): r for r in rows}

    # Shape check 1: σ is non-decreasing in k at fixed (dataset, ε, c).
    # Cells that escalated to a larger candidate set are excluded from the
    # comparison: spreading the budget over more pairs lowers the per-pair
    # σ(e), so σ across different c values is not comparable (the paper's
    # (*) rows likewise switch regime).
    for dataset in config.datasets:
        for eps in config.eps_values:
            cells = [
                by_cell[(dataset, k, eps)]
                for k in config.k_values
                if by_cell[(dataset, k, eps)]["success"]
            ]
            for c_value in {cell["c"] for cell in cells}:
                sigmas = [cell["sigma"] for cell in cells if cell["c"] == c_value]
                assert all(
                    a <= b * (1 + 1e-9) + 1e-12
                    for a, b in zip(sigmas, sigmas[1:])
                ), f"sigma not monotone in k for {dataset} eps={eps} c={c_value}: {sigmas}"

    # Shape check 2: smaller ε (stricter) needs at least as much σ
    # (compared within the same candidate-set regime, as above).
    for dataset in config.datasets:
        for k in config.k_values:
            loose = by_cell[(dataset, k, 1e-3)]
            strict = by_cell[(dataset, k, 1e-4)]
            if loose["success"] and strict["success"] and loose["c"] == strict["c"]:
                assert strict["sigma"] >= loose["sigma"] * (1 - 1e-9)

    # Shape check 3: flickr is the hardest dataset (paper's (*) cells).
    if {"flickr", "y360"} <= set(config.datasets):
        hard = by_cell[("flickr", 100, 1e-4)]
        easy = by_cell[("y360", 100, 1e-4)]
        if hard["success"] and easy["success"]:
            assert hard["sigma"] >= easy["sigma"]
            assert hard["c"] >= easy["c"]
