"""Figure 3 — degree distribution S_DD (dblp).

The paper's observation: unlike the distance distribution, the degree
distribution is extremely well preserved — "the approximation is very
concentrated and its mean almost coincides with the real degree
frequency, even for k = 100 and ε = 10⁻⁴".

The benchmark regenerates both panels (degrees 1..8, as plotted) and
asserts exactly that: tight boxes and medians on top of the original
for *both* corners.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments.figures import figure3_data
from repro.experiments.report import render_boxplot_series


def test_fig3_degree_distribution(benchmark, cache, config):
    sweep = cache.sweep()
    cells = {(e.dataset, e.k, e.paper_eps): e for e in sweep}
    easy = cells.get(("dblp", 20, 1e-3))
    hard = cells.get(("dblp", 100, 1e-4))
    assert easy is not None and easy.result.success

    easy_series = benchmark.pedantic(
        lambda: figure3_data(easy, config),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    emit(
        "Figure 3 (left): S_DD boxplots, dblp k=20 eps=1e-3",
        render_boxplot_series(easy_series, label="degree"),
        [
            {
                "degree": int(b),
                "original": float(easy_series.original[i]),
                "median": float(easy_series.median[i]),
            }
            for i, b in enumerate(easy_series.bins)
        ],
        "fig3_degree_k20.csv",
    )

    for label, cell in (("k=20", easy), ("k=100", hard)):
        if cell is None or not cell.result.success:
            continue
        series = figure3_data(cell, config)
        if label == "k=100":
            emit(
                "Figure 3 (right): S_DD boxplots, dblp k=100 eps=1e-4",
                render_boxplot_series(series, label="degree"),
                [
                    {
                        "degree": int(b),
                        "original": float(series.original[i]),
                        "median": float(series.median[i]),
                    }
                    for i, b in enumerate(series.bins)
                ],
                "fig3_degree_k100.csv",
            )
        # Paper's claim: medians nearly coincide with the real
        # frequencies at every plotted degree, for BOTH corners.
        gap = np.abs(series.median - series.original)
        assert gap.max() < 0.05, (label, gap.max())
        # and the boxes are tight (concentrated across worlds)
        box_width = series.q3 - series.q1
        assert box_width.max() < 0.05, (label, box_width.max())
