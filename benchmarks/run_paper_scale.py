"""Table 2 + Table 4 end-to-end at the paper's real dblp scale.

The laptop benchmarks run 1/50th-size surrogates; this runner drives the
same sweep on a :func:`repro.graphs.datasets.paper_scale_dataset` graph —
dblp at ``scale=1.0`` is n = 226,413 vertices, the paper's actual Table-1
size — and records wall-clock plus peak RSS per phase into
``benchmarks/results/paper_scale.csv``.  It exists because PR 6 removed
the two quadratic walls (Lemma-1 staircase, worlds-union re-sort) that
made this size unreachable; the CSV is the receipt.

Usage::

    PYTHONPATH=src python benchmarks/run_paper_scale.py             # full n=226k
    PYTHONPATH=src python benchmarks/run_paper_scale.py --smoke     # n≈22.6k CI job

``--smoke`` runs the pinned CI subset: scale 0.1 (n ≈ 22.6k), the
(k = 20, ε = 10⁻³) Table-2 cell and a reduced world count, writing
``paper_scale_smoke.csv`` instead so the committed full-scale numbers
are never overwritten by a CI run.

Interruptibility: with ``--checkpoint DIR`` every finished grid cell is
persisted atomically the moment it completes, SIGINT/SIGTERM exit
cleanly with a resume hint, and ``--resume`` skips the recorded cells —
producing a ``<stem>_results.csv`` byte-identical to an uninterrupted
run (the main CSV keeps wall-clock columns and is therefore excluded
from the byte-identity contract).
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from pathlib import Path

from repro.resilience import CheckpointStore

from repro.exec import make_executor
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import (
    run_obfuscation_sweep,
    table2_rows,
    table4_rows,
)
from repro.experiments.report import render_table, save_csv
from repro.graphs.datasets import paper_scale_dataset
from repro.obs import (
    build_manifest,
    disable_tracing,
    enable_tracing,
    peak_rss_mb,
    span,
    write_manifest,
)

RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_CACHE = Path(__file__).parent / "cache"


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI subset: scale 0.1, k=20, eps=1e-3, fewer worlds",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="fraction of the paper's n (default 1.0, smoke 0.1)")
    parser.add_argument("--worlds", type=int, default=None,
                        help="worlds per Table-4 cell (default 100, smoke 20)")
    parser.add_argument("--k", type=int, nargs="+", default=None,
                        help="k grid (default 20 60 100, smoke 20)")
    parser.add_argument("--eps", type=float, nargs="+", default=None,
                        help="paper eps grid (default 1e-3 1e-4, smoke 1e-3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1,
                        help="processes for sweep cells and world evaluation "
                        "(0 = all cores); tables are bit-identical at any "
                        "worker count")
    parser.add_argument("--cache-dir", type=Path, default=DEFAULT_CACHE,
                        help="dataset .npz cache directory")
    parser.add_argument("--out", type=Path, default=None,
                        help="output CSV (default results/paper_scale[_smoke].csv)")
    parser.add_argument("--checkpoint", type=Path, default=None,
                        help="directory for atomic per-cell checkpoint records")
    parser.add_argument("--resume", action="store_true",
                        help="skip cells already recorded in --checkpoint "
                        "(byte-identical outputs to an uninterrupted run)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help="per-cell wall-clock budget (seconds) before the "
                        "hung-worker watchdog respawns the pool and retries")
    args = parser.parse_args()
    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint")
    return args


def main() -> int:
    args = parse_args()
    scale = args.scale if args.scale is not None else (0.1 if args.smoke else 1.0)
    worlds = args.worlds if args.worlds is not None else (20 if args.smoke else 100)
    k_values = tuple(args.k) if args.k else ((20,) if args.smoke else (20, 60, 100))
    eps_values = (
        tuple(args.eps) if args.eps else ((1e-3,) if args.smoke else (1e-3, 1e-4))
    )
    out = args.out or RESULTS_DIR / (
        "paper_scale_smoke.csv" if args.smoke else "paper_scale.csv"
    )

    checkpoint = None
    restored_cells = 0
    if args.checkpoint is not None:
        checkpoint = CheckpointStore(args.checkpoint)
        try:
            checkpoint.begin(
                {
                    "command": "run_paper_scale",
                    "dataset": "dblp",
                    "scale": scale,
                    "worlds": worlds,
                    "k_values": list(k_values),
                    "eps_values": list(eps_values),
                    "seed": args.seed,
                },
                resume=args.resume,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        restored_cells = len(checkpoint)
        if args.resume and restored_cells:
            print(f"resuming: {restored_cells} cell(s) restored from {args.checkpoint}")

    # SIGTERM behaves like SIGINT: the per-cell checkpoint records are
    # already flushed atomically as cells complete, so a clean unwind
    # (pool teardown, shm unlink) is all the handler needs to trigger.
    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)

    try:
        return _run(args, scale, worlds, k_values, eps_values, out, checkpoint, restored_cells)
    except KeyboardInterrupt:
        disable_tracing()
        print("", file=sys.stderr)
        if checkpoint is not None:
            print(
                f"interrupted; {len(checkpoint)} cell(s) checkpointed under "
                f"{args.checkpoint} — rerun with --resume to continue",
                file=sys.stderr,
            )
        else:
            print(
                "interrupted (no --checkpoint: a rerun starts from zero)",
                file=sys.stderr,
            )
        return 130


def _run(args, scale, worlds, k_values, eps_values, out, checkpoint, restored_cells) -> int:
    out.parent.mkdir(parents=True, exist_ok=True)
    tracer = enable_tracing(out.parent / (out.stem + "_trace.jsonl"))
    t0 = time.perf_counter()
    with span("graph", dataset="dblp", scale=scale) as sp_graph:
        graph = paper_scale_dataset(
            "dblp", scale=scale, seed=args.seed, cache_dir=args.cache_dir
        )
    t_graph = sp_graph.wall_s
    print(
        f"dblp @ scale {scale:g}: n={graph.num_vertices:,} m={graph.num_edges:,} "
        f"({t_graph:.1f}s, peak {peak_rss_mb():.0f} MiB)"
    )

    config = ExperimentConfig(
        datasets=("dblp",),
        scale=scale,
        k_values=k_values,
        eps_values=eps_values,
        worlds=worlds,
        seed=args.seed,
        dataset_seed=args.seed,
    )
    # Hand the paper-scale graph to the harness under its own cache key —
    # every runner (sweep, eps_for, utility) then sees the real-size
    # graph instead of building a laptop surrogate.
    config._graph_cache[("dblp", scale, args.seed)] = graph

    import os

    # Quarantine keeps a poisoned cell from aborting a 52-minute grid:
    # it lands as a flagged nan row and exec.poisoned in the manifest.
    executor = make_executor(
        args.workers, task_timeout_s=args.task_timeout, quarantine=True
    )
    rows: list[dict] = []
    meta = {
        "table": "meta",
        "dataset": "dblp",
        "scale": scale,
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "worlds": worlds,
        "workers": executor.workers,
        "cpu_count": os.cpu_count() or 1,
        "graph_sec": round(t_graph, 2),
    }

    with span("table2", worlds=worlds) as sp_sweep:
        sweep = run_obfuscation_sweep(config, executor=executor, checkpoint=checkpoint)
    t_sweep = sp_sweep.wall_s
    meta["table2_sec"] = round(t_sweep, 2)
    meta["table2_peak_rss_mb"] = round(peak_rss_mb(), 1)
    t2_rows = table2_rows(sweep)
    print(render_table(t2_rows, title=f"Table 2 @ n={graph.num_vertices:,}"))
    print(f"[table2] {t_sweep:.1f}s, peak {peak_rss_mb():.0f} MiB")
    rows.extend({"table": "table2", "dataset": "dblp", **r} for r in t2_rows)

    with span("table4", worlds=worlds) as sp_util:
        utility_sweep = [e for e in sweep if e.paper_eps == min(eps_values)]
        t4_rows = table4_rows(
            utility_sweep, config, cache={}, executor=executor, checkpoint=checkpoint
        )
    t_util = sp_util.wall_s
    meta["table4_sec"] = round(t_util, 2)
    meta["table4_peak_rss_mb"] = round(peak_rss_mb(), 1)
    print(render_table(t4_rows, title=f"Table 4 @ n={graph.num_vertices:,}"))
    print(f"[table4] {t_util:.1f}s, peak {peak_rss_mb():.0f} MiB")
    rows.extend({"table": "table4", **r} for r in t4_rows)

    # The deterministic receipt: table rows only, no wall-clock columns —
    # this is the file the interrupted-then-resumed byte-identity pin
    # compares against an uninterrupted golden run.
    save_csv(rows, out.parent / (out.stem + "_results.csv"))

    meta["total_sec"] = round(time.perf_counter() - t0, 2)
    meta["peak_rss_mb"] = round(peak_rss_mb(), 1)
    meta["resumed"] = bool(args.resume)
    meta["cells_restored"] = restored_cells
    rows.append(meta)
    RESULTS_DIR.mkdir(exist_ok=True)
    save_csv(rows, out)
    executor.close()
    disable_tracing()
    manifest = build_manifest(
        "benchmarks/run_paper_scale.py",
        config={
            "dataset": "dblp",
            "scale": scale,
            "worlds": worlds,
            "k_values": list(k_values),
            "eps_values": list(eps_values),
            "smoke": bool(args.smoke),
            "workers": args.workers,
            "checkpoint": args.checkpoint,
            "resumed": bool(args.resume),
            "cells_restored": restored_cells,
            "task_timeout_s": args.task_timeout,
        },
        seed=args.seed,
        tracer=tracer,
        elapsed_s=meta["total_sec"],
        results=meta,
    )
    write_manifest(out.parent / (out.stem + "_manifest.json"), manifest)
    print(f"wrote {out} (total {meta['total_sec']}s, peak {meta['peak_rss_mb']} MiB)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
