"""Ablation — the c (candidate-set size) and q (white noise) sweeps.

§7.1 experimented with q ∈ {0.01, 0.05, 0.1} and c ∈ {2, 3} but deferred
the full plots to an extended version.  This benchmark fills that gap on
the dblp surrogate:

* larger c gives the algorithm more room (never a larger minimal σ is
  *required*, though the σ(e) budget spreads over more pairs);
* larger q injects unconditional noise, degrading utility (expected
  edge-count drift grows with q) while helping obfuscation.
"""

from __future__ import annotations

from conftest import emit

from repro.core.search import obfuscate
from repro.experiments.report import render_table


def test_ablation_c_q(benchmark, cache, config):
    graph = config.graph("dblp")
    k = 20
    eps = config.eps_for("dblp", 1e-3)

    def run(c: float, q: float):
        res = obfuscate(
            graph,
            k,
            eps,
            seed=11,
            attempts=config.attempts,
            delta=config.delta,
            c=c,
            q=q,
        )
        drift = float("nan")
        if res.success:
            drift = abs(
                res.uncertain.expected_num_edges() - graph.num_edges
            ) / graph.num_edges
        return {
            "c": c,
            "q": q,
            "success": res.success,
            "sigma": res.sigma if res.success else float("nan"),
            "expected_edge_drift": drift,
        }

    grid = [(2.0, 0.01), (3.0, 0.01), (2.0, 0.05), (2.0, 0.1)]
    first = benchmark.pedantic(
        lambda: run(*grid[0]), rounds=1, iterations=1, warmup_rounds=0
    )
    rows = [first] + [run(c, q) for c, q in grid[1:]]
    emit(
        f"Ablation: c and q sweeps (dblp, k={k}, eps=1e-3 scaled)",
        render_table(rows),
        rows,
        "ablation_c_q.csv",
    )

    by_cq = {(r["c"], r["q"]): r for r in rows}
    base = by_cq[(2.0, 0.01)]
    assert base["success"]

    # q ablation: more white noise → more expected-edge drift.
    drifts = [
        by_cq[(2.0, q)]["expected_edge_drift"]
        for q in (0.01, 0.05, 0.1)
        if by_cq[(2.0, q)]["success"]
    ]
    assert all(a <= b * (1 + 0.35) for a, b in zip(drifts, drifts[1:])) or (
        drifts == sorted(drifts)
    )
