"""Array-native vs sequential Algorithm-1 search on the dblp surrogate.

The PR-4 perf claim: the array engine (vectorised candidate toggling,
incremental posterior, probe-level ``SearchContext`` reuse) must run a
full Table-2-style ``obfuscate`` grid ≥2× faster end-to-end (measured
~3×) than the retained sequential ground-truth engine on the dblp
surrogate (n ≈ 2k), while producing the *identical* search trace,
candidate sets and released graph at every seed.

``test_obfuscation_search_equivalence`` pins the identity (it is the CI
smoke job); ``test_obfuscation_search_speedup`` times the grid after a
warm-up pass and writes ``benchmarks/results/obfuscation_speedup.csv``.

The grid mirrors the experiment harness: the paper's k ∈ {20, 60, 100}
and ε ∈ {1e-3, 1e-4}, with ε rescaled by ``scaled_eps`` to preserve the
tolerated-vertex *count* on the smaller surrogate (the harness's one
documented adaptation).

PR 5 adds the **perturbation-stream** comparison: the default
``stream="pair_keyed"`` derives every pair's draw from a counter-based
substream and carries the Definition-2 check on the base/fold posterior
(one cached edge-DP per probe, per-attempt additions folded in, all
attempts evaluated in one stacked pass), while ``stream="attempt"`` is
the PR-4 ground truth.  ``test_stream_definition2_equivalence`` pins
outcome equivalence (same success, σ* within one doubling bracket) and
the ≥80% fold-path coverage; ``test_substream_speedup`` measures the
grid under both streams at the harness t = 3 and the paper's t = 5 and
writes ``benchmarks/results/substream_speedup.csv``.

Measured honestly: the fold path serves ~95% of posterior rows, but the
candidate *additions* (~half of all pair entries at c = 2) are redrawn
every attempt by Algorithm 2 itself, so the incremental DP's arithmetic
is bounded below by the churn and the end-to-end win over the PR-4
array engine is modest — ~1.0–1.1× at t = 3 and ~1.15–1.3× at t = 5 on
the dblp surrogate — rather than the hoped-for 1.5× (the bound and the
churn measurements are recorded in ROADMAP.md).  The assertions below
pin the honest floors.

Environment knobs:

``REPRO_BENCH_SEARCH_SCALE``     surrogate size (default 0.45 → n ≈ 2k;
                                 CI smoke uses 0.1)
``REPRO_BENCH_SEARCH_ATTEMPTS``  Algorithm-2 attempts per σ (default 3,
                                 the harness setting)

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_obfuscation_search.py -s
"""

from __future__ import annotations

import math
import os
import time

import pytest

from repro.core.search import obfuscate
from repro.experiments.config import scaled_eps
from repro.graphs.datasets import dblp_like

SEARCH_SCALE = float(os.environ.get("REPRO_BENCH_SEARCH_SCALE", 0.45))
SEARCH_ATTEMPTS = int(os.environ.get("REPRO_BENCH_SEARCH_ATTEMPTS", 3))
SEED = 0
DELTA = 1e-3

#: The paper's Table-2 privacy grid (ε values are paper values,
#: rescaled per run by :func:`repro.experiments.config.scaled_eps`).
K_VALUES = (20, 60, 100)
PAPER_EPS_VALUES = (1e-3, 1e-4)


@pytest.fixture(scope="module")
def graph():
    """The dblp surrogate (n ≈ 2000 at the default scale)."""
    return dblp_like(scale=SEARCH_SCALE, seed=SEED)


def _grid(graph):
    n = graph.num_vertices
    return [
        (k, paper_eps, scaled_eps(paper_eps, "dblp", n))
        for k in K_VALUES
        for paper_eps in PAPER_EPS_VALUES
    ]


def _run(graph, k, eps, engine, *, stream="attempt", attempts=SEARCH_ATTEMPTS):
    return obfuscate(
        graph,
        k=k,
        eps=eps,
        seed=SEED,
        attempts=attempts,
        delta=DELTA,
        engine=engine,
        stream=stream,
    )


def _assert_identical(array_result, seq_result):
    assert [
        (s.sigma, s.eps_achieved, s.phase) for s in array_result.trace
    ] == [(s.sigma, s.eps_achieved, s.phase) for s in seq_result.trace]
    assert array_result.eps_achieved == seq_result.eps_achieved
    assert array_result.edges_processed == seq_result.edges_processed
    if math.isnan(array_result.sigma):
        assert math.isnan(seq_result.sigma)
    else:
        assert array_result.sigma == seq_result.sigma
    if array_result.success:
        assert sorted(array_result.uncertain.candidate_pairs()) == sorted(
            seq_result.uncertain.candidate_pairs()
        )


def test_obfuscation_search_equivalence(graph):
    """Same seed ⇒ same trace, same σ, same release on either engine."""
    n = graph.num_vertices
    for k, paper_eps, eps in _grid(graph)[:2]:
        _assert_identical(
            _run(graph, k, eps, "array"), _run(graph, k, eps, "sequential")
        )
    # one unscaled (hard) cell exercises the all-failures doubling path
    _assert_identical(
        _run(graph, 60, 1e-4, "array"), _run(graph, 60, 1e-4, "sequential")
    )


def test_obfuscation_search_speedup(graph):
    """The ≥2× end-to-end claim over the Table-2 grid (n ≈ 2k)."""
    grid = _grid(graph)
    # Warm-up: one full cell per engine, so allocator/cache effects do
    # not bill the first measured cell.
    _run(graph, grid[0][0], grid[0][2], "sequential")
    _run(graph, grid[0][0], grid[0][2], "array")

    def _best_of(engine, k, eps, rounds=2):
        best, result = math.inf, None
        for _ in range(rounds):
            t0 = time.perf_counter()
            result = _run(graph, k, eps, engine)
            best = min(best, time.perf_counter() - t0)
        return best, result

    rows = []
    total_seq = total_array = 0.0
    for k, paper_eps, eps in grid:
        t_seq, seq = _best_of("sequential", k, eps)
        t_array, arr = _best_of("array", k, eps)
        _assert_identical(arr, seq)
        total_seq += t_seq
        total_array += t_array
        rows.append(
            {
                "dataset": "dblp",
                "scale": SEARCH_SCALE,
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "k": k,
                "paper_eps": paper_eps,
                "eps_used": round(eps, 6),
                "probes": len(arr.trace),
                "success": arr.success,
                "sequential_seconds": round(t_seq, 4),
                "array_seconds": round(t_array, 4),
                "speedup": round(t_seq / t_array, 2),
            }
        )

    speedup = total_seq / total_array
    rows.append(
        {
            "dataset": "dblp",
            "scale": SEARCH_SCALE,
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "k": "all",
            "paper_eps": "all",
            "eps_used": "",
            "probes": sum(r["probes"] for r in rows),
            "success": "",
            "sequential_seconds": round(total_seq, 4),
            "array_seconds": round(total_array, 4),
            "speedup": round(speedup, 2),
        }
    )
    from conftest import save_results

    save_results(rows, "obfuscation_speedup.csv")
    print(
        f"\nAlgorithm-1 search over {len(grid)} Table-2 cells "
        f"(scale={SEARCH_SCALE}, n={graph.num_vertices}): sequential "
        f"{total_seq:.2f}s, array {total_array:.2f}s — {speedup:.2f}x"
    )
    # The headline bound holds at the documented scale; tiny smoke
    # surrogates leave too little vectorisable work per probe.  Kept a
    # notch under the measured ~2.9-3.2x — absolute ratios drift with
    # runner profile (see bench_worlds.py); perf_gate.py owns the
    # relative regression check.
    floor = 2.0 if SEARCH_SCALE >= 0.4 else 1.2
    assert speedup >= floor, (
        f"expected >={floor}x end-to-end, measured {speedup:.2f}x"
    )


def test_stream_definition2_equivalence(graph):
    """pair_keyed vs attempt: same Definition-2 outcome, high fold coverage.

    The two streams draw different randomness by design, and the
    pair_keyed σ(e) normaliser (the Q-expectation μ_Q instead of the
    realised candidate-set mean) rescales the σ axis itself, so σ*
    values are mode-specific — the equivalence is outcome-level:
    identical success/failure per cell, the released graph meets the
    (k, ε) requirement, and σ* stays within a fixed envelope of the
    attempt-stream value (catching gross regressions, not the
    normaliser's documented rescale).  The fold-coverage assertion is
    the tentpole's structural claim — the incremental base/fold path
    must serve ≥80% of posterior rows at the documented scale (≥60% on
    the tiny CI smoke surrogate, where hub rows are a larger fraction).
    """
    folded = recomputed = 0
    for k, paper_eps, eps in _grid(graph):
        pair = _run(graph, k, eps, "array", stream="pair_keyed")
        attempt = _run(graph, k, eps, "array", stream="attempt")
        assert pair.success == attempt.success, (k, paper_eps)
        if pair.success:
            ratio = pair.sigma / attempt.sigma
            near_floor = max(pair.sigma, attempt.sigma) <= 8 * DELTA
            assert near_floor or 1 / 8 <= ratio <= 8.0, (k, paper_eps, ratio)
            assert pair.eps_achieved <= eps
        folded += pair.rows_folded
        recomputed += pair.rows_recomputed
    coverage = folded / max(folded + recomputed, 1)
    floor = 0.8 if SEARCH_SCALE >= 0.4 else 0.6
    assert coverage >= floor, f"fold coverage {coverage:.3f} < {floor}"


def test_substream_speedup(graph):
    """Measure the stream change end-to-end and pin the honest floors.

    The CSV records, per (k, ε, attempts) cell, both streams' best-of-2
    wall-clock and the pair_keyed fold coverage.  Floors (documented
    scale): parity at the harness t = 3 (the candidate-addition churn
    bounds the incremental win — see the module docstring) and ≥1.05×
    at the paper's t = 5, where the per-probe edge state amortises.
    """
    grid = _grid(graph)
    _run(graph, grid[0][0], grid[0][2], "array", stream="attempt")
    _run(graph, grid[0][0], grid[0][2], "array", stream="pair_keyed")

    def _best_of(stream, k, eps, attempts, rounds=2):
        best, result = math.inf, None
        for _ in range(rounds):
            t0 = time.perf_counter()
            result = _run(
                graph, k, eps, "array", stream=stream, attempts=attempts
            )
            best = min(best, time.perf_counter() - t0)
        return best, result

    rows = []
    totals = {}
    for attempts in (SEARCH_ATTEMPTS, 5):
        total_attempt = total_pair = 0.0
        folded = recomputed = 0
        for k, paper_eps, eps in grid:
            t_attempt, _ = _best_of("attempt", k, eps, attempts)
            t_pair, pair = _best_of("pair_keyed", k, eps, attempts)
            total_attempt += t_attempt
            total_pair += t_pair
            folded += pair.rows_folded
            recomputed += pair.rows_recomputed
            rows.append(
                {
                    "dataset": "dblp",
                    "scale": SEARCH_SCALE,
                    "n": graph.num_vertices,
                    "m": graph.num_edges,
                    "attempts": attempts,
                    "k": k,
                    "paper_eps": paper_eps,
                    "eps_used": round(eps, 6),
                    "probes": len(pair.trace),
                    "success": pair.success,
                    "attempt_seconds": round(t_attempt, 4),
                    "pair_keyed_seconds": round(t_pair, 4),
                    "speedup": round(t_attempt / t_pair, 2),
                    "fold_coverage": round(pair.fold_fraction, 4),
                }
            )
        coverage = folded / max(folded + recomputed, 1)
        totals[attempts] = (total_attempt, total_pair, coverage)
        rows.append(
            {
                "dataset": "dblp",
                "scale": SEARCH_SCALE,
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "attempts": attempts,
                "k": "all",
                "paper_eps": "all",
                "eps_used": "",
                "probes": "",
                "success": "",
                "attempt_seconds": round(total_attempt, 4),
                "pair_keyed_seconds": round(total_pair, 4),
                "speedup": round(total_attempt / total_pair, 2),
                "fold_coverage": round(coverage, 4),
            }
        )

    from conftest import save_results

    save_results(rows, "substream_speedup.csv")
    for attempts, (ta, tp, cov) in totals.items():
        print(
            f"\nstream grid t={attempts} (scale={SEARCH_SCALE}, "
            f"n={graph.num_vertices}): attempt {ta:.2f}s, pair_keyed "
            f"{tp:.2f}s — {ta / tp:.2f}x, fold coverage {cov:.3f}"
        )
    if SEARCH_SCALE >= 0.4:
        ta, tp, cov = totals[SEARCH_ATTEMPTS]
        assert ta / tp >= 0.9, f"t={SEARCH_ATTEMPTS} regressed: {ta / tp:.2f}x"
        assert cov >= 0.8
        ta5, tp5, _ = totals[5]
        assert ta5 / tp5 >= 1.05, f"t=5 speedup {ta5 / tp5:.2f}x < 1.05x"
