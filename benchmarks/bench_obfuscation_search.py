"""Array-native vs sequential Algorithm-1 search on the dblp surrogate.

The PR-4 perf claim: the array engine (vectorised candidate toggling,
incremental posterior, probe-level ``SearchContext`` reuse) must run a
full Table-2-style ``obfuscate`` grid ≥3× faster end-to-end than the
retained sequential ground-truth engine on the dblp surrogate (n ≈ 2k),
while producing the *identical* search trace, candidate sets and
released graph at every seed.

``test_obfuscation_search_equivalence`` pins the identity (it is the CI
smoke job); ``test_obfuscation_search_speedup`` times the grid after a
warm-up pass and writes ``benchmarks/results/obfuscation_speedup.csv``.

The grid mirrors the experiment harness: the paper's k ∈ {20, 60, 100}
and ε ∈ {1e-3, 1e-4}, with ε rescaled by ``scaled_eps`` to preserve the
tolerated-vertex *count* on the smaller surrogate (the harness's one
documented adaptation).

Environment knobs:

``REPRO_BENCH_SEARCH_SCALE``     surrogate size (default 0.45 → n ≈ 2k;
                                 CI smoke uses 0.1)
``REPRO_BENCH_SEARCH_ATTEMPTS``  Algorithm-2 attempts per σ (default 3,
                                 the harness setting)

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_obfuscation_search.py -s
"""

from __future__ import annotations

import math
import os
import time
from pathlib import Path

import pytest

from repro.core.search import obfuscate
from repro.experiments.config import scaled_eps
from repro.graphs.datasets import dblp_like

RESULTS_DIR = Path(__file__).parent / "results"
SEARCH_SCALE = float(os.environ.get("REPRO_BENCH_SEARCH_SCALE", 0.45))
SEARCH_ATTEMPTS = int(os.environ.get("REPRO_BENCH_SEARCH_ATTEMPTS", 3))
SEED = 0
DELTA = 1e-3

#: The paper's Table-2 privacy grid (ε values are paper values,
#: rescaled per run by :func:`repro.experiments.config.scaled_eps`).
K_VALUES = (20, 60, 100)
PAPER_EPS_VALUES = (1e-3, 1e-4)


@pytest.fixture(scope="module")
def graph():
    """The dblp surrogate (n ≈ 2000 at the default scale)."""
    return dblp_like(scale=SEARCH_SCALE, seed=SEED)


def _grid(graph):
    n = graph.num_vertices
    return [
        (k, paper_eps, scaled_eps(paper_eps, "dblp", n))
        for k in K_VALUES
        for paper_eps in PAPER_EPS_VALUES
    ]


def _run(graph, k, eps, engine):
    return obfuscate(
        graph,
        k=k,
        eps=eps,
        seed=SEED,
        attempts=SEARCH_ATTEMPTS,
        delta=DELTA,
        engine=engine,
    )


def _assert_identical(array_result, seq_result):
    assert [
        (s.sigma, s.eps_achieved, s.phase) for s in array_result.trace
    ] == [(s.sigma, s.eps_achieved, s.phase) for s in seq_result.trace]
    assert array_result.eps_achieved == seq_result.eps_achieved
    assert array_result.edges_processed == seq_result.edges_processed
    if math.isnan(array_result.sigma):
        assert math.isnan(seq_result.sigma)
    else:
        assert array_result.sigma == seq_result.sigma
    if array_result.success:
        assert sorted(array_result.uncertain.candidate_pairs()) == sorted(
            seq_result.uncertain.candidate_pairs()
        )


def test_obfuscation_search_equivalence(graph):
    """Same seed ⇒ same trace, same σ, same release on either engine."""
    n = graph.num_vertices
    for k, paper_eps, eps in _grid(graph)[:2]:
        _assert_identical(
            _run(graph, k, eps, "array"), _run(graph, k, eps, "sequential")
        )
    # one unscaled (hard) cell exercises the all-failures doubling path
    _assert_identical(
        _run(graph, 60, 1e-4, "array"), _run(graph, 60, 1e-4, "sequential")
    )


def test_obfuscation_search_speedup(graph):
    """The ≥3× end-to-end claim over the Table-2 grid (n ≈ 2k)."""
    grid = _grid(graph)
    # Warm-up: one full cell per engine, so allocator/cache effects do
    # not bill the first measured cell.
    _run(graph, grid[0][0], grid[0][2], "sequential")
    _run(graph, grid[0][0], grid[0][2], "array")

    def _best_of(engine, k, eps, rounds=2):
        best, result = math.inf, None
        for _ in range(rounds):
            t0 = time.perf_counter()
            result = _run(graph, k, eps, engine)
            best = min(best, time.perf_counter() - t0)
        return best, result

    rows = []
    total_seq = total_array = 0.0
    for k, paper_eps, eps in grid:
        t_seq, seq = _best_of("sequential", k, eps)
        t_array, arr = _best_of("array", k, eps)
        _assert_identical(arr, seq)
        total_seq += t_seq
        total_array += t_array
        rows.append(
            {
                "dataset": "dblp",
                "scale": SEARCH_SCALE,
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "k": k,
                "paper_eps": paper_eps,
                "eps_used": round(eps, 6),
                "probes": len(arr.trace),
                "success": arr.success,
                "sequential_seconds": round(t_seq, 4),
                "array_seconds": round(t_array, 4),
                "speedup": round(t_seq / t_array, 2),
            }
        )

    speedup = total_seq / total_array
    rows.append(
        {
            "dataset": "dblp",
            "scale": SEARCH_SCALE,
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "k": "all",
            "paper_eps": "all",
            "eps_used": "",
            "probes": sum(r["probes"] for r in rows),
            "success": "",
            "sequential_seconds": round(total_seq, 4),
            "array_seconds": round(total_array, 4),
            "speedup": round(speedup, 2),
        }
    )
    from repro.experiments.report import save_csv

    RESULTS_DIR.mkdir(exist_ok=True)
    save_csv(rows, RESULTS_DIR / "obfuscation_speedup.csv")
    print(
        f"\nAlgorithm-1 search over {len(grid)} Table-2 cells "
        f"(scale={SEARCH_SCALE}, n={graph.num_vertices}): sequential "
        f"{total_seq:.2f}s, array {total_array:.2f}s — {speedup:.2f}x"
    )
    # The headline bound holds at the documented scale; tiny smoke
    # surrogates leave too little vectorisable work per probe.
    floor = 3.0 if SEARCH_SCALE >= 0.4 else 1.2
    assert speedup >= floor, (
        f"expected >={floor}x end-to-end, measured {speedup:.2f}x"
    )
