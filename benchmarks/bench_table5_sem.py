"""Table 5 — relative sample standard error of the mean (ε = 10⁻⁴).

Paper reference shape: all statistics are sharply concentrated across
the 100 sampled worlds — the per-row average relative SEM is ≈ 2–3%,
with S_NE/S_AD the tightest (≈ 10⁻⁴) and S_EDiam the loosest (≈ 0.1–0.18).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.harness import table5_rows
from repro.experiments.report import render_table


def test_table5_sem(benchmark, cache, config):
    rows = benchmark.pedantic(
        lambda: table5_rows(
            cache.sweep(eps_values=(1e-4,)), config, cache=cache.summaries
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    emit(
        "Table 5: relative sample SEM over sampled worlds (eps = 1e-4)",
        render_table(rows),
        rows,
        "table5_sem.csv",
    )

    for row in rows:
        # Shape check 1: strong overall concentration (paper: ~3%).
        assert row["average"] < 0.10, (row["dataset"], row["k"], row["average"])
        # Shape check 2: the edge-count statistics are the most
        # concentrated columns, far below the row average.
        assert row["S_NE"] < row["average"]
        assert row["S_NE"] == row["S_AD"] or abs(row["S_NE"] - row["S_AD"]) < 1e-12
        # Shape check 3: the paper's tightest columns (edge counts and the
        # averaged distance statistics) are never the noisiest ones — the
        # extremes/fits (diameters, max degree, variance, PL fit, CC) are.
        scalar_cols = [
            "S_NE", "S_AD", "S_MD", "S_DV", "S_PL",
            "S_APD", "S_DiamLB", "S_EDiam", "S_CL", "S_CC",
        ]
        noisiest = max(scalar_cols, key=lambda c: row[c])
        assert noisiest not in ("S_NE", "S_AD", "S_APD", "S_CL"), noisiest
