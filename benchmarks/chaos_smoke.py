"""Deterministic chaos smoke: inject faults, assert nothing bends.

CI's ``chaos-smoke`` job runs this script.  Each scenario installs a
seeded :class:`~repro.resilience.faults.FaultPlan`, drives a small
pinned workload through it, and asserts the resilience invariants:

* whenever a run completes, its results are **bit-identical** to the
  fault-free run (retries re-execute pure functions of the task index);
* no ``/dev/shm`` segments leak, no pool deadlocks (the whole script
  has a bounded runtime — a hang is a failure by timeout);
* quarantine converts a poison task into a flagged slot, never an
  aborted grid;
* a torn manifest is *rejected loudly* by the loader;
* an overloaded server sheds instead of hanging, and a client retries
  through a dropped connection to the same answer.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py

Exit status: 0 = every scenario held, 1 = first broken invariant.
"""

from __future__ import annotations

import asyncio
import glob
import json
import socket
import sys
import threading
import time

import numpy as np

from repro.core.search import obfuscate
from repro.graphs.generators import erdos_renyi
from repro.exec import ChunkExecutor, TaskFailure, make_executor
from repro.obs.metrics import REGISTRY
from repro.obs.manifest import build_manifest, load_manifest, write_manifest
from repro.resilience import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    install_fault_plan,
)
from repro.serve import ObfuscationServer, QueryEngine, ServeClient

FAST_RETRY = RetryPolicy(max_retries=3, base_delay_s=0.01, max_delay_s=0.05)


def _draw(seed, shared=None):
    return np.random.default_rng(seed).random(64)


def _shm_leaks() -> list[str]:
    return glob.glob("/dev/shm/repro_*")


def _check(name: str, ok: bool, detail: str = "") -> bool:
    print(f"{'ok' if ok else 'FAIL':>6}  {name}" + (f": {detail}" if detail else ""))
    return ok


def scenario_worker_kill() -> bool:
    """SIGKILL one worker mid-map: retry completes bit-identically."""
    seeds = list(range(12))
    install_fault_plan(None)
    expected = [_draw(s) for s in seeds]
    install_fault_plan(FaultPlan(seed=1, rules=(
        FaultRule(site="exec.task.pre", action="kill", indices=(4,)),
    )))
    ex = make_executor(2, retry=FAST_RETRY)
    try:
        got = ex.map(_draw, seeds)
    finally:
        ex.close()
        install_fault_plan(None)
    identical = all(np.array_equal(g, e) for g, e in zip(got, expected))
    deaths = REGISTRY.get("exec.worker_deaths")
    return _check(
        "worker kill → bit-identical retry",
        identical and deaths >= 1 and _shm_leaks() == [],
        f"worker_deaths={deaths} shm_leaks={_shm_leaks()}",
    )


def scenario_transient_error() -> bool:
    """A first-attempt-only injected exception: retried transparently."""
    seeds = list(range(8))
    install_fault_plan(None)
    expected = [_draw(s) for s in seeds]
    install_fault_plan(FaultPlan(seed=2, rules=(
        FaultRule(site="exec.task.post", action="raise", indices=(2, 5)),
    )))
    ex = make_executor(2, retry=FAST_RETRY)
    try:
        got = ex.map(_draw, seeds)
    finally:
        ex.close()
        install_fault_plan(None)
    identical = all(np.array_equal(g, e) for g, e in zip(got, expected))
    return _check("transient error → bit-identical retry", identical)


def scenario_straggler_timeout() -> bool:
    """A 10s injected stall against a 0.5s watchdog: respawn + retry."""
    seeds = list(range(6))
    install_fault_plan(None)
    expected = [_draw(s) for s in seeds]
    install_fault_plan(FaultPlan(seed=3, rules=(
        FaultRule(site="exec.task.pre", action="delay", indices=(1,), param=10.0),
    )))
    ex = make_executor(2, task_timeout_s=0.5, retry=FAST_RETRY)
    t0 = time.monotonic()
    try:
        got = ex.map(_draw, seeds)
    finally:
        ex.close()
        install_fault_plan(None)
    elapsed = time.monotonic() - t0
    identical = all(np.array_equal(g, e) for g, e in zip(got, expected))
    return _check(
        "straggler timeout → respawn, no hang",
        identical and elapsed < 8.0 and REGISTRY.get("exec.timeouts") >= 1,
        f"{elapsed:.1f}s",
    )


def scenario_poison_quarantine() -> bool:
    """A task that fails every attempt: flagged slot, grid survives."""
    install_fault_plan(FaultPlan(seed=4, rules=(
        FaultRule(site="exec.task.pre", action="raise",
                  indices=(3,), attempts=None),
    )))
    ex = make_executor(
        2, retry=RetryPolicy(max_retries=1, base_delay_s=0.01), quarantine=True
    )
    try:
        got = ex.map(_draw, list(range(6)))
    finally:
        ex.close()
        install_fault_plan(None)
    poisoned = isinstance(got[3], TaskFailure)
    others_fine = all(
        np.array_equal(got[i], _draw(i)) for i in range(6) if i != 3
    )
    return _check(
        "poison task → quarantined, siblings unharmed",
        poisoned and others_fine and REGISTRY.get("exec.poisoned") >= 1,
    )


def scenario_torn_manifest(tmp_dir) -> bool:
    """A torn (pre-atomic-style) manifest write is rejected loudly."""
    path = tmp_dir / "manifest.json"
    manifest = build_manifest("chaos", config={"x": 1}, seed=0, elapsed_s=0.0)
    install_fault_plan(FaultPlan(seed=5, rules=(
        FaultRule(site="io.atomic.truncate", key="manifest.json",
                  action="flag", attempts=None, times=1),
    )))
    try:
        try:
            write_manifest(path, manifest)
            return _check("torn manifest", False, "fault did not fire")
        except FaultInjected:
            pass
    finally:
        install_fault_plan(None)
    try:
        load_manifest(path)
        return _check("torn manifest", False, "partial manifest accepted")
    except ValueError as exc:
        rejected = "truncated or corrupt" in str(exc)
    # The atomic rewrite then repairs it.
    write_manifest(path, manifest)
    repaired = load_manifest(path)["command"] == "chaos"
    return _check("torn manifest → rejected loudly, atomic rewrite repairs",
                  rejected and repaired)


class _ServerHarness:
    def __init__(self, server: ObfuscationServer):
        self.server = server
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        started.wait(10)

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)


def _release():
    graph = erdos_renyi(30, 0.15, seed=3)
    result = obfuscate(graph, k=3, eps=0.25, seed=9, attempts=2, delta=0.05)
    assert result.success
    return result.uncertain


class _GatedEngine:
    def __init__(self, inner, gate):
        self._inner = inner
        self._gate = gate

    def execute(self, queries):
        self._gate.wait(30)
        return self._inner.execute(queries)


def scenario_serve_overload(release) -> bool:
    """A saturated bounded queue sheds with retry hints, never hangs."""
    gate = threading.Event()
    engine = _GatedEngine(QueryEngine(release, worlds=8, seed=99), gate)
    harness = _ServerHarness(
        ObfuscationServer(engine, port=0, window_ms=0.0, max_queue=2)
    )
    try:
        with socket.create_connection(
            (harness.server.host, harness.server.port), timeout=10
        ) as sock:
            fh = sock.makefile("rb")
            sock.sendall(b'{"id": 0, "op": "degree", "source": 0}\n')
            time.sleep(0.3)  # let it stall the window
            t0 = time.monotonic()
            sock.sendall(b"".join(
                json.dumps({"id": i, "op": "degree", "source": 0}).encode()
                + b"\n"
                for i in range(1, 8)
            ))
            sheds = 0
            for _ in range(7 - 2):
                resp = json.loads(fh.readline())
                if resp["ok"] is False and resp["error"] == "overloaded":
                    sheds += 1
            fast = time.monotonic() - t0 < 5.0
        with ServeClient(
            harness.server.host, harness.server.port, retries=0, timeout=10.0
        ) as client:
            health_ok = client.health()["ready"] is False
    finally:
        gate.set()
        harness.stop()
    return _check(
        "serve overload → immediate sheds, health live",
        sheds == 5 and fast and health_ok,
        f"sheds={sheds}",
    )


def scenario_conn_drop(release) -> bool:
    """A mid-line connection drop: client reconnects to the same answer."""
    engine = QueryEngine(release, worlds=8, seed=99)
    from repro.serve import Query

    oracle = engine.execute_one(Query(op="degree", source=0))["result"]["value"]
    harness = _ServerHarness(ObfuscationServer(engine, port=0))
    install_fault_plan(FaultPlan(seed=6, rules=(
        FaultRule(site="serve.conn.drop", action="flag",
                  attempts=None, times=1),
    )))
    try:
        with ServeClient(
            harness.server.host,
            harness.server.port,
            retries=3,
            timeout=10.0,
            retry_policy=FAST_RETRY,
        ) as client:
            got = client.request("degree", source=0)["value"]
    finally:
        install_fault_plan(None)
        harness.stop()
    return _check("connection drop → client retry, same answer", got == oracle)


def main() -> int:
    import tempfile
    from pathlib import Path

    t0 = time.monotonic()
    release = _release()
    ok = True
    ok &= scenario_worker_kill()
    ok &= scenario_transient_error()
    ok &= scenario_straggler_timeout()
    ok &= scenario_poison_quarantine()
    with tempfile.TemporaryDirectory() as tmp:
        ok &= scenario_torn_manifest(Path(tmp))
    ok &= scenario_serve_overload(release)
    ok &= scenario_conn_drop(release)
    ok &= _check("no shm leaks at exit", _shm_leaks() == [], str(_shm_leaks()))
    print(f"\nchaos smoke {'passed' if ok else 'FAILED'} "
          f"in {time.monotonic() - t0:.1f}s")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
