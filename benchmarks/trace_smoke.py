"""CI smoke test for the observability layer (``repro.obs``).

Runs the same seeded ``repro obfuscate`` on a dblp-like surrogate twice
— once plain, once under ``--trace`` — and checks the three contracts
the tracing subsystem pins:

1. **Bit identity**: the traced run's uncertain-graph output is byte-
   identical to the untraced one (instrumentation never touches an RNG
   stream or reorders floating-point work).
2. **Receipts**: the traced run leaves ``trace.jsonl`` (parseable span
   records, obfuscation spans present) and a ``manifest.json`` that
   passes :func:`repro.obs.manifest.validate_manifest`, with the
   posterior kernel-mix counters populated.
3. **Reporting**: ``repro trace <run-dir>`` renders the summary and
   exits 0.
4. **Sharded tracing**: under a 2-worker process pool, worker spans are
   buffered in the child and grafted into the parent's stream exactly
   once — no fork-inherited double-writes to the JSONL file — they land
   under the executor's ``exec.map`` span, and the traced sharded run
   stays bit-identical to the untraced one.

Usage::

    PYTHONPATH=src python benchmarks/trace_smoke.py

Exit status: 0 = all contracts hold, 1 = first violated contract
(printed to stderr).
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.graphs.datasets import dblp_like
from repro.graphs.io import write_edge_list
from repro.obs.manifest import SCHEMA_ID, load_manifest

#: Kernel-mix counters the manifest of an obfuscation run must carry.
_REQUIRED_METRICS = (
    "posterior.rows.staircase",
    "posterior.dispatch.auto_staircase",
    "generate.pairs_drawn",
    "search.probes",
)


def fail(message: str) -> None:
    print(f"trace smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def sharded_trace_checks(tmp: Path) -> None:
    """Contract 4: worker spans ship to the parent, never to the file.

    Fork children inherit the parent's open JSONL handle; before the
    executor disarmed inherited tracers, every worker span was written
    twice (child + graft).  This runs the sharded Table-2 sweep with
    and without a live file tracer and checks the traced stream holds
    exactly one ``sweep_cell`` record per grid cell, every span id is
    unique, worker spans sit under ``exec.map``, and tracing changed
    no output bit.
    """
    import numpy as np

    from repro.exec import ChunkExecutor
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.harness import run_obfuscation_sweep
    from repro.obs.trace import disable_tracing, enable_tracing

    config = ExperimentConfig(
        datasets=("dblp",),
        scale=0.1,
        k_values=(20,),
        eps_values=(1e-3,),
        worlds=10,
        attempts=2,
        delta=0.05,
        seed=0,
    )
    trace_path = tmp / "sharded_trace.jsonl"
    with ChunkExecutor(backend="process", workers=2) as ex:
        plain = run_obfuscation_sweep(config, executor=ex)
        enable_tracing(trace_path)
        try:
            traced = run_obfuscation_sweep(config, executor=ex)
        finally:
            disable_tracing()

    for a, b in zip(plain, traced):
        same = a.result.sigma == b.result.sigma and all(
            np.array_equal(x, y)
            for x, y in zip(
                a.result.uncertain.pair_arrays(),
                b.result.uncertain.pair_arrays(),
            )
        )
        if not same:
            fail("sharded traced output differs from sharded untraced output")
    print("sharded bit identity: traced == untraced at 2 workers")

    records = [
        json.loads(line) for line in trace_path.read_text().splitlines() if line
    ]
    ids = [rec["id"] for rec in records]
    if len(ids) != len(set(ids)):
        fail("duplicate span ids in sharded trace (worker double-write)")
    names = [rec["name"] for rec in records]
    cell_spans = names.count("sweep_cell")
    if cell_spans != len(plain):
        fail(
            f"expected exactly {len(plain)} sweep_cell span(s) in the "
            f"sharded trace, got {cell_spans} (double-write or drop)"
        )
    if "exec.map" not in names:
        fail("exec.map span missing from sharded trace")
    map_ids = {rec["id"] for rec in records if rec["name"] == "exec.map"}
    for rec in records:
        if rec["name"] == "sweep_cell" and rec["parent"] not in map_ids:
            fail("sweep_cell span not grafted under the exec.map span")
    print(
        f"sharded trace: {len(records)} spans, ids unique, "
        f"{cell_spans} sweep_cell span(s) grafted under exec.map"
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="trace-smoke-") as tmp_name:
        tmp = Path(tmp_name)
        graph = dblp_like(scale=0.2, seed=0)
        edges = tmp / "graph.txt"
        write_edge_list(graph, edges)
        print(f"surrogate: n={graph.num_vertices} m={graph.num_edges}")

        base = [
            "obfuscate",
            "--input", str(edges),
            "--k", "10",
            "--eps", "0.1",
            "--attempts", "2",
            "--delta", "0.05",
            "--seed", "0",
        ]
        plain_out = tmp / "plain.txt"
        traced_out = tmp / "traced.txt"
        run_dir = tmp / "run"

        if cli_main(base + ["--output", str(plain_out)]) != 0:
            fail("untraced obfuscation did not succeed")
        code = cli_main(
            base + ["--output", str(traced_out), "--trace", str(run_dir)]
        )
        if code != 0:
            fail("traced obfuscation did not succeed")

        # 1. bit identity
        if plain_out.read_bytes() != traced_out.read_bytes():
            fail("traced output differs from untraced output (bit identity broken)")
        print("bit identity: traced == untraced output")

        # 2a. span stream
        trace_path = run_dir / "trace.jsonl"
        if not trace_path.exists():
            fail("trace.jsonl was not written")
        records = [
            json.loads(line) for line in trace_path.read_text().splitlines() if line
        ]
        if not records:
            fail("trace.jsonl is empty")
        names = {rec["name"] for rec in records}
        for expected in ("obfuscate", "probe", "read_input", "write_output"):
            if expected not in names:
                fail(f"span {expected!r} missing from trace.jsonl (got {sorted(names)})")
        print(f"trace.jsonl: {len(records)} spans, names ok")

        # 2b. manifest schema + kernel mix
        manifest = load_manifest(run_dir / "manifest.json")  # raises if invalid
        if manifest["schema"] != SCHEMA_ID:
            fail(f"unexpected manifest schema {manifest['schema']!r}")
        metrics = manifest["metrics"]
        for name in _REQUIRED_METRICS:
            if not metrics.get(name):
                fail(f"manifest metric {name!r} missing or zero")
        print(f"manifest.json: schema valid, {len(metrics)} metrics recorded")

        # 3. the report renders
        if cli_main(["trace", str(run_dir)]) != 0:
            fail("`repro trace <run-dir>` exited non-zero")

        # 4. sharded tracing: single-write worker spans, identity held
        sharded_trace_checks(tmp)

    print(
        "\ntrace smoke passed: bit identity, manifest schema, trace report, "
        "sharded single-write spans"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
