"""Sequential vs batched Table-4 evaluation (100 worlds, dblp surrogate).

The headline perf claim of the :mod:`repro.worlds` engine: evaluating
the full ten-statistic Table-4 family over 100 sampled possible worlds
of an obfuscated dblp-like surrogate must beat the sequential
world-by-world estimator end-to-end (≥1.5× sanity floor here — the
absolute ratio is runner-profile-dependent, measured 1.7–6.9× across
containers; ``perf_gate.py`` owns relative regressions), while
remaining seed-equivalent (same worlds, values within 1e-9 — asserted
inline on every invocation).  Timings land in
``benchmarks/results/worlds_speedup.csv``.

Environment knobs:

``REPRO_BENCH_WORLDS_SCALE``  surrogate size multiplier (default 0.45,
                              n ≈ 2000 — the posterior bench's setting)
``REPRO_BENCH_WORLDS``        worlds per run (default 100, the paper's
                              Table-4/5 sample size)

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_worlds.py -s
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.generate import generate_obfuscation
from repro.core.types import ObfuscationParams
from repro.graphs.datasets import dblp_like
from repro.stats.registry import PAPER_STATISTIC_NAMES, paper_statistics
from repro.stats.sampling import WorldStatisticsEstimator

SCALE = float(os.environ.get("REPRO_BENCH_WORLDS_SCALE", 0.45))
WORLDS = int(os.environ.get("REPRO_BENCH_WORLDS", 100))
SEED = 0


@pytest.fixture(scope="module")
def release():
    """An obfuscated dblp-like surrogate (n ≈ 2000 at the default scale)."""
    graph = dblp_like(scale=SCALE, seed=SEED)
    params = ObfuscationParams(k=1, eps=0.9, attempts=1)
    return generate_obfuscation(graph, 0.05, params, seed=SEED).uncertain


def _estimator(release, backend: str) -> WorldStatisticsEstimator:
    stats = paper_statistics(distance_backend="anf", seed=SEED)
    options = (
        {"distance_backend": "anf", "distance_seed": SEED}
        if backend == "batched"
        else {}
    )
    return WorldStatisticsEstimator(release, stats, backend=backend, **options)


def test_equivalence_small(release):
    """Same seed ⇒ same worlds ⇒ same table values (10-world spot check)."""
    sequential = _estimator(release, "sequential").run(worlds=10, seed=SEED)
    batched = _estimator(release, "batched").run(worlds=10, seed=SEED)
    for name in PAPER_STATISTIC_NAMES:
        np.testing.assert_allclose(
            batched[name].values,
            sequential[name].values,
            atol=1e-9,
            rtol=0,
            err_msg=name,
        )


def test_speedup_full_table4(release):
    """Batched must beat sequential on the paper-sized 100-world run."""
    t0 = time.perf_counter()
    sequential = _estimator(release, "sequential").run(worlds=WORLDS, seed=SEED)
    t_seq = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = _estimator(release, "batched").run(worlds=WORLDS, seed=SEED)
    t_bat = time.perf_counter() - t0

    for name in PAPER_STATISTIC_NAMES:
        np.testing.assert_allclose(
            batched[name].values,
            sequential[name].values,
            atol=1e-9,
            rtol=0,
            err_msg=name,
        )

    speedup = t_seq / t_bat
    rows = [
        {
            "backend": "sequential",
            "worlds": WORLDS,
            "scale": SCALE,
            "seconds": round(t_seq, 4),
            "ms_per_world": round(1000 * t_seq / WORLDS, 3),
            "speedup": 1.0,
        },
        {
            "backend": "batched",
            "worlds": WORLDS,
            "scale": SCALE,
            "seconds": round(t_bat, 4),
            "ms_per_world": round(1000 * t_bat / WORLDS, 3),
            "speedup": round(speedup, 2),
        },
    ]
    from conftest import save_results

    save_results(rows, "worlds_speedup.csv")
    print(
        f"\nTable-4 over {WORLDS} worlds (scale={SCALE}): "
        f"sequential {t_seq:.2f}s, batched {t_bat:.2f}s — {speedup:.1f}x"
    )
    # Absolute ratios swing hard with the runner's Python-loop vs NumPy
    # throughput balance (measured 6.9x and 1.9x for identical code on
    # two containers), so this is only a must-actually-win sanity floor;
    # relative regressions are perf_gate.py's job.
    assert speedup >= 1.5, f"expected >=1.5x end-to-end, measured {speedup:.2f}x"
