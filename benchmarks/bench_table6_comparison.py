"""Table 6 — obfuscation vs random sparsification/perturbation.

The paper's headline comparison (its §7.3 matchups, p values in
parentheses matched to the obfuscation levels via Figure 4):

    dblp:   rand.pert.(p=0.04)  rel.err 7.1%  vs obf.(k=60,1e-3)  4.3%
            rand.spars.(p=0.64) rel.err 92.1% vs obf.(k=20,1e-4)  5.0%
    flickr: rand.pert.(p=0.32)  rel.err 49.7% vs obf.(k=20,1e-4) 11.2%
            rand.spars.(p=0.64) rel.err 28.6%

Reproduction target: at matched anonymity, the uncertain-graph release
always has (much) lower average relative error than the whole-edge
randomization — the paper's driving claim.

``test_table6_comparison`` runs the calibrated protocol: for each
matchup the baseline's p is chosen (from the paper's grid) as the
smallest value whose release reaches the obfuscation cell's (k, ε)
anonymity.  The baseline side runs on ``config.baseline_backend``
(batched by default since the ``repro.worlds.releases`` engine).

``test_table6_baseline_equivalence`` and
``test_table6_baseline_speedup`` pin the batched engine itself:
equal seeds must give *identical* releases in both backends (rows
within 1e-9) and the batched path must beat the sequential one
end-to-end over the paper's 50 releases on the dblp surrogate (≥1.5×
sanity floor; measured 2.0–6.6× depending on runner profile).
Timings land in ``benchmarks/results/table6_speedup.csv``.

Environment knobs:

``REPRO_BENCH_TABLE6_SCALE``    dblp surrogate size for the
                                equivalence/speedup tests (default 1.0,
                                n ≈ 4500; CI smoke uses 0.1)
``REPRO_BENCH_TABLE6_SAMPLES``  releases per scheme (default 50, the
                                paper's count)

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_table6_comparison.py -s
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import numpy as np
import pytest
from conftest import emit

from repro.experiments.comparison import (
    achieved_k,
    baseline_utility_row,
    calibrate_randomization,
    table6_rows,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_table
from repro.graphs.datasets import dblp_like
from repro.stats.registry import PAPER_STATISTIC_NAMES

TABLE6_SCALE = float(os.environ.get("REPRO_BENCH_TABLE6_SCALE", 1.0))
TABLE6_SAMPLES = int(os.environ.get("REPRO_BENCH_TABLE6_SAMPLES", 50))
SEED = 0

#: The paper's hand-picked (scheme, p) pairs for the dblp matchups.
SCHEME_PS = (("sparsification", 0.64), ("perturbation", 0.32))


@pytest.fixture(scope="module")
def graph():
    """The dblp surrogate (n ≈ 4500 at the default scale)."""
    return dblp_like(scale=TABLE6_SCALE, seed=SEED)


@pytest.fixture(scope="module")
def original_stats(graph):
    """The original graph's statistics, shared as ``table6_rows`` shares them."""
    from repro.stats.registry import paper_statistics

    stats = paper_statistics(distance_backend="anf", seed=SEED)
    return {name: float(func(graph)) for name, func in stats.items()}


def _configs() -> tuple[ExperimentConfig, ExperimentConfig]:
    batched = ExperimentConfig(
        baseline_samples=TABLE6_SAMPLES,
        seed=SEED,
        baseline_backend="batched",
    )
    return batched, replace(batched, baseline_backend="sequential")


def _assert_rows_match(batched_row: dict, sequential_row: dict) -> None:
    for key, value in batched_row.items():
        if isinstance(value, str):
            assert sequential_row[key] == value, key
        else:
            np.testing.assert_allclose(
                value, sequential_row[key], atol=1e-9, rtol=0, err_msg=key
            )


def test_table6_baseline_equivalence(graph, original_stats):
    """Same seed ⇒ same releases ⇒ same rows, calibration and anonymity."""
    cfg_batched, cfg_sequential = _configs()
    for scheme, p in SCHEME_PS:
        _assert_rows_match(
            baseline_utility_row(graph, scheme, p, cfg_batched, original=original_stats),
            baseline_utility_row(graph, scheme, p, cfg_sequential, original=original_stats),
        )
        assert achieved_k(
            graph, scheme, p, 0.05, releases=2, seed=SEED, backend="batched"
        ) == achieved_k(
            graph, scheme, p, 0.05, releases=2, seed=SEED, backend="sequential"
        ), scheme
    a, b = (
        calibrate_randomization(
            graph, "sparsification", 3, 0.05, p_grid=(0.04, 0.32), releases=2,
            seed=SEED, backend=backend,
        )
        for backend in ("batched", "sequential")
    )
    assert (np.isnan(a) and np.isnan(b)) or a == b


def test_table6_baseline_speedup(graph, original_stats):
    """Batched must beat sequential over the paper's 50 releases per scheme.

    The original graph's statistics are computed once and shared, exactly
    as ``table6_rows`` shares them across a dataset's rows, so the timing
    isolates the release sampling + evaluation the backends differ on.
    """
    cfg_batched, cfg_sequential = _configs()

    t0 = time.perf_counter()
    sequential_rows = [
        baseline_utility_row(
            graph, scheme, p, cfg_sequential, original=original_stats
        )
        for scheme, p in SCHEME_PS
    ]
    t_seq = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched_rows = [
        baseline_utility_row(
            graph, scheme, p, cfg_batched, original=original_stats
        )
        for scheme, p in SCHEME_PS
    ]
    t_bat = time.perf_counter() - t0

    for batched_row, sequential_row in zip(batched_rows, sequential_rows):
        _assert_rows_match(batched_row, sequential_row)
        assert all(name in batched_row for name in PAPER_STATISTIC_NAMES)

    speedup = t_seq / t_bat
    rows = [
        {
            "backend": backend,
            "schemes": "+".join(s for s, _ in SCHEME_PS),
            "releases_per_scheme": TABLE6_SAMPLES,
            "scale": TABLE6_SCALE,
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "seconds": round(seconds, 4),
            "ms_per_release": round(
                1000 * seconds / (len(SCHEME_PS) * TABLE6_SAMPLES), 3
            ),
            "speedup": round(t_seq / seconds, 2),
        }
        for backend, seconds in (("sequential", t_seq), ("batched", t_bat))
    ]
    from conftest import save_results

    save_results(rows, "table6_speedup.csv")
    print(
        f"\nTable-6 baselines over {TABLE6_SAMPLES} releases x "
        f"{len(SCHEME_PS)} schemes (scale={TABLE6_SCALE}): sequential "
        f"{t_seq:.2f}s, batched {t_bat:.2f}s — {speedup:.1f}x"
    )
    # Sanity floor only — absolute ratios are runner-profile-dependent
    # (see bench_worlds.py); relative regressions are perf_gate.py's job.
    assert speedup >= 1.5, f"expected >=1.5x end-to-end, measured {speedup:.2f}x"


def test_table6_comparison(benchmark, cache, config):
    rows = benchmark.pedantic(
        lambda: table6_rows(cache.sweep(), config),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    emit(
        "Table 6: obfuscation vs randomization at matched anonymity",
        render_table(rows),
        rows,
        "table6_comparison.csv",
    )

    # Group rows per dataset and compare methods.
    datasets = {r["dataset"] for r in rows}
    checked = 0
    for dataset in datasets:
        local = [r for r in rows if r["dataset"] == dataset]
        baselines = [r for r in local if r["variant"].startswith("rand.")]
        ours = [r for r in local if r["variant"].startswith("obf.")]
        if not baselines or not ours:
            continue
        checked += 1
        # Headline claim: every obfuscation row beats every calibrated
        # randomization row on the same dataset.
        worst_ours = max(r["rel_err"] for r in ours)
        best_baseline = min(r["rel_err"] for r in baselines)
        assert worst_ours < best_baseline, (
            dataset,
            worst_ours,
            best_baseline,
        )
    assert checked >= 1, "no dataset produced a complete matchup"
