"""Table 6 — obfuscation vs random sparsification/perturbation.

The paper's headline comparison (its §7.3 matchups, p values in
parentheses matched to the obfuscation levels via Figure 4):

    dblp:   rand.pert.(p=0.04)  rel.err 7.1%  vs obf.(k=60,1e-3)  4.3%
            rand.spars.(p=0.64) rel.err 92.1% vs obf.(k=20,1e-4)  5.0%
    flickr: rand.pert.(p=0.32)  rel.err 49.7% vs obf.(k=20,1e-4) 11.2%
            rand.spars.(p=0.64) rel.err 28.6%

Reproduction target: at matched anonymity, the uncertain-graph release
always has (much) lower average relative error than the whole-edge
randomization — the paper's driving claim.

This benchmark runs the calibrated protocol: for each matchup the
baseline's p is chosen (from the paper's grid) as the smallest value
whose release reaches the obfuscation cell's (k, ε) anonymity.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.comparison import table6_rows
from repro.experiments.report import render_table


def test_table6_comparison(benchmark, cache, config):
    rows = benchmark.pedantic(
        lambda: table6_rows(cache.sweep(), config),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    emit(
        "Table 6: obfuscation vs randomization at matched anonymity",
        render_table(rows),
        rows,
        "table6_comparison.csv",
    )

    # Group rows per dataset and compare methods.
    datasets = {r["dataset"] for r in rows}
    checked = 0
    for dataset in datasets:
        local = [r for r in rows if r["dataset"] == dataset]
        baselines = [r for r in local if r["variant"].startswith("rand.")]
        ours = [r for r in local if r["variant"].startswith("obf.")]
        if not baselines or not ours:
            continue
        checked += 1
        # Headline claim: every obfuscation row beats every calibrated
        # randomization row on the same dataset.
        worst_ours = max(r["rel_err"] for r in ours)
        best_baseline = min(r["rel_err"] for r in baselines)
        assert worst_ours < best_baseline, (
            dataset,
            worst_ours,
            best_baseline,
        )
    assert checked >= 1, "no dataset produced a complete matchup"
