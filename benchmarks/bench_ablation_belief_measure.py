"""Ablation — entropy measure vs a-posteriori belief measure (§2).

The paper adopts the entropy measure of Bonchi et al. over the older
max-belief measure of Hay et al./Ying et al., citing two facts this
benchmark verifies empirically on an actual obfuscated release:

1. **dominance** — the entropy-based obfuscation level ``2^H(Y_ω)`` is
   never below the belief-based level ``(max Y_ω)⁻¹`` (Shannon ≥
   min-entropy);
2. **discrimination** — the entropy measure separates vertices that the
   belief measure scores (nearly) identically, i.e. it has strictly
   more distinct values across the graph.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.attacks.belief import belief_obfuscation_levels
from repro.core.obfuscation_check import compute_degree_posterior
from repro.experiments.report import render_table


def test_ablation_belief_measure(benchmark, cache, config):
    sweep = cache.sweep(eps_values=(1e-3,))
    entry = next(e for e in sweep if e.dataset == "dblp" and e.result.success)
    graph = entry.graph
    degrees = graph.degrees()

    def compute():
        posterior = compute_degree_posterior(
            entry.result.uncertain, width=int(degrees.max()) + 2
        )
        entropy_levels = posterior.obfuscation_levels(degrees)
        belief_levels = belief_obfuscation_levels(posterior, degrees)
        return entropy_levels, belief_levels

    entropy_levels, belief_levels = benchmark.pedantic(
        compute, rounds=1, iterations=1, warmup_rounds=0
    )

    rows = [
        {
            "measure": "entropy (paper)",
            "median_level": float(np.median(entropy_levels)),
            "min_level": float(entropy_levels.min()),
            "distinct_values": int(len(np.unique(np.round(entropy_levels, 6)))),
        },
        {
            "measure": "max-belief (Hay et al.)",
            "median_level": float(np.median(belief_levels)),
            "min_level": float(belief_levels.min()),
            "distinct_values": int(len(np.unique(np.round(belief_levels, 6)))),
        },
    ]
    emit(
        f"Ablation: entropy vs a-posteriori belief measure (dblp, k={entry.k})",
        render_table(rows),
        rows,
        "ablation_belief_measure.csv",
    )

    # 1. Dominance: entropy level >= belief level for every vertex.
    assert (entropy_levels + 1e-9 >= belief_levels).all()
    # 2. The gap is real, not degenerate equality everywhere.
    assert (entropy_levels > belief_levels + 1e-6).any()
    # 3. Discrimination: at least as many distinct entropy scores.
    assert rows[0]["distinct_values"] >= rows[1]["distinct_values"]
