"""Table 4 — sample means of ten statistics over 100 worlds (ε = 10⁻⁴).

Paper reference shape (last column = average relative error vs real):

    dblp:   k=20 → 4.9%,  k=60 → 42.9%,  k=100 → 70.5%
    flickr: k=20 → 11.2%, k=60 → 32.2%,  k=100 → 41.5%
    Y360:   k=20 → 2.6%,  k=60 → 2.5%,   k=100 → 2.3%

Reproduction targets: error grows with k on dblp/flickr; Y360 is nearly
unaffected at every k; k = 20 stays below ~15% everywhere.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.harness import table4_rows
from repro.experiments.report import render_table


def test_table4_utility(benchmark, cache, config):
    rows = benchmark.pedantic(
        lambda: table4_rows(
            cache.sweep(eps_values=(1e-4,)), config, cache=cache.summaries
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    emit(
        "Table 4: sample means over sampled worlds (eps = 1e-4)",
        render_table(rows),
        rows,
        "table4_utility.csv",
    )

    by_variant = {(r["dataset"], r["variant"]): r for r in rows}

    for dataset in config.datasets:
        variants = [r for r in rows if r["dataset"] == dataset]
        real = variants[0]
        assert real["variant"] == "real" and real["rel_err"] == 0.0
        ks = [r for r in variants[1:] if "rel_err" in r and r["rel_err"] == r["rel_err"]]
        if not ks:
            continue
        # Shape check 1: the smallest k keeps error modest (paper: < 15%).
        assert ks[0]["rel_err"] < 0.25, (dataset, ks[0]["rel_err"])
        # Shape check 2: error does not *shrink* dramatically as k grows
        # on the hard datasets (paper: strictly grows on dblp/flickr).
        if dataset in ("dblp", "flickr") and len(ks) >= 2:
            assert ks[-1]["rel_err"] >= 0.5 * ks[0]["rel_err"]

    # Shape check 3: y360 is the least-affected dataset at every k.
    if {"y360", "dblp"} <= set(config.datasets):
        y_err = max(
            r["rel_err"]
            for r in rows
            if r["dataset"] == "y360" and r["variant"] != "real"
        )
        d_err = max(
            r["rel_err"]
            for r in rows
            if r["dataset"] == "dblp" and r["variant"] != "real"
        )
        assert y_err <= d_err
