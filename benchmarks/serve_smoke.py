"""CI smoke test for the serving layer (``repro.serve``).

Builds the surrogate-dblp release, then checks the three contracts the
serving subsystem pins:

1. **Oracle pinning over the wire**: a TCP workload burst against a
   live :class:`ObfuscationServer` samples answers and re-derives each
   from the sequential :mod:`repro.uncertain.queries` oracle at the
   server's ``(seed, worlds)`` — every sampled answer must match
   exactly (distances/supports are ratios of integer world counts).
2. **Throughput**: the open-loop workload generator sustains ≥ 1000 QPS
   of the mixed query stream against the release on one core (library
   driver — no socket noise — after the YCSB-style load phase).
3. **Receipts**: the run manifest carries per-op p50/p99 latency
   histograms and validates against the ``repro.obs`` schema.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py

Exit status: 0 = all contracts hold, 1 = first violated contract
(printed to stderr).
"""

from __future__ import annotations

import asyncio
import math
import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from workload import (  # noqa: E402
    WorkloadConfig,
    run_library,
    run_server,
    surrogate_release,
)

from repro.obs.manifest import build_manifest, load_manifest, write_manifest  # noqa: E402
from repro.serve import ObfuscationServer, QueryEngine  # noqa: E402
from repro.uncertain import (  # noqa: E402
    distance_distribution,
    k_hop_reachable_size,
    k_nearest_neighbors,
    majority_distance,
    median_distance,
    reliability,
)

QPS_FLOOR = 1000.0
SERVER_WORLDS = 32
SERVER_SEED = 7


def fail(message: str) -> None:
    print(f"serve smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def _wire(value: float):
    return "inf" if isinstance(value, float) and math.isinf(value) else value


def check_sample(release, request: dict, result: dict) -> None:
    """Re-derive one served answer from the sequential oracle."""
    op, s = request["op"], request["source"]
    kw = {"worlds": SERVER_WORLDS, "seed": SERVER_SEED}
    if op == "degree":
        expected = float(release.expected_degrees()[s])
        ok = result["value"] == expected
    elif op == "reliability":
        expected = reliability(release, s, request["target"], **kw)
        ok = result["value"] == expected
    elif op == "khop":
        expected = k_hop_reachable_size(release, s, request["hops"], **kw)
        ok = result["value"] == expected
    elif op == "knn":
        oracle = k_nearest_neighbors(release, s, request["k"], **kw)
        expected = [[v, sup] for v, sup in oracle]
        ok = result["neighbors"] == expected
    else:  # distance
        t = request["target"]
        oracle = distance_distribution(release, s, t, **kw)
        expected = {
            str(_wire(float(d)) if math.isinf(d) else int(d)): p
            for d, p in oracle.items()
        }
        med = _wire(median_distance(release, s, t, **kw))
        maj = _wire(majority_distance(release, s, t, **kw))
        ok = (
            result["distribution"] == expected
            and result["median"] == med
            and result["majority"] == maj
        )
        expected = {"distribution": expected, "median": med, "majority": maj}
    if not ok:
        fail(f"served answer diverges from oracle for {request}: "
             f"got {result}, oracle {expected}")


def main() -> int:
    print("building surrogate-dblp release ...")
    release = surrogate_release(scale=1.0, seed=0)
    print(
        f"release: n={release.num_vertices} "
        f"candidates={release.num_candidate_pairs}"
    )

    # ---- contract 1: oracle pinning through a live server ------------
    engine = QueryEngine(release, worlds=SERVER_WORLDS, seed=SERVER_SEED)
    server = ObfuscationServer(engine, port=0, window_ms=1.0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run_loop():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run_loop, daemon=True)
    thread.start()
    if not started.wait(30):
        fail("server did not start")
    print(f"server listening on {server.host}:{server.port}")

    burst = WorkloadConfig(
        qps=500.0,
        duration_s=1.0,
        popular_pairs=64,
        seed=1,
        connections=4,
    )
    try:
        server_result = run_server(
            server.host, server.port, burst, release.num_vertices
        )
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(30)
    if server_result.errors:
        fail(f"{server_result.errors} server-side query errors")
    if server_result.completed < burst.num_requests:
        fail(
            f"only {server_result.completed}/{burst.num_requests} "
            "burst responses arrived"
        )
    if not server_result.samples:
        fail("burst produced no spot-check samples")
    for request, result in server_result.samples:
        check_sample(release, request, result)
    print(
        f"oracle pinning: {len(server_result.samples)} sampled answers "
        f"match queries.py exactly "
        f"({server_result.completed} served at "
        f"{server_result.qps_achieved:.0f} qps over TCP)"
    )

    # ---- contract 2: >= 1k QPS, library driver -----------------------
    gate = WorkloadConfig(qps=1500.0, duration_s=2.0, seed=2)
    gate_engine = QueryEngine(release, worlds=64, seed=0)
    gate_result = run_library(gate_engine, gate)
    if gate_result.errors:
        fail(f"{gate_result.errors} library-driver query errors")
    if gate_result.qps_achieved < QPS_FLOOR:
        fail(
            f"throughput {gate_result.qps_achieved:.0f} qps "
            f"below the {QPS_FLOOR:.0f} qps floor"
        )
    summary = gate_result.latency_summary()
    for op, row in summary.items():
        print(
            f"  {op:<12} p50={row['p50_ms']:.3f}ms p99={row['p99_ms']:.3f}ms"
        )
    print(
        f"throughput: {gate_result.qps_achieved:.0f} qps sustained "
        f"(target {gate.qps:g}, floor {QPS_FLOOR:g})"
    )

    # ---- contract 3: manifest with latency histograms ----------------
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        manifest_path = Path(tmp) / "manifest.json"
        write_manifest(
            manifest_path,
            build_manifest(
                "benchmarks/serve_smoke.py",
                config={
                    "qps": gate.qps,
                    "duration_s": gate.duration_s,
                    "worlds": 64,
                },
                seed=gate.seed,
                results={
                    "achieved_qps": gate_result.qps_achieved,
                    "completed": gate_result.completed,
                    "latency": summary,
                },
            ),
        )
        manifest = load_manifest(manifest_path)  # raises if schema-invalid
        latency = manifest["results"]["latency"]
        for op in ("reliability", "degree", "knn"):
            row = latency.get(op)
            if not row or "p50_ms" not in row or "p99_ms" not in row:
                fail(f"manifest latency histogram missing for {op!r}")
        if "serve.queries" not in manifest["metrics"]:
            fail("serve.* metrics missing from manifest metrics dump")
    print("manifest: schema valid, per-op p50/p99 latency recorded")

    print("\nserve smoke passed: oracle pinning, >=1k QPS, latency manifest")
    return 0


if __name__ == "__main__":
    sys.exit(main())
