"""CI smoke test for the sharded execution layer (``repro.exec``).

Runs the pinned dblp-surrogate grid twice — serial and through a
2-worker process-pool :class:`~repro.exec.ChunkExecutor` — and checks
the two contracts the executor pins:

1. **Bit identity**: every Table-2 sweep cell (σ, ε used, the full
   obfuscated edge/probability arrays) and every world-statistic array
   is byte-identical between the serial and sharded runs at equal
   seeds.  Parallelism is an implementation detail, never a result.
2. **Clean lifecycle**: the pool shuts down without leaking shared-
   memory segments (``/dev/shm`` is empty of ``repro-*`` blocks after
   close) and worker metrics merged back into the parent registry.

Timings for both runs are recorded into
``benchmarks/results/exec_speedup.csv`` with the host's ``cpu_count``
so a 1-core CI runner's "slowdown" is legible as a machine shape, not
a regression — the pass/fail criterion here is identity, not speed
(speed is gated separately by ``perf_gate.py --exec-speedup``, which
skips on single-core hosts).

Usage::

    PYTHONPATH=src python benchmarks/exec_smoke.py [--workers 2]

Exit status: 0 = identity + lifecycle hold, 1 = first violated
contract (printed to stderr).
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.exec import ChunkExecutor
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_obfuscation_sweep
from repro.experiments.report import save_csv
from repro.obs import REGISTRY
from repro.worlds.estimator import BatchedWorldStatisticsEstimator

RESULTS_DIR = Path(__file__).parent / "results"

SCALE = float(os.environ.get("REPRO_EXEC_SMOKE_SCALE", "0.1"))
WORLDS = int(os.environ.get("REPRO_EXEC_SMOKE_WORLDS", "24"))


def fail(message: str) -> None:
    print(f"exec smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def _shm_leaks() -> list[str]:
    return glob.glob("/dev/shm/repro-*")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    config = ExperimentConfig(
        datasets=("dblp",),
        scale=SCALE,
        k_values=(20,),
        eps_values=(1e-3,),
        worlds=WORLDS,
        attempts=2,
        delta=0.05,
        seed=0,
    )
    cpus = os.cpu_count() or 1
    print(f"grid: dblp scale={SCALE} k=20 eps=1e-3, "
          f"{args.workers} workers on {cpus} core(s)")

    # --- Table-2 sweep: serial vs sharded cells -------------------------
    t0 = time.perf_counter()
    serial_sweep = run_obfuscation_sweep(config)
    t_sweep_serial = time.perf_counter() - t0

    with ChunkExecutor(backend="process", workers=args.workers) as ex:
        t0 = time.perf_counter()
        sharded_sweep = run_obfuscation_sweep(config, executor=ex)
        t_sweep_sharded = time.perf_counter() - t0

        if len(serial_sweep) != len(sharded_sweep):
            fail("sweep cell counts differ")
        for a, b in zip(serial_sweep, sharded_sweep):
            if (a.dataset, a.k, a.paper_eps) != (b.dataset, b.k, b.paper_eps):
                fail("sweep cell order differs")
            if a.result.success != b.result.success:
                fail(f"cell ({a.dataset},{a.k},{a.paper_eps}): success differs")
            if not a.result.success:
                continue
            if a.result.sigma != b.result.sigma:
                fail(f"cell ({a.dataset},{a.k},{a.paper_eps}): sigma differs "
                     f"({a.result.sigma} vs {b.result.sigma})")
            ua, ub = a.result.uncertain.pair_arrays(), b.result.uncertain.pair_arrays()
            if not all(np.array_equal(x, y) for x, y in zip(ua, ub)):
                fail(f"cell ({a.dataset},{a.k},{a.paper_eps}): "
                     "obfuscated edge arrays differ")
        print(f"table2: {len(serial_sweep)} cells bit-identical "
              f"(serial {t_sweep_serial:.1f}s, sharded {t_sweep_sharded:.1f}s)")

        # --- World statistics: serial vs sharded chunks -----------------
        entry = next(e for e in serial_sweep if e.result.success)
        unc = entry.result.uncertain
        serial_est = BatchedWorldStatisticsEstimator(unc, distance_seed=0)
        sharded_est = BatchedWorldStatisticsEstimator(
            unc, distance_seed=0, executor=ex
        )
        t0 = time.perf_counter()
        out_serial = serial_est.run(worlds=WORLDS, seed=7)
        t_worlds_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        out_sharded = sharded_est.run(worlds=WORLDS, seed=7)
        t_worlds_sharded = time.perf_counter() - t0

        if set(out_serial) != set(out_sharded):
            fail("world-statistic names differ")
        for name in out_serial:
            if not np.array_equal(out_serial[name].values,
                                  out_sharded[name].values):
                fail(f"world statistic {name!r} diverges between "
                     "serial and sharded runs")
        print(f"worlds: {len(out_serial)} statistics x {WORLDS} worlds "
              f"bit-identical (serial {t_worlds_serial:.1f}s, "
              f"sharded {t_worlds_sharded:.1f}s)")

        # Worker-side kernel metrics must have merged back into the parent.
        dump = REGISTRY.dump()
        if not any(k.startswith("worlds.") and v for k, v in dump.items()):
            fail("no worlds.* metrics in parent registry after sharded run "
                 "(worker dumps were not merged)")
        print("metrics: worker counters merged into parent registry")

    leaks = _shm_leaks()
    if leaks:
        fail(f"shared-memory segments leaked after close: {leaks}")
    print("lifecycle: pool closed, no /dev/shm leaks")

    rows = [
        {
            "phase": "table2_sweep",
            "workers": args.workers,
            "cpu_count": cpus,
            "scale": SCALE,
            "serial_sec": round(t_sweep_serial, 3),
            "sharded_sec": round(t_sweep_sharded, 3),
            "speedup": round(t_sweep_serial / t_sweep_sharded, 3),
            "identical": True,
        },
        {
            "phase": "world_stats",
            "workers": args.workers,
            "cpu_count": cpus,
            "scale": SCALE,
            "serial_sec": round(t_worlds_serial, 3),
            "sharded_sec": round(t_worlds_sharded, 3),
            "speedup": round(t_worlds_serial / t_worlds_sharded, 3),
            "identical": True,
        },
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    save_csv(rows, RESULTS_DIR / "exec_speedup.csv")
    print(f"\nexec smoke passed: bit identity at {args.workers} workers, "
          f"clean shutdown; wrote results/exec_speedup.csv")
    return 0


if __name__ == "__main__":
    sys.exit(main())
