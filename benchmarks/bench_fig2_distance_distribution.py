"""Figure 2 — distribution of pairwise distances S_PDD (dblp).

The paper plots per-distance boxplots over 100 sampled worlds against
the real distribution (red dots), for two corner configurations:

* (k = 20, ε = 10⁻³): the sampled distributions hug the original —
  "qualitatively very similar";
* (k = 100, ε = 10⁻⁴): visibly shifted left (possible worlds are
  denser in uncertain pairs, shrinking distances).

The benchmark regenerates both panels as quartile tables and asserts
the same contrast: the easy corner tracks the original much more
closely than the hard corner.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments.figures import figure2_data
from repro.experiments.report import render_boxplot_series


def _tracking_error(series) -> float:
    """Mean |median − original| over bins where the original has mass."""
    mask = series.original > 1e-4
    if not mask.any():
        return 0.0
    return float(np.abs(series.median - series.original)[mask].mean())


def test_fig2_distance_distribution(benchmark, cache, config):
    sweep = cache.sweep()
    cells = {(e.dataset, e.k, e.paper_eps): e for e in sweep}
    easy = cells.get(("dblp", 20, 1e-3))
    hard = cells.get(("dblp", 100, 1e-4))
    assert easy is not None and easy.result.success

    easy_series = benchmark.pedantic(
        lambda: figure2_data(easy, config),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    rows = [
        {
            "distance": int(b),
            "original": float(easy_series.original[i]),
            "median": float(easy_series.median[i]),
            "q1": float(easy_series.q1[i]),
            "q3": float(easy_series.q3[i]),
        }
        for i, b in enumerate(easy_series.bins)
    ]
    emit(
        "Figure 2 (left): S_PDD boxplots, dblp k=20 eps=1e-3",
        render_boxplot_series(easy_series, label="distance"),
        rows,
        "fig2_distance_k20.csv",
    )

    if hard is not None and hard.result.success:
        hard_series = figure2_data(hard, config)
        emit(
            "Figure 2 (right): S_PDD boxplots, dblp k=100 eps=1e-4",
            render_boxplot_series(hard_series, label="distance"),
            [
                {
                    "distance": int(b),
                    "original": float(hard_series.original[i]),
                    "median": float(hard_series.median[i]),
                    "q1": float(hard_series.q1[i]),
                    "q3": float(hard_series.q3[i]),
                }
                for i, b in enumerate(hard_series.bins)
            ],
            "fig2_distance_k100.csv",
        )
        # Paper's contrast: the k=100/1e-4 panel drifts further from the
        # real distribution than the k=20/1e-3 panel.
        assert _tracking_error(easy_series) <= _tracking_error(hard_series) + 0.02

    # Sanity: the easy panel stays close in absolute terms.
    assert _tracking_error(easy_series) < 0.06
