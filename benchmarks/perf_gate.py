"""Perf regression gate: committed speedup floors must hold within 15%.

The speedup CSVs under ``benchmarks/results/`` are committed artifacts —
each records the measured batched-vs-sequential ratio of one pinned
workload.  After a fresh benchmark run rewrites them in the working
tree, this script compares every pinned ratio against the version
committed at ``HEAD`` and fails (exit 1) if a fresh ratio fell below
``committed / TOLERANCE`` — a >15% regression of a workload the repo
explicitly optimised.  Speedup *ratios* are compared rather than raw
seconds because ratios cancel machine speed, which is what makes the
gate meaningful on heterogeneous CI runners.

Usage (after running the benchmark suite so the CSVs are fresh)::

    python benchmarks/perf_gate.py

A second mode gates the observability layer itself::

    PYTHONPATH=src python benchmarks/perf_gate.py --trace-overhead

runs a pinned seeded obfuscation search (the posterior-heavy workload
that carries the densest span instrumentation) with tracing enabled and
disabled, interleaved best-of-N, and fails if the enabled/disabled
wall-clock ratio exceeds ``TRACE_OVERHEAD_BUDGET`` (5%).  The always-on
metric counters are identical in both runs, so the ratio isolates the
cost of live spans — the thing ``repro.obs`` promises is phase-level
cheap.

Exit status: 0 = all floors hold, 1 = regression (or a gated file/row
is missing, which would otherwise silently disable the gate).
"""

from __future__ import annotations

import argparse
import csv
import io
import subprocess
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

#: Fresh ratio may be at worst committed/1.15 (a 15% regression).
TOLERANCE = 1.15

#: Tracing-enabled wall clock may be at worst 1.05x the disabled run.
TRACE_OVERHEAD_BUDGET = 1.05

#: With fault hooks present but no plan firing, wall clock may be at
#: worst 1.05x a run on the same code path — the fault sites promise to
#: be one module-global read when disarmed.
FAULT_OVERHEAD_BUDGET = 1.05

#: Sharded world evaluation at 2 workers must beat serial by this factor
#: on the smoke grid (skipped on single-core hosts, where the process
#: backend cannot physically win).
EXEC_SPEEDUP_FLOOR = 1.6

#: (csv name, row-match predicate fields, ratio column) per pinned workload.
GATES: list[tuple[str, dict[str, str], str]] = [
    ("worlds_speedup.csv", {"backend": "batched"}, "speedup"),
    ("obfuscation_speedup.csv", {"k": "all"}, "speedup"),
    ("table6_speedup.csv", {"backend": "batched"}, "speedup"),
    ("substream_speedup.csv", {"attempts": "3", "k": "all"}, "speedup"),
    ("substream_speedup.csv", {"attempts": "5", "k": "all"}, "speedup"),
]


def _rows(text: str) -> list[dict[str, str]]:
    return list(csv.DictReader(io.StringIO(text)))


def _match(rows: list[dict[str, str]], where: dict[str, str]) -> dict[str, str] | None:
    for row in rows:
        if all(row.get(col) == value for col, value in where.items()):
            return row
    return None


def _committed(name: str) -> str | None:
    proc = subprocess.run(
        ["git", "show", f"HEAD:benchmarks/results/{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    return proc.stdout if proc.returncode == 0 else None


def trace_overhead(rounds: int = 5) -> int:
    """Gate the cost of live tracing on the pinned posterior workload.

    Requires ``PYTHONPATH=src`` (imports the library).  The workload is
    a fully seeded Algorithm-1 search on a dblp-like surrogate — every
    probe opens a span and the posterior kernels feed the always-on
    registry, so an enabled run exercises the instrumentation exactly
    as ``repro obfuscate --trace`` would.  Enabled and disabled runs
    are interleaved and the best (minimum) of ``rounds`` is compared,
    which cancels warm-up and machine-load drift.
    """
    from repro.core.search import obfuscate
    from repro.graphs.datasets import dblp_like
    from repro.obs.trace import disable_tracing, enable_tracing, tracing_enabled

    if tracing_enabled():  # a live tracer would contaminate the "off" half
        disable_tracing()
    graph = dblp_like(scale=0.15, seed=0)

    def run() -> None:
        obfuscate(graph, k=10, eps=0.1, seed=0, attempts=2, delta=0.05)

    run()  # warm-up: dataset caches, first-touch allocations, JIT-free but honest
    best_off = best_on = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        run()
        best_off = min(best_off, time.perf_counter() - t0)
        enable_tracing(None)  # in-memory tracer: spans live, no file I/O
        try:
            t0 = time.perf_counter()
            run()
            best_on = min(best_on, time.perf_counter() - t0)
        finally:
            disable_tracing()
    ratio = best_on / best_off
    verdict = "ok" if ratio <= TRACE_OVERHEAD_BUDGET else "REGRESSION"
    print(
        f"{verdict:>10}  trace overhead: enabled {best_on * 1e3:.1f} ms "
        f"vs disabled {best_off * 1e3:.1f} ms "
        f"(ratio {ratio:.3f}, budget {TRACE_OVERHEAD_BUDGET:.2f})"
    )
    if ratio > TRACE_OVERHEAD_BUDGET:
        print(
            f"trace overhead gate FAILED: span instrumentation costs "
            f"{(ratio - 1) * 100:.1f}% (> {(TRACE_OVERHEAD_BUDGET - 1) * 100:.0f}%)",
            file=sys.stderr,
        )
        return 1
    print(f"\ntrace overhead gate passed (best of {rounds})")
    return 0


def fault_overhead(rounds: int = 5) -> int:
    """Gate the disarmed cost of the fault-injection sites.

    Requires ``PYTHONPATH=src``.  Runs the pinned obfuscation workload
    twice per round, interleaved best-of-N: once with no fault plan at
    all, once with a plan *installed* whose single rule can never fire
    (a site name nothing calls).  The installed-but-inert case is the
    worst production-relevant path — every ``fault_point`` call walks
    its rule list — and the gate pins it at ≤5% over the no-plan path.
    """
    from repro.core.search import obfuscate
    from repro.graphs.datasets import dblp_like
    from repro.resilience import FaultPlan, FaultRule, install_fault_plan

    graph = dblp_like(scale=0.15, seed=0)
    inert_plan = FaultPlan(rules=(
        FaultRule(site="never.fires", action="flag", attempts=None),
    ))

    def run() -> None:
        obfuscate(graph, k=10, eps=0.1, seed=0, attempts=2, delta=0.05)

    install_fault_plan(None)
    run()  # warm-up
    best_off = best_on = float("inf")
    try:
        for _ in range(rounds):
            install_fault_plan(None)
            t0 = time.perf_counter()
            run()
            best_off = min(best_off, time.perf_counter() - t0)
            install_fault_plan(inert_plan)
            t0 = time.perf_counter()
            run()
            best_on = min(best_on, time.perf_counter() - t0)
    finally:
        install_fault_plan(None)
    ratio = best_on / best_off
    verdict = "ok" if ratio <= FAULT_OVERHEAD_BUDGET else "REGRESSION"
    print(
        f"{verdict:>10}  fault-hook overhead: inert plan {best_on * 1e3:.1f} ms "
        f"vs no plan {best_off * 1e3:.1f} ms "
        f"(ratio {ratio:.3f}, budget {FAULT_OVERHEAD_BUDGET:.2f})"
    )
    if ratio > FAULT_OVERHEAD_BUDGET:
        print(
            f"fault overhead gate FAILED: disarmed fault sites cost "
            f"{(ratio - 1) * 100:.1f}% (> {(FAULT_OVERHEAD_BUDGET - 1) * 100:.0f}%)",
            file=sys.stderr,
        )
        return 1
    print(f"\nfault overhead gate passed (best of {rounds})")
    return 0


def exec_speedup(rounds: int = 3, workers: int = 2) -> int:
    """Gate the process backend: sharded world evaluation must win.

    Requires ``PYTHONPATH=src``.  The workload is the smoke grid's
    heavy phase — evaluating the ten paper statistics over sampled
    possible worlds of an obfuscated dblp surrogate — run serial and
    through a ``workers``-process :class:`~repro.exec.ChunkExecutor`
    (pool reused across rounds, so fork cost amortises as in real
    drivers), interleaved best-of-N.  Fails when the serial/sharded
    wall-clock ratio falls below :data:`EXEC_SPEEDUP_FLOOR`; also
    asserts the two runs' per-world values are bit-identical, so a
    "win" can never come from computing something else.

    On a single-core host the gate *skips* (exit 0): two processes on
    one core cannot beat serial, and a red gate there would only
    report the machine shape, not a regression.
    """
    import os

    cpus = os.cpu_count() or 1
    if cpus < 2:
        print(
            f"exec speedup gate SKIPPED: host has {cpus} CPU core(s); "
            f"a {workers}-worker pool cannot outrun serial here"
        )
        return 0

    import numpy as np

    from repro.core.search import obfuscate
    from repro.exec import ChunkExecutor
    from repro.graphs.datasets import dblp_like
    from repro.worlds.estimator import BatchedWorldStatisticsEstimator

    graph = dblp_like(scale=0.15, seed=0)
    release = obfuscate(graph, k=10, eps=0.1, seed=0, attempts=2, delta=0.05)
    assert release.success
    unc = release.uncertain
    worlds, seed = 96, 7

    def run(estimator):
        return estimator.run(worlds=worlds, seed=seed)

    serial = BatchedWorldStatisticsEstimator(unc, distance_seed=0)
    with ChunkExecutor(backend="process", workers=workers) as ex:
        sharded = BatchedWorldStatisticsEstimator(
            unc, distance_seed=0, executor=ex
        )
        out_serial = run(serial)  # warm-up + reference values
        out_sharded = run(sharded)  # warm-up: forks the pool
        for name in out_serial:
            if not np.array_equal(
                out_serial[name].values, out_sharded[name].values
            ):
                print(
                    f"exec speedup gate FAILED: sharded values diverge "
                    f"from serial for {name!r}",
                    file=sys.stderr,
                )
                return 1
        best_serial = best_sharded = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            run(serial)
            best_serial = min(best_serial, time.perf_counter() - t0)
            t0 = time.perf_counter()
            run(sharded)
            best_sharded = min(best_sharded, time.perf_counter() - t0)
    ratio = best_serial / best_sharded
    verdict = "ok" if ratio >= EXEC_SPEEDUP_FLOOR else "REGRESSION"
    print(
        f"{verdict:>10}  exec speedup: serial {best_serial * 1e3:.0f} ms vs "
        f"{workers}-worker {best_sharded * 1e3:.0f} ms "
        f"(ratio {ratio:.2f}, floor {EXEC_SPEEDUP_FLOOR:.2f}, "
        f"{cpus} cores)"
    )
    if ratio < EXEC_SPEEDUP_FLOOR:
        print(
            f"exec speedup gate FAILED: {workers}-worker sharding wins only "
            f"{ratio:.2f}x (< {EXEC_SPEEDUP_FLOOR:.2f}x)",
            file=sys.stderr,
        )
        return 1
    print(f"\nexec speedup gate passed (best of {rounds})")
    return 0


def main() -> int:
    failures: list[str] = []
    checked = 0
    for name, where, column in GATES:
        label = f"{name} {where}"
        committed_text = _committed(name)
        if committed_text is None:
            failures.append(f"{label}: no committed baseline at HEAD")
            continue
        baseline_row = _match(_rows(committed_text), where)
        if baseline_row is None or not baseline_row.get(column):
            failures.append(f"{label}: pinned row missing from committed CSV")
            continue
        fresh_path = RESULTS_DIR / name
        if not fresh_path.exists():
            failures.append(f"{label}: fresh CSV missing (run the benchmarks first)")
            continue
        fresh_row = _match(_rows(fresh_path.read_text()), where)
        if fresh_row is None or not fresh_row.get(column):
            failures.append(f"{label}: pinned row missing from fresh CSV")
            continue
        committed = float(baseline_row[column])
        fresh = float(fresh_row[column])
        floor = committed / TOLERANCE
        verdict = "ok" if fresh >= floor else "REGRESSION"
        print(
            f"{verdict:>10}  {name} {where}: fresh {column}={fresh:.2f} "
            f"vs committed {committed:.2f} (floor {floor:.2f})"
        )
        if fresh < floor:
            failures.append(
                f"{label}: {column} {fresh:.2f} < floor {floor:.2f} "
                f"(committed {committed:.2f}, >15% regression)"
            )
        checked += 1
    if failures:
        print(f"\nperf gate FAILED ({len(failures)} problem(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed: {checked} pinned workloads within {TOLERANCE}x")
    return 0


if __name__ == "__main__":
    _parser = argparse.ArgumentParser(description="perf + trace-overhead gates")
    _parser.add_argument(
        "--trace-overhead",
        action="store_true",
        help="gate live-tracing overhead instead of the CSV ratio floors",
    )
    _parser.add_argument(
        "--fault-overhead",
        action="store_true",
        help="gate the disarmed cost of fault-injection sites (≤5%%)",
    )
    _parser.add_argument(
        "--exec-speedup",
        action="store_true",
        help="gate sharded-vs-serial world evaluation (skips on 1-core hosts)",
    )
    _parser.add_argument(
        "--workers", type=int, default=2, help="pool size (exec mode)"
    )
    _parser.add_argument(
        "--rounds", type=int, default=5, help="best-of-N rounds (trace/exec modes)"
    )
    _args = _parser.parse_args()
    if _args.trace_overhead:
        sys.exit(trace_overhead(_args.rounds))
    if _args.fault_overhead:
        sys.exit(fault_overhead(_args.rounds))
    if _args.exec_speedup:
        sys.exit(exec_speedup(min(_args.rounds, 3), _args.workers))
    sys.exit(main())
