"""Shared benchmark infrastructure.

The paper's tables all derive from one obfuscation sweep over the
(dataset, k, ε) grid; running it once per benchmark *file* would
multiply a multi-minute computation by eight.  A session-scoped cache
therefore memoises the sweep and the per-cell world-sampling summaries —
the first benchmark that needs them pays, the rest reuse.

Environment knobs (all optional):

``REPRO_BENCH_SCALE``   surrogate size multiplier (default 0.5 ≈ 1/100th
                        of the paper's graphs; use 1.0 for the full
                        documented run)
``REPRO_BENCH_WORLDS``  possible worlds per utility cell (default 100,
                        the paper's sample size)
``REPRO_BENCH_BASELINE_SAMPLES``  randomized releases per Table-6
                        baseline (default 50, the paper's count)

Every table is printed to stdout (run pytest with ``-s`` or see the
captured output) and written as CSV under ``benchmarks/results/``, each
row stamped with the process peak RSS (:func:`peak_rss_mb`) so memory
regressions are as visible as wall-clock ones.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_obfuscation_sweep

# peak_rss_mb moved into the library (the span tracer and run manifests
# need it too); re-exported here so every benchmark keeps importing it
# from conftest unchanged.
from repro.obs.memory import peak_rss_mb  # noqa: F401  (re-export)

RESULTS_DIR = Path(__file__).parent / "results"


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


class SweepCache:
    """Lazily computed, memoised obfuscation sweeps keyed by ε subset."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self._sweeps: dict[tuple, list] = {}
        self.summaries: dict = {}  # shared evaluate_utility cache

    def sweep(self, eps_values: tuple[float, ...] | None = None) -> list:
        key = eps_values if eps_values is not None else self.config.eps_values
        if key not in self._sweeps:
            full_key = self.config.eps_values
            if full_key in self._sweeps and set(key) <= set(full_key):
                # slice the already-computed full grid
                self._sweeps[key] = [
                    e for e in self._sweeps[full_key] if e.paper_eps in key
                ]
            else:
                self._sweeps[key] = run_obfuscation_sweep(
                    self.config, eps_values=key
                )
        return self._sweeps[key]


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig(
        scale=_env_float("REPRO_BENCH_SCALE", 0.5),
        worlds=_env_int("REPRO_BENCH_WORLDS", 100),
        baseline_samples=_env_int("REPRO_BENCH_BASELINE_SAMPLES", 50),
        attempts=3,
        delta=1e-3,
        seed=0,
    )


@pytest.fixture(scope="session")
def cache(config) -> SweepCache:
    RESULTS_DIR.mkdir(exist_ok=True)
    return SweepCache(config)


def save_results(rows, csv_name: str) -> None:
    """Persist benchmark rows under ``results/``, stamped with peak RSS.

    Every persisted row gains a ``peak_rss_mb`` column — the process
    peak at save time — so each speedup CSV records the memory
    high-water mark of the run that produced it alongside its
    wall-clock numbers.
    """
    from repro.experiments.report import save_csv

    RESULTS_DIR.mkdir(exist_ok=True)
    rss = round(peak_rss_mb(), 1)
    save_csv([dict(row, peak_rss_mb=rss) for row in rows], RESULTS_DIR / csv_name)


def emit(title: str, text: str, rows, csv_name: str) -> None:
    """Print a rendered table and persist its rows via :func:`save_results`."""
    print()
    print(f"=== {title} ===")
    print(text)
    save_results(rows, csv_name)
