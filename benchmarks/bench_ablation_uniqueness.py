"""Ablation — uniqueness-weighted vs uniform uncertainty placement.

§5.2's design choice: candidate pairs are sampled by vertex uniqueness
and the σ budget is redistributed per Eq. 7, so unique (hard) vertices
receive more uncertainty.  The ablation disables both (uniform pair
sampling, flat σ(e) = σ) and re-runs Algorithm 1 on the same graph and
privacy target.

Expected outcome: the uniform variant needs a *larger* minimal σ — or
fails outright — because it wastes budget on already-anonymous regions;
i.e. the uniqueness machinery is what makes small-σ obfuscation
possible.
"""

from __future__ import annotations

from conftest import emit

from repro.core.search import obfuscate
from repro.experiments.report import render_table


def test_ablation_uniqueness_weighting(benchmark, cache, config):
    graph = config.graph("dblp")
    # the strict-eps cell, where budget placement actually matters — at
    # loose eps both variants bottom out at the sigma search floor
    k = 20
    eps = config.eps_for("dblp", 1e-4)

    def run(weighting: str):
        return obfuscate(
            graph,
            k,
            eps,
            seed=7,
            attempts=config.attempts,
            delta=config.delta,
            q=config.q,
            c=3.0,
            weighting=weighting,
        )

    weighted = benchmark.pedantic(
        lambda: run("uniqueness"), rounds=1, iterations=1, warmup_rounds=0
    )
    uniform = run("uniform")

    rows = [
        {
            "variant": name,
            "success": res.success,
            "sigma": res.sigma if res.success else float("nan"),
            "eps_achieved": res.eps_achieved,
            "probes": len(res.trace),
        }
        for name, res in (("uniqueness (paper)", weighted), ("uniform (ablation)", uniform))
    ]
    emit(
        "Ablation: uniqueness-weighted vs uniform uncertainty placement "
        f"(dblp, k={k})",
        render_table(rows),
        rows,
        "ablation_uniqueness.csv",
    )

    assert weighted.success
    if uniform.success:
        # Uniform placement needs at least as much global noise.
        assert uniform.sigma >= weighted.sigma * (1 - 1e-9)
