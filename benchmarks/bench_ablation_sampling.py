"""Ablation — sampling error vs world count (Lemma 2 / Corollary 1).

The paper samples 100 worlds and reports tight SEMs (Table 5).  This
benchmark measures how the observed estimation error of the clustering
coefficient decays with r ∈ {10, 25, 50, 100} and checks it stays below
the Hoeffding envelope at every r (S_CC ∈ [0, 1] so the bound is usable
directly, as in §6.4).
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments.harness import run_obfuscation_sweep
from repro.experiments.report import render_table
from repro.graphs.triangles import clustering_coefficient
from repro.stats.sampling import estimate_statistic, hoeffding_error_probability


def test_ablation_sampling_error(benchmark, cache, config):
    sweep = cache.sweep(eps_values=(1e-3,))
    entry = next(e for e in sweep if e.dataset == "dblp" and e.result.success)
    uncertain = entry.result.uncertain

    # Reference: a high-precision estimate (many worlds).
    reference = estimate_statistic(
        uncertain, clustering_coefficient, worlds=200, seed=99
    ).mean

    def measure(r: int) -> dict:
        errors = []
        for trial in range(6):
            summary = estimate_statistic(
                uncertain, clustering_coefficient, worlds=r, seed=(13, trial, r)
            )
            errors.append(abs(summary.mean - reference))
        return {
            "worlds": r,
            "mean_abs_error": float(np.mean(errors)),
            "max_abs_error": float(np.max(errors)),
            "hoeffding_bound_eps_at_5pct": float(
                np.sqrt(np.log(2 / 0.05) / (2 * r))
            ),
        }

    first = benchmark.pedantic(
        lambda: measure(10), rounds=1, iterations=1, warmup_rounds=0
    )
    rows = [first] + [measure(r) for r in (25, 50, 100)]
    emit(
        "Ablation: sampling error vs world count (S_CC, dblp k=20)",
        render_table(rows),
        rows,
        "ablation_sampling.csv",
    )

    # Error decays with r (allowing noise: max error at r=100 below
    # max error at r=10).
    assert rows[-1]["max_abs_error"] <= rows[0]["max_abs_error"] + 1e-3

    # Observed deviations stay below the 95% Hoeffding epsilon at each r
    # (the bound holds with margin since S_CC's real range is narrower).
    for row in rows:
        assert row["max_abs_error"] <= row["hoeffding_bound_eps_at_5pct"]
