"""Render every CSV artefact in benchmarks/results/ into one text report.

Run after a benchmark pass::

    python benchmarks/render_report.py

Writes ``benchmarks/results/REPORT.txt`` — the regenerated paper tables
in human-readable form (the pytest run stores the same rows as CSV; this
collates them for side-by-side comparison with the paper's PDF).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.experiments.report import render_table

RESULTS = Path(__file__).parent / "results"

#: Order in which artefacts appear in the report (paper order).
SECTIONS = [
    ("table2_sigma.csv", "Table 2: minimal sigma for (k, eps)-obfuscation"),
    ("table3_throughput.csv", "Table 3: obfuscation throughput (edges/sec)"),
    ("table4_utility.csv", "Table 4: statistic means over sampled worlds"),
    ("table5_sem.csv", "Table 5: relative sample SEM"),
    ("table6_comparison.csv", "Table 6: comparison vs randomization"),
    ("fig2_distance_k20.csv", "Figure 2 (left): S_PDD, dblp k=20 eps=1e-3"),
    ("fig2_distance_k100.csv", "Figure 2 (right): S_PDD, dblp k=100 eps=1e-4"),
    ("fig3_degree_k20.csv", "Figure 3 (left): S_DD, dblp k=20 eps=1e-3"),
    ("fig3_degree_k100.csv", "Figure 3 (right): S_DD, dblp k=100 eps=1e-4"),
    ("fig4_anonymity_dblp.csv", "Figure 4: anonymity curves (dblp)"),
    ("fig4_anonymity_flickr.csv", "Figure 4: anonymity curves (flickr)"),
    ("ablation_uniqueness.csv", "Ablation: uniqueness vs uniform placement"),
    ("ablation_degree_approx.csv", "Ablation: exact DP vs CLT"),
    ("ablation_c_q.csv", "Ablation: c and q sweeps"),
    ("ablation_sampling.csv", "Ablation: sampling error vs world count"),
    ("ablation_belief_measure.csv", "Ablation: entropy vs belief measure"),
    ("ext_degree_trail.csv", "Extension: degree-trail attack"),
]


def _load(path: Path) -> list[dict]:
    with open(path, newline="", encoding="utf-8") as fh:
        return [
            {k: _coerce(v) for k, v in row.items()}
            for row in csv.DictReader(fh)
        ]


def _coerce(value: str):
    if value is None or value == "":
        return ""
    try:
        f = float(value)
    except ValueError:
        return value
    return int(f) if f.is_integer() and abs(f) < 1e9 and "." not in value else f


def main() -> int:
    """Collate all CSVs into REPORT.txt; returns the process exit code."""
    if not RESULTS.exists():
        print(f"no results directory at {RESULTS}; run the benchmarks first")
        return 1
    chunks: list[str] = []
    for name, title in SECTIONS:
        path = RESULTS / name
        if not path.exists():
            continue
        rows = _load(path)
        if not rows:
            continue
        chunks.append(render_table(rows, title=f"=== {title} ==="))
        chunks.append("")
    report = "\n".join(chunks)
    out = RESULTS / "REPORT.txt"
    out.write_text(report, encoding="utf-8")
    print(report)
    print(f"\nwritten to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
