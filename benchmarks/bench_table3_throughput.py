"""Table 3 — obfuscation throughput in candidate pairs ("edges") per second.

Paper reference values (Java on a 2.8 GHz Xeon X5660): roughly 270–2100
edges/sec, with three shape observations this benchmark re-checks:

1. throughput decreases as k grows (more σ probes fail, higher σ means
   more uncertainty to verify);
2. the c = 3 fallback cells are markedly slower (the main loop is over
   c·|E| pairs);
3. Y360 is the fastest dataset (sparsest and easiest to obfuscate).

Absolute numbers are incomparable (different hardware, Python vs Java,
50×-smaller graphs) — shape only.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments.harness import table3_rows
from repro.experiments.report import render_table


def test_table3_throughput(benchmark, cache, config):
    sweep = benchmark.pedantic(
        lambda: cache.sweep(), rounds=1, iterations=1, warmup_rounds=0
    )
    rows = table3_rows(sweep)
    emit(
        "Table 3: obfuscation throughput (edges/sec)",
        render_table(rows),
        rows,
        "table3_throughput.csv",
    )

    assert all(r["edges_per_sec"] > 0 for r in rows)

    # Shape check: y360 (sparsest, least noise needed) is not the slowest
    # dataset on average — the paper found it fastest.
    by_dataset: dict[str, list[float]] = {}
    for r in rows:
        by_dataset.setdefault(r["dataset"], []).append(r["edges_per_sec"])
    if {"y360", "flickr"} <= set(by_dataset):
        assert np.mean(by_dataset["y360"]) >= 0.5 * np.mean(by_dataset["flickr"])
