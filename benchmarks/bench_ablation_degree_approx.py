"""Ablation — exact Lemma-1 DP vs CLT normal approximation (§4).

The paper offers both computation paths for the per-vertex degree
distribution and argues the CLT is accurate from ~30 addends.  This
benchmark quantifies the trade-off on a real obfuscation candidate:

* accuracy: max absolute difference in the posterior-column entropies
  that drive the Definition-2 check;
* speed: wall-clock of the full posterior computation per method.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import emit

from repro.core.generate import generate_obfuscation
from repro.core.obfuscation_check import compute_degree_posterior
from repro.core.types import ObfuscationParams
from repro.experiments.report import render_table


def test_ablation_degree_approximation(benchmark, cache, config):
    graph = config.graph("dblp")
    eps = config.eps_for("dblp", 1e-3)
    params = ObfuscationParams(k=20, eps=eps, attempts=1)
    outcome = generate_obfuscation(graph, 0.05, params, seed=3)
    # even if the (k, eps) check failed, the uncertain graph of the last
    # attempt is what we need; rebuild one unconditionally
    uncertain = outcome.uncertain
    if uncertain is None:
        relaxed = ObfuscationParams(k=1, eps=0.99, attempts=1)
        uncertain = generate_obfuscation(graph, 0.05, relaxed, seed=3).uncertain
    assert uncertain is not None

    degrees = graph.degrees()
    width = int(degrees.max()) + 2

    timings = {}
    posteriors = {}
    for method in ("exact", "normal", "auto"):
        t0 = time.perf_counter()
        if method == "exact":
            posteriors[method] = benchmark.pedantic(
                lambda: compute_degree_posterior(
                    uncertain, method="exact", width=width
                ),
                rounds=1,
                iterations=1,
                warmup_rounds=0,
            )
        else:
            posteriors[method] = compute_degree_posterior(
                uncertain, method=method, width=width
            )
        timings[method] = time.perf_counter() - t0

    distinct = np.unique(degrees)
    entropy = {
        m: np.array([p.column_entropy(int(w)) for w in distinct])
        for m, p in posteriors.items()
    }
    rows = [
        {
            "method": m,
            "seconds": timings[m],
            "max_entropy_gap_vs_exact": float(
                np.abs(entropy[m] - entropy["exact"]).max()
            ),
            "mean_entropy_gap_vs_exact": float(
                np.abs(entropy[m] - entropy["exact"]).mean()
            ),
        }
        for m in ("exact", "normal", "auto")
    ]
    emit(
        "Ablation: exact DP vs CLT approximation for the degree posterior",
        render_table(rows),
        rows,
        "ablation_degree_approx.csv",
    )

    # The paper's claim: the approximation is accurate for social-scale
    # supports — entropy columns shift by well under half a bit.
    assert rows[1]["max_entropy_gap_vs_exact"] < 0.5
    # And 'auto' must be at least as accurate as pure 'normal'.
    assert (
        rows[2]["max_entropy_gap_vs_exact"]
        <= rows[1]["max_entropy_gap_vs_exact"] + 1e-12
    )
