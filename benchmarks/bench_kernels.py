"""Micro-benchmarks of the computational kernels (multi-round timings).

Unlike the table/figure regenerators (one-shot experiments), these use
pytest-benchmark's statistical timing across rounds, giving the numbers
a maintainer would watch for performance regressions:

* Lemma-1 DP for a hub-sized Poisson binomial;
* full posterior matrix of an obfuscated dblp surrogate;
* one HyperANF run;
* one exact all-sources distance histogram;
* possible-world sampling throughput;
* candidate-set construction + perturbation assignment (Algorithm 2 at
  fixed σ).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.anf.hyperanf import hyperanf
from repro.core.degree_distribution import (
    TREE_CROSSOVER_WIDTH,
    poisson_binomial_pmf,
)
from repro.core.generate import generate_obfuscation
from repro.core.obfuscation_check import compute_degree_posterior
from repro.core.posterior_batch import (
    degree_posterior_matrix,
    poisson_binomial_pmf_batch,
    poisson_binomial_pmf_tree,
)
from repro.core.types import ObfuscationParams
from repro.graphs.datasets import dblp_like
from repro.stats.distance import distance_histogram
from repro.uncertain.sampling import WorldSampler


@pytest.fixture(scope="module")
def small_graph():
    return dblp_like(scale=0.25, seed=0)


@pytest.fixture(scope="module")
def small_uncertain(small_graph):
    params = ObfuscationParams(k=1, eps=0.9, attempts=1)
    return generate_obfuscation(small_graph, 0.05, params, seed=0).uncertain


def test_kernel_poisson_binomial_dp(benchmark):
    rng = np.random.default_rng(0)
    probs = rng.random(300)  # hub-sized support
    result = benchmark(poisson_binomial_pmf, probs)
    assert result.sum() == pytest.approx(1.0)


def test_kernel_poisson_binomial_batch(benchmark):
    rng = np.random.default_rng(0)
    probs = rng.random((64, 300))  # a bucket of hub-sized supports
    result = benchmark(poisson_binomial_pmf_batch, probs)
    assert result.sum(axis=1) == pytest.approx(np.ones(64))


def test_kernel_poisson_binomial_tree(benchmark):
    rng = np.random.default_rng(0)
    probs = rng.random((64, 300))  # same workload, tree-product kernel
    result = benchmark(poisson_binomial_pmf_tree, probs)
    assert result.sum(axis=1) == pytest.approx(np.ones(64))


def _median_seconds(func, *args, rounds=5):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        func(*args)
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def test_tree_kernel_floors():
    """The two dispatch floors behind ``kernel="auto"``.

    * at widths past the crossover the tree kernel must actually beat
      the staircase (that is the whole point of dispatching);
    * at small widths ``kernel="auto"`` must not be slower than calling
      the staircase directly — below :data:`TREE_CROSSOVER_WIDTH` the
      dispatch *is* the staircase plus a ``searchsorted``, so a margin
      of 1.5 absorbs timer noise on a shared runner.
    """
    rng = np.random.default_rng(1)

    wide = rng.random((32, 4 * TREE_CROSSOVER_WIDTH))
    t_stair = _median_seconds(poisson_binomial_pmf_batch, wide)
    t_tree = _median_seconds(poisson_binomial_pmf_tree, wide)
    assert t_tree < t_stair, (
        f"tree kernel ({t_tree:.4f}s) must beat the staircase "
        f"({t_stair:.4f}s) at width {wide.shape[1]}"
    )

    counts = rng.integers(1, TREE_CROSSOVER_WIDTH // 2, size=512)
    indptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    data = rng.random(int(counts.sum()))
    t_direct = _median_seconds(
        lambda: degree_posterior_matrix(
            indptr, data, method="exact", kernel="staircase"
        )
    )
    t_auto = _median_seconds(
        lambda: degree_posterior_matrix(indptr, data, method="exact", kernel="auto")
    )
    assert t_auto < 1.5 * t_direct, (
        f"kernel='auto' ({t_auto:.4f}s) may not be slower than the "
        f"staircase ({t_direct:.4f}s) below the crossover"
    )


def test_kernel_posterior_matrix(benchmark, small_graph, small_uncertain):
    width = int(small_graph.degrees().max()) + 2
    post = benchmark(
        compute_degree_posterior, small_uncertain, method="auto", width=width
    )
    assert post.num_vertices == small_graph.num_vertices


def test_kernel_hyperanf(benchmark, small_graph):
    nf = benchmark(hyperanf, small_graph, b=6, seed=0)
    assert nf.converged_at > 0


def test_kernel_exact_distance_histogram(benchmark, small_graph):
    hist = benchmark(distance_histogram, small_graph)
    assert hist.connected_pairs > 0


def test_kernel_world_sampling(benchmark, small_uncertain):
    sampler = WorldSampler(small_uncertain)

    def draw():
        return sampler.sample(seed=0)

    world = benchmark(draw)
    assert world.num_vertices == small_uncertain.num_vertices


def test_kernel_generate_obfuscation(benchmark, small_graph):
    params = ObfuscationParams(k=5, eps=0.3, attempts=1)

    def run():
        return generate_obfuscation(small_graph, 0.05, params, seed=1)

    outcome = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    assert outcome.attempts_made == 1
