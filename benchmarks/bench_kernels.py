"""Micro-benchmarks of the computational kernels (multi-round timings).

Unlike the table/figure regenerators (one-shot experiments), these use
pytest-benchmark's statistical timing across rounds, giving the numbers
a maintainer would watch for performance regressions:

* Lemma-1 DP for a hub-sized Poisson binomial;
* full posterior matrix of an obfuscated dblp surrogate;
* one HyperANF run;
* one exact all-sources distance histogram;
* possible-world sampling throughput;
* candidate-set construction + perturbation assignment (Algorithm 2 at
  fixed σ).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.anf.hyperanf import hyperanf
from repro.core.degree_distribution import poisson_binomial_pmf
from repro.core.generate import generate_obfuscation
from repro.core.obfuscation_check import compute_degree_posterior
from repro.core.posterior_batch import poisson_binomial_pmf_batch
from repro.core.types import ObfuscationParams
from repro.graphs.datasets import dblp_like
from repro.stats.distance import distance_histogram
from repro.uncertain.sampling import WorldSampler


@pytest.fixture(scope="module")
def small_graph():
    return dblp_like(scale=0.25, seed=0)


@pytest.fixture(scope="module")
def small_uncertain(small_graph):
    params = ObfuscationParams(k=1, eps=0.9, attempts=1)
    return generate_obfuscation(small_graph, 0.05, params, seed=0).uncertain


def test_kernel_poisson_binomial_dp(benchmark):
    rng = np.random.default_rng(0)
    probs = rng.random(300)  # hub-sized support
    result = benchmark(poisson_binomial_pmf, probs)
    assert result.sum() == pytest.approx(1.0)


def test_kernel_poisson_binomial_batch(benchmark):
    rng = np.random.default_rng(0)
    probs = rng.random((64, 300))  # a bucket of hub-sized supports
    result = benchmark(poisson_binomial_pmf_batch, probs)
    assert result.sum(axis=1) == pytest.approx(np.ones(64))


def test_kernel_posterior_matrix(benchmark, small_graph, small_uncertain):
    width = int(small_graph.degrees().max()) + 2
    post = benchmark(
        compute_degree_posterior, small_uncertain, method="auto", width=width
    )
    assert post.num_vertices == small_graph.num_vertices


def test_kernel_hyperanf(benchmark, small_graph):
    nf = benchmark(hyperanf, small_graph, b=6, seed=0)
    assert nf.converged_at > 0


def test_kernel_exact_distance_histogram(benchmark, small_graph):
    hist = benchmark(distance_histogram, small_graph)
    assert hist.connected_pairs > 0


def test_kernel_world_sampling(benchmark, small_uncertain):
    sampler = WorldSampler(small_uncertain)

    def draw():
        return sampler.sample(seed=0)

    world = benchmark(draw)
    assert world.num_vertices == small_uncertain.num_vertices


def test_kernel_generate_obfuscation(benchmark, small_graph):
    params = ObfuscationParams(k=5, eps=0.3, attempts=1)

    def run():
        return generate_obfuscation(small_graph, 0.05, params, seed=1)

    outcome = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    assert outcome.attempts_made == 1
