"""YCSB-style open-loop workload generator for the obfuscation service.

Generates a mixed query stream (degree / reliability / k-hop /
distance-distribution / k-NN) with **zipfian pair popularity** — rank-r
pair drawn with probability ∝ 1/r^θ, the YCSB default access skew —
and drives it at a **target QPS on an open-loop schedule**: request i
is *due* at ``t0 + i/qps`` regardless of how fast earlier requests
completed, so per-op latency = completion − due time and includes the
queueing delay of a system that falls behind (the honest number; a
closed loop would hide overload as lower throughput).

Two drivers share the schedule:

* ``library`` — calls :meth:`repro.serve.engine.QueryEngine.execute`
  directly, coalescing every due request into one engine window.  This
  measures the serving kernels without socket cost and is what the CI
  QPS gate runs.
* ``server`` — asyncio clients over TCP against a running
  :class:`~repro.serve.server.ObfuscationServer`, pipelining requests
  on ``--connections`` connections as they come due.

Latency is recorded per op in bounded-bucket percentile histograms
(:class:`repro.obs.Histogram` with exponential buckets), reported as
p50/p99, appended to ``benchmarks/results/serve_workload.csv``, and —
with ``--manifest DIR`` — written into a schema-valid run manifest.

Usage::

    PYTHONPATH=src python benchmarks/workload.py --mode library \
        --qps 2000 --duration 2
    PYTHONPATH=src python benchmarks/workload.py --mode server \
        --host 127.0.0.1 --port 7687 --qps 1000 --duration 2
"""

from __future__ import annotations

import argparse
import asyncio
import csv
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.search import obfuscate  # noqa: E402
from repro.graphs.datasets import dblp_like  # noqa: E402
from repro.obs import exponential_buckets  # noqa: E402
from repro.obs.manifest import build_manifest, write_manifest  # noqa: E402
from repro.obs.metrics import Histogram  # noqa: E402
from repro.serve.engine import QueryEngine  # noqa: E402
from repro.serve.protocol import Query  # noqa: E402
from repro.uncertain.io import read_uncertain_graph  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: default query mix (fractions; normalised at use).
DEFAULT_MIX = {
    "reliability": 0.30,
    "degree": 0.25,
    "khop": 0.15,
    "distance": 0.15,
    "knn": 0.15,
}

#: 1 µs .. ~8.4 s in ×2 steps — covers cache hits to overload tails.
LATENCY_BUCKETS = exponential_buckets(1e-6, 2.0, 24)


@dataclass
class WorkloadConfig:
    """Knobs of one workload run."""

    qps: float = 1000.0
    duration_s: float = 2.0
    mix: dict = field(default_factory=lambda: dict(DEFAULT_MIX))
    zipf_theta: float = 0.99
    popular_pairs: int = 256
    seed: int = 0
    connections: int = 8
    worlds: int | None = None  # None = engine/server default
    query_seed: int | None = None
    warmup: bool = True  # YCSB-style load phase before the timed run

    @property
    def num_requests(self) -> int:
        return max(1, int(self.qps * self.duration_s))


def zipfian_ranks(rng: np.random.Generator, theta: float, count: int, size: int):
    """Draw ``size`` ranks in [0, count) with P(r) ∝ 1/(r+1)^θ."""
    weights = 1.0 / np.arange(1, count + 1, dtype=np.float64) ** theta
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return np.searchsorted(cdf, rng.random(size), side="right")


def build_schedule(config: WorkloadConfig, n: int) -> list[tuple[float, dict]]:
    """The full open-loop request schedule: ``(due_offset_s, request)``.

    Deterministic in ``config.seed``: the popular-pair table, the
    per-request zipfian ranks, and the op mix are all drawn from one
    seeded generator, so two drivers given the same config issue the
    *same* queries at the same due times.
    """
    rng = np.random.default_rng(config.seed)
    count = config.num_requests
    pair_count = min(config.popular_pairs, n * (n - 1) // 2)
    sources = rng.integers(0, n, size=pair_count)
    targets = (sources + 1 + rng.integers(0, n - 1, size=pair_count)) % n
    ranks = zipfian_ranks(rng, config.zipf_theta, pair_count, count)
    ops = list(config.mix)
    probs = np.array([config.mix[op] for op in ops], dtype=np.float64)
    probs /= probs.sum()
    op_draws = rng.choice(len(ops), size=count, p=probs)
    schedule = []
    for i in range(count):
        rank = int(ranks[i])
        s, t = int(sources[rank]), int(targets[rank])
        op = ops[int(op_draws[i])]
        request: dict = {"op": op, "source": s}
        if op in ("reliability", "distance"):
            request["target"] = t
        elif op == "khop":
            request["hops"] = 2
        elif op == "knn":
            request["k"] = 10
        if config.worlds is not None:
            request["worlds"] = config.worlds
        if config.query_seed is not None:
            request["seed"] = config.query_seed
        schedule.append((i / config.qps, request))
    return schedule


@dataclass
class WorkloadResult:
    """Outcome of one driven run."""

    completed: int
    errors: int
    elapsed_s: float
    histograms: dict  # op → Histogram
    samples: list  # (request, result payload) spot-check sample

    @property
    def qps_achieved(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s else 0.0

    def latency_summary(self) -> dict:
        out = {}
        for op, hist in sorted(self.histograms.items()):
            if hist.count:
                out[op] = {
                    "count": hist.count,
                    "p50_ms": hist.percentile(0.50) * 1e3,
                    "p99_ms": hist.percentile(0.99) * 1e3,
                    "max_ms": hist.max * 1e3,
                }
        return out


def _new_histograms() -> dict:
    return {op: Histogram(f"workload.{op}", buckets=LATENCY_BUCKETS)
            for op in DEFAULT_MIX}


def unique_requests(schedule: list) -> list[dict]:
    """Distinct requests of a schedule (the warmup working set)."""
    seen: dict[str, dict] = {}
    for _, request in schedule:
        seen.setdefault(json.dumps(request, sort_keys=True), request)
    return list(seen.values())


def run_library(engine: QueryEngine, config: WorkloadConfig) -> WorkloadResult:
    """Drive the engine directly, coalescing all due requests per pass."""
    schedule = build_schedule(config, engine.uncertain.num_vertices)
    histograms = _new_histograms()
    samples: list = []
    completed = errors = 0
    if config.warmup:
        # Load phase: touch the whole working set once (one coalesced
        # window: one world batch + one BFS per distinct source), so the
        # timed run measures steady-state serving, not first-touch cost.
        engine.execute([Query(**r) for r in unique_requests(schedule)])
    i = 0
    t0 = time.perf_counter()
    while i < len(schedule):
        now = time.perf_counter() - t0
        due_end = i
        while due_end < len(schedule) and schedule[due_end][0] <= now:
            due_end += 1
        if due_end == i:
            time.sleep(min(schedule[i][0] - now, 0.001))
            continue
        window = schedule[i:due_end]
        queries = [Query(**req) for _, req in window]
        payloads = engine.execute(queries)
        done = time.perf_counter() - t0
        for (due, request), payload in zip(window, payloads):
            op = request["op"]
            histograms[op].observe(max(done - due, 0.0))
            if "error" in payload:
                errors += 1
            else:
                completed += 1
                if len(samples) < 64 and completed % 97 == 1:
                    samples.append((request, payload["result"]))
        i = due_end
    elapsed = time.perf_counter() - t0
    return WorkloadResult(completed, errors, elapsed, histograms, samples)


async def _run_server_async(
    host: str, port: int, config: WorkloadConfig, schedule: list
) -> WorkloadResult:
    histograms = _new_histograms()
    samples: list = []
    completed = errors = 0
    connections = [
        await asyncio.open_connection(host, port)
        for _ in range(config.connections)
    ]
    loop = asyncio.get_running_loop()
    if config.warmup:
        # Load phase through the socket: pipeline the working set on one
        # connection and wait for every response before starting the clock.
        reader0, writer0 = connections[0]
        warm = unique_requests(schedule)
        for j, request in enumerate(warm):
            writer0.write(
                (json.dumps({"id": -1 - j, **request}) + "\n").encode()
            )
        await writer0.drain()
        for _ in warm:
            await asyncio.wait_for(reader0.readline(), 120.0)
    t0 = loop.time()
    in_flight: dict[int, tuple[float, dict]] = {}

    # hard stop: a stuck server must not hang the generator forever.
    deadline = t0 + config.duration_s + 30.0

    async def reader_task(reader: asyncio.StreamReader):
        nonlocal completed, errors
        while loop.time() < deadline:
            if senders_done.is_set() and not in_flight:
                break
            try:
                line = await asyncio.wait_for(reader.readline(), 0.25)
            except asyncio.TimeoutError:
                continue
            if not line:
                break
            obj = json.loads(line)
            meta = in_flight.pop(obj["id"], None)
            if meta is None:
                continue
            due, request = meta
            histograms[request["op"]].observe(max(loop.time() - t0 - due, 0.0))
            if obj.get("ok"):
                completed += 1
                if len(samples) < 64 and completed % 97 == 1:
                    samples.append((request, obj["result"]))
            else:
                errors += 1

    senders_done = asyncio.Event()
    readers = [asyncio.create_task(reader_task(r)) for r, _ in connections]

    async def send_all():
        for i, (due, request) in enumerate(schedule):
            delay = due - (loop.time() - t0)
            if delay > 0:
                await asyncio.sleep(delay)
            _, writer = connections[i % len(connections)]
            in_flight[i] = (due, request)
            writer.write(
                (json.dumps({"id": i, **request}) + "\n").encode()
            )
        for _, writer in connections:
            await writer.drain()
        senders_done.set()

    await send_all()
    await asyncio.gather(*readers)
    elapsed = loop.time() - t0
    for _, writer in connections:
        writer.close()
    return WorkloadResult(completed, errors, elapsed, histograms, samples)


def run_server(
    host: str, port: int, config: WorkloadConfig, n: int
) -> WorkloadResult:
    """Drive a running server over TCP at the configured open-loop QPS."""
    schedule = build_schedule(config, n)
    return asyncio.run(_run_server_async(host, port, config, schedule))


def append_csv(
    path: Path,
    mode: str,
    config: WorkloadConfig,
    result: WorkloadResult,
    cache_stats: dict | None = None,
) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fresh = not path.exists()
    # Answer-cache telemetry (library mode only — the server driver has
    # no engine handle): measured hit rate plus the TinyLFU admission
    # split over the whole run, repeated on each op row.
    stats = cache_stats or {}
    hit_rate = stats.get("answer_hit_rate")
    with path.open("a", newline="") as fh:
        writer = csv.writer(fh)
        if fresh:
            writer.writerow(
                [
                    "mode", "op", "target_qps", "achieved_qps", "count",
                    "p50_ms", "p99_ms", "max_ms",
                    "answer_hit_rate", "answer_admitted", "answer_rejected",
                ]
            )
        for op, row in result.latency_summary().items():
            writer.writerow(
                [
                    mode, op, f"{config.qps:g}",
                    f"{result.qps_achieved:.1f}", row["count"],
                    f"{row['p50_ms']:.4f}", f"{row['p99_ms']:.4f}",
                    f"{row['max_ms']:.4f}",
                    "" if hit_rate is None else f"{hit_rate:.4f}",
                    stats.get("answer_admitted", ""),
                    stats.get("answer_rejected", ""),
                ]
            )


def surrogate_release(scale: float = 1.0, *, seed: int = 0):
    """The surrogate-dblp release the smoke/QPS runs serve."""
    graph = dblp_like(scale=scale, seed=seed)
    result = obfuscate(
        graph, k=5, eps=0.3, seed=seed, attempts=2, delta=0.1
    )
    if not result.success:  # pragma: no cover - surrogate always obfuscates
        raise RuntimeError("surrogate obfuscation failed")
    return result.uncertain


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("library", "server"), default="library")
    parser.add_argument("--release", help="uncertain-graph file (default: surrogate dblp)")
    parser.add_argument("--scale", type=float, default=1.0, help="surrogate scale")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7687)
    parser.add_argument("--qps", type=float, default=1000.0)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--theta", type=float, default=0.99, help="zipf skew")
    parser.add_argument("--pairs", type=int, default=256, help="popular pairs")
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--worlds", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--csv", default=str(RESULTS_DIR / "serve_workload.csv"))
    parser.add_argument("--manifest", help="write DIR/manifest.json with latency histograms")
    args = parser.parse_args(argv)

    config = WorkloadConfig(
        qps=args.qps,
        duration_s=args.duration,
        zipf_theta=args.theta,
        popular_pairs=args.pairs,
        seed=args.seed,
        connections=args.connections,
    )

    if args.mode == "library":
        if args.release:
            release = read_uncertain_graph(args.release)
        else:
            release = surrogate_release(args.scale, seed=args.seed)
        engine = QueryEngine(release, worlds=args.worlds, seed=args.seed)
        print(
            f"library driver: n={release.num_vertices} worlds={args.worlds} "
            f"target={config.qps:g} qps for {config.duration_s:g}s"
        )
        result = run_library(engine, config)
        cache_stats = engine.cache_stats()
    else:
        cache_stats = None
        if args.release:
            n = read_uncertain_graph(args.release).num_vertices
        else:
            n = dblp_like(scale=args.scale, seed=args.seed).num_vertices
        print(
            f"server driver: {args.host}:{args.port} n={n} "
            f"target={config.qps:g} qps for {config.duration_s:g}s"
        )
        result = run_server(args.host, args.port, config, n)

    summary = result.latency_summary()
    print(
        f"completed={result.completed} errors={result.errors} "
        f"achieved={result.qps_achieved:.0f} qps"
    )
    for op, row in summary.items():
        print(
            f"  {op:<12} n={row['count']:<6} p50={row['p50_ms']:.3f}ms "
            f"p99={row['p99_ms']:.3f}ms max={row['max_ms']:.3f}ms"
        )
    if cache_stats is not None:
        print(
            f"answer cache: hit_rate={cache_stats['answer_hit_rate']:.2%} "
            f"admitted={cache_stats['answer_admitted']} "
            f"rejected={cache_stats['answer_rejected']}"
        )
    append_csv(Path(args.csv), args.mode, config, result, cache_stats)
    print(f"appended {args.csv}")

    if args.manifest:
        manifest = build_manifest(
            "benchmarks/workload.py",
            config=vars(args),
            seed=args.seed,
            argv=list(argv) if argv is not None else sys.argv[1:],
            results={
                "mode": args.mode,
                "completed": result.completed,
                "errors": result.errors,
                "achieved_qps": result.qps_achieved,
                "latency": summary,
                "cache": cache_stats,
            },
        )
        out = Path(args.manifest)
        write_manifest(out / "manifest.json", manifest)
        print(f"manifest written to {out}/manifest.json")
    return 0 if result.errors == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
