"""Extension — degree-trail attack risk across sequential releases (§8).

The paper's conclusions pose the applicability of Medforth & Wang's
degree-trail attack to probabilistic releases as an open question.
This benchmark quantifies it on the dblp surrogate: an evolving network
published three times, attacked through the degree trails of

1. plain (unprotected) releases,
2. the expected degrees of (k, ε)-obfuscated uncertain releases,
3. a sampled world of each uncertain release.

Expected outcome: the uncertain releases strictly reduce the
re-identification rate relative to plain publication, and stronger k
reduces it further — uncertainty helps, but (as the paper anticipates)
does not nullify the attack.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.attacks.degree_trail import (
    degree_trails,
    expected_degree_trails,
    reidentification_rate,
    trail_uniqueness_rate,
)
from repro.core.search import obfuscate_with_fallback
from repro.experiments.report import render_table
from repro.uncertain.sampling import sample_world

SNAPSHOTS = 3


def _evolve(graph, steps: int, rng) -> list:
    out = []
    g = graph
    for _ in range(steps):
        g = g.copy()
        added = 0
        n = g.num_vertices
        while added < max(1, int(0.04 * g.num_edges)):
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u != v and not g.has_edge(u, v):
                g.add_edge(u, v)
                added += 1
        out.append(g)
    return out


def test_ext_degree_trail(benchmark, cache, config):
    base = config.graph("dblp")
    rng = np.random.default_rng(config.seed)
    snapshots = _evolve(base, SNAPSHOTS, rng)
    original_trails = degree_trails(snapshots)
    plain_rate = reidentification_rate(original_trails, original_trails)

    def attack_at(k: int) -> dict:
        releases = []
        for i, snap in enumerate(snapshots):
            eps = config.eps_for("dblp", 1e-3)
            result = obfuscate_with_fallback(
                snap, k, eps,
                c_values=config.c_chain,
                seed=(config.seed, k, i),
                attempts=2,
                delta=5e-3,
            )
            assert result.success
            releases.append(result.uncertain)
        expected = expected_degree_trails(releases)
        sampled = np.stack(
            [sample_world(r, seed=(config.seed, 5, i)).degrees()
             for i, r in enumerate(releases)],
            axis=1,
        ).astype(float)
        return {
            "k": k,
            "reid_expected_degrees": reidentification_rate(
                original_trails, expected, tol=0.5
            ),
            "reid_sampled_world": reidentification_rate(
                original_trails, sampled, tol=0.5
            ),
        }

    first = benchmark.pedantic(
        lambda: attack_at(20), rounds=1, iterations=1, warmup_rounds=0
    )
    rows = [
        {
            "k": "plain release",
            "reid_expected_degrees": plain_rate,
            "reid_sampled_world": plain_rate,
        },
        first,
        attack_at(60),
    ]
    emit(
        "Extension: degree-trail re-identification across "
        f"{SNAPSHOTS} sequential releases (dblp)",
        render_table(rows),
        rows,
        "ext_degree_trail.csv",
    )
    print(f"(unique original trails: {trail_uniqueness_rate(original_trails):.1%})")

    # Uncertainty must not make the attack easier, via either attack path.
    for row in rows[1:]:
        assert row["reid_expected_degrees"] <= plain_rate + 1e-9
        assert row["reid_sampled_world"] <= plain_rate + 1e-9
    # And the stronger obfuscation (k=60) leaks no more than k=20.
    assert rows[2]["reid_sampled_world"] <= rows[1]["reid_sampled_world"] + 0.01
