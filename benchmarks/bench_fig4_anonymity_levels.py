"""Figure 4 — cumulative anonymity-level curves (dblp and flickr).

The paper plots, for every obfuscation level k, the number of vertices
with level ≤ k, comparing: the original graph, uncertain-graph
obfuscations, random perturbation, and sparsification at the p values
used in §7.3 (dblp: pert. p = 0.04, spars. p = 0.64; flickr: pert.
p = 0.32, spars. p = 0.64).

Reproduction targets:

* every protection method shifts the curve below the original
  (fewer low-anonymity vertices at every k);
* the obfuscation curves start near zero — up to the ε-tolerated
  vertices, nobody sits below the target k.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments.figures import figure4_data
from repro.experiments.report import render_curves

PAPER_BASELINES = {
    "dblp": [("perturbation", 0.04), ("sparsification", 0.64)],
    "flickr": [("perturbation", 0.32), ("sparsification", 0.64)],
}


def test_fig4_anonymity_levels(benchmark, cache, config):
    sweep = cache.sweep()

    def build():
        out = {}
        for dataset, baselines in PAPER_BASELINES.items():
            if dataset in config.datasets:
                out[dataset] = figure4_data(
                    sweep, config, dataset, baselines=baselines, k_max=80
                )
        return out

    curves_by_dataset = benchmark.pedantic(
        build, rounds=1, iterations=1, warmup_rounds=0
    )

    for dataset, curves in curves_by_dataset.items():
        rows = []
        k_grid = curves["k"]
        for label, values in curves.items():
            if label == "k":
                continue
            row = {"method": label}
            for k in (1, 5, 10, 20, 40, 60, 80):
                row[f"k<={k}"] = float(values[min(k - 1, len(k_grid) - 1)])
            rows.append(row)
        emit(
            f"Figure 4: cumulative anonymity levels ({dataset})",
            render_curves(curves),
            rows,
            f"fig4_anonymity_{dataset}.csv",
        )

        original = curves["original"]
        n = config.graph(dataset).num_vertices
        for label, values in curves.items():
            if label in ("k", "original"):
                continue
            # Every method's curve sits at or below the original's
            # low-anonymity counts for small k (protection, not harm).
            small_k = slice(0, 10)
            assert (
                values[small_k] <= original[small_k] + 0.01 * n
            ).all(), (dataset, label)

        # Obfuscation curves respect their ε budget: at k slightly below
        # the target, at most ~ε·n vertices remain under-protected.
        for entry in sweep:
            if entry.dataset != dataset or not entry.result.success:
                continue
            label = f"obf. k={entry.k}, eps={entry.paper_eps:g}"
            if label not in curves or entry.k > 80:
                continue
            under = curves[label][entry.k - 2]  # grid index of k-1
            assert under <= entry.eps_used * n * 1.5 + 1, (label, under)
