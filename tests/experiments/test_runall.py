"""Smoke test for the standalone experiment driver."""

from repro.experiments.runall import main


class TestRunAll:
    def test_quick_run_emits_everything(self, tmp_path, capsys):
        code = main(
            [
                "--scale", "0.15",
                "--worlds", "5",
                "--baseline-samples", "4",
                "--datasets", "dblp",
                "--k", "5",
                "--eps", "0.001",
                "--out", str(tmp_path),
                "--skip-figures",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for marker in ("Table 2", "Table 3", "Table 4", "Table 5", "Table 6"):
            assert marker in out
        for csv_name in ("table2.csv", "table4.csv", "table6.csv"):
            assert (tmp_path / csv_name).exists()

    def test_figures_emitted(self, tmp_path, capsys):
        code = main(
            [
                "--scale", "0.15",
                "--worlds", "4",
                "--baseline-samples", "3",
                "--datasets", "dblp",
                "--k", "5",
                "--eps", "0.001",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "distance" in out   # figure 2 table
        assert (tmp_path / "fig4_dblp.csv").exists()
