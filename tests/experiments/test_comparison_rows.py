"""Row-builder coverage for the Table-6 machinery."""

import pytest

from repro.experiments.comparison import (
    baseline_utility_row,
    obfuscation_utility_row,
    original_row,
)
from repro.experiments.config import quick_config
from repro.experiments.harness import run_obfuscation_sweep
from repro.stats.registry import PAPER_STATISTIC_NAMES


@pytest.fixture(scope="module")
def config():
    return quick_config(worlds=6, baseline_samples=4, k_values=(5,))


@pytest.fixture(scope="module")
def graph(config):
    return config.graph("dblp")


class TestOriginalRow:
    def test_zero_error_and_full_columns(self, graph, config):
        row = original_row(graph, config)
        assert row["variant"] == "original"
        assert row["rel_err"] == 0.0
        for name in PAPER_STATISTIC_NAMES:
            assert name in row

    def test_ne_matches_graph(self, graph, config):
        row = original_row(graph, config)
        assert row["S_NE"] == graph.num_edges


class TestBaselineRow:
    def test_label_override(self, graph, config):
        row = baseline_utility_row(
            graph, "perturbation", 0.1, config, label="custom-label"
        )
        assert row["variant"] == "custom-label"

    def test_unknown_scheme_rejected(self, graph, config):
        with pytest.raises(ValueError, match="unknown scheme"):
            baseline_utility_row(graph, "swap", 0.1, config)

    def test_zero_p_zero_error(self, graph, config):
        row = baseline_utility_row(graph, "sparsification", 0.0, config)
        assert row["rel_err"] == pytest.approx(0.0, abs=1e-12)


class TestObfuscationRow:
    def test_row_from_sweep_cell(self, config):
        sweep = run_obfuscation_sweep(config)
        entry = sweep[0]
        row = obfuscation_utility_row(entry, config, label="ours")
        assert row["variant"] == "ours"
        assert 0.0 <= row["rel_err"] < 1.0
        assert row["S_NE"] > 0
