"""Tests for experiment configuration and the ε rescaling."""

import pytest

from repro.experiments.config import (
    PAPER_EPS_VALUES,
    PAPER_K_VALUES,
    ExperimentConfig,
    quick_config,
    scaled_eps,
)


class TestScaledEps:
    def test_preserves_vertex_budget(self):
        """ε_scaled · n_actual == ε_paper · n_paper."""
        eps = scaled_eps(1e-3, "dblp", 4500)
        assert eps * 4500 == pytest.approx(1e-3 * 226_413)

    def test_capped_at_half(self):
        assert scaled_eps(0.5, "dblp", 10) == 0.5

    def test_identity_at_paper_scale(self):
        assert scaled_eps(1e-3, "dblp", 226_413) == pytest.approx(1e-3)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            scaled_eps(1e-3, "enron", 100)


class TestExperimentConfig:
    def test_paper_grid_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.k_values == PAPER_K_VALUES == (20, 60, 100)
        assert cfg.eps_values == PAPER_EPS_VALUES == (1e-3, 1e-4)
        assert cfg.q == 0.01
        assert cfg.c == 2.0
        assert cfg.worlds == 100
        assert cfg.baseline_samples == 50

    def test_graph_memoised(self):
        cfg = quick_config()
        assert cfg.graph("dblp") is cfg.graph("dblp")

    def test_eps_for_uses_actual_size(self):
        cfg = quick_config(scale=0.1)
        n = cfg.graph("dblp").num_vertices
        assert cfg.eps_for("dblp", 1e-3) == scaled_eps(1e-3, "dblp", n)

    def test_quick_config_overrides(self):
        cfg = quick_config(worlds=7)
        assert cfg.worlds == 7
        assert cfg.scale == 0.2
