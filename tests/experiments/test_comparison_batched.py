"""Batched-vs-sequential equivalence for the Table-6 comparison layer.

Pins the PR contract: ``baseline_utility_row``, ``achieved_k`` and
``calibrate_randomization`` produce the same values (≤1e-9; sampling-
level quantities exactly) on both backends from the same seed — and the
per-scheme RNG stream no longer depends on ``PYTHONHASHSEED``, so two
interpreter processes agree row-for-row.
"""

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.comparison import (
    achieved_k,
    baseline_utility_row,
    calibrate_randomization,
    scheme_stream,
)
from repro.experiments.config import quick_config
from repro.graphs.generators import erdos_renyi
from repro.stats.registry import PAPER_STATISTIC_NAMES
from repro.worlds.releases import RELEASE_SCHEMES


@pytest.fixture(scope="module")
def config():
    # exact distances keep the per-release evaluation fast and noise-free
    return quick_config(baseline_samples=6, distance_backend="exact")


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(90, 0.08, seed=5)


class TestBaselineRowEquivalence:
    @pytest.mark.parametrize("scheme", RELEASE_SCHEMES)
    @pytest.mark.parametrize("p", [0.05, 0.4, 0.9])
    def test_rows_match(self, graph, config, scheme, p):
        batched = baseline_utility_row(graph, scheme, p, config)
        sequential = baseline_utility_row(
            graph, scheme, p, replace(config, baseline_backend="sequential")
        )
        assert batched["variant"] == sequential["variant"]
        for name in (*PAPER_STATISTIC_NAMES, "rel_err"):
            np.testing.assert_allclose(
                batched[name], sequential[name], atol=1e-9, rtol=0, err_msg=name
            )

    def test_shared_original_matches_recomputed(self, graph, config):
        from repro.stats.registry import paper_statistics

        stats = paper_statistics(
            distance_backend=config.distance_backend, seed=config.seed
        )
        original = {name: float(func(graph)) for name, func in stats.items()}
        a = baseline_utility_row(graph, "sparsification", 0.3, config)
        b = baseline_utility_row(
            graph, "sparsification", 0.3, config, original=original
        )
        assert a == b

    def test_bad_backend_rejected(self, graph, config):
        bad = replace(config, baseline_backend="bogus")
        with pytest.raises(ValueError):
            baseline_utility_row(graph, "sparsification", 0.3, bad)


class TestAchievedKEquivalence:
    @pytest.mark.parametrize("scheme", RELEASE_SCHEMES)
    @pytest.mark.parametrize("eps", [0.0, 0.05, 0.5])
    def test_values_identical(self, graph, scheme, eps):
        batched = achieved_k(
            graph, scheme, 0.4, eps, releases=3, seed=7, backend="batched"
        )
        sequential = achieved_k(
            graph, scheme, 0.4, eps, releases=3, seed=7, backend="sequential"
        )
        assert batched == sequential

    @pytest.mark.parametrize("scheme", RELEASE_SCHEMES)
    def test_skip_clamp_when_eps_n_exceeds_n(self, graph, scheme):
        """ε·n ≥ n clamps the skip index to the last (most anonymous) vertex."""
        batched = achieved_k(
            graph, scheme, 0.3, 1.5, releases=2, seed=1, backend="batched"
        )
        sequential = achieved_k(
            graph, scheme, 0.3, 1.5, releases=2, seed=1, backend="sequential"
        )
        assert batched == sequential
        # the clamped value is the maximum anonymity level, so it cannot
        # be below the eps=0 (least-anonymous) value
        assert batched >= achieved_k(
            graph, scheme, 0.3, 0.0, releases=2, seed=1, backend="batched"
        )

    def test_bad_backend_rejected(self, graph):
        with pytest.raises(ValueError):
            achieved_k(graph, "sparsification", 0.3, 0.0, backend="bogus")


class TestCalibrationEquivalence:
    @pytest.mark.parametrize("scheme", RELEASE_SCHEMES)
    def test_calibrated_p_identical(self, graph, scheme):
        kwargs = dict(p_grid=(0.02, 0.08, 0.32, 0.9), releases=2, seed=3)
        batched = calibrate_randomization(
            graph, scheme, 4, 0.05, backend="batched", **kwargs
        )
        sequential = calibrate_randomization(
            graph, scheme, 4, 0.05, backend="sequential", **kwargs
        )
        assert (np.isnan(batched) and np.isnan(sequential)) or (
            batched == sequential
        )

    @pytest.mark.parametrize("backend", ["batched", "sequential"])
    def test_unreachable_target_is_nan(self, graph, backend):
        p = calibrate_randomization(
            graph,
            "sparsification",
            10**9,
            0.0,
            p_grid=(0.1,),
            releases=1,
            seed=0,
            backend=backend,
        )
        assert np.isnan(p)


_SUBPROCESS_SCRIPT = """
import json, sys
from repro.experiments.comparison import baseline_utility_row
from repro.experiments.config import quick_config
from repro.graphs.generators import erdos_renyi

config = quick_config(baseline_samples=4, distance_backend="exact")
graph = erdos_renyi(60, 0.1, seed=2)
rows = [
    baseline_utility_row(graph, scheme, 0.3, config)
    for scheme in ("sparsification", "perturbation")
]
print(json.dumps(rows, sort_keys=True))
"""


class TestCrossProcessReproducibility:
    def test_scheme_stream_is_hashseed_free(self):
        """The per-scheme stream constant must not come from ``hash()``."""
        a = scheme_stream(0, "sparsification").random(4)
        b = scheme_stream(0, "sparsification").random(4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, scheme_stream(0, "perturbation").random(4))

    def test_rows_identical_across_interpreters(self):
        """Regression: hash(scheme) seeded the baseline stream, so rows
        changed with PYTHONHASHSEED.  Two subprocesses forced to different
        hash seeds must now emit byte-identical Table-6 baseline rows."""
        src_dir = Path(__file__).resolve().parents[2] / "src"
        outputs = []
        for hash_seed in ("1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
            result = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(result.stdout.strip())
        assert outputs[0] == outputs[1]
        rows = json.loads(outputs[0])
        assert len(rows) == 2 and all("rel_err" in r for r in rows)
