"""Checkpoint/resume: per-cell records, bit-identical restores, and the
interrupted-then-resumed subprocess pin for ``run_paper_scale.py``.

The contract under test (ISSUE 10): every completed grid cell is
persisted atomically the moment it finishes; ``--resume`` skips the
recorded cells and the final tables are **byte-identical** to an
uninterrupted run — restores are exact, not approximate, because every
cell's seed substream is a pure function of its grid index.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.config import quick_config
from repro.experiments.harness import (
    run_obfuscation_sweep,
    table2_rows,
    table4_rows,
)
from repro.experiments.report import save_csv
from repro.resilience import CheckpointStore

REPO = Path(__file__).resolve().parents[2]

FP = {"command": "test-sweep", "seed": 0}


@pytest.fixture(scope="module")
def config():
    return quick_config(scale=0.15, worlds=5, k_values=(5, 10))


class TestSweepCheckpoint:
    def test_resumed_sweep_is_bit_identical(self, config, tmp_path):
        golden = run_obfuscation_sweep(config)

        store = CheckpointStore(tmp_path / "ckpt")
        store.begin(FP, resume=False)
        first = run_obfuscation_sweep(config, checkpoint=store)
        assert len(store) == len(first)  # every cell recorded

        resumed_store = CheckpointStore(tmp_path / "ckpt")
        resumed_store.begin(FP, resume=True)
        resumed = run_obfuscation_sweep(config, checkpoint=resumed_store)

        for a, b, c in zip(golden, first, resumed):
            assert a.result.sigma == b.result.sigma == c.result.sigma
            assert (
                a.result.eps_achieved
                == b.result.eps_achieved
                == c.result.eps_achieved
            )
            assert (
                a.result.uncertain.pair_arrays()[2].tobytes()
                == c.result.uncertain.pair_arrays()[2].tobytes()
            )

        # The rendered artefact is byte-identical too.
        save_csv(table2_rows(golden), tmp_path / "golden.csv")
        save_csv(table2_rows(resumed), tmp_path / "resumed.csv")
        assert (tmp_path / "golden.csv").read_bytes() == (
            tmp_path / "resumed.csv"
        ).read_bytes()

    def test_partial_checkpoint_computes_only_missing_cells(self, config, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.begin(FP, resume=False)
        # Record only the k=5 cells by sweeping a reduced grid first.
        small = quick_config(scale=0.15, worlds=5, k_values=(5,))
        run_obfuscation_sweep(small, checkpoint=store)
        recorded = len(store)
        assert recorded == len(small.k_values) * len(small.eps_values)

        # The full grid restores those cells and computes the rest.
        resumed_store = CheckpointStore(tmp_path / "ckpt")
        resumed_store.begin(FP, resume=True)
        full = run_obfuscation_sweep(config, checkpoint=resumed_store)
        assert len(resumed_store) == len(full)

        golden = run_obfuscation_sweep(config)
        for a, b in zip(golden, full):
            assert a.result.sigma == b.result.sigma

    def test_utility_cells_checkpointed(self, config, tmp_path):
        sweep = run_obfuscation_sweep(config)
        store = CheckpointStore(tmp_path / "util")
        store.begin(FP, resume=False)
        rows_first = table4_rows(sweep, config, cache={}, checkpoint=store)
        assert len(store) > 0  # utility cells recorded

        resumed_store = CheckpointStore(tmp_path / "util")
        resumed_store.begin(FP, resume=True)
        rows_resumed = table4_rows(
            sweep, config, cache={}, checkpoint=resumed_store
        )
        assert rows_first == rows_resumed


class TestInterruptedSubprocess:
    """SIGINT mid-grid, then ``--resume``: results CSV byte-identical."""

    def _run(self, tmp_path, *extra, check=True):
        cmd = [
            sys.executable,
            str(REPO / "benchmarks" / "run_paper_scale.py"),
            "--smoke",
            "--scale", "0.03",
            "--worlds", "4",
            "--k", "5", "10",
            "--cache-dir", str(tmp_path / "cache"),
            *extra,
        ]
        env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
        proc = subprocess.run(
            cmd, env=env, capture_output=True, text=True, timeout=600
        )
        if check:
            assert proc.returncode == 0, proc.stderr
        return proc

    def test_sigint_then_resume_byte_identical(self, tmp_path):
        golden_out = tmp_path / "golden" / "run.csv"
        self._run(tmp_path, "--out", str(golden_out))
        golden_results = (
            golden_out.parent / "run_results.csv"
        ).read_bytes()

        ckpt = tmp_path / "ckpt"
        out = tmp_path / "resumed" / "run.csv"
        cmd = [
            sys.executable,
            str(REPO / "benchmarks" / "run_paper_scale.py"),
            "--smoke",
            "--scale", "0.03",
            "--worlds", "4",
            "--k", "5", "10",
            "--cache-dir", str(tmp_path / "cache"),
            "--checkpoint", str(ckpt),
            "--out", str(out),
        ]
        env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
        proc = subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        # Interrupt as soon as the first sweep cell is checkpointed.
        ledger = ckpt / "cells.jsonl"
        deadline = time.monotonic() + 300
        interrupted = False
        while proc.poll() is None and time.monotonic() < deadline:
            if ledger.exists() and '"sweep:' in ledger.read_text():
                proc.send_signal(signal.SIGINT)
                interrupted = True
                break
            time.sleep(0.05)
        stdout, stderr = proc.communicate(timeout=120)
        if interrupted and proc.returncode != 0:
            assert proc.returncode == 130, (stdout, stderr)
            assert "--resume" in stderr  # the hint
            # The grid is only partly recorded; resume completes it.
            resumed = self._run(
                tmp_path,
                "--checkpoint", str(ckpt),
                "--resume",
                "--out", str(out),
            )
            assert "resuming" in resumed.stdout
        # Either path ends with the full deterministic receipt on disk.
        assert (
            out.parent / "run_results.csv"
        ).read_bytes() == golden_results
