"""Tests for text/CSV rendering."""

import csv

import numpy as np

from repro.experiments.figures import BoxplotSeries
from repro.experiments.report import (
    render_boxplot_series,
    render_curves,
    render_table,
    save_csv,
)


class TestRenderTable:
    def test_basic_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = render_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header, rule, 2 rows

    def test_title(self):
        text = render_table([{"a": 1}], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_empty(self):
        assert "(no rows)" in render_table([])

    def test_missing_keys_blank(self):
        text = render_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "a" in text and "b" in text

    def test_float_formatting(self):
        text = render_table([{"x": 5.9605e-08, "y": 0.0478, "z": float("nan")}])
        assert "5.96e-08" in text.replace("5.961e-08", "5.96e-08") or "e-08" in text
        assert "nan" in text

    def test_bool_rendering(self):
        text = render_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text


class TestRenderSeries:
    def test_boxplot_series(self):
        series = BoxplotSeries(
            bins=np.arange(3),
            original=np.array([0.1, 0.2, 0.3]),
            minimum=np.zeros(3),
            q1=np.full(3, 0.05),
            median=np.full(3, 0.1),
            q3=np.full(3, 0.2),
            maximum=np.full(3, 0.4),
        )
        text = render_boxplot_series(series, label="distance")
        assert "distance" in text
        assert "median" in text

    def test_render_curves(self):
        curves = {
            "k": np.arange(1, 21, dtype=float),
            "original": np.arange(20, dtype=float),
        }
        text = render_curves(curves, k_points=(1, 10, 20))
        assert "original" in text
        assert "k<=10" in text


class TestSaveCsv:
    def test_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5, "c": "x"}]
        path = tmp_path / "out.csv"
        save_csv(rows, path)
        with open(path) as fh:
            back = list(csv.DictReader(fh))
        assert back[0]["a"] == "1"
        assert back[1]["c"] == "x"

    def test_empty_rows(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_csv([], path)
        assert path.read_text() == ""
