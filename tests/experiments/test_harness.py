"""Tests for the sweep harness and table builders (shared small sweep)."""

import math

import numpy as np
import pytest

from repro.core.obfuscation_check import is_k_eps_obfuscation
from repro.experiments.config import quick_config
from repro.experiments.harness import (
    evaluate_utility,
    run_obfuscation_sweep,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)
from repro.stats.registry import PAPER_STATISTIC_NAMES


@pytest.fixture(scope="module")
def config():
    return quick_config(worlds=10, distance_backend="anf")


@pytest.fixture(scope="module")
def sweep(config):
    return run_obfuscation_sweep(config)


class TestSweep:
    def test_cell_count(self, sweep, config):
        assert len(sweep) == len(config.k_values) * len(config.eps_values)

    def test_all_cells_succeed(self, sweep):
        assert all(e.result.success for e in sweep)

    def test_outputs_verify_independently(self, sweep):
        for e in sweep:
            assert is_k_eps_obfuscation(
                e.result.uncertain, e.graph, e.k, e.eps_used
            )

    def test_eps_subset_override(self, config):
        partial = run_obfuscation_sweep(config, eps_values=(1e-3,))
        assert len(partial) == len(config.k_values)


class TestTable2:
    def test_row_fields(self, sweep):
        rows = table2_rows(sweep)
        assert {"dataset", "k", "eps", "sigma", "c", "success"} <= set(rows[0])

    def test_sigma_monotone_in_k(self, sweep):
        """Paper's Table-2 trend: larger k needs at least as much σ."""
        rows = table2_rows(sweep)
        by_k = {r["k"]: r["sigma"] for r in rows}
        ks = sorted(by_k)
        assert by_k[ks[0]] <= by_k[ks[-1]] * (1 + 1e-9) or math.isclose(
            by_k[ks[0]], by_k[ks[-1]]
        )


class TestTable3:
    def test_throughput_positive(self, sweep):
        for row in table3_rows(sweep):
            assert row["edges_per_sec"] > 0
            assert row["elapsed_sec"] > 0


class TestTable4:
    def test_structure(self, sweep, config):
        rows = table4_rows(sweep, config)
        variants = [r["variant"] for r in rows]
        assert variants[0] == "real"
        assert all(v.startswith("k=") for v in variants[1:])

    def test_real_row_has_zero_error(self, sweep, config):
        rows = table4_rows(sweep, config)
        assert rows[0]["rel_err"] == 0.0

    def test_all_statistics_reported(self, sweep, config):
        rows = table4_rows(sweep, config)
        for row in rows:
            for name in PAPER_STATISTIC_NAMES:
                assert name in row

    def test_small_k_small_error(self, sweep, config):
        """Paper: k=20 errors stay well under 15%."""
        rows = table4_rows(sweep, config)
        first_k = rows[1]
        assert first_k["rel_err"] < 0.15


class TestTable5:
    def test_sems_small(self, sweep, config):
        """Paper: average relative SEM ≈ 3% or less."""
        rows = table5_rows(sweep, config)
        for row in rows:
            assert row["average"] < 0.10

    def test_ne_and_ad_identical_sem(self, sweep, config):
        """S_AD = 2·S_NE/n is a scaling — relative SEMs must coincide."""
        rows = table5_rows(sweep, config)
        for row in rows:
            assert row["S_NE"] == pytest.approx(row["S_AD"], rel=1e-9)


class TestEvaluateUtility:
    def test_summary_counts(self, sweep, config):
        summaries = evaluate_utility(sweep[0], config)
        assert set(summaries) == set(PAPER_STATISTIC_NAMES)
        assert summaries["S_NE"].num_worlds == config.worlds

    def test_ne_mean_matches_exact_formula(self, sweep, config):
        """Sampled S_NE ≈ Σ p(e) (the footnote-5 cross-check)."""
        entry = sweep[0]
        summaries = evaluate_utility(entry, config)
        exact = entry.result.uncertain.expected_num_edges()
        assert summaries["S_NE"].mean == pytest.approx(exact, rel=0.03)
