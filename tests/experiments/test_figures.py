"""Tests for figure-data builders."""

import numpy as np
import pytest

from repro.experiments.config import quick_config
from repro.experiments.figures import figure2_data, figure3_data, figure4_data
from repro.experiments.harness import run_obfuscation_sweep


@pytest.fixture(scope="module")
def config():
    return quick_config(worlds=8, k_values=(5,))


@pytest.fixture(scope="module")
def sweep(config):
    return run_obfuscation_sweep(config)


class TestFigure2:
    def test_quartiles_ordered(self, sweep, config):
        series = figure2_data(sweep[0], config, max_distance=10)
        assert (series.minimum <= series.q1 + 1e-12).all()
        assert (series.q1 <= series.median + 1e-12).all()
        assert (series.median <= series.q3 + 1e-12).all()
        assert (series.q3 <= series.maximum + 1e-12).all()

    def test_original_overlaps_boxes_at_small_k(self, sweep, config):
        """k=5 obfuscation: the original distance distribution should fall
        inside (or near) the sampled whisker range for most bins."""
        series = figure2_data(sweep[0], config, max_distance=10)
        populated = series.original > 0.01
        inside = (
            (series.original >= series.minimum - 0.05)
            & (series.original <= series.maximum + 0.05)
        )
        assert inside[populated].mean() > 0.7

    def test_bins_length(self, sweep, config):
        series = figure2_data(sweep[0], config, max_distance=15)
        assert len(series.bins) == 16


class TestFigure3:
    def test_fractions_bounded(self, sweep, config):
        series = figure3_data(sweep[0], config, max_degree=8)
        assert (series.maximum <= 1.0).all()
        assert (series.minimum >= 0.0).all()

    def test_degree_distribution_tracks_original(self, sweep, config):
        """Figure 3's observation: the degree distribution is very well
        preserved — medians sit close to the original fractions."""
        series = figure3_data(sweep[0], config, max_degree=8)
        gap = np.abs(series.median - series.original)
        assert gap.max() < 0.08


class TestFigure4:
    def test_curves_present(self, sweep, config):
        curves = figure4_data(
            sweep, config, "dblp", baselines=[("sparsification", 0.5)], k_max=30
        )
        assert "original" in curves
        assert any(label.startswith("obf.") for label in curves)
        assert "sparsification p=0.5" in curves

    def test_monotone_curves(self, sweep, config):
        curves = figure4_data(sweep, config, "dblp", k_max=30)
        for label, values in curves.items():
            if label == "k":
                continue
            assert (np.diff(values) >= 0).all(), label

    def test_obfuscation_dominates_original(self, sweep, config):
        """Obfuscation shifts anonymity up: fewer vertices at low levels."""
        curves = figure4_data(sweep, config, "dblp", k_max=30)
        obf_label = next(l for l in curves if l.startswith("obf."))
        # strictly fewer (or equal) low-anonymity vertices everywhere
        assert (curves[obf_label] <= curves["original"] + 1e-9).all()

    def test_baseline_curves_match_sequential_release_path(self, sweep, config):
        """The batched baseline side (sample_releases + degree_matrix +
        vectorised levels) reproduces the former per-release pipeline:
        same RNG stream ⇒ same release ⇒ same curve."""
        from repro.baselines.anonymity import randomization_anonymity_levels
        from repro.experiments.comparison import _sample_release
        from repro.baselines.anonymity import cumulative_anonymity_curve
        from repro.utils.rng import as_rng

        baselines = [("sparsification", 0.4), ("perturbation", 0.3)]
        curves = figure4_data(
            sweep, config, "dblp", baselines=baselines, k_max=25
        )
        graph = config.graph("dblp")
        rng = as_rng((config.seed, 4))
        k_grid = np.arange(1, 26, dtype=np.float64)
        for scheme, p in baselines:
            published = _sample_release(graph, scheme, p, rng)
            levels = randomization_anonymity_levels(graph, published, scheme, p)
            expected = cumulative_anonymity_curve(levels, k_grid)
            np.testing.assert_array_equal(
                curves[f"{scheme} p={p:g}"], expected
            )
