"""Tests for baseline calibration and Table-6 machinery."""

import numpy as np
import pytest

from repro.experiments.comparison import (
    achieved_k,
    baseline_utility_row,
    calibrate_randomization,
    table6_rows,
)
from repro.experiments.config import quick_config
from repro.experiments.harness import run_obfuscation_sweep
from repro.stats.registry import PAPER_STATISTIC_NAMES


@pytest.fixture(scope="module")
def config():
    return quick_config(worlds=10, baseline_samples=6)


@pytest.fixture(scope="module")
def graph(config):
    return config.graph("dblp")


class TestAchievedK:
    def test_monotone_in_p(self, graph):
        """More perturbation → higher achieved anonymity."""
        low = achieved_k(graph, "perturbation", 0.05, 0.05, releases=2, seed=0)
        high = achieved_k(graph, "perturbation", 0.6, 0.05, releases=2, seed=0)
        assert high >= low

    def test_eps_relaxes_requirement(self, graph):
        strict = achieved_k(graph, "sparsification", 0.3, 0.0, releases=2, seed=1)
        loose = achieved_k(graph, "sparsification", 0.3, 0.1, releases=2, seed=1)
        assert loose >= strict


class TestCalibration:
    def test_returns_grid_value(self, graph):
        p = calibrate_randomization(
            graph, "perturbation", 5, 0.05, p_grid=(0.04, 0.32, 0.64), releases=2, seed=0
        )
        assert p in (0.04, 0.32, 0.64) or np.isnan(p)

    def test_unreachable_target_nan(self, graph):
        p = calibrate_randomization(
            graph, "sparsification", 10**9, 0.0, p_grid=(0.1,), releases=1, seed=0
        )
        assert np.isnan(p)

    def test_higher_k_needs_higher_p(self, graph):
        grid = (0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 0.9)
        p_small = calibrate_randomization(
            graph, "perturbation", 3, 0.05, p_grid=grid, releases=2, seed=2
        )
        p_large = calibrate_randomization(
            graph, "perturbation", 40, 0.05, p_grid=grid, releases=2, seed=2
        )
        if not (np.isnan(p_small) or np.isnan(p_large)):
            assert p_large >= p_small


class TestBaselineRow:
    def test_contains_all_statistics(self, graph, config):
        row = baseline_utility_row(graph, "sparsification", 0.3, config)
        for name in PAPER_STATISTIC_NAMES:
            assert name in row
        assert row["rel_err"] > 0

    def test_stronger_noise_larger_error(self, graph, config):
        weak = baseline_utility_row(graph, "sparsification", 0.05, config)
        strong = baseline_utility_row(graph, "sparsification", 0.64, config)
        assert strong["rel_err"] > weak["rel_err"]


class TestTable6:
    def test_headline_result(self, config):
        """The paper's Table-6 claim, at its published p values: whole-edge
        randomization strong enough to provide real anonymity (p = 0.64
        sparsification, p = 0.32 perturbation) damages the statistics far
        more than the uncertain-graph release."""
        sweep = run_obfuscation_sweep(config, eps_values=(1e-3,))
        matchups = [
            {
                "dataset": "dblp",
                "scheme": "sparsification",
                "k": 20,
                "paper_eps": 1e-3,
                "p": 0.64,
            },
            {
                "dataset": "dblp",
                "scheme": "perturbation",
                "k": 20,
                "paper_eps": 1e-3,
                "p": 0.32,
            },
        ]
        rows = table6_rows(sweep, config, matchups=matchups)
        originals = [r for r in rows if r["variant"] == "original"]
        baselines = [r for r in rows if r["variant"].startswith("rand.")]
        ours = [r for r in rows if r["variant"].startswith("obf.")]
        assert originals and baselines and ours
        worst_ours = max(r["rel_err"] for r in ours)
        best_baseline = min(r["rel_err"] for r in baselines)
        assert worst_ours < best_baseline

    def test_calibrated_matchup_runs(self, config):
        """The fully calibrated protocol produces a complete table."""
        sweep = run_obfuscation_sweep(config, eps_values=(1e-3,))
        matchups = [
            {"dataset": "dblp", "scheme": "sparsification", "k": 20, "paper_eps": 1e-3}
        ]
        rows = table6_rows(sweep, config, matchups=matchups)
        assert any(r["variant"] == "original" for r in rows)
        assert any(r["variant"].startswith("obf.") for r in rows)
