"""Tests for certain-graph edge-list IO."""

import pytest

from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph
from repro.graphs.io import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_simple(self, tmp_path, triangle):
        path = tmp_path / "g.txt"
        write_edge_list(triangle, path)
        assert read_edge_list(path) == triangle

    def test_trailing_isolated_vertices_survive(self, tmp_path):
        g = Graph(6)
        g.add_edge(0, 1)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path).num_vertices == 6

    def test_random_graph(self, tmp_path):
        g = erdos_renyi(40, 0.1, seed=0)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g


class TestReading:
    def test_explicit_n_override(self, tmp_path, triangle):
        path = tmp_path / "g.txt"
        write_edge_list(triangle, path)
        assert read_edge_list(path, n=10).num_vertices == 10

    def test_headerless_snap_style(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# comment line\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n\n1 2\n")
        assert read_edge_list(path).num_edges == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="malformed"):
            read_edge_list(path)

    def test_duplicate_edges_collapsed(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1\n1 0\n0 1\n")
        assert read_edge_list(path).num_edges == 1
