"""Tests for BFS traversal kernels — validated against networkx as oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi, powerlaw_cluster
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    all_pairs_distances,
    bfs_distances,
    connected_components,
    eccentricity,
    largest_component_size,
)


def to_networkx(g: Graph) -> nx.Graph:
    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.num_vertices))
    nxg.add_edges_from(g.edges())
    return nxg


class TestBfsDistances:
    def test_path(self, path4):
        assert list(bfs_distances(path4, 0)) == [0, 1, 2, 3]

    def test_unreachable_marked(self, two_components):
        dist = bfs_distances(two_components, 0)
        assert dist[1] == 1
        assert dist[2] == -1 and dist[3] == -1 and dist[4] == -1

    def test_isolated_source(self, two_components):
        dist = bfs_distances(two_components, 4)
        assert dist[4] == 0
        assert (dist[:4] == -1).all()

    def test_star(self, star5):
        dist = bfs_distances(star5, 1)
        assert dist[0] == 1
        assert dist[1] == 0
        assert all(dist[i] == 2 for i in range(2, 5))

    def test_csr_input_matches_graph_input(self, star5):
        csr = star5.to_csr()
        a = bfs_distances(star5, 0)
        b = bfs_distances(csr, 0, n=5)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_against_networkx(self, seed):
        g = erdos_renyi(60, 0.06, seed=seed)
        nxg = to_networkx(g)
        for source in (0, 13, 42):
            ours = bfs_distances(g, source)
            theirs = nx.single_source_shortest_path_length(nxg, source)
            for v in range(60):
                expected = theirs.get(v, -1)
                assert ours[v] == expected

    def test_powerlaw_against_networkx(self):
        g = powerlaw_cluster(150, 2, 0.5, seed=5)
        nxg = to_networkx(g)
        ours = bfs_distances(g, 0)
        theirs = nx.single_source_shortest_path_length(nxg, 0)
        assert all(ours[v] == theirs.get(v, -1) for v in range(150))


class TestAllPairs:
    def test_matrix_shape(self, path4):
        mat = all_pairs_distances(path4)
        assert mat.shape == (4, 4)
        assert mat[0, 3] == 3

    def test_symmetric(self):
        g = erdos_renyi(40, 0.1, seed=3)
        mat = all_pairs_distances(g)
        assert np.array_equal(mat, mat.T)

    def test_subset_sources(self, path4):
        mat = all_pairs_distances(path4, sources=np.array([1, 3]))
        assert mat.shape == (2, 4)
        assert mat[0, 0] == 1
        assert mat[1, 0] == 3


class TestComponents:
    def test_single_component(self, triangle):
        labels = connected_components(triangle)
        assert len(set(labels)) == 1

    def test_multiple(self, two_components):
        labels = connected_components(two_components)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert len({labels[0], labels[2], labels[4]}) == 3

    def test_against_networkx(self):
        g = erdos_renyi(80, 0.02, seed=9)
        ours = connected_components(g)
        theirs = list(nx.connected_components(to_networkx(g)))
        assert len(set(ours)) == len(theirs)
        for comp in theirs:
            comp = list(comp)
            assert len({ours[v] for v in comp}) == 1

    def test_largest_component_size(self, two_components):
        assert largest_component_size(two_components) == 2

    def test_largest_component_empty(self):
        assert largest_component_size(Graph(0)) == 0


class TestEccentricity:
    def test_path_end(self, path4):
        assert eccentricity(path4, 0) == 3

    def test_path_middle(self, path4):
        assert eccentricity(path4, 1) == 2

    def test_against_networkx(self):
        g = erdos_renyi(50, 0.15, seed=21)
        nxg = to_networkx(g)
        if nx.is_connected(nxg):
            ecc = nx.eccentricity(nxg)
            for v in (0, 10, 25):
                assert eccentricity(g, v) == ecc[v]
