"""Tests for triangle counting and clustering — paper Example 3 + networkx."""

import networkx as nx
import pytest

from repro.graphs.generators import erdos_renyi, powerlaw_cluster
from repro.graphs.graph import Graph
from repro.graphs.triangles import (
    average_local_clustering,
    centered_triple_count,
    clustering_coefficient,
    connected_triple_count,
    local_clustering,
    transitivity,
    triangle_count,
)


def to_networkx(g: Graph) -> nx.Graph:
    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.num_vertices))
    nxg.add_edges_from(g.edges())
    return nxg


class TestPaperExample3:
    """§6.4 Example 3: T3[K3] = T2[K3] = 1 so S_CC[K3] = 1; wedge gives 0."""

    def test_k3(self, triangle):
        assert triangle_count(triangle) == 1
        assert connected_triple_count(triangle) == 1
        assert clustering_coefficient(triangle) == pytest.approx(1.0)

    def test_wedge(self):
        g = Graph.from_edges(3, [(0, 1), (0, 2)])
        assert triangle_count(g) == 0
        assert connected_triple_count(g) == 1
        assert clustering_coefficient(g) == pytest.approx(0.0)


class TestTriangleCount:
    def test_empty(self):
        assert triangle_count(Graph(5)) == 0

    def test_k4(self):
        g = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert triangle_count(g) == 4

    def test_two_triangles_sharing_edge(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)])
        assert triangle_count(g) == 2

    @pytest.mark.parametrize("seed", [0, 7])
    def test_against_networkx(self, seed):
        g = erdos_renyi(60, 0.12, seed=seed)
        expected = sum(nx.triangles(to_networkx(g)).values()) // 3
        assert triangle_count(g) == expected


class TestTripleCounts:
    def test_centered_star(self, star5):
        # centre degree 4: C(4,2)=6 wedges, leaves contribute none
        assert centered_triple_count(star5) == 6

    def test_identity_t2(self):
        """T2 = centered − 2·T3 on a graph with triangles."""
        g = powerlaw_cluster(80, 3, 0.8, seed=2)
        t3 = triangle_count(g)
        assert connected_triple_count(g) == centered_triple_count(g) - 2 * t3

    def test_path_triples(self, path4):
        assert connected_triple_count(path4) == 2


class TestClustering:
    def test_transitivity_against_networkx(self):
        g = erdos_renyi(70, 0.1, seed=4)
        assert transitivity(g) == pytest.approx(nx.transitivity(to_networkx(g)))

    def test_transitivity_powerlaw_against_networkx(self):
        g = powerlaw_cluster(120, 3, 0.6, seed=8)
        assert transitivity(g) == pytest.approx(nx.transitivity(to_networkx(g)))

    def test_empty_graph_zero(self):
        assert clustering_coefficient(Graph(4)) == 0.0
        assert transitivity(Graph(4)) == 0.0

    def test_cc_in_unit_interval(self):
        for seed in range(3):
            g = erdos_renyi(50, 0.15, seed=seed)
            assert 0.0 <= clustering_coefficient(g) <= 1.0

    def test_paper_cc_vs_transitivity_relation(self):
        """S_CC = t·W / (W − 2·T3) where t = transitivity, W = wedges."""
        g = powerlaw_cluster(90, 3, 0.7, seed=3)
        w = centered_triple_count(g)
        t3 = triangle_count(g)
        if w > 2 * t3:
            expected = t3 / (w - 2 * t3)
            assert clustering_coefficient(g) == pytest.approx(expected)


class TestLocalClustering:
    def test_low_degree_zero(self, path4):
        assert local_clustering(path4, 0) == 0.0

    def test_triangle_vertex(self, triangle):
        assert local_clustering(triangle, 0) == pytest.approx(1.0)

    def test_against_networkx(self):
        g = erdos_renyi(50, 0.15, seed=6)
        theirs = nx.clustering(to_networkx(g))
        for v in range(0, 50, 7):
            assert local_clustering(g, v) == pytest.approx(theirs[v])

    def test_average_against_networkx(self):
        g = powerlaw_cluster(100, 2, 0.7, seed=1)
        assert average_local_clustering(g) == pytest.approx(
            nx.average_clustering(to_networkx(g))
        )
