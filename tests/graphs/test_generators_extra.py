"""Additional generator-quality tests: structural realism checks.

These verify the properties that make the surrogates valid stand-ins
for the paper's datasets (DESIGN.md §3): degree-distribution skew,
uniqueness concentration in the tail, and growth-model invariants.
"""

import numpy as np
import pytest

from repro.core.uniqueness import degree_uniqueness
from repro.graphs.generators import (
    barabasi_albert,
    erdos_renyi,
    powerlaw_cluster,
    watts_strogatz,
)
from repro.graphs.datasets import dblp_like, flickr_like, y360_like


class TestHeavyTailRealism:
    def test_powerlaw_more_skewed_than_er(self):
        """Same density: the PA surrogate has a far heavier degree tail."""
        pa = powerlaw_cluster(600, 3, 0.5, seed=0)
        er = erdos_renyi(600, 2 * pa.num_edges / (600 * 599), seed=0)
        assert pa.degrees().max() > 2 * er.degrees().max()

    def test_uniqueness_concentrates_in_hubs(self):
        """The obfuscation cost driver: hubs are the unique vertices."""
        g = dblp_like(scale=0.3, seed=0)
        degrees = g.degrees()
        uniq = degree_uniqueness(degrees, 0.5)
        hubs = np.argsort(degrees)[-20:]
        others = np.argsort(degrees)[: len(degrees) - 20]
        assert uniq[hubs].mean() > 10 * uniq[others].mean()

    def test_surrogates_have_unique_hubs(self):
        """Each dataset has at least one vertex needing the ε tolerance."""
        for builder in (dblp_like, flickr_like, y360_like):
            g = builder(scale=0.2, seed=0)
            counts = np.bincount(g.degrees())
            max_deg = g.degrees().max()
            assert counts[max_deg] <= 2  # the top hub is (nearly) unique


class TestGrowthInvariants:
    @pytest.mark.parametrize("n", [50, 200])
    def test_ba_connected(self, n):
        from repro.graphs.traversal import largest_component_size

        g = barabasi_albert(n, 2, seed=1)
        assert largest_component_size(g) == n

    def test_ws_degree_regularity_without_rewiring(self):
        g = watts_strogatz(30, 6, 0.0, seed=0)
        assert (g.degrees() == 6).all()

    def test_ws_rewiring_preserves_mean_degree(self):
        g = watts_strogatz(60, 4, 0.7, seed=2)
        assert g.degrees().mean() == pytest.approx(4.0)

    def test_generator_seeds_independent(self):
        a = powerlaw_cluster(100, 2, 0.5, seed=1)
        b = powerlaw_cluster(100, 2, 0.5, seed=2)
        assert a != b


class TestDatasetScaling:
    def test_density_stable_across_scales(self):
        """Scaling n keeps average degree approximately fixed (the DESIGN
        requirement that lets ε rescaling preserve difficulty)."""
        small = dblp_like(scale=0.2, seed=0)
        large = dblp_like(scale=0.6, seed=0)
        d_small = 2 * small.num_edges / small.num_vertices
        d_large = 2 * large.num_edges / large.num_vertices
        assert d_small == pytest.approx(d_large, rel=0.1)

    def test_minimum_viable_scale(self):
        g = dblp_like(scale=0.001, seed=0)  # clamps to attach_m + 2
        assert g.num_vertices >= 5
