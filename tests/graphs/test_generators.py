"""Tests for random-graph generators."""

import numpy as np
import pytest

from repro.graphs.generators import (
    affiliation_graph,
    barabasi_albert,
    configuration_model,
    configuration_model_edges,
    configuration_model_powerlaw,
    erdos_renyi,
    powerlaw_cluster,
    powerlaw_degree_sequence,
    watts_strogatz,
)
from repro.graphs.triangles import transitivity


class TestErdosRenyi:
    def test_p_zero_empty(self):
        assert erdos_renyi(30, 0.0, seed=0).num_edges == 0

    def test_p_one_complete(self):
        g = erdos_renyi(10, 1.0, seed=0)
        assert g.num_edges == 45

    def test_expected_edge_count(self):
        n, p = 200, 0.05
        counts = [erdos_renyi(n, p, seed=s).num_edges for s in range(10)]
        expected = p * n * (n - 1) / 2
        assert abs(np.mean(counts) - expected) < 0.1 * expected

    def test_deterministic_with_seed(self):
        a = erdos_renyi(50, 0.1, seed=3)
        b = erdos_renyi(50, 0.1, seed=3)
        assert a == b

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)

    def test_no_self_loops(self):
        g = erdos_renyi(40, 0.2, seed=1)
        for u, v in g.edges():
            assert u != v


class TestBarabasiAlbert:
    def test_edge_count(self):
        # star seed gives m edges; each later vertex adds exactly m
        g = barabasi_albert(100, 3, seed=0)
        assert g.num_edges == 3 + (100 - 4) * 3

    def test_min_degree_at_least_m(self):
        g = barabasi_albert(80, 2, seed=1)
        assert g.degrees().min() >= 2

    def test_heavy_tail(self):
        g = barabasi_albert(500, 2, seed=2)
        degs = g.degrees()
        assert degs.max() > 5 * np.median(degs)

    def test_invalid_m_rejected(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)
        with pytest.raises(ValueError):
            barabasi_albert(10, 10)

    def test_deterministic(self):
        assert barabasi_albert(60, 2, seed=5) == barabasi_albert(60, 2, seed=5)


class TestPowerlawCluster:
    def test_edge_count_bound(self):
        g = powerlaw_cluster(100, 3, 0.5, seed=0)
        assert g.num_edges <= 3 + (100 - 4) * 3
        assert g.num_edges >= 100  # connected-ish growth

    def test_triads_raise_clustering(self):
        low = transitivity(powerlaw_cluster(300, 3, 0.0, seed=1))
        high = transitivity(powerlaw_cluster(300, 3, 0.95, seed=1))
        assert high > low

    def test_connected_growth(self):
        from repro.graphs.traversal import largest_component_size

        g = powerlaw_cluster(200, 2, 0.5, seed=3)
        assert largest_component_size(g) == 200

    def test_invalid_triad_p(self):
        with pytest.raises(ValueError):
            powerlaw_cluster(50, 2, 1.5)

    def test_deterministic(self):
        a = powerlaw_cluster(80, 2, 0.4, seed=9)
        b = powerlaw_cluster(80, 2, 0.4, seed=9)
        assert a == b


class TestWattsStrogatz:
    def test_no_rewiring_is_lattice(self):
        g = watts_strogatz(20, 4, 0.0, seed=0)
        assert g.num_edges == 40
        assert (g.degrees() == 4).all()

    def test_rewiring_preserves_edge_count(self):
        g = watts_strogatz(50, 6, 0.5, seed=2)
        assert g.num_edges == 150

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(20, 3, 0.1)

    def test_k_too_large_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 10, 0.1)


class TestDegreeSequence:
    def test_even_sum(self):
        for seed in range(5):
            degs = powerlaw_degree_sequence(101, 2.5, seed=seed)
            assert degs.sum() % 2 == 0

    def test_range_respected(self):
        degs = powerlaw_degree_sequence(200, 2.0, d_min=2, d_max=20, seed=0)
        assert degs.min() >= 2
        # +1 possible from the parity patch
        assert degs.max() <= 21

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            powerlaw_degree_sequence(50, 0.9)

    def test_skew(self):
        degs = powerlaw_degree_sequence(2000, 2.0, d_min=1, d_max=50, seed=1)
        assert np.median(degs) < np.mean(degs)


class TestConfigurationModel:
    def test_degrees_bounded_by_targets(self):
        targets = np.array([3, 3, 2, 2, 1, 1])
        g = configuration_model(targets, seed=0)
        assert (g.degrees() <= targets).all()

    def test_odd_sum_rejected(self):
        with pytest.raises(ValueError):
            configuration_model(np.array([1, 1, 1]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            configuration_model(np.array([2, -1, 1]))

    def test_powerlaw_wrapper(self):
        g = configuration_model_powerlaw(300, 2.5, seed=4)
        assert g.num_vertices == 300
        assert g.num_edges > 0


class TestAffiliationGraph:
    def test_builds_cliques(self):
        g = affiliation_graph(50, 10, [0.0, 1.0], novelty=1.0, seed=0)
        # all groups size 3 → triangles exist
        from repro.graphs.triangles import triangle_count

        assert triangle_count(g) >= 1

    def test_deterministic(self):
        a = affiliation_graph(100, 50, [0.5, 0.5], seed=7)
        b = affiliation_graph(100, 50, [0.5, 0.5], seed=7)
        assert a == b

    def test_invalid_probs_rejected(self):
        with pytest.raises(ValueError):
            affiliation_graph(50, 10, [0.5, 0.4])

    def test_heavy_participation_tail(self):
        g = affiliation_graph(400, 500, [0.4, 0.4, 0.2], novelty=0.3, seed=1)
        degs = g.degrees()
        active = degs[degs > 0]
        assert active.max() > 4 * np.median(active)


class TestConfigurationModelEdges:
    def _sequential_edge_set(self, degrees, seed):
        """The former per-stub Python loop, kept as the pin oracle."""
        from repro.utils.rng import as_rng

        rng = as_rng(seed)
        stubs = np.repeat(np.arange(len(degrees)), degrees)
        rng.shuffle(stubs)
        seen = set()
        for i in range(0, len(stubs) - 1, 2):
            u, v = int(stubs[i]), int(stubs[i + 1])
            if u != v:
                seen.add((min(u, v), max(u, v)))
        return seen

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_matches_sequential_loop_edge_set(self, seed):
        rng = np.random.default_rng(seed)
        degrees = rng.integers(0, 8, size=120)
        if degrees.sum() % 2:
            degrees[0] += 1
        edges = configuration_model_edges(degrees, seed=(seed, 1))
        expected = self._sequential_edge_set(degrees, (seed, 1))
        assert {(int(u), int(v)) for u, v in edges} == expected

    def test_rows_canonical_and_sorted(self):
        degrees = np.full(200, 4)
        edges = configuration_model_edges(degrees, seed=5)
        assert (edges[:, 0] < edges[:, 1]).all()
        codes = edges[:, 0] * 200 + edges[:, 1]
        assert (np.diff(codes) > 0).all()

    def test_graph_wrapper_agrees(self):
        degrees = np.array([3, 3, 2, 2, 1, 1])
        g = configuration_model(degrees, seed=0)
        edges = configuration_model_edges(degrees, seed=0)
        assert g.num_edges == len(edges)
        assert (g.degrees() <= degrees).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            configuration_model_edges(np.array([1, 1, 1]))
        with pytest.raises(ValueError):
            configuration_model_edges(np.array([2, -1, 1]))
