"""Tests for the dataset surrogates."""

import pytest

from repro.graphs.datasets import (
    DATASET_SPECS,
    dblp_like,
    flickr_like,
    load_dataset,
    paper_degree_exponent,
    paper_scale_dataset,
    y360_like,
)
from repro.graphs.triangles import clustering_coefficient
from repro.stats.degree import average_degree


class TestSpecs:
    def test_all_three_present(self):
        assert set(DATASET_SPECS) == {"dblp", "flickr", "y360"}

    def test_paper_sizes_recorded(self):
        assert DATASET_SPECS["dblp"].paper_n == 226_413
        assert DATASET_SPECS["flickr"].paper_n == 588_166
        assert DATASET_SPECS["y360"].paper_n == 1_226_311


class TestShapes:
    def test_average_degrees_match_paper_ordering(self):
        """Paper: flickr 19.7 > dblp 6.3 > Y360 4.3."""
        d = average_degree(dblp_like(scale=0.5, seed=0))
        f = average_degree(flickr_like(scale=0.5, seed=0))
        y = average_degree(y360_like(scale=0.5, seed=0))
        assert f > d > y

    def test_dblp_density_close_to_paper(self):
        g = dblp_like(seed=0)
        assert average_degree(g) == pytest.approx(6.33, abs=1.0)

    def test_flickr_density_close_to_paper(self):
        g = flickr_like(seed=0)
        assert average_degree(g) == pytest.approx(19.73, abs=2.5)

    def test_clustering_ordering_matches_paper(self):
        """Paper: dblp 0.38 > flickr 0.12 > Y360 0.04 (ordering preserved)."""
        d = clustering_coefficient(dblp_like(scale=0.4, seed=0))
        f = clustering_coefficient(flickr_like(scale=0.4, seed=0))
        y = clustering_coefficient(y360_like(scale=0.4, seed=0))
        assert d > f > y

    def test_scale_changes_size(self):
        small = dblp_like(scale=0.1, seed=0)
        big = dblp_like(scale=0.5, seed=0)
        assert big.num_vertices > small.num_vertices


class TestLoader:
    def test_by_name(self):
        g = load_dataset("dblp", scale=0.1, seed=0)
        assert g.num_vertices == 450

    def test_case_insensitive(self):
        assert load_dataset("DBLP", scale=0.1).num_vertices == 450

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("enron")

    def test_deterministic(self):
        assert load_dataset("y360", scale=0.1, seed=3) == load_dataset(
            "y360", scale=0.1, seed=3
        )


class TestPaperScaleDataset:
    def test_size_and_density_calibration(self, tmp_path):
        g = paper_scale_dataset("dblp", scale=0.02, seed=0, cache_dir=tmp_path)
        spec = DATASET_SPECS["dblp"]
        assert g.num_vertices == round(spec.paper_n * 0.02)
        target = 2.0 * spec.paper_m / spec.paper_n
        avg = 2.0 * g.num_edges / g.num_vertices
        # erased configuration model loses ~1% to loops/multi-edges
        assert abs(avg - target) / target < 0.05

    def test_deterministic(self, tmp_path):
        a = paper_scale_dataset("dblp", scale=0.01, seed=4, cache_dir=None)
        b = paper_scale_dataset("dblp", scale=0.01, seed=4, cache_dir=None)
        assert a == b

    def test_cache_round_trip(self, tmp_path):
        fresh = paper_scale_dataset("y360", scale=0.005, seed=1, cache_dir=tmp_path)
        assert list(tmp_path.glob("*.npz"))
        cached = paper_scale_dataset("y360", scale=0.005, seed=1, cache_dir=tmp_path)
        assert cached == fresh

    def test_corrupt_cache_regenerated(self, tmp_path):
        fresh = paper_scale_dataset("dblp", scale=0.005, seed=2, cache_dir=tmp_path)
        (path,) = tmp_path.glob("*.npz")
        path.write_bytes(b"not an npz archive")
        again = paper_scale_dataset("dblp", scale=0.005, seed=2, cache_dir=tmp_path)
        assert again == fresh
        # the rewritten entry must now be valid
        assert paper_scale_dataset(
            "dblp", scale=0.005, seed=2, cache_dir=tmp_path
        ) == fresh

    def test_cache_env_variable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE", str(tmp_path))
        paper_scale_dataset("dblp", scale=0.005, seed=3)
        assert list(tmp_path.glob("*.npz"))

    def test_validation(self, tmp_path):
        with pytest.raises(KeyError):
            paper_scale_dataset("orkut", scale=0.01)
        with pytest.raises(ValueError):
            paper_scale_dataset("dblp", scale=0.0)


class TestPaperDegreeExponent:
    def test_bisection_hits_target_mean(self):
        from repro.graphs.datasets import _powerlaw_mean

        for target in (4.27, 6.33, 19.73):
            gamma = paper_degree_exponent(target, 475)
            assert abs(_powerlaw_mean(gamma, 475) - target) < 1e-6

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError):
            paper_degree_exponent(1e6, 100)
        with pytest.raises(ValueError):
            paper_degree_exponent(0.5, 100)
