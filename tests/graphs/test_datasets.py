"""Tests for the dataset surrogates."""

import pytest

from repro.graphs.datasets import (
    DATASET_SPECS,
    dblp_like,
    flickr_like,
    load_dataset,
    y360_like,
)
from repro.graphs.triangles import clustering_coefficient
from repro.stats.degree import average_degree


class TestSpecs:
    def test_all_three_present(self):
        assert set(DATASET_SPECS) == {"dblp", "flickr", "y360"}

    def test_paper_sizes_recorded(self):
        assert DATASET_SPECS["dblp"].paper_n == 226_413
        assert DATASET_SPECS["flickr"].paper_n == 588_166
        assert DATASET_SPECS["y360"].paper_n == 1_226_311


class TestShapes:
    def test_average_degrees_match_paper_ordering(self):
        """Paper: flickr 19.7 > dblp 6.3 > Y360 4.3."""
        d = average_degree(dblp_like(scale=0.5, seed=0))
        f = average_degree(flickr_like(scale=0.5, seed=0))
        y = average_degree(y360_like(scale=0.5, seed=0))
        assert f > d > y

    def test_dblp_density_close_to_paper(self):
        g = dblp_like(seed=0)
        assert average_degree(g) == pytest.approx(6.33, abs=1.0)

    def test_flickr_density_close_to_paper(self):
        g = flickr_like(seed=0)
        assert average_degree(g) == pytest.approx(19.73, abs=2.5)

    def test_clustering_ordering_matches_paper(self):
        """Paper: dblp 0.38 > flickr 0.12 > Y360 0.04 (ordering preserved)."""
        d = clustering_coefficient(dblp_like(scale=0.4, seed=0))
        f = clustering_coefficient(flickr_like(scale=0.4, seed=0))
        y = clustering_coefficient(y360_like(scale=0.4, seed=0))
        assert d > f > y

    def test_scale_changes_size(self):
        small = dblp_like(scale=0.1, seed=0)
        big = dblp_like(scale=0.5, seed=0)
        assert big.num_vertices > small.num_vertices


class TestLoader:
    def test_by_name(self):
        g = load_dataset("dblp", scale=0.1, seed=0)
        assert g.num_vertices == 450

    def test_case_insensitive(self):
        assert load_dataset("DBLP", scale=0.1).num_vertices == 450

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("enron")

    def test_deterministic(self):
        assert load_dataset("y360", scale=0.1, seed=3) == load_dataset(
            "y360", scale=0.1, seed=3
        )
