"""Tests for the bulk ``Graph.from_edge_array`` constructor."""

import numpy as np
import pytest

from repro.graphs.graph import Graph


class TestFromEdgeArray:
    def test_matches_from_edges(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 30))
            m = int(rng.integers(0, 60))
            edges = rng.integers(0, n, size=(m, 2))
            edges = edges[edges[:, 0] != edges[:, 1]]
            bulk = Graph.from_edge_array(n, edges)
            loop = Graph.from_edges(n, [tuple(e) for e in edges])
            assert bulk == loop
            assert bulk.num_edges == loop.num_edges

    def test_collapses_duplicates_and_mirrors(self):
        g = Graph.from_edge_array(3, np.array([[0, 1], [1, 0], [0, 1]]))
        assert g.num_edges == 1
        assert g.has_edge(0, 1)

    def test_empty(self):
        g = Graph.from_edge_array(4, np.empty((0, 2), dtype=np.int64))
        assert g.num_edges == 0
        assert g.num_vertices == 4

    def test_isolated_vertices_get_empty_sets(self):
        g = Graph.from_edge_array(5, np.array([[1, 3]]))
        assert sorted(g.neighbors(1)) == [3]
        assert g.degree(0) == 0 and g.degree(4) == 0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self loops"):
            Graph.from_edge_array(3, np.array([[1, 1]]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="vertex ids"):
            Graph.from_edge_array(3, np.array([[0, 3]]))
        with pytest.raises(ValueError, match="vertex ids"):
            Graph.from_edge_array(3, np.array([[-1, 2]]))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            Graph.from_edge_array(3, np.array([[0, 1, 2]]))

    def test_malformed_empty_rejected(self):
        """Shape is validated before the empty fast path."""
        with pytest.raises(ValueError, match="shape"):
            Graph.from_edge_array(3, np.zeros((0, 7)))
        with pytest.raises(ValueError, match="shape"):
            Graph.from_edge_array(3, [])

    def test_csr_export_matches(self, rng):
        edges = rng.integers(0, 12, size=(30, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        bulk = Graph.from_edge_array(12, edges)
        loop = Graph.from_edges(12, [tuple(e) for e in edges])
        for a, b in zip(bulk.to_csr(), loop.to_csr()):
            np.testing.assert_array_equal(a, b)
