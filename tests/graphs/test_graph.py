"""Tests for the Graph data structure."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.graph import Graph, all_pairs, pair_index


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_from_edges_dedupes(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)
        assert not clone.has_edge(0, 1)

    def test_equality(self, triangle):
        other = Graph.from_edges(3, [(1, 2), (0, 2), (0, 1)])
        assert triangle == other

    def test_inequality_different_edges(self, triangle, path4):
        assert triangle != path4


class TestMutation:
    def test_add_and_query(self):
        g = Graph(3)
        g.add_edge(0, 2)
        assert g.has_edge(0, 2)
        assert g.has_edge(2, 0)
        assert not g.has_edge(0, 1)

    def test_self_loop_rejected(self):
        g = Graph(3)
        with pytest.raises(ValueError, match="self loop"):
            g.add_edge(1, 1)

    def test_duplicate_add_rejected(self):
        g = Graph(3)
        g.add_edge(0, 1)
        with pytest.raises(ValueError, match="already"):
            g.add_edge(1, 0)

    def test_remove(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.remove_edge(1, 0)
        assert g.num_edges == 0
        assert not g.has_edge(0, 1)

    def test_remove_missing_rejected(self):
        g = Graph(3)
        with pytest.raises(ValueError, match="not present"):
            g.remove_edge(0, 1)

    def test_out_of_range_vertex_rejected(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 3)


class TestAccessors:
    def test_degrees(self, star5):
        assert list(star5.degrees()) == [4, 1, 1, 1, 1]

    def test_neighbors(self, path4):
        assert path4.neighbors(1) == frozenset({0, 2})

    def test_edges_ordered(self, triangle):
        edges = list(triangle.edges())
        assert all(u < v for u, v in edges)
        assert sorted(edges) == [(0, 1), (0, 2), (1, 2)]

    def test_edge_array_shape(self, triangle):
        arr = triangle.edge_array()
        assert arr.shape == (3, 2)

    def test_edge_array_empty(self):
        assert Graph(4).edge_array().shape == (0, 2)

    def test_num_pairs(self):
        assert Graph(5).num_pairs == 10
        assert Graph(1).num_pairs == 0

    def test_contains_dunder(self, triangle):
        assert (0, 1) in triangle
        assert (1, 0) in triangle

    def test_len_dunder(self, triangle):
        assert len(triangle) == 3

    def test_edge_set(self, path4):
        assert path4.edge_set() == {(0, 1), (1, 2), (2, 3)}


class TestCsr:
    def test_round_trip(self, star5):
        indptr, indices = star5.to_csr()
        assert len(indptr) == 6
        assert indptr[-1] == 2 * star5.num_edges
        # centre row holds all leaves
        assert sorted(indices[indptr[0] : indptr[1]]) == [1, 2, 3, 4]

    def test_rows_sorted(self, rng):
        g = Graph(20)
        for _ in range(60):
            u, v = int(rng.integers(20)), int(rng.integers(20))
            if u != v and not g.has_edge(u, v):
                g.add_edge(u, v)
        indptr, indices = g.to_csr()
        for v in range(20):
            row = indices[indptr[v] : indptr[v + 1]]
            assert list(row) == sorted(row)

    def test_degree_matches_indptr(self, path4):
        indptr, _ = path4.to_csr()
        for v in range(4):
            assert indptr[v + 1] - indptr[v] == path4.degree(v)


class TestPairIndex:
    def test_bijection(self):
        n = 7
        seen = set()
        for u, v in all_pairs(n):
            idx = pair_index(u, v, n)
            assert 0 <= idx < n * (n - 1) // 2
            seen.add(idx)
        assert len(seen) == n * (n - 1) // 2

    def test_symmetric(self):
        assert pair_index(2, 5, 8) == pair_index(5, 2, 8)

    def test_rejects_self_pair(self):
        with pytest.raises(ValueError):
            pair_index(3, 3, 8)

    def test_all_pairs_count(self):
        assert len(list(all_pairs(6))) == 15


class TestHandshakeProperty:
    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=2**31))
    def test_degree_sum_is_twice_edges(self, n, seed):
        rng = np.random.default_rng(seed)
        g = Graph(n)
        for _ in range(min(3 * n, 40)):
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u != v and not g.has_edge(u, v):
                g.add_edge(u, v)
        assert g.degrees().sum() == 2 * g.num_edges
