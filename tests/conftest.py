"""Shared fixtures: the paper's worked example and small reference graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.uncertain.graph import UncertainGraph


@pytest.fixture
def fig1b() -> UncertainGraph:
    """The uncertain graph of the paper's Figure 1(b).

    Pair probabilities reverse-engineered from Table 1 (and confirmed by
    Example 1's arithmetic): p(v1,v2)=0.7, p(v1,v3)=0.9, p(v1,v4)=0.8,
    p(v2,v3)=0.8, p(v2,v4)=0.1, p(v3,v4)=0.  Vertices are 0-indexed
    (v1 → 0, ..., v4 → 3).
    """
    return UncertainGraph.from_pairs(
        4,
        [
            (0, 1, 0.7),
            (0, 2, 0.9),
            (0, 3, 0.8),
            (1, 2, 0.8),
            (1, 3, 0.1),
        ],
    )


@pytest.fixture
def fig1a() -> Graph:
    """The original graph of Figure 1(a): edges (v1,v2), (v1,v3), (v1,v4), (v3,v4).

    Degrees: v1=3, v2=1, v3=2, v4=2 — matching Example 2's statements.
    """
    return Graph.from_edges(4, [(0, 1), (0, 2), (0, 3), (2, 3)])


@pytest.fixture
def triangle() -> Graph:
    """K3."""
    return Graph.from_edges(3, [(0, 1), (0, 2), (1, 2)])


@pytest.fixture
def path4() -> Graph:
    """Path 0-1-2-3."""
    return Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def star5() -> Graph:
    """Star with centre 0 and four leaves."""
    return Graph.from_edges(5, [(0, i) for i in range(1, 5)])


@pytest.fixture
def two_components() -> Graph:
    """Two disjoint edges plus an isolated vertex: {0-1}, {2-3}, {4}."""
    return Graph.from_edges(5, [(0, 1), (2, 3)])


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
