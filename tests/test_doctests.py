"""Execute the doctest examples embedded in public docstrings.

Keeps the README-style snippets in module documentation honest: if an
API signature drifts, the corresponding docstring example fails here.
"""

import doctest

import pytest

import repro.anf.hyperloglog
import repro.core.search
import repro.graphs.graph
import repro.stats.sampling
import repro.uncertain.sampling

MODULES = [
    repro.graphs.graph,
    repro.uncertain.sampling,
    repro.core.search,
    repro.stats.sampling,
    repro.anf.hyperloglog,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert results.failed == 0
