"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graphs.generators import erdos_renyi
from repro.graphs.io import read_edge_list, write_edge_list
from repro.uncertain.io import read_uncertain_graph


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "graph.txt"
    write_edge_list(erdos_renyi(70, 0.12, seed=0), path)
    return path


@pytest.fixture(scope="module")
def release_file(tmp_path_factory, graph_file):
    path = tmp_path_factory.mktemp("cli") / "release.txt"
    code = main(
        [
            "obfuscate",
            "--input", str(graph_file),
            "--output", str(path),
            "--k", "3",
            "--eps", "0.15",
            "--attempts", "2",
            "--delta", "0.02",
            "--seed", "1",
        ]
    )
    assert code == 0
    return path


class TestObfuscate:
    def test_writes_release(self, release_file):
        release = read_uncertain_graph(release_file)
        assert release.num_candidate_pairs > 0

    def test_failure_exit_code(self, tmp_path, graph_file, capsys):
        out = tmp_path / "nope.txt"
        code = main(
            [
                "obfuscate",
                "--input", str(graph_file),
                "--output", str(out),
                "--k", "1000000",
                "--eps", "0.0",
                "--attempts", "1",
                "--delta", "0.5",
            ]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().err

    def test_reports_sigma(self, graph_file, tmp_path, capsys):
        out = tmp_path / "r.txt"
        code = main(
            [
                "obfuscate",
                "--input", str(graph_file),
                "--output", str(out),
                "--k", "2",
                "--eps", "0.2",
                "--attempts", "1",
                "--delta", "0.05",
            ]
        )
        assert code == 0
        assert "sigma=" in capsys.readouterr().out

    @pytest.mark.parametrize("stream", ["pair_keyed", "attempt"])
    def test_stream_flag(self, graph_file, tmp_path, stream):
        out = tmp_path / f"r_{stream}.txt"
        code = main(
            [
                "obfuscate",
                "--input", str(graph_file),
                "--output", str(out),
                "--k", "2",
                "--eps", "0.2",
                "--attempts", "1",
                "--delta", "0.05",
                "--stream", stream,
            ]
        )
        assert code == 0
        assert read_uncertain_graph(str(out)).num_candidate_pairs > 0

    def test_bad_stream_rejected(self, graph_file, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "obfuscate",
                    "--input", str(graph_file),
                    "--output", str(tmp_path / "x.txt"),
                    "--k", "2",
                    "--eps", "0.2",
                    "--stream", "per_edge",
                ]
            )


class TestVerify:
    def test_valid_release(self, graph_file, release_file, capsys):
        code = main(
            [
                "verify",
                "--original", str(graph_file),
                "--release", str(release_file),
                "--k", "3",
                "--eps", "0.15",
            ]
        )
        assert code == 0
        assert "IS a" in capsys.readouterr().out

    def test_invalid_release(self, graph_file, release_file, capsys):
        code = main(
            [
                "verify",
                "--original", str(graph_file),
                "--release", str(release_file),
                "--k", "10000",
                "--eps", "0.0",
            ]
        )
        assert code == 2
        assert "NOT" in capsys.readouterr().out


class TestStats:
    def test_prints_all_statistics(self, release_file, capsys):
        code = main(
            ["stats", "--release", str(release_file), "--worlds", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("S_NE", "S_AD", "S_CC", "S_APD"):
            assert name in out


class TestSample:
    def test_writes_world(self, release_file, tmp_path):
        out = tmp_path / "world.txt"
        code = main(
            ["sample", "--release", str(release_file), "--output", str(out)]
        )
        assert code == 0
        world = read_edge_list(out)
        assert world.num_edges > 0

    def test_deterministic(self, release_file, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        main(["sample", "--release", str(release_file), "--output", str(a), "--seed", "5"])
        main(["sample", "--release", str(release_file), "--output", str(b), "--seed", "5"])
        assert read_edge_list(a) == read_edge_list(b)


class TestCompare:
    def test_reports_both_schemes(self, graph_file, capsys):
        code = main(
            [
                "compare",
                "--input", str(graph_file),
                "--p", "0.3",
                "--samples", "4",
                "--backend", "exact",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "original" in out
        assert "sparsification (p=0.3)" in out
        assert "perturbation (p=0.3)" in out
        assert "rel_err" in out

    def test_backends_agree(self, graph_file, capsys):
        outputs = []
        for backend in ("batched", "sequential"):
            code = main(
                [
                    "compare",
                    "--input", str(graph_file),
                    "--schemes", "sparsification",
                    "--p", "0.5",
                    "--samples", "4",
                    "--backend", "exact",
                    "--baseline-backend", backend,
                ]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_calibrates_when_p_missing(self, graph_file, capsys):
        code = main(
            [
                "compare",
                "--input", str(graph_file),
                "--schemes", "sparsification",
                "--k", "2",
                "--eps", "0.1",
                "--samples", "3",
                "--backend", "exact",
            ]
        )
        assert code == 0
        assert "calibrated p=" in capsys.readouterr().out

    def test_requires_p_or_target(self, graph_file, capsys):
        code = main(["compare", "--input", str(graph_file)])
        assert code == 2
        assert "--p" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestServe:
    def test_requires_release(self):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_serves_release_over_tcp(self, release_file):
        """Start the server machinery the CLI builds and query it."""
        import asyncio
        import threading

        from repro.serve import ObfuscationServer, QueryEngine, ServeClient
        from repro.uncertain import reliability

        release = read_uncertain_graph(release_file)
        engine = QueryEngine(release, worlds=16, seed=4)
        server = ObfuscationServer(engine, port=0, window_ms=1.0)
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(server.start())
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(10)
        try:
            with ServeClient(server.host, server.port) as client:
                value = client.request("reliability", source=0, target=5)
            assert value["value"] == reliability(
                release, 0, 5, worlds=16, seed=4
            )
        finally:
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result(10)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(10)
