"""Edge-path coverage: failure branches and option combinations that the
mainline suites don't reach."""

import numpy as np
import pytest

from repro.core.search import obfuscate
from repro.core.types import ObfuscationParams
from repro.experiments.config import quick_config
from repro.experiments.harness import run_obfuscation_sweep, table4_rows
from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph


class TestSearchOptions:
    def test_params_bundle_path(self):
        g = erdos_renyi(60, 0.15, seed=0)
        params = ObfuscationParams(k=2, eps=0.3, attempts=1, delta=0.05)
        res = obfuscate(g, 2, 0.3, params=params, seed=1)
        assert res.success
        assert res.params is params

    def test_sigma_init_override(self):
        g = erdos_renyi(60, 0.15, seed=0)
        res = obfuscate(
            g, 2, 0.3, seed=1, attempts=1, delta=0.05, sigma_init=0.25
        )
        assert res.success
        # doubling starts at sigma_init, so no probe exceeds need
        assert res.trace[0].sigma == 0.25

    def test_uniform_weighting_end_to_end(self):
        g = erdos_renyi(70, 0.15, seed=2)
        res = obfuscate(
            g, 2, 0.3, seed=3, attempts=1, delta=0.05, weighting="uniform"
        )
        assert res.success

    def test_invalid_weighting_rejected(self):
        with pytest.raises(ValueError, match="weighting"):
            ObfuscationParams(k=2, eps=0.1, weighting="degreeish")


class TestHarnessFailureCells:
    def test_table4_reports_nan_for_failed_cells(self):
        """A cell that cannot be obfuscated yields a nan rel_err row."""
        cfg = quick_config(
            scale=0.1,
            k_values=(200,),          # impossible on a 450-vertex surrogate
            eps_values=(1e-4,),
            attempts=1,
            delta=0.25,
        )
        # shrink the escalation chain so the failure is fast
        object.__setattr__(cfg, "c_chain", (2.0,))
        sweep = run_obfuscation_sweep(cfg)
        assert not sweep[0].result.success
        rows = table4_rows(sweep, cfg)
        assert rows[0]["variant"] == "real"
        assert np.isnan(rows[1]["rel_err"])


class TestCliBackends:
    def test_stats_exact_backend(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graphs.io import write_edge_list

        graph_path = tmp_path / "g.txt"
        release_path = tmp_path / "r.txt"
        write_edge_list(erdos_renyi(40, 0.2, seed=0), graph_path)
        assert main(
            [
                "obfuscate",
                "--input", str(graph_path),
                "--output", str(release_path),
                "--k", "2", "--eps", "0.3",
                "--attempts", "1", "--delta", "0.1",
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "stats",
                "--release", str(release_path),
                "--worlds", "3",
                "--backend", "exact",
            ]
        ) == 0
        assert "S_APD" in capsys.readouterr().out


class TestGraphBoundaries:
    def test_single_vertex_graph(self):
        g = Graph(1)
        assert g.num_pairs == 0
        assert list(g.edges()) == []

    def test_two_vertex_distance(self):
        from repro.stats.distance import distance_histogram

        g = Graph.from_edges(2, [(0, 1)])
        hist = distance_histogram(g)
        assert hist.counts[1] == 1.0
        assert hist.disconnected == 0.0

    def test_uniform_threshold_boundary(self):
        from repro.core.perturbation import UNIFORM_THRESHOLD, sample_perturbations

        just_below = sample_perturbations(
            np.full(2000, UNIFORM_THRESHOLD - 1e-6), seed=0
        )
        just_above = sample_perturbations(
            np.full(2000, UNIFORM_THRESHOLD + 1e-6), seed=0
        )
        # both regimes are near-uniform at the threshold: means agree
        assert abs(just_below.mean() - just_above.mean()) < 0.05


class TestQueriesDeterminism:
    def test_reliability_deterministic(self):
        from repro.uncertain.graph import UncertainGraph
        from repro.uncertain.queries import reliability

        ug = UncertainGraph.from_pairs(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)])
        a = reliability(ug, 0, 3, worlds=50, seed=9)
        b = reliability(ug, 0, 3, worlds=50, seed=9)
        assert a == b
