"""Serve resilience tests: shedding, deadlines, health, idle reaper,
client retry over dropped connections.

Each test builds its own small server (custom ``max_queue`` /
``idle_timeout_s`` / a stalled engine) on a dedicated event-loop
thread, so the overload scenarios cannot interfere with the pinned
correctness suite in ``test_server.py``.
"""

import asyncio
import socket
import threading
import time

import pytest

from repro.graphs.generators import erdos_renyi
from repro.core.search import obfuscate
from repro.obs.metrics import REGISTRY
from repro.resilience import FaultPlan, FaultRule, RetryPolicy, install_fault_plan
from repro.serve import (
    ObfuscationServer,
    Query,
    QueryEngine,
    ServeClient,
)

WORLDS = 8
SEED = 99


@pytest.fixture(autouse=True)
def _clean_plan():
    install_fault_plan(None)
    yield
    install_fault_plan(None)


@pytest.fixture(scope="module")
def release():
    graph = erdos_renyi(30, 0.15, seed=3)
    result = obfuscate(graph, k=3, eps=0.25, seed=9, attempts=2, delta=0.05)
    assert result.success
    return result.uncertain


class _SlowEngine:
    """Engine stand-in that blocks until released (saturates the queue)."""

    def __init__(self, inner, gate: threading.Event):
        self._inner = inner
        self._gate = gate

    def execute(self, queries):
        self._gate.wait(30)
        return self._inner.execute(queries)


class _ServerThread:
    """A server running on its own event-loop thread, torn down cleanly."""

    def __init__(self, server: ObfuscationServer):
        self.server = server
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10)

    def stop(self, **kwargs):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(**kwargs), self.loop
        ).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)


class TestHealth:
    def test_health_op(self, release):
        engine = QueryEngine(release, worlds=WORLDS, seed=SEED)
        srv = _ServerThread(ObfuscationServer(engine, port=0, max_queue=7))
        try:
            with ServeClient(srv.server.host, srv.server.port) as client:
                status = client.health()
            assert status["status"] == "ok" and status["ready"] is True
            assert status["max_queue"] == 7
        finally:
            srv.stop()


class TestOverloadShedding:
    def test_queue_full_sheds_with_retry_hint(self, release):
        """Overload produces shed responses, never a hang (ISSUE-10 pin)."""
        gate = threading.Event()
        engine = _SlowEngine(QueryEngine(release, worlds=WORLDS, seed=SEED), gate)
        srv = _ServerThread(
            ObfuscationServer(engine, port=0, window_ms=0.0, max_queue=2)
        )
        shed_before = REGISTRY.get("serve.shed")
        try:
            # Raw socket: the pipelined 8 requests over-fill the queue
            # (one in the stalled window + two queued); the overflow
            # must come back as shed errors *immediately* — we read
            # exactly those without waiting for the stuck ones.
            import json as _json

            with socket.create_connection(
                (srv.server.host, srv.server.port), timeout=10
            ) as sock:
                fh = sock.makefile("rb")
                # Phase 1: one query enters the window and stalls the
                # dispatcher inside the (gated) engine call.
                sock.sendall(b'{"id": 0, "op": "degree", "source": 0}\n')
                time.sleep(0.3)
                # Phase 2: seven more — two fill the queue, five shed.
                lines = b"".join(
                    _json.dumps(
                        {"id": i, "op": "degree", "source": 0}
                    ).encode() + b"\n"
                    for i in range(1, 8)
                )
                t0 = time.monotonic()
                sock.sendall(lines)
                for _ in range(7 - 2):  # overflow beyond the queue bound
                    resp = _json.loads(fh.readline())
                    assert resp["ok"] is False
                    assert resp["error"] == "overloaded"
                    assert resp["retry_after_ms"] >= 10
                assert time.monotonic() - t0 < 5.0  # shed, not hung
            # Health still answers while saturated.
            with ServeClient(
                srv.server.host, srv.server.port, retries=0, timeout=10.0
            ) as client:
                assert client.health()["ready"] is False
        finally:
            gate.set()
            srv.stop()
        assert REGISTRY.get("serve.shed") > shed_before

    def test_client_retries_after_shed(self, release):
        gate = threading.Event()
        engine = _SlowEngine(QueryEngine(release, worlds=WORLDS, seed=SEED), gate)
        srv = _ServerThread(
            ObfuscationServer(engine, port=0, window_ms=0.0, max_queue=1)
        )
        # A blocker connection stalls the window and fills the queue...
        blocker = socket.create_connection(
            (srv.server.host, srv.server.port), timeout=10
        )
        try:
            blocker.sendall(
                b'{"id": 0, "op": "degree", "source": 0}\n'
                b'{"id": 1, "op": "degree", "source": 0}\n'
            )
            time.sleep(0.3)
            # ...so the retrying client is shed at first, then succeeds
            # once the engine is released and the backlog drains.
            with ServeClient(
                srv.server.host,
                srv.server.port,
                retries=8,
                timeout=15.0,
                retry_policy=RetryPolicy(max_retries=8, base_delay_s=0.05),
            ) as client:
                threading.Timer(0.3, gate.set).start()
                got = client.request("degree", source=0)
            assert got["value"] >= 0
        finally:
            gate.set()
            blocker.close()
            srv.stop()


class TestDeadlines:
    def test_expired_deadline_is_shed_at_dispatch(self, release):
        gate = threading.Event()
        engine = _SlowEngine(QueryEngine(release, worlds=WORLDS, seed=SEED), gate)
        srv = _ServerThread(
            ObfuscationServer(engine, port=0, window_ms=0.0, max_queue=64)
        )
        before = REGISTRY.get("serve.deadline_shed")
        try:
            with ServeClient(
                srv.server.host, srv.server.port, retries=0, timeout=10.0
            ) as client:
                # The first query stalls the dispatcher inside a window;
                # the timed one waits in the queue past its 50 ms budget.
                with pytest.raises(Exception, match="deadline exceeded"):
                    threading.Timer(0.5, gate.set).start()
                    client.request_many(
                        [
                            {"op": "degree", "source": 0},
                            {"op": "degree", "source": 1, "timeout_ms": 50},
                        ]
                    )
        finally:
            gate.set()
            srv.stop()
        assert REGISTRY.get("serve.deadline_shed") > before

    def test_generous_deadline_is_served(self, release):
        engine = QueryEngine(release, worlds=WORLDS, seed=SEED)
        srv = _ServerThread(ObfuscationServer(engine, port=0))
        try:
            with ServeClient(srv.server.host, srv.server.port) as client:
                got = client.request("degree", source=0, timeout_ms=30_000)
            assert got["value"] >= 0
        finally:
            srv.stop()


class TestIdleTimeout:
    def test_idle_connection_closed(self, release):
        engine = QueryEngine(release, worlds=WORLDS, seed=SEED)
        srv = _ServerThread(
            ObfuscationServer(engine, port=0, idle_timeout_s=0.3)
        )
        before = REGISTRY.get("serve.idle_closed")
        try:
            with socket.create_connection(
                (srv.server.host, srv.server.port), timeout=10
            ) as sock:
                fh = sock.makefile("rb")
                assert fh.readline() == b""  # EOF: server reaped us
        finally:
            srv.stop()
        assert REGISTRY.get("serve.idle_closed") > before

    def test_active_connection_survives(self, release):
        engine = QueryEngine(release, worlds=WORLDS, seed=SEED)
        srv = _ServerThread(
            ObfuscationServer(engine, port=0, idle_timeout_s=1.0)
        )
        try:
            with ServeClient(srv.server.host, srv.server.port) as client:
                for _ in range(3):
                    time.sleep(0.4)  # below the idle limit each time
                    assert client.request("degree", source=0)["value"] >= 0
        finally:
            srv.stop()


class TestConnectionDrop:
    def test_client_retries_through_dropped_connection(self, release):
        """serve.conn.drop tears one response mid-line; the client must
        reconnect and retry to a bit-identical answer."""
        engine = QueryEngine(release, worlds=WORLDS, seed=SEED)
        oracle = engine.execute_one(Query(op="degree", source=0))[
            "result"
        ]["value"]
        srv = _ServerThread(ObfuscationServer(engine, port=0))
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="serve.conn.drop", action="flag",
                      attempts=None, times=1),
        )))
        try:
            with ServeClient(
                srv.server.host,
                srv.server.port,
                retries=3,
                timeout=10.0,
                retry_policy=RetryPolicy(max_retries=3, base_delay_s=0.02),
            ) as client:
                got = client.request("degree", source=0)["value"]
            assert got == oracle
        finally:
            install_fault_plan(None)
            srv.stop()

    def test_no_retry_surfaces_connection_error(self, release):
        engine = QueryEngine(release, worlds=WORLDS, seed=SEED)
        srv = _ServerThread(ObfuscationServer(engine, port=0))
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="serve.conn.drop", action="flag", attempts=None),
        )))
        try:
            with ServeClient(
                srv.server.host, srv.server.port, retries=0, timeout=10.0
            ) as client:
                with pytest.raises((ConnectionError, ValueError, OSError)):
                    client.request("degree", source=0)
        finally:
            install_fault_plan(None)
            srv.stop()


class TestGracefulShutdown:
    def test_stop_drains_inflight_queries(self, release):
        gate = threading.Event()
        engine = _SlowEngine(QueryEngine(release, worlds=WORLDS, seed=SEED), gate)
        srv = _ServerThread(
            ObfuscationServer(engine, port=0, window_ms=0.0, max_queue=64)
        )
        results: list = []
        errors: list = []

        def issue():
            try:
                with ServeClient(
                    srv.server.host, srv.server.port, retries=0, timeout=20.0
                ) as client:
                    results.append(client.request("degree", source=0))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        t = threading.Thread(target=issue)
        t.start()
        time.sleep(0.3)  # the query is now queued or in-window
        gate.set()  # release the engine, then drain-stop
        srv.stop(drain=True, drain_timeout_s=20.0)
        t.join(20)
        assert not errors
        assert results and results[0]["value"] >= 0
