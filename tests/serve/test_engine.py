"""Engine tests: oracle pinning through the serving path, caches, errors.

The batched kernels are already pinned to the sequential oracle in
``tests/uncertain/test_batch_queries.py``; here the *full serving
stack* below the socket — resolve → coalesce → cache → kernel → wire
payload — must produce the same numbers the oracle would.
"""

import math

import pytest

from repro.graphs.generators import erdos_renyi
from repro.core.search import obfuscate
from repro.serve.engine import QueryEngine
from repro.serve.protocol import Query
from repro.uncertain import (
    distance_distribution,
    k_hop_reachable_size,
    k_nearest_neighbors,
    majority_distance,
    median_distance,
    reliability,
)

WORLDS = 48
SEED = 4242


@pytest.fixture(scope="module")
def release():
    graph = erdos_renyi(50, 0.12, seed=3)
    result = obfuscate(graph, k=3, eps=0.25, seed=5, attempts=2, delta=0.05)
    assert result.success
    return result.uncertain


@pytest.fixture()
def engine(release):
    return QueryEngine(release, worlds=WORLDS, seed=SEED)


def _value(payload):
    assert "error" not in payload, payload
    return payload["result"]


class TestOraclePinning:
    """Every served answer == the sequential queries.py oracle."""

    def test_degree(self, release, engine):
        vector = release.expected_degrees()
        for v in (0, 7, 49):
            served = _value(engine.execute_one(Query(op="degree", source=v)))
            # bit-equal to the vectorised aggregate; the per-vertex dict
            # path sums in a different order, so only ~1e-12 close.
            assert served["value"] == float(vector[v])
            assert served["value"] == pytest.approx(
                release.expected_degree(v), abs=1e-9
            )

    def test_reliability(self, release, engine):
        for s, t in [(0, 1), (5, 40), (12, 13)]:
            served = _value(
                engine.execute_one(
                    Query(op="reliability", source=s, target=t)
                )
            )
            oracle = reliability(release, s, t, worlds=WORLDS, seed=SEED)
            assert served["value"] == oracle

    def test_reliability_hop_constrained(self, release, engine):
        served = _value(
            engine.execute_one(
                Query(op="reliability", source=0, target=20, max_hops=2)
            )
        )
        oracle = reliability(
            release, 0, 20, worlds=WORLDS, max_hops=2, seed=SEED
        )
        assert served["value"] == oracle

    def test_khop(self, release, engine):
        for hops in (1, 3):
            served = _value(
                engine.execute_one(Query(op="khop", source=4, hops=hops))
            )
            oracle = k_hop_reachable_size(
                release, 4, hops, worlds=WORLDS, seed=SEED
            )
            assert served["value"] == oracle

    def test_distance(self, release, engine):
        s, t = 2, 33
        served = _value(
            engine.execute_one(Query(op="distance", source=s, target=t))
        )
        oracle = distance_distribution(release, s, t, worlds=WORLDS, seed=SEED)
        expected_wire = {
            ("inf" if math.isinf(d) else str(int(d))): p
            for d, p in oracle.items()
        }
        assert served["distribution"] == expected_wire
        med = median_distance(release, s, t, worlds=WORLDS, seed=SEED)
        maj = majority_distance(release, s, t, worlds=WORLDS, seed=SEED)
        assert served["median"] == ("inf" if math.isinf(med) else med)
        assert served["majority"] == ("inf" if math.isinf(maj) else maj)

    def test_knn(self, release, engine):
        served = _value(
            engine.execute_one(Query(op="knn", source=9, k=5))
        )
        oracle = k_nearest_neighbors(release, 9, 5, worlds=WORLDS, seed=SEED)
        assert served["neighbors"] == [[v, s] for v, s in oracle]

    def test_per_query_worlds_seed_override(self, release, engine):
        served = _value(
            engine.execute_one(
                Query(op="reliability", source=1, target=30, worlds=16, seed=77)
            )
        )
        assert served["value"] == reliability(
            release, 1, 30, worlds=16, seed=77
        )


class TestCoalescing:
    def test_window_answers_equal_singletons(self, release, engine):
        window = [
            Query(op="reliability", source=3, target=10),
            Query(op="knn", source=3, k=4),
            Query(op="distance", source=3, target=44),
            Query(op="khop", source=8, hops=2),
            Query(op="degree", source=8),
            Query(op="reliability", source=3, target=10),  # duplicate
        ]
        coalesced = engine.execute(window)
        fresh = QueryEngine(release, worlds=WORLDS, seed=SEED)
        singles = [fresh.execute_one(q) for q in window]
        assert coalesced == singles

    def test_shared_source_costs_one_bfs(self, release):
        from repro.obs.metrics import REGISTRY

        engine = QueryEngine(release, worlds=WORLDS, seed=SEED)
        before = REGISTRY.counter("serve.bfs.passes").value
        engine.execute(
            [
                Query(op="reliability", source=6, target=t)
                for t in (1, 2, 3, 4, 5)
            ]
            + [Query(op="knn", source=6, k=3)]
        )
        assert REGISTRY.counter("serve.bfs.passes").value == before + 1

    def test_answer_cache_hit(self, release, engine):
        from repro.obs.metrics import REGISTRY

        q = Query(op="reliability", source=11, target=40)
        first = engine.execute_one(q)
        before = REGISTRY.counter("serve.cache.answer_hits").value
        second = engine.execute_one(q)
        assert second == first
        assert REGISTRY.counter("serve.cache.answer_hits").value == before + 1

    def test_defaulted_and_explicit_keys_coalesce(self, release, engine):
        explicit = Query(
            op="reliability", source=2, target=9, worlds=WORLDS, seed=SEED
        )
        defaulted = Query(op="reliability", source=2, target=9)
        assert engine.execute_one(explicit) == engine.execute_one(defaulted)
        # and the second came from the answer cache (same resolved key)
        assert engine.cache_stats()["answers"] == 1


class TestErrors:
    def test_out_of_range_vertex(self, release, engine):
        payload = engine.execute_one(
            Query(op="reliability", source=0, target=release.num_vertices)
        )
        assert "out of range" in payload["error"]

    def test_bad_k(self, release, engine):
        payload = engine.execute_one(
            Query(op="knn", source=0, k=release.num_vertices)
        )
        assert "error" in payload

    def test_errors_do_not_poison_window(self, release, engine):
        window = [
            Query(op="reliability", source=0, target=release.num_vertices),
            Query(op="reliability", source=0, target=1),
        ]
        payloads = engine.execute(window)
        assert "error" in payloads[0]
        assert payloads[1]["result"]["value"] == reliability(
            release, 0, 1, worlds=WORLDS, seed=SEED
        )

    def test_rejects_zero_worlds(self, release):
        with pytest.raises(ValueError):
            QueryEngine(release, worlds=0)


class TestCacheBounds:
    def test_dist_rows_evict(self, release):
        engine = QueryEngine(
            release, worlds=8, seed=1, max_dist_rows=4, max_answers=8
        )
        for s in range(10):
            engine.execute_one(Query(op="khop", source=s, hops=2))
        stats = engine.cache_stats()
        assert stats["dist_rows"] <= 4
        assert stats["answers"] <= 8

    def test_eviction_preserves_answers(self, release):
        tiny = QueryEngine(
            release, worlds=8, seed=1, max_dist_rows=1, max_answers=1
        )
        big = QueryEngine(release, worlds=8, seed=1)
        qs = [Query(op="khop", source=s, hops=1) for s in (0, 1, 0, 1)]
        assert [tiny.execute_one(q) for q in qs] == [
            big.execute_one(q) for q in qs
        ]
