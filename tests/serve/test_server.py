"""End-to-end server tests: sockets, pipelining, concurrency, errors.

Runs the asyncio server in a background thread and drives it with real
TCP clients, asserting every served answer equals the sequential
oracle — the socket-level half of the seed-equivalence suite.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.graphs.generators import erdos_renyi
from repro.core.search import obfuscate
from repro.serve import ObfuscationServer, QueryEngine, ServeClient, ServeError
from repro.uncertain import k_nearest_neighbors, reliability

WORLDS = 32
SEED = 1234


@pytest.fixture(scope="module")
def release():
    graph = erdos_renyi(40, 0.15, seed=2)
    result = obfuscate(graph, k=3, eps=0.25, seed=9, attempts=2, delta=0.05)
    assert result.success
    return result.uncertain


@pytest.fixture(scope="module")
def server(release):
    """Server on a free port, running on a dedicated event-loop thread."""
    engine = QueryEngine(release, worlds=WORLDS, seed=SEED)
    srv = ObfuscationServer(engine, port=0, window_ms=1.0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(srv.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10)
    yield srv
    asyncio.run_coroutine_threadsafe(srv.stop(), loop).result(10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)


class TestSingleClient:
    def test_reliability_pinned(self, release, server):
        with ServeClient(server.host, server.port) as client:
            value = client.request("reliability", source=0, target=7)["value"]
        assert value == reliability(release, 0, 7, worlds=WORLDS, seed=SEED)

    def test_knn_pinned(self, release, server):
        with ServeClient(server.host, server.port) as client:
            got = client.request("knn", source=2, k=4)["neighbors"]
        oracle = k_nearest_neighbors(release, 2, 4, worlds=WORLDS, seed=SEED)
        assert got == [[v, s] for v, s in oracle]

    def test_pipelined_batch(self, release, server):
        requests = [
            {"op": "reliability", "source": 1, "target": t} for t in range(5)
        ] + [{"op": "degree", "source": 1}]
        with ServeClient(server.host, server.port) as client:
            results = client.request_many(requests)
        for t in range(5):
            expected = (
                1.0
                if t == 1
                else reliability(release, 1, t, worlds=WORLDS, seed=SEED)
            )
            assert results[t]["value"] == expected
        assert results[5]["value"] == float(release.expected_degrees()[1])

    def test_error_response(self, server, release):
        with ServeClient(server.host, server.port) as client:
            with pytest.raises(ServeError, match="out of range"):
                client.request(
                    "reliability", source=0, target=release.num_vertices
                )
            # connection still usable after a query error
            assert client.request("degree", source=0)["value"] >= 0

    def test_malformed_line_keeps_connection(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            fh = sock.makefile("rb")
            sock.sendall(b"this is not json\n")
            response = json.loads(fh.readline())
            assert response["ok"] is False
            sock.sendall(
                b'{"id": 1, "op": "degree", "source": 0}\n'
            )
            response = json.loads(fh.readline())
            assert response["ok"] is True and response["id"] == 1


class TestConcurrentClients:
    def test_many_threads_all_pinned(self, release, server):
        """16 threads × 8 queries: every answer equals the oracle."""
        pairs = [(s, t) for s in range(4) for t in range(20, 28)]
        oracle = {
            (s, t): reliability(release, s, t, worlds=WORLDS, seed=SEED)
            for s, t in set(pairs)
        }
        errors: list = []

        def worker(worker_id: int):
            try:
                with ServeClient(server.host, server.port) as client:
                    for s, t in pairs[worker_id::16] or pairs[:4]:
                        got = client.request(
                            "reliability", source=s, target=t
                        )["value"]
                        assert got == oracle[(s, t)], (s, t, got)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors

    def test_mixed_ops_concurrent(self, release, server):
        results: dict = {}
        errors: list = []

        def worker(op: str):
            try:
                with ServeClient(server.host, server.port) as client:
                    if op == "knn":
                        results[op] = client.request("knn", source=5, k=3)
                    elif op == "khop":
                        results[op] = client.request(
                            "khop", source=5, hops=2
                        )
                    else:
                        results[op] = client.request(
                            "distance", source=5, target=11
                        )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(op,))
            for op in ("knn", "khop", "distance")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        oracle_knn = k_nearest_neighbors(release, 5, 3, worlds=WORLDS, seed=SEED)
        assert results["knn"]["neighbors"] == [[v, s] for v, s in oracle_knn]
        assert set(results["distance"]) == {"distribution", "median", "majority"}
