"""The TinyLFU answer cache: sketch behaviour, admission gate, hit rates."""

from __future__ import annotations

from collections import OrderedDict

from repro.serve.engine import _FrequencySketch, _TinyLFU


class TestFrequencySketch:
    def test_estimate_tracks_increments(self):
        sketch = _FrequencySketch(cap=64)
        assert sketch.estimate(hash("a")) == 0
        for _ in range(5):
            sketch.increment(hash("a"))
        assert sketch.estimate(hash("a")) == 5
        assert sketch.estimate(hash("b")) == 0

    def test_counters_saturate_at_fifteen(self):
        sketch = _FrequencySketch(cap=4096)  # large sample: no aging here
        for _ in range(100):
            sketch.increment(hash("hot"))
        assert sketch.estimate(hash("hot")) == 15

    def test_aging_halves_counts(self):
        sketch = _FrequencySketch(cap=2)  # sample window = 16 accesses
        for _ in range(10):
            sketch.increment(hash("x"))
        before = sketch.estimate(hash("x"))
        for i in range(6):  # cross the 16-access window boundary
            sketch.increment(hash(f"filler-{i}"))
        after = sketch.estimate(hash("x"))
        assert after <= before // 2 + 1  # halved (filler may share a row)
        assert after < before

    def test_estimate_never_underestimates_single_key(self):
        # count-min property: collisions only inflate, never deflate
        sketch = _FrequencySketch(cap=4096)
        for i in range(200):
            sketch.increment(hash(f"k{i}"))
        for _ in range(3):
            sketch.increment(hash("probe"))
        assert sketch.estimate(hash("probe")) >= 3


class TestTinyLFUAdmission:
    def test_admits_freely_below_capacity(self):
        cache = _TinyLFU(cap=4)
        for i in range(4):
            assert cache.put(f"k{i}", i) is True
        assert len(cache) == 4
        assert cache.admitted == 4
        assert cache.rejected == 0

    def test_cold_candidate_bounces_off_warm_cache(self):
        cache = _TinyLFU(cap=2)
        # warm the residents: three requests each through get_touch
        for _ in range(3):
            for key in ("warm1", "warm2"):
                if cache.get_touch(key) is None:
                    cache.put(key, key)
        # a never-seen key must not evict a warm resident
        assert cache.get_touch("cold") is None  # one sketch increment
        assert cache.put("cold", "cold") is False
        assert cache.rejected == 1
        assert cache.get_touch("warm1") is not None
        assert cache.get_touch("warm2") is not None

    def test_frequent_candidate_earns_admission(self):
        cache = _TinyLFU(cap=2)
        cache.put("a", 1)
        cache.put("b", 2)
        # the challenger gets requested more than the LRU victim
        for _ in range(5):
            cache.get_touch("challenger")
        assert cache.put("challenger", 3) is True
        assert "challenger" in cache._store
        assert len(cache) == 2

    def test_update_of_resident_key_is_not_an_admission(self):
        cache = _TinyLFU(cap=2)
        cache.put("a", 1)
        admitted_before = cache.admitted
        assert cache.put("a", 2) is True
        assert cache.admitted == admitted_before
        assert cache.get_touch("a") == 2

    def test_hit_miss_counters(self):
        cache = _TinyLFU(cap=4)
        cache.put("a", 1)
        assert cache.get_touch("a") == 1
        assert cache.get_touch("b") is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_zipfian_hit_rate_beats_plain_lru(self):
        """The reason for the swap: scans must not churn the hot head."""
        import numpy as np

        rng = np.random.default_rng(42)
        # 8 hot keys recurring through a long tail of one-off keys
        trace: list[str] = []
        tail = 0
        for _ in range(3000):
            if rng.random() < 0.5:
                trace.append(f"hot{rng.integers(8)}")
            else:
                trace.append(f"tail{tail}")
                tail += 1

        def run_lru(cap: int) -> float:
            store: OrderedDict = OrderedDict()
            hits = 0
            for key in trace:
                if key in store:
                    store.move_to_end(key)
                    hits += 1
                else:
                    if len(store) >= cap:
                        store.popitem(last=False)
                    store[key] = key
            return hits / len(trace)

        def run_tinylfu(cap: int) -> float:
            cache = _TinyLFU(cap)
            for key in trace:
                if cache.get_touch(key) is None:
                    cache.put(key, key)
            return cache.hits / len(trace)

        cap = 16
        lru_rate, tinylfu_rate = run_lru(cap), run_tinylfu(cap)
        # every hot recurrence that plain LRU loses to tail churn is a
        # hit here; demand a solid margin, not a statistical sliver
        assert tinylfu_rate > lru_rate + 0.10, (
            f"TinyLFU {tinylfu_rate:.3f} vs LRU {lru_rate:.3f}"
        )
        assert tinylfu_rate > 0.40
