"""Wire-protocol unit tests: parse, encode, round-trip."""

import json
import math

import pytest

from repro.serve.protocol import (
    OPS,
    Query,
    decode_response,
    encode_response,
    parse_request,
    wire_payload,
)


class TestParseRequest:
    def test_minimal_reliability(self):
        rid, q, timeout_ms = parse_request(
            '{"id": 3, "op": "reliability", "source": 1, "target": 2}'
        )
        assert rid == 3
        assert q == Query(op="reliability", source=1, target=2)
        assert timeout_ms is None

    def test_all_fields(self):
        _, q, _ = parse_request(
            json.dumps(
                {
                    "op": "reliability",
                    "source": 0,
                    "target": 5,
                    "max_hops": 3,
                    "worlds": 32,
                    "seed": 9,
                }
            )
        )
        assert q.max_hops == 3 and q.worlds == 32 and q.seed == 9

    def test_every_op_parses(self):
        samples = {
            "degree": {"source": 1},
            "reliability": {"source": 1, "target": 2},
            "khop": {"source": 1, "hops": 2},
            "distance": {"source": 1, "target": 2},
            "knn": {"source": 1, "k": 3},
            "health": {},
        }
        assert set(samples) == set(OPS)
        for op, fields in samples.items():
            _, q, _ = parse_request(json.dumps({"op": op, **fields}))
            assert q.op == op

    def test_timeout_ms(self):
        _, _, timeout_ms = parse_request(
            '{"op": "degree", "source": 1, "timeout_ms": 250}'
        )
        assert timeout_ms == 250
        with pytest.raises(ValueError):
            parse_request('{"op": "degree", "source": 1, "timeout_ms": 0}')
        with pytest.raises(ValueError):
            parse_request('{"op": "degree", "source": 1, "timeout_ms": "1"}')

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"op": "nope", "source": 1}',
            '{"op": "reliability", "source": 1}',
            '{"op": "reliability", "source": "a", "target": 2}',
            '{"op": "reliability", "source": true, "target": 2}',
            '{"op": "khop", "source": 1, "hops": -1}',
            '{"op": "knn", "source": 1, "k": 0}',
            '{"op": "degree", "source": 1, "worlds": 0}',
        ],
    )
    def test_rejects(self, line):
        with pytest.raises(ValueError):
            parse_request(line)


class TestResponses:
    def test_ok_round_trip(self):
        line = encode_response(11, {"result": {"value": 0.5}})
        rid, payload = decode_response(line)
        assert rid == 11 and payload == {"result": {"value": 0.5}}

    def test_error_round_trip(self):
        line = encode_response("x", {"error": "boom"})
        rid, payload = decode_response(line)
        assert rid == "x" and payload == {"error": "boom"}

    def test_every_line_is_strict_json(self):
        payload = {
            "result": wire_payload(
                Query(op="distance", source=0, target=1),
                ({2: 0.25, float("inf"): 0.75}, float("inf"), float("inf")),
            )
        }
        line = encode_response(1, payload)
        obj = json.loads(line, parse_constant=lambda _: pytest.fail("non-strict JSON"))
        assert obj["result"]["distribution"] == {"2": 0.25, "inf": 0.75}
        assert obj["result"]["median"] == "inf"

    def test_distance_distribution_sorted_finite_first(self):
        payload = wire_payload(
            Query(op="distance", source=0, target=1),
            ({float("inf"): 0.5, 3: 0.25, 1: 0.25}, 3.0, 1.0),
        )
        assert list(payload["distribution"]) == ["1", "3", "inf"]
        assert payload["median"] == 3.0 and payload["majority"] == 1.0
        assert not math.isinf(payload["median"])
