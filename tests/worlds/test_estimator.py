"""End-to-end equivalence: batched estimator vs the sequential ground truth.

The tentpole acceptance criterion: same seed ⇒ same worlds ⇒ Table-4
values within 1e-9, for every distance backend and any chunking.
"""

import numpy as np
import pytest

from repro.stats.degree import num_edges
from repro.stats.registry import PAPER_STATISTIC_NAMES, paper_statistics
from repro.stats.sampling import WorldStatisticsEstimator
from repro.worlds import BATCHED_STATISTIC_NAMES, BatchedWorldStatisticsEstimator

from tests.worlds.conftest import random_uncertain


def _run_pair(uncertain, *, distance_backend, worlds, seed, chunk_size=32):
    stats = paper_statistics(distance_backend=distance_backend, seed=seed)
    sequential = WorldStatisticsEstimator(uncertain, stats).run(
        worlds=worlds, seed=seed
    )
    batched = BatchedWorldStatisticsEstimator(
        uncertain,
        stats,
        distance_backend=distance_backend,
        distance_seed=seed,
        chunk_size=chunk_size,
    ).run(worlds=worlds, seed=seed)
    return sequential, batched


class TestTable4Equivalence:
    @pytest.mark.parametrize("distance_backend", ["anf", "exact", "sampled"])
    def test_all_statistics_match(self, denser_uncertain, distance_backend):
        sequential, batched = _run_pair(
            denser_uncertain, distance_backend=distance_backend, worlds=10, seed=4
        )
        assert set(batched) == set(PAPER_STATISTIC_NAMES)
        for name in PAPER_STATISTIC_NAMES:
            np.testing.assert_allclose(
                batched[name].values,
                sequential[name].values,
                atol=1e-9,
                rtol=0,
                err_msg=f"{distance_backend}/{name}",
            )

    def test_property_random_graphs(self):
        """Property sweep: shapes × seeds, per-world values within 1e-9."""
        rng = np.random.default_rng(17)
        for trial in range(5):
            n = int(rng.integers(5, 35))
            pairs = int(rng.integers(4, max(5, n * 2)))
            ug = random_uncertain(n, pairs, seed=100 + trial)
            seed = int(rng.integers(0, 2**31))
            sequential, batched = _run_pair(
                ug, distance_backend="anf", worlds=6, seed=seed, chunk_size=4
            )
            for name in PAPER_STATISTIC_NAMES:
                np.testing.assert_allclose(
                    batched[name].values,
                    sequential[name].values,
                    atol=1e-9,
                    rtol=0,
                    err_msg=f"trial {trial}: {name}",
                )

    @pytest.mark.parametrize("chunk_size", [1, 3, 100])
    def test_chunking_does_not_change_results(self, denser_uncertain, chunk_size):
        _, reference = _run_pair(
            denser_uncertain, distance_backend="anf", worlds=7, seed=0
        )
        _, chunked = _run_pair(
            denser_uncertain,
            distance_backend="anf",
            worlds=7,
            seed=0,
            chunk_size=chunk_size,
        )
        for name in PAPER_STATISTIC_NAMES:
            np.testing.assert_array_equal(
                chunked[name].values, reference[name].values
            )


class TestBatchedEstimator:
    def test_default_statistics_are_paper_family(self, denser_uncertain):
        est = BatchedWorldStatisticsEstimator(denser_uncertain)
        out = est.run(worlds=3, seed=0)
        assert set(out) == set(PAPER_STATISTIC_NAMES)

    def test_unknown_statistic_falls_back_to_callable(self, denser_uncertain):
        est = BatchedWorldStatisticsEstimator(
            denser_uncertain, {"S_NE": num_edges, "halved": lambda g: g.num_edges / 2}
        )
        out = est.run(worlds=5, seed=1)
        np.testing.assert_allclose(out["halved"].values, out["S_NE"].values / 2)

    def test_collect_worlds(self, denser_uncertain):
        est = BatchedWorldStatisticsEstimator(denser_uncertain, chunk_size=2)
        est.run(worlds=5, seed=0, collect_worlds=True)
        assert len(est.last_worlds) == 5
        counts = [g.num_edges for g in est.last_worlds]
        out = est.run(worlds=5, seed=0)
        np.testing.assert_array_equal(counts, out["S_NE"].values)

    def test_zero_worlds_rejected(self, denser_uncertain):
        with pytest.raises(ValueError):
            BatchedWorldStatisticsEstimator(denser_uncertain).run(worlds=0)

    def test_bad_chunk_size_rejected(self, denser_uncertain):
        with pytest.raises(ValueError):
            BatchedWorldStatisticsEstimator(denser_uncertain, chunk_size=0)

    def test_bad_backend_rejected(self, denser_uncertain):
        with pytest.raises(ValueError):
            BatchedWorldStatisticsEstimator(
                denser_uncertain, distance_backend="bogus"
            )

    def test_batched_names_cover_paper_family(self):
        assert BATCHED_STATISTIC_NAMES == frozenset(PAPER_STATISTIC_NAMES)

    def test_family_option_conflict_rejected(self, denser_uncertain):
        """Silently diverging from the family's configuration is an error."""
        family = paper_statistics(distance_backend="anf", seed=0)
        with pytest.raises(ValueError, match="conflicts"):
            BatchedWorldStatisticsEstimator(
                denser_uncertain, family, distance_backend="exact"
            )
        with pytest.raises(ValueError, match="conflicts"):
            BatchedWorldStatisticsEstimator(denser_uncertain, family, distance_seed=1)

    def test_family_config_adopted(self, denser_uncertain):
        """A sampled-backend family runs its own sample_size, no options needed."""
        family = paper_statistics(distance_backend="sampled", sample_size=16, seed=3)
        sequential = WorldStatisticsEstimator(denser_uncertain, family).run(
            worlds=5, seed=2
        )
        batched = BatchedWorldStatisticsEstimator(denser_uncertain, family).run(
            worlds=5, seed=2
        )
        for name in PAPER_STATISTIC_NAMES:
            np.testing.assert_allclose(
                batched[name].values, sequential[name].values, atol=1e-9, rtol=0,
                err_msg=name,
            )

    def test_plain_mapping_honours_custom_callable_under_paper_name(
        self, denser_uncertain
    ):
        """No kernel substitution for non-family mappings (e.g. transitivity
        bound to the S_CC name must run as given)."""
        from repro.graphs.triangles import transitivity

        mapping = {"S_CC": transitivity}
        sequential = WorldStatisticsEstimator(denser_uncertain, mapping).run(
            worlds=5, seed=1
        )
        batched = BatchedWorldStatisticsEstimator(denser_uncertain, mapping).run(
            worlds=5, seed=1
        )
        np.testing.assert_allclose(
            batched["S_CC"].values, sequential["S_CC"].values, atol=1e-12, rtol=0
        )


class TestFrontendWiring:
    def test_backend_selection(self, denser_uncertain):
        stats = paper_statistics(distance_backend="anf", seed=2)
        seq = WorldStatisticsEstimator(denser_uncertain, stats)
        bat = WorldStatisticsEstimator(
            denser_uncertain,
            stats,
            backend="batched",
            distance_backend="anf",
            distance_seed=2,
        )
        a = seq.run(worlds=6, seed=8)
        b = bat.run(worlds=6, seed=8)
        for name in PAPER_STATISTIC_NAMES:
            np.testing.assert_allclose(
                b[name].values, a[name].values, atol=1e-9, rtol=0
            )

    def test_collect_worlds_via_frontend(self, denser_uncertain):
        est = WorldStatisticsEstimator(
            denser_uncertain, {"S_NE": num_edges}, backend="batched"
        )
        est.run(worlds=4, seed=0, collect_worlds=True)
        assert len(est.last_worlds) == 4

    def test_unknown_backend_rejected(self, denser_uncertain):
        with pytest.raises(ValueError, match="backend"):
            WorldStatisticsEstimator(
                denser_uncertain, {"S_NE": num_edges}, backend="turbo"
            )

    def test_options_require_batched(self, denser_uncertain):
        with pytest.raises(ValueError, match="batched"):
            WorldStatisticsEstimator(
                denser_uncertain, {"S_NE": num_edges}, chunk_size=4
            )


class TestAutoChunkBound:
    """Auto chunk_size must track the statistics actually evaluated."""

    @staticmethod
    def _eval_chunks(engine, batch, names):
        from repro.obs.metrics import REGISTRY, reset_metrics

        reset_metrics()
        engine.evaluate(batch, names)
        return REGISTRY.get("worlds.eval.chunks")

    @staticmethod
    def _large_n_batch(worlds=4):
        # n large enough that the old ANF register bound (2MB / (n<<6))
        # forced 1-world slices; m stays tiny so the new keep-matrix
        # bound does not chunk at all.
        from repro.uncertain import UncertainGraph
        from repro.worlds import WorldBatch

        n = 20_000
        us = np.arange(20, dtype=np.int64)
        vs = us + 1
        ug = UncertainGraph.from_arrays(
            n, us, vs, np.full(20, 0.5, dtype=np.float64)
        )
        return WorldBatch.sample(ug, worlds, seed=0)

    def test_degree_only_does_not_pay_anf_bound(self):
        from repro.worlds.estimator import BatchStatisticsEngine

        engine = BatchStatisticsEngine(distance_backend="anf")
        batch = self._large_n_batch()
        assert self._eval_chunks(engine, batch, ["S_NE", "S_AD"]) == 1

    def test_sampled_backend_does_not_pay_anf_bound(self):
        from repro.worlds.estimator import BatchStatisticsEngine

        engine = BatchStatisticsEngine(
            distance_backend="sampled", sample_size=4
        )
        batch = self._large_n_batch()
        assert self._eval_chunks(engine, batch, ["S_APD"]) == 1

    def test_anf_distance_still_pays_register_bound(self):
        from repro.worlds.estimator import BatchStatisticsEngine

        engine = BatchStatisticsEngine(distance_backend="anf")
        batch = self._large_n_batch()
        assert self._eval_chunks(engine, batch, ["S_APD"]) == batch.num_worlds

    def test_values_identical_across_the_bound_change(self):
        from repro.worlds.estimator import BatchStatisticsEngine

        engine = BatchStatisticsEngine(
            distance_backend="sampled", sample_size=4
        )
        batch = self._large_n_batch(worlds=3)
        auto, _ = engine.evaluate(batch, ["S_NE", "S_APD"])
        forced, _ = engine.evaluate(batch, ["S_NE", "S_APD"], chunk_size=1)
        for name in auto:
            np.testing.assert_array_equal(auto[name], forced[name])
