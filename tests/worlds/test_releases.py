"""Seed-equivalence and shape tests for the batched release engine.

The contract under test: :func:`repro.worlds.releases.sample_releases`
consumes the RNG stream exactly as ``W`` sequential single-release
calls with a shared generator, so equal seeds give identical releases
edge-for-edge — the property that lets Table 6 run on the batched
kernels while the sequential functions stay the pinned ground truth.
"""

import numpy as np
import pytest

from repro.baselines.randomization import (
    addition_probability,
    decode_pair_indices,
    random_perturbation,
    random_sparsification,
    sample_addition_indices,
)
from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph, pair_index
from repro.utils.rng import as_rng
from repro.worlds.releases import (
    RELEASE_SCHEMES,
    _merge_sorted_unique,
    sample_releases,
    stream_releases,
)

SEQUENTIAL = {
    "sparsification": random_sparsification,
    "perturbation": random_perturbation,
}


def _sequential_releases(graph, scheme, p, worlds, seed):
    rng = as_rng(seed)
    return [SEQUENTIAL[scheme](graph, p, seed=rng) for _ in range(worlds)]


class TestPrimitives:
    @pytest.mark.parametrize("n", [2, 3, 5, 31, 200])
    def test_decode_inverts_pair_index(self, n):
        idx = np.arange(n * (n - 1) // 2, dtype=np.int64)
        us, vs = decode_pair_indices(idx, n)
        assert (us < vs).all()
        assert us.min() >= 0 and vs.max() < n
        round_trip = [pair_index(int(u), int(v), n) for u, v in zip(us, vs)]
        np.testing.assert_array_equal(round_trip, idx)

    def test_addition_indices_deterministic_and_increasing(self):
        a = sample_addition_indices(as_rng(3), 100_000, 0.002)
        b = sample_addition_indices(as_rng(3), 100_000, 0.002)
        np.testing.assert_array_equal(a, b)
        assert (np.diff(a) > 0).all()
        assert a.min() >= 0 and a.max() < 100_000

    def test_addition_indices_rate(self):
        hits = sample_addition_indices(as_rng(0), 1_000_000, 0.001)
        assert 850 <= len(hits) <= 1150  # ±5 sigma around 1000

    def test_addition_indices_edge_probabilities(self):
        assert len(sample_addition_indices(as_rng(0), 50, 0.0)) == 0
        np.testing.assert_array_equal(
            sample_addition_indices(as_rng(0), 50, 1.0), np.arange(50)
        )
        assert len(sample_addition_indices(as_rng(0), 0, 0.5)) == 0


class TestSeedEquivalence:
    """Hypothesis-style grid over (n, p_edge, p, seed, W) per scheme."""

    GRID = [
        (30, 0.15, 0.3, 0, 6),
        (60, 0.08, 0.64, 1, 5),
        (25, 0.3, 0.04, 7, 8),
        (45, 0.1, 0.9, 11, 4),
    ]

    @pytest.mark.parametrize("scheme", RELEASE_SCHEMES)
    @pytest.mark.parametrize("n,p_edge,p,seed,worlds", GRID)
    def test_batched_matches_sequential(self, scheme, n, p_edge, p, seed, worlds):
        graph = erdos_renyi(n, p_edge, seed=seed)
        batch = sample_releases(graph, scheme, p, worlds, seed=(seed, 99))
        expected = _sequential_releases(graph, scheme, p, worlds, (seed, 99))
        assert batch.num_worlds == worlds
        for w in range(worlds):
            assert batch.world_graph(w) == expected[w], (scheme, w)

    @pytest.mark.parametrize("scheme", RELEASE_SCHEMES)
    @pytest.mark.parametrize("p", [0.0, 1.0])
    def test_degenerate_probabilities(self, scheme, p):
        graph = erdos_renyi(40, 0.1, seed=2)
        batch = sample_releases(graph, scheme, p, 3, seed=0)
        expected = _sequential_releases(graph, scheme, p, 3, 0)
        for w in range(3):
            assert batch.world_graph(w) == expected[w]

    @pytest.mark.parametrize("scheme", RELEASE_SCHEMES)
    def test_edgeless_graph(self, scheme):
        graph = Graph(12)
        batch = sample_releases(graph, scheme, 0.5, 4, seed=1)
        for w in range(4):
            assert batch.world_graph(w).num_edges == 0

    def test_dense_graph_addition_rate_clamped(self):
        """p_add = p·|E|/(non-edges) can exceed 1 on dense graphs."""
        graph = Graph.from_edges(
            8, [(i, j) for i in range(8) for j in range(i + 1, 8) if (i + j) % 3]
        )
        assert 0.9 * addition_probability(graph) > 1.0
        batch = sample_releases(graph, "perturbation", 0.9, 4, seed=5)
        expected = _sequential_releases(graph, "perturbation", 0.9, 4, 5)
        for w in range(4):
            assert batch.world_graph(w) == expected[w]

    def test_shared_generator_interleaves(self):
        """Batch draws then sequential draws continue one stream exactly."""
        graph = erdos_renyi(30, 0.2, seed=0)
        rng_a = as_rng(123)
        batch = sample_releases(graph, "perturbation", 0.3, 3, seed=rng_a)
        follow_on = random_perturbation(graph, 0.3, seed=rng_a)
        rng_b = as_rng(123)
        expected = _sequential_releases(graph, "perturbation", 0.3, 3, rng_b)
        for w in range(3):
            assert batch.world_graph(w) == expected[w]
        assert follow_on == random_perturbation(graph, 0.3, seed=rng_b)


class TestBatchShape:
    def test_perturbation_additions_only_original_non_edges(self):
        graph = erdos_renyi(40, 0.15, seed=3)
        batch = sample_releases(graph, "perturbation", 0.5, 6, seed=9)
        original = graph.edge_set()
        for w in range(6):
            added = batch.world_graph(w).edge_set() - original
            assert all(not graph.has_edge(u, v) for u, v in added)

    def test_sparsification_candidates_are_original_edges(self):
        graph = erdos_renyi(40, 0.15, seed=3)
        batch = sample_releases(graph, "sparsification", 0.5, 6, seed=9)
        assert batch.num_candidate_pairs == graph.num_edges
        for w in range(6):
            assert batch.world_graph(w).edge_set() <= graph.edge_set()

    def test_zero_worlds(self):
        graph = erdos_renyi(20, 0.2, seed=0)
        for scheme in RELEASE_SCHEMES:
            assert sample_releases(graph, scheme, 0.3, 0, seed=0).num_worlds == 0

    def test_rejects_bad_inputs(self):
        graph = erdos_renyi(20, 0.2, seed=0)
        with pytest.raises(ValueError):
            sample_releases(graph, "bogus", 0.3, 2, seed=0)
        with pytest.raises(ValueError):
            sample_releases(graph, "sparsification", 1.5, 2, seed=0)
        with pytest.raises(ValueError):
            sample_releases(graph, "sparsification", 0.3, -1, seed=0)


class TestSlicing:
    def test_slice_values_match_full_batch(self):
        graph = erdos_renyi(35, 0.2, seed=4)
        batch = sample_releases(graph, "perturbation", 0.4, 9, seed=2)
        sub = batch.slice(3, 7)
        assert sub.num_worlds == 4
        for i, w in enumerate(range(3, 7)):
            assert sub.world_graph(i) == batch.world_graph(w)

    def test_slice_bounds_checked(self):
        graph = erdos_renyi(10, 0.3, seed=0)
        batch = sample_releases(graph, "sparsification", 0.5, 4, seed=0)
        with pytest.raises(IndexError):
            batch.slice(2, 6)
        with pytest.raises(IndexError):
            batch.slice(-1, 2)


class TestStreaming:
    """stream_releases: same releases, bounded chunks, same statistics."""

    @pytest.mark.parametrize("scheme", RELEASE_SCHEMES)
    @pytest.mark.parametrize("chunk_size", [1, 3, 5, 100])
    def test_stream_matches_monolithic_releases(self, scheme, chunk_size):
        graph = erdos_renyi(40, 0.15, seed=3)
        worlds = 11
        full = sample_releases(graph, scheme, 0.45, worlds, seed=(3, 5))
        chunks = list(
            stream_releases(
                graph, scheme, 0.45, worlds, seed=(3, 5), chunk_size=chunk_size
            )
        )
        assert sum(c.num_worlds for c in chunks) == worlds
        assert all(c.num_worlds <= chunk_size for c in chunks)
        w = 0
        for chunk in chunks:
            for i in range(chunk.num_worlds):
                assert chunk.world_graph(i) == full.world_graph(w)
                w += 1

    def test_stream_union_is_chunk_local(self):
        """No chunk's candidate columns cover another chunk's additions —
        the memory bound the streaming mode exists for."""
        graph = erdos_renyi(50, 0.1, seed=1)
        full = sample_releases(graph, "perturbation", 0.9, 12, seed=9)
        chunks = list(
            stream_releases(graph, "perturbation", 0.9, 12, seed=9, chunk_size=3)
        )
        assert max(c.num_candidate_pairs for c in chunks) < full.num_candidate_pairs

    def test_streaming_statistics_match_materialised(self):
        """evaluate_stream over stream_releases == evaluate over the
        monolithic batch, for every paper statistic."""
        from repro.stats.registry import paper_statistics
        from repro.worlds.estimator import BatchStatisticsEngine

        graph = erdos_renyi(45, 0.12, seed=6)
        stats = paper_statistics(distance_backend="anf", seed=0)
        names = list(stats)
        engine = BatchStatisticsEngine(stats)
        full = sample_releases(graph, "perturbation", 0.6, 10, seed=(6, 1))
        expected, _ = engine.evaluate(full, names)
        streamed = engine.evaluate_stream(
            stream_releases(
                graph, "perturbation", 0.6, 10, seed=(6, 1), chunk_size=3
            ),
            names,
        )
        for name in names:
            np.testing.assert_allclose(
                streamed[name], expected[name], rtol=0, atol=1e-9
            )

    def test_stream_empty_and_validation(self):
        graph = erdos_renyi(10, 0.3, seed=0)
        assert list(stream_releases(graph, "sparsification", 0.5, 0, seed=0)) == []
        with pytest.raises(ValueError):
            list(stream_releases(graph, "sparsification", 0.5, 4, chunk_size=0))
        with pytest.raises(ValueError):
            list(stream_releases(graph, "smoothing", 0.5, 4, seed=0))


class TestMergeSortedUnique:
    def test_matches_numpy_union(self):
        rng = np.random.default_rng(0)
        union = np.empty(0, dtype=np.int64)
        seen = []
        for _ in range(20):
            codes = np.unique(rng.integers(0, 200, size=rng.integers(0, 30)))
            seen.append(codes)
            union = _merge_sorted_unique(union, codes)
            np.testing.assert_array_equal(union, np.unique(np.concatenate(seen)))

    def test_empty_sides(self):
        a = np.array([1, 5, 9], dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        np.testing.assert_array_equal(_merge_sorted_unique(empty, a), a)
        np.testing.assert_array_equal(_merge_sorted_unique(a, empty), a)
