"""Shared fixtures for the batched possible-world engine tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.uncertain.graph import UncertainGraph


def random_uncertain(
    n: int, pairs: int, seed: int, *, certain_fraction: float = 0.2
) -> UncertainGraph:
    """A random sparse uncertain graph with a mix of certain/fractional pairs."""
    rng = np.random.default_rng(seed)
    chosen: dict[tuple[int, int], float] = {}
    while len(chosen) < pairs:
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u == v:
            continue
        p = 1.0 if rng.random() < certain_fraction else float(rng.random())
        chosen[(min(u, v), max(u, v))] = p
    return UncertainGraph.from_pairs(n, [(u, v, p) for (u, v), p in chosen.items()])


@pytest.fixture
def small_uncertain() -> UncertainGraph:
    """~50 vertices, 150 candidate pairs — big enough for real structure."""
    return random_uncertain(50, 150, seed=7)


@pytest.fixture
def denser_uncertain() -> UncertainGraph:
    """Denser graph (triangles, short distances) for the stat kernels."""
    return random_uncertain(30, 180, seed=11)
