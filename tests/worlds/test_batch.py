"""Tests for :class:`repro.worlds.WorldBatch` — sampling determinism.

The load-bearing property: a batch drawn with seed ``s`` reproduces the
*exact* edge sets of ``WorldSampler.sample_many`` with the same seed
(ISSUE 2 satellite).  Everything downstream (statistics equivalence)
rests on it.
"""

import numpy as np
import pytest

from repro.uncertain.graph import UncertainGraph
from repro.uncertain.sampling import WorldSampler
from repro.worlds import WorldBatch

from tests.worlds.conftest import random_uncertain


class TestSeedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 42, 2**40 + 3])
    def test_reproduces_sample_many(self, small_uncertain, seed):
        W = 9
        batch = WorldBatch.sample(small_uncertain, W, seed=seed)
        sequential = list(WorldSampler(small_uncertain).sample_many(W, seed=seed))
        for w in range(W):
            assert batch.world_graph(w) == sequential[w]

    def test_property_random_graphs(self):
        """Property test over random graph shapes and seeds."""
        rng = np.random.default_rng(99)
        for trial in range(10):
            n = int(rng.integers(2, 40))
            pairs = int(rng.integers(0, max(1, n * (n - 1) // 4)))
            ug = random_uncertain(n, pairs, seed=trial) if pairs else UncertainGraph(n)
            seed = int(rng.integers(0, 2**31))
            W = int(rng.integers(1, 12))
            batch = WorldBatch.sample(ug, W, seed=seed)
            sequential = list(WorldSampler(ug).sample_many(W, seed=seed))
            for w in range(W):
                assert batch.world_graph(w) == sequential[w]

    def test_shared_generator_interleaves(self, small_uncertain):
        """Drawing from one Generator consumes the same stream positions."""
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        batch = WorldBatch.sample(small_uncertain, 6, seed=rng_a)
        sequential = list(WorldSampler(small_uncertain).sample_many(6, seed=rng_b))
        for w in range(6):
            assert batch.world_graph(w) == sequential[w]
        # both generators must now be at the same stream position
        assert rng_a.random() == rng_b.random()


class TestViews:
    def test_shapes(self, small_uncertain):
        batch = WorldBatch.sample(small_uncertain, 5, seed=0)
        assert batch.num_worlds == 5
        assert batch.num_vertices == small_uncertain.num_vertices
        assert batch.num_candidate_pairs == small_uncertain.num_candidate_pairs
        assert batch.keep_matrix().shape == (5, batch.num_candidate_pairs)

    def test_bitpack_roundtrip(self, small_uncertain):
        batch = WorldBatch.sample(small_uncertain, 7, seed=3)
        keep = batch.keep_matrix()
        for w in range(7):
            np.testing.assert_array_equal(batch.world_mask(w), keep[w])
        # packed storage is 8x smaller than the boolean matrix
        assert batch.nbytes <= keep.size // 8 + 7 * 1

    def test_edge_counts_match_masks(self, small_uncertain):
        batch = WorldBatch.sample(small_uncertain, 11, seed=1)
        np.testing.assert_array_equal(
            batch.edge_counts(), batch.keep_matrix().sum(axis=1)
        )

    def test_flat_edges_consistent(self, small_uncertain):
        batch = WorldBatch.sample(small_uncertain, 4, seed=2)
        w_idx, us, vs = batch.flat_edges()
        assert len(w_idx) == int(batch.edge_counts().sum())
        for w in range(4):
            mask = w_idx == w
            got = set(zip(us[mask].tolist(), vs[mask].tolist()))
            assert got == batch.world_graph(w).edge_set()

    def test_csr_matches_per_world_graphs(self, small_uncertain):
        batch = WorldBatch.sample(small_uncertain, 3, seed=4)
        indptr, indices = batch.csr()
        n = batch.num_vertices
        assert len(indptr) == 3 * n + 1
        for w in range(3):
            g_indptr, g_indices = batch.world_graph(w).to_csr()
            lo, hi = indptr[w * n], indptr[(w + 1) * n]
            np.testing.assert_array_equal(indptr[w * n : (w + 1) * n + 1] - lo,
                                          g_indptr)
            np.testing.assert_array_equal(indices[lo:hi] - w * n, g_indices)

    def test_world_mask_bounds(self, small_uncertain):
        batch = WorldBatch.sample(small_uncertain, 2, seed=0)
        with pytest.raises(IndexError):
            batch.world_mask(2)
        with pytest.raises(IndexError):
            batch.world_mask(-1)


class TestEdgeCases:
    def test_empty_candidate_set(self):
        batch = WorldBatch.sample(UncertainGraph(6), 4, seed=0)
        assert batch.num_candidate_pairs == 0
        np.testing.assert_array_equal(batch.edge_counts(), np.zeros(4))
        assert all(g.num_edges == 0 for g in batch.graphs())

    def test_zero_worlds(self, small_uncertain):
        batch = WorldBatch.sample(small_uncertain, 0, seed=0)
        assert batch.num_worlds == 0
        assert list(batch.graphs()) == []

    def test_negative_worlds_rejected(self, small_uncertain):
        with pytest.raises(ValueError):
            WorldBatch.sample(small_uncertain, -1, seed=0)

    def test_certain_and_impossible_pairs(self):
        ug = UncertainGraph(3)
        ug.set_probability(0, 1, 1.0)
        ug.set_probability(1, 2, 0.0, keep_zero=True)
        batch = WorldBatch.sample(ug, 8, seed=0)
        for g in batch.graphs():
            assert g.has_edge(0, 1) and not g.has_edge(1, 2)

    def test_from_keep_matrix_shape_check(self, small_uncertain):
        us, vs, _ = small_uncertain.pair_arrays()
        with pytest.raises(ValueError, match="keep matrix"):
            WorldBatch.from_keep_matrix(
                small_uncertain.num_vertices, us, vs, np.ones((2, 3), dtype=bool)
            )


class TestUnionIncidence:
    """The cached sorted union structure behind csr()."""

    def test_union_shared_across_slices(self, small_uncertain):
        batch = WorldBatch.sample(small_uncertain, 8, seed=0)
        first = batch.slice(0, 3)
        second = batch.slice(3, 8)
        union = first.union_incidence()
        # one sort per candidate-pair set: every view sees the same object
        assert second.union_incidence() is union
        assert batch.union_incidence() is union

    def test_union_shared_when_built_before_slicing(self, small_uncertain):
        batch = WorldBatch.sample(small_uncertain, 6, seed=1)
        union = batch.union_incidence()
        assert batch.slice(1, 4).union_incidence() is union

    def test_sliced_csr_matches_full_batch_csr(self, small_uncertain):
        batch = WorldBatch.sample(small_uncertain, 6, seed=2)
        indptr, indices = batch.csr()
        n = batch.num_vertices
        sub = batch.slice(2, 5)
        sub_indptr, sub_indices = sub.csr()
        for w_sub, w in enumerate(range(2, 5)):
            lo, hi = indptr[w * n], indptr[(w + 1) * n]
            s_lo, s_hi = sub_indptr[w_sub * n], sub_indptr[(w_sub + 1) * n]
            # same neighbour lists modulo the world-offset convention
            np.testing.assert_array_equal(
                indices[lo:hi] - w * n, sub_indices[s_lo:s_hi] - w_sub * n
            )

    def test_union_slot_order_is_head_then_tail(self, small_uncertain):
        batch = WorldBatch.sample(small_uncertain, 2, seed=3)
        union = batch.union_incidence()
        keys = union.heads * np.int64(batch.num_vertices) + union.tails
        assert (np.diff(keys) > 0).all()
        # each candidate pair contributes exactly two directed incidences
        assert len(union.pair) == 2 * batch.num_candidate_pairs
