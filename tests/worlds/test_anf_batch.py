"""Multi-world HyperANF vs per-world sequential runs (must be identical)."""

import numpy as np
import pytest

from repro.anf.distance_stats import anf_distance_histogram
from repro.anf.hyperanf import hyperanf
from repro.stats.distance import (
    average_distance,
    connectivity_length,
    diameter,
    effective_diameter,
)
from repro.uncertain.graph import UncertainGraph
from repro.worlds import WorldBatch, anf_distance_statistics_batch, hyperanf_batch
from repro.worlds.anf_batch import DISTANCE_STATISTIC_NAMES


@pytest.fixture
def batch(small_uncertain):
    return WorldBatch.sample(small_uncertain, 8, seed=9)


class TestHyperanfBatch:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_matches_per_world_runs(self, batch, seed):
        nfs = hyperanf_batch(batch, b=6, seed=seed)
        for w, g in enumerate(batch.graphs()):
            ref = hyperanf(g, b=6, seed=seed)
            assert nfs[w].converged_at == ref.converged_at, w
            np.testing.assert_array_equal(nfs[w].values, ref.values)

    def test_max_steps_cap(self, batch):
        nfs = hyperanf_batch(batch, max_steps=1)
        for w, g in enumerate(batch.graphs()):
            ref = hyperanf(g, max_steps=1)
            assert nfs[w].converged_at == ref.converged_at
            np.testing.assert_array_equal(nfs[w].values, ref.values)

    def test_mixed_convergence_times(self):
        """One empty world freezes at step 0 while a path keeps diffusing."""
        ug = UncertainGraph.from_pairs(
            5, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (3, 4, 0.5)]
        )
        batch = WorldBatch.sample(ug, 16, seed=2)
        nfs = hyperanf_batch(batch)
        refs = [hyperanf(g) for g in batch.graphs()]
        assert len({nf.converged_at for nf in nfs}) > 1  # genuinely mixed
        for nf, ref in zip(nfs, refs):
            assert nf.converged_at == ref.converged_at
            np.testing.assert_array_equal(nf.values, ref.values)

    def test_empty_batch(self, small_uncertain):
        assert hyperanf_batch(WorldBatch.sample(small_uncertain, 0, seed=0)) == []

    def test_no_vertices(self):
        batch = WorldBatch.sample(UncertainGraph(0), 3, seed=0)
        nfs = hyperanf_batch(batch)
        assert len(nfs) == 3
        assert all(nf.converged_at == 0 for nf in nfs)


class TestDistanceStatistics:
    def test_matches_sequential_histogram_path(self, batch):
        out = anf_distance_statistics_batch(batch, seed=3)
        stats = {
            "S_APD": average_distance,
            "S_DiamLB": diameter,
            "S_EDiam": effective_diameter,
            "S_CL": connectivity_length,
        }
        for w, g in enumerate(batch.graphs()):
            hist = anf_distance_histogram(g, seed=3)
            for name in DISTANCE_STATISTIC_NAMES:
                assert out[name][w] == pytest.approx(
                    stats[name](hist), abs=1e-9
                ), (name, w)
