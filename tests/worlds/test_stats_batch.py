"""Batched degree/triangle kernels vs the sequential statistic callables."""

import numpy as np
import pytest

from repro.graphs.triangles import clustering_coefficient, triangle_count
from repro.stats.degree import (
    average_degree,
    degree_variance,
    max_degree,
    num_edges,
    powerlaw_exponent,
)
from repro.uncertain.graph import UncertainGraph
from repro.worlds import (
    WorldBatch,
    clustering_coefficients_batch,
    degree_matrix,
    degree_statistics_batch,
    triangle_counts_batch,
)

SEQUENTIAL = {
    "S_NE": num_edges,
    "S_AD": average_degree,
    "S_MD": max_degree,
    "S_DV": degree_variance,
    "S_PL": powerlaw_exponent,
}


@pytest.fixture
def batch(denser_uncertain):
    return WorldBatch.sample(denser_uncertain, 12, seed=5)


class TestDegreeMatrix:
    def test_matches_per_world_degrees(self, batch):
        degrees = degree_matrix(batch)
        for w, g in enumerate(batch.graphs()):
            np.testing.assert_array_equal(degrees[w], g.degrees())

    def test_empty_batch(self, denser_uncertain):
        batch = WorldBatch.sample(denser_uncertain, 0, seed=0)
        assert degree_matrix(batch).shape == (0, denser_uncertain.num_vertices)


class TestDegreeFamily:
    def test_matches_registry_callables(self, batch):
        """Satellite acceptance: batched values ≤1e-9 from the callables."""
        out = degree_statistics_batch(batch)
        for name, func in SEQUENTIAL.items():
            expected = [float(func(g)) for g in batch.graphs()]
            np.testing.assert_allclose(
                out[name], expected, atol=1e-9, rtol=0, err_msg=name
            )

    def test_powerlaw_d_min_forwarded(self, batch):
        out = degree_statistics_batch(batch, powerlaw_d_min=3)
        expected = [float(powerlaw_exponent(g, d_min=3)) for g in batch.graphs()]
        np.testing.assert_allclose(out["S_PL"], expected, atol=1e-9, rtol=0)

    def test_no_edges(self):
        ug = UncertainGraph(5)
        batch = WorldBatch.sample(ug, 3, seed=0)
        out = degree_statistics_batch(batch)
        for name in SEQUENTIAL:
            np.testing.assert_array_equal(out[name], np.zeros(3))


class TestTriangles:
    def test_matches_sequential_counter(self, batch):
        counts = triangle_counts_batch(batch)
        expected = [triangle_count(g) for g in batch.graphs()]
        np.testing.assert_array_equal(counts, expected)

    def test_chunking_invariant(self, batch):
        """A pathologically small wedge budget must not change counts."""
        full = triangle_counts_batch(batch)
        tiny = triangle_counts_batch(batch, wedge_budget=17)
        np.testing.assert_array_equal(full, tiny)

    def test_triangle_free(self):
        ug = UncertainGraph.from_pairs(4, [(0, 1, 1.0), (2, 3, 1.0)])
        batch = WorldBatch.sample(ug, 2, seed=0)
        np.testing.assert_array_equal(triangle_counts_batch(batch), [0, 0])

    def test_certain_triangle(self):
        ug = UncertainGraph.from_pairs(
            3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]
        )
        batch = WorldBatch.sample(ug, 3, seed=0)
        np.testing.assert_array_equal(triangle_counts_batch(batch), [1, 1, 1])


class TestClustering:
    def test_matches_sequential(self, batch):
        cc = clustering_coefficients_batch(batch)
        expected = [clustering_coefficient(g) for g in batch.graphs()]
        np.testing.assert_allclose(cc, expected, atol=1e-9, rtol=0)

    def test_k3_is_one(self):
        ug = UncertainGraph.from_pairs(
            3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]
        )
        batch = WorldBatch.sample(ug, 1, seed=0)
        np.testing.assert_allclose(clustering_coefficients_batch(batch), [1.0])

    def test_wedge_only_is_zero(self):
        ug = UncertainGraph.from_pairs(3, [(0, 1, 1.0), (1, 2, 1.0)])
        batch = WorldBatch.sample(ug, 1, seed=0)
        np.testing.assert_allclose(clustering_coefficients_batch(batch), [0.0])
