"""Tests for possible-world sampling (§6.1)."""

import numpy as np
import pytest

from repro.uncertain.graph import UncertainGraph
from repro.uncertain.sampling import WorldSampler, sample_world


class TestWorldSampler:
    def test_certain_pairs_deterministic(self):
        ug = UncertainGraph.from_pairs(3, [(0, 1, 1.0)])
        sampler = WorldSampler(ug)
        for seed in range(5):
            assert sampler.sample(seed=seed).has_edge(0, 1)

    def test_zero_pairs_never_appear(self):
        ug = UncertainGraph(3)
        ug.set_probability(0, 1, 0.0, keep_zero=True)
        sampler = WorldSampler(ug)
        for seed in range(5):
            assert not sampler.sample(seed=seed).has_edge(0, 1)

    def test_empty_graph(self):
        world = WorldSampler(UncertainGraph(4)).sample(seed=0)
        assert world.num_vertices == 4
        assert world.num_edges == 0

    def test_edge_frequency_matches_probability(self):
        ug = UncertainGraph.from_pairs(2, [(0, 1, 0.3)])
        sampler = WorldSampler(ug)
        rng = np.random.default_rng(0)
        hits = sum(sampler.sample(seed=rng).has_edge(0, 1) for _ in range(2000))
        assert hits / 2000 == pytest.approx(0.3, abs=0.04)

    def test_expected_edges_matches_formula(self, fig1b):
        sampler = WorldSampler(fig1b)
        rng = np.random.default_rng(1)
        mean_edges = np.mean(
            [sampler.sample(seed=rng).num_edges for _ in range(3000)]
        )
        assert mean_edges == pytest.approx(fig1b.expected_num_edges(), abs=0.1)

    def test_deterministic_with_seed(self, fig1b):
        a = WorldSampler(fig1b).sample(seed=42)
        b = WorldSampler(fig1b).sample(seed=42)
        assert a == b

    def test_sample_many_yields_count(self, fig1b):
        worlds = list(WorldSampler(fig1b).sample_many(7, seed=0))
        assert len(worlds) == 7

    def test_sample_many_varies(self, fig1b):
        worlds = list(WorldSampler(fig1b).sample_many(20, seed=0))
        assert len({tuple(sorted(w.edges())) for w in worlds}) > 1

    def test_num_candidate_pairs(self, fig1b):
        assert WorldSampler(fig1b).num_candidate_pairs == 5


class TestConvenience:
    def test_sample_world(self, fig1b):
        w = sample_world(fig1b, seed=3)
        assert w.num_vertices == 4
