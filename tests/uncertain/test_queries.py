"""Tests for uncertain-graph query primitives."""

import math

import numpy as np
import pytest

from repro.uncertain.graph import UncertainGraph
from repro.uncertain.queries import (
    k_hop_reachable_size,
    distance_distribution,
    expected_reachable_set_size,
    k_nearest_neighbors,
    majority_distance,
    median_distance,
    reliability,
)


@pytest.fixture
def chain():
    """0 -(1.0)- 1 -(0.5)- 2 : reliability(0,2) = 0.5 exactly."""
    return UncertainGraph.from_pairs(3, [(0, 1, 1.0), (1, 2, 0.5)])


@pytest.fixture
def parallel_paths():
    """Two independent 2-hop routes 0→3: reliability = 1-(1-.25)(1-.25)."""
    return UncertainGraph.from_pairs(
        4,
        [
            (0, 1, 0.5), (1, 3, 0.5),   # route A: prob 0.25
            (0, 2, 0.5), (2, 3, 0.5),   # route B: prob 0.25
        ],
    )


class TestReliability:
    def test_certain_edge(self):
        ug = UncertainGraph.from_pairs(2, [(0, 1, 1.0)])
        assert reliability(ug, 0, 1, worlds=20, seed=0) == 1.0

    def test_impossible(self):
        ug = UncertainGraph(3)
        assert reliability(ug, 0, 2, worlds=20, seed=0) == 0.0

    def test_source_equals_target(self, chain):
        assert reliability(chain, 1, 1, worlds=1, seed=0) == 1.0

    def test_series_probability(self, chain):
        est = reliability(chain, 0, 2, worlds=3000, seed=1)
        assert est == pytest.approx(0.5, abs=0.03)

    def test_parallel_routes(self, parallel_paths):
        expected = 1 - (1 - 0.25) ** 2
        est = reliability(parallel_paths, 0, 3, worlds=4000, seed=2)
        assert est == pytest.approx(expected, abs=0.03)

    def test_hop_constraint(self, chain):
        """Within 1 hop, vertex 2 is never reachable from 0."""
        assert reliability(chain, 0, 2, worlds=200, max_hops=1, seed=3) == 0.0
        est = reliability(chain, 0, 2, worlds=2000, max_hops=2, seed=3)
        assert est == pytest.approx(0.5, abs=0.05)

    def test_invalid_worlds(self, chain):
        with pytest.raises(ValueError):
            reliability(chain, 0, 1, worlds=0)

    def test_invalid_vertex(self, chain):
        with pytest.raises(ValueError):
            reliability(chain, 0, 9)


class TestReachableSetSize:
    def test_certain_component(self):
        ug = UncertainGraph.from_pairs(4, [(0, 1, 1.0), (1, 2, 1.0)])
        est = expected_reachable_set_size(ug, 0, worlds=50, seed=0)
        assert est == pytest.approx(3.0)

    def test_expected_value(self, chain):
        # reachable from 0: always {0,1}; plus 2 with prob 0.5 → E = 2.5
        est = expected_reachable_set_size(chain, 0, worlds=3000, seed=1)
        assert est == pytest.approx(2.5, abs=0.05)

    def test_isolated_vertex(self):
        ug = UncertainGraph(5)
        assert expected_reachable_set_size(ug, 3, worlds=10, seed=0) == 1.0


class TestDistanceDistribution:
    def test_distribution_values(self, chain):
        dist = distance_distribution(chain, 0, 2, worlds=3000, seed=0)
        assert dist[2] == pytest.approx(0.5, abs=0.03)
        assert dist[float("inf")] == pytest.approx(0.5, abs=0.03)

    def test_probabilities_sum_to_one(self, parallel_paths):
        dist = distance_distribution(parallel_paths, 0, 3, worlds=500, seed=1)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_median_distance(self, chain):
        # exactly 0.5 mass at distance 2 → median reports 2 (cum reaches .5)
        med = median_distance(chain, 0, 2, worlds=4000, seed=2)
        assert med in (2.0, float("inf"))

    def test_median_connected(self):
        ug = UncertainGraph.from_pairs(3, [(0, 1, 1.0), (1, 2, 0.9)])
        assert median_distance(ug, 0, 2, worlds=500, seed=0) == 2.0

    def test_majority_distance(self, chain):
        maj = majority_distance(chain, 0, 1, worlds=100, seed=0)
        assert maj == 1.0


class TestKNearestNeighbors:
    def test_certain_graph_ranks_by_distance(self):
        ug = UncertainGraph.from_pairs(
            4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]
        )
        top2 = k_nearest_neighbors(ug, 0, 2, worlds=20, seed=0)
        assert [v for v, _ in top2] == [1, 2]
        assert all(s == 1.0 for _, s in top2)

    def test_supports_bounded(self, parallel_paths):
        result = k_nearest_neighbors(parallel_paths, 0, 2, worlds=200, seed=1)
        assert len(result) == 2
        for _, support in result:
            assert 0.0 <= support <= 1.0

    def test_probable_neighbor_ranked_first(self):
        ug = UncertainGraph.from_pairs(3, [(0, 1, 0.9), (0, 2, 0.2)])
        top = k_nearest_neighbors(ug, 0, 1, worlds=500, seed=2)
        assert top[0][0] == 1

    def test_invalid_k(self, chain):
        with pytest.raises(ValueError):
            k_nearest_neighbors(chain, 0, 0)
        with pytest.raises(ValueError):
            k_nearest_neighbors(chain, 0, 3)

    def test_zero_support_vertices_dropped(self):
        # Vertex 3 is isolated and vertex 0 is the source: neither can
        # ever be among the k closest, so asking for k=3 returns only
        # the two vertices with positive support (no zero-padding).
        ug = UncertainGraph.from_pairs(4, [(0, 1, 1.0), (1, 2, 0.5)])
        top = k_nearest_neighbors(ug, 0, 3, worlds=50, seed=0)
        assert [v for v, _ in top] == [1, 2]
        assert all(s > 0.0 for _, s in top)

    def test_unreachable_source_returns_empty(self):
        ug = UncertainGraph.from_pairs(3, [(1, 2, 1.0)])
        assert k_nearest_neighbors(ug, 0, 2, worlds=20, seed=0) == []


class TestKHopReachableSize:
    def test_certain_chain(self):
        ug = UncertainGraph.from_pairs(
            4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]
        )
        assert k_hop_reachable_size(ug, 0, 0, worlds=5, seed=0) == 1.0
        assert k_hop_reachable_size(ug, 0, 1, worlds=5, seed=0) == 2.0
        assert k_hop_reachable_size(ug, 0, 3, worlds=5, seed=0) == 4.0

    def test_large_hops_matches_reachable_set(self, chain):
        full = expected_reachable_set_size(chain, 0, worlds=300, seed=3)
        hopped = k_hop_reachable_size(chain, 0, chain.num_vertices,
                                      worlds=300, seed=3)
        assert hopped == full

    def test_validation(self, chain):
        with pytest.raises(ValueError, match="hops"):
            k_hop_reachable_size(chain, 0, -1)
        with pytest.raises(ValueError, match="world"):
            k_hop_reachable_size(chain, 0, 1, worlds=0)
