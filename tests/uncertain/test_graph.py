"""Tests for the UncertainGraph model (Definition 1, Equation 1)."""

import math

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.uncertain.graph import UncertainGraph


class TestConstruction:
    def test_from_graph_all_ones(self, triangle):
        ug = UncertainGraph.from_graph(triangle)
        assert ug.num_candidate_pairs == 3
        assert ug.probability(0, 1) == 1.0

    def test_from_pairs(self, fig1b):
        assert fig1b.probability(0, 1) == 0.7
        assert fig1b.probability(1, 0) == 0.7  # symmetric
        assert fig1b.num_candidate_pairs == 5

    def test_missing_pair_is_zero(self, fig1b):
        assert fig1b.probability(2, 3) == 0.0

    def test_copy_independent(self, fig1b):
        clone = fig1b.copy()
        clone.set_probability(0, 1, 0.2)
        assert fig1b.probability(0, 1) == 0.7

    def test_invalid_probability_rejected(self):
        ug = UncertainGraph(3)
        with pytest.raises(ValueError):
            ug.set_probability(0, 1, 1.5)

    def test_self_pair_rejected(self):
        ug = UncertainGraph(3)
        with pytest.raises(ValueError):
            ug.set_probability(1, 1, 0.5)
        with pytest.raises(ValueError):
            ug.probability(2, 2)


class TestZeroHandling:
    def test_zero_removes_pair(self):
        ug = UncertainGraph(3)
        ug.set_probability(0, 1, 0.5)
        ug.set_probability(0, 1, 0.0)
        assert ug.num_candidate_pairs == 0

    def test_keep_zero_retains_pair(self):
        ug = UncertainGraph(3)
        ug.set_probability(0, 1, 0.0, keep_zero=True)
        assert ug.num_candidate_pairs == 1
        assert ug.probability(0, 1) == 0.0


class TestExpectations:
    def test_expected_degree(self, fig1b):
        # v1's incident: 0.7 + 0.9 + 0.8
        assert fig1b.expected_degree(0) == pytest.approx(2.4)

    def test_expected_degrees_vector(self, fig1b):
        expected = [2.4, 0.7 + 0.8 + 0.1, 0.9 + 0.8, 0.8 + 0.1]
        assert np.allclose(fig1b.expected_degrees(), expected)

    def test_expected_num_edges(self, fig1b):
        assert fig1b.expected_num_edges() == pytest.approx(3.3)

    def test_incident_probabilities(self, fig1b):
        probs = sorted(fig1b.incident_probabilities(0))
        assert probs == pytest.approx([0.7, 0.8, 0.9])


class TestWorldProbability:
    def test_equation_one(self, fig1b):
        """Pr(W) = Π p(e) · Π (1-p(e)) for W containing only (v1,v2)."""
        world = Graph(4)
        world.add_edge(0, 1)
        expected = 0.7 * (1 - 0.9) * (1 - 0.8) * (1 - 0.8) * (1 - 0.1)
        assert fig1b.world_probability(world) == pytest.approx(expected)

    def test_world_outside_candidates_impossible(self, fig1b):
        world = Graph(4)
        world.add_edge(2, 3)  # p = 0 pair
        assert fig1b.world_probability(world) == 0.0

    def test_mismatched_vertex_count_rejected(self, fig1b):
        with pytest.raises(ValueError):
            fig1b.world_log_probability(Graph(5))

    def test_certain_graph_single_world(self, triangle):
        ug = UncertainGraph.from_graph(triangle)
        assert ug.world_probability(triangle) == pytest.approx(1.0)
        assert ug.world_probability(Graph(3)) == 0.0

    def test_log_probability_consistency(self, fig1b):
        world = Graph(4)
        world.add_edge(0, 2)
        world.add_edge(1, 2)
        log_p = fig1b.world_log_probability(world)
        assert math.exp(log_p) == pytest.approx(fig1b.world_probability(world))


class TestEnumeration:
    def test_probabilities_sum_to_one(self, fig1b):
        total = sum(p for _, p in fig1b.enumerate_worlds())
        assert total == pytest.approx(1.0)

    def test_world_count(self):
        ug = UncertainGraph.from_pairs(3, [(0, 1, 0.5), (1, 2, 0.5)])
        worlds = list(ug.enumerate_worlds())
        assert len(worlds) == 4

    def test_zero_probability_worlds_skipped(self):
        ug = UncertainGraph.from_pairs(3, [(0, 1, 1.0), (1, 2, 0.5)])
        worlds = list(ug.enumerate_worlds())
        # (0,1) always present: only 2 worlds have positive probability
        assert len(worlds) == 2
        assert all(w.has_edge(0, 1) for w, _ in worlds)

    def test_refuses_large_candidate_sets(self):
        ug = UncertainGraph(30)
        for i in range(21):
            ug.set_probability(i, i + 1, 0.5)
        with pytest.raises(ValueError, match="refusing"):
            list(ug.enumerate_worlds())

    def test_expected_edges_matches_enumeration(self, fig1b):
        by_enum = sum(p * w.num_edges for w, p in fig1b.enumerate_worlds())
        assert by_enum == pytest.approx(fig1b.expected_num_edges())
