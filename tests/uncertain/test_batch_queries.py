"""Seed-equivalence suite: batched kernels vs the sequential oracle.

Every function in :mod:`repro.uncertain.batch_queries` must reproduce
its :mod:`repro.uncertain.queries` counterpart *bit-for-bit* at equal
``(seed, worlds)`` — this is the contract the serving layer's
coalescing correctness rests on, so the assertions here use ``==`` on
floats, not tolerances.
"""

import numpy as np
import pytest

from repro.graphs.datasets import dblp_like
from repro.graphs.generators import erdos_renyi
from repro.graphs.traversal import bfs_distances
from repro.core.search import obfuscate
from repro.uncertain import (
    UncertainGraph,
    batch_distance_rows,
    distance_distribution,
    distance_distribution_from_batch,
    expected_reachable_set_size,
    expected_reachable_set_size_from_batch,
    k_hop_reachable_size,
    k_hop_reachable_size_from_batch,
    k_nearest_neighbors,
    k_nearest_neighbors_from_batch,
    majority_distance,
    majority_distance_from_batch,
    median_distance,
    median_distance_from_batch,
    reliability,
    reliability_from_batch,
)
from repro.worlds.batch import WorldBatch

WORLDS = 64
SEED = 20120807


@pytest.fixture(scope="module")
def obfuscated():
    graph = erdos_renyi(60, 0.1, seed=7)
    result = obfuscate(graph, k=3, eps=0.25, seed=11, attempts=2, delta=0.05)
    return result.uncertain


@pytest.fixture(scope="module")
def batch(obfuscated):
    return WorldBatch.sample(obfuscated, WORLDS, seed=SEED)


class TestDistanceRows:
    def test_rows_match_per_world_bfs(self, obfuscated, batch):
        dist = batch_distance_rows(batch, 0)
        assert dist.shape == (WORLDS, obfuscated.num_vertices)
        for w in (0, 1, WORLDS // 2, WORLDS - 1):
            expected = bfs_distances(batch.world_graph(w), 0)
            np.testing.assert_array_equal(dist[w], expected)

    def test_source_row_zero(self, batch):
        dist = batch_distance_rows(batch, 5)
        assert (dist[:, 5] == 0).all()

    def test_bad_source_rejected(self, batch):
        with pytest.raises(ValueError):
            batch_distance_rows(batch, batch.num_vertices)


class TestSeedEquivalence:
    """Batched answer == sequential oracle answer, exactly."""

    PAIRS = [(0, 1), (3, 17), (10, 42), (2, 59)]

    def test_reliability(self, obfuscated, batch):
        for s, t in self.PAIRS:
            oracle = reliability(obfuscated, s, t, worlds=WORLDS, seed=SEED)
            batched = reliability_from_batch(batch, s, t)
            assert batched == oracle

    def test_reliability_hop_constrained(self, obfuscated, batch):
        for max_hops in (1, 2, 4):
            oracle = reliability(
                obfuscated, 0, 30, worlds=WORLDS, max_hops=max_hops, seed=SEED
            )
            batched = reliability_from_batch(batch, 0, 30, max_hops=max_hops)
            assert batched == oracle

    def test_reliability_same_vertex(self, batch):
        assert reliability_from_batch(batch, 4, 4) == 1.0

    def test_k_hop_reachable_size(self, obfuscated, batch):
        for hops in (0, 1, 2, 5):
            oracle = k_hop_reachable_size(
                obfuscated, 7, hops, worlds=WORLDS, seed=SEED
            )
            batched = k_hop_reachable_size_from_batch(batch, 7, hops)
            assert batched == oracle

    def test_expected_reachable_set_size(self, obfuscated, batch):
        oracle = expected_reachable_set_size(
            obfuscated, 12, worlds=WORLDS, seed=SEED
        )
        batched = expected_reachable_set_size_from_batch(batch, 12)
        assert batched == oracle

    def test_distance_distribution(self, obfuscated, batch):
        for s, t in self.PAIRS:
            oracle = distance_distribution(
                obfuscated, s, t, worlds=WORLDS, seed=SEED
            )
            batched = distance_distribution_from_batch(batch, s, t)
            assert batched == oracle

    def test_median_distance(self, obfuscated, batch):
        for s, t in self.PAIRS:
            oracle = median_distance(obfuscated, s, t, worlds=WORLDS, seed=SEED)
            batched = median_distance_from_batch(batch, s, t)
            assert batched == oracle or (
                np.isinf(oracle) and np.isinf(batched)
            )

    def test_majority_distance(self, obfuscated, batch):
        for s, t in self.PAIRS:
            oracle = majority_distance(
                obfuscated, s, t, worlds=WORLDS, seed=SEED
            )
            batched = majority_distance_from_batch(batch, s, t)
            assert batched == oracle or (
                np.isinf(oracle) and np.isinf(batched)
            )

    def test_k_nearest_neighbors(self, obfuscated, batch):
        for k in (1, 3, 8):
            oracle = k_nearest_neighbors(
                obfuscated, 9, k, worlds=WORLDS, seed=SEED
            )
            batched = k_nearest_neighbors_from_batch(batch, 9, k)
            assert batched == oracle

    def test_shared_dist_rows_identical(self, batch):
        """Precomputed rows (the coalescing path) change nothing."""
        dist = batch_distance_rows(batch, 3)
        assert reliability_from_batch(
            batch, 3, 17, dist=dist
        ) == reliability_from_batch(batch, 3, 17)
        assert k_nearest_neighbors_from_batch(
            batch, 3, 5, dist=dist
        ) == k_nearest_neighbors_from_batch(batch, 3, 5)
        assert distance_distribution_from_batch(
            batch, 3, 17, dist=dist
        ) == distance_distribution_from_batch(batch, 3, 17)


class TestSparseGraph:
    """Disconnection-heavy case: many unreachable worlds and vertices."""

    @pytest.fixture(scope="class")
    def sparse(self):
        pairs = [(0, 1, 0.3), (1, 2, 0.2), (3, 4, 0.1), (5, 6, 0.05)]
        return UncertainGraph.from_pairs(8, pairs)

    def test_all_queries_pin(self, sparse):
        batch = WorldBatch.sample(sparse, 128, seed=99)
        for s, t in [(0, 2), (0, 7), (3, 4), (5, 6)]:
            assert reliability_from_batch(batch, s, t) == reliability(
                sparse, s, t, worlds=128, seed=99
            )
            assert distance_distribution_from_batch(
                batch, s, t
            ) == distance_distribution(sparse, s, t, worlds=128, seed=99)
        for s in (0, 7):
            assert k_nearest_neighbors_from_batch(
                batch, s, 3
            ) == k_nearest_neighbors(sparse, s, 3, worlds=128, seed=99)

    def test_isolated_source_knn_empty(self, sparse):
        batch = WorldBatch.sample(sparse, 32, seed=5)
        assert k_nearest_neighbors_from_batch(batch, 7, 3) == []


class TestSurrogateScale:
    """Spot-check on the surrogate release graph the server will load."""

    def test_dblp_like_pinned(self):
        graph = dblp_like(scale=0.25, seed=0)
        result = obfuscate(graph, k=5, eps=0.3, seed=3, attempts=1, delta=0.1)
        ug = result.uncertain
        batch = WorldBatch.sample(ug, 32, seed=SEED)
        s, t = 1, ug.num_vertices - 2
        assert reliability_from_batch(batch, s, t) == reliability(
            ug, s, t, worlds=32, seed=SEED
        )
        assert k_nearest_neighbors_from_batch(
            batch, s, 10
        ) == k_nearest_neighbors(ug, s, 10, worlds=32, seed=SEED)
