"""Tests for uncertain-graph IO."""

import pytest

from repro.uncertain.graph import UncertainGraph
from repro.uncertain.io import read_uncertain_graph, write_uncertain_graph


class TestRoundTrip:
    def test_probabilities_preserved(self, tmp_path, fig1b):
        path = tmp_path / "ug.txt"
        write_uncertain_graph(fig1b, path)
        back = read_uncertain_graph(path)
        assert back.num_vertices == 4
        for u, v, p in fig1b.candidate_pairs():
            assert back.probability(u, v) == pytest.approx(p)

    def test_full_precision(self, tmp_path):
        ug = UncertainGraph.from_pairs(2, [(0, 1, 0.123456789012345)])
        path = tmp_path / "ug.txt"
        write_uncertain_graph(ug, path)
        assert read_uncertain_graph(path).probability(0, 1) == 0.123456789012345

    def test_isolated_vertices_survive(self, tmp_path):
        ug = UncertainGraph(9)
        ug.set_probability(0, 1, 0.4)
        path = tmp_path / "ug.txt"
        write_uncertain_graph(ug, path)
        assert read_uncertain_graph(path).num_vertices == 9


class TestReading:
    def test_n_override(self, tmp_path, fig1b):
        path = tmp_path / "ug.txt"
        write_uncertain_graph(fig1b, path)
        assert read_uncertain_graph(path, n=11).num_vertices == 11

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(ValueError, match="malformed"):
            read_uncertain_graph(path)

    def test_headerless(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 3 0.25\n")
        ug = read_uncertain_graph(path)
        assert ug.num_vertices == 4
        assert ug.probability(0, 3) == 0.25
