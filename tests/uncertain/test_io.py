"""Tests for uncertain-graph IO."""

import pytest

from repro.uncertain.graph import UncertainGraph
from repro.uncertain.io import read_uncertain_graph, write_uncertain_graph


class TestRoundTrip:
    def test_probabilities_preserved(self, tmp_path, fig1b):
        path = tmp_path / "ug.txt"
        write_uncertain_graph(fig1b, path)
        back = read_uncertain_graph(path)
        assert back.num_vertices == 4
        for u, v, p in fig1b.candidate_pairs():
            assert back.probability(u, v) == pytest.approx(p)

    def test_full_precision(self, tmp_path):
        ug = UncertainGraph.from_pairs(2, [(0, 1, 0.123456789012345)])
        path = tmp_path / "ug.txt"
        write_uncertain_graph(ug, path)
        assert read_uncertain_graph(path).probability(0, 1) == 0.123456789012345

    def test_isolated_vertices_survive(self, tmp_path):
        ug = UncertainGraph(9)
        ug.set_probability(0, 1, 0.4)
        path = tmp_path / "ug.txt"
        write_uncertain_graph(ug, path)
        assert read_uncertain_graph(path).num_vertices == 9


class TestReading:
    def test_n_override(self, tmp_path, fig1b):
        path = tmp_path / "ug.txt"
        write_uncertain_graph(fig1b, path)
        assert read_uncertain_graph(path, n=11).num_vertices == 11

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(ValueError, match="malformed"):
            read_uncertain_graph(path)

    def test_headerless(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 3 0.25\n")
        ug = read_uncertain_graph(path)
        assert ug.num_vertices == 4
        assert ug.probability(0, 3) == 0.25


class TestHeaderValidation:
    """Truncated / corrupted releases must not load silently."""

    def _release_lines(self, tmp_path, fig1b):
        path = tmp_path / "ug.txt"
        write_uncertain_graph(fig1b, path)
        return path, path.read_text().splitlines(keepends=True)

    def test_truncated_file_rejected(self, tmp_path, fig1b):
        path, lines = self._release_lines(tmp_path, fig1b)
        assert len(lines) > 2
        path.write_text("".join(lines[:-1]))  # drop the last pair line
        with pytest.raises(ValueError, match="truncated or corrupted"):
            read_uncertain_graph(path)

    def test_extra_lines_rejected(self, tmp_path, fig1b):
        path, lines = self._release_lines(tmp_path, fig1b)
        path.write_text("".join(lines) + "0 1 0.125\n")
        with pytest.raises(ValueError, match="truncated or corrupted"):
            read_uncertain_graph(path)

    def test_id_beyond_header_n_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# n=3 candidates=1\n0 7 0.5\n")
        with pytest.raises(ValueError, match="out of range for header n=3"):
            read_uncertain_graph(path)

    def test_id_beyond_header_n_rejected_even_with_larger_explicit_n(
        self, tmp_path
    ):
        """Explicit n (e.g. repro verify) must not mask header violations."""
        path = tmp_path / "bad.txt"
        path.write_text("# n=3 candidates=1\n0 7 0.5\n")
        with pytest.raises(ValueError, match="out of range for header"):
            read_uncertain_graph(path, n=20)

    def test_round_trip_still_validates_clean(self, tmp_path, fig1b):
        path = tmp_path / "ug.txt"
        write_uncertain_graph(fig1b, path)
        back = read_uncertain_graph(path)
        assert back.num_candidate_pairs == fig1b.num_candidate_pairs

    def test_headerless_file_still_accepted(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 5 0.25\n")
        assert read_uncertain_graph(path).num_vertices == 6
