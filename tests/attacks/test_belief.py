"""Tests for the a-posteriori belief measure and its entropy dominance."""

import numpy as np
import pytest

from repro.attacks.belief import (
    belief_k_obfuscated,
    belief_level_from_column,
    belief_obfuscation_levels,
)
from repro.core.obfuscation_check import compute_degree_posterior


class TestBeliefLevel:
    def test_uniform_column(self):
        assert belief_level_from_column(np.array([0.25] * 4)) == pytest.approx(4.0)

    def test_point_mass(self):
        assert belief_level_from_column(np.array([0.0, 1.0, 0.0])) == pytest.approx(1.0)

    def test_unnormalised_input_ok(self):
        assert belief_level_from_column(np.array([2.0, 2.0])) == pytest.approx(2.0)

    def test_zero_column(self):
        assert belief_level_from_column(np.zeros(5)) == 0.0


class TestDominance:
    def test_entropy_level_dominates_belief_level(self, fig1a, fig1b):
        """Bonchi et al.: 2^H(Y) >= (max Y)^-1 always."""
        post = compute_degree_posterior(fig1b, method="exact")
        degrees = fig1a.degrees()
        entropy_levels = post.obfuscation_levels(degrees)
        belief_levels = belief_obfuscation_levels(post, degrees)
        assert (entropy_levels + 1e-9 >= belief_levels).all()

    def test_dominance_on_random_posteriors(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            col = rng.random(12)
            entropy_level = 2 ** (
                -(col / col.sum() * np.log2(col / col.sum())).sum()
            )
            assert entropy_level + 1e-9 >= belief_level_from_column(col)

    def test_paper_example_belief_values(self, fig1a, fig1b):
        """Y_3 has max 0.9 → belief level 1/0.9 ≈ 1.11."""
        post = compute_degree_posterior(fig1b, method="exact")
        levels = belief_obfuscation_levels(post, fig1a.degrees())
        assert levels[0] == pytest.approx(1 / 0.9, abs=1e-2)


class TestBeliefKObfuscation:
    def test_mask(self, fig1a, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        mask = belief_k_obfuscated(post, fig1a.degrees(), 2)
        assert not mask[0]  # v1: max belief 0.9 > 1/2

    def test_belief_criterion_stricter_than_entropy(self, fig1a, fig1b):
        """Any belief-k-obfuscated vertex is entropy-k-obfuscated."""
        post = compute_degree_posterior(fig1b, method="exact")
        degrees = fig1a.degrees()
        for k in (2, 3):
            belief_mask = belief_k_obfuscated(post, degrees, k)
            entropy_mask = post.k_obfuscated(degrees, k)
            assert (entropy_mask | ~belief_mask).all()

    def test_invalid_k(self, fig1a, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        with pytest.raises(ValueError):
            belief_k_obfuscated(post, fig1a.degrees(), 0.5)
