"""Tests for the degree-trail attack (Medforth & Wang extension)."""

import numpy as np
import pytest

from repro.attacks.degree_trail import (
    degree_trails,
    expected_degree_trails,
    reidentification_rate,
    trail_matches,
    trail_uniqueness_rate,
)
from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph
from repro.uncertain.graph import UncertainGraph


class TestTrails:
    def test_degree_trails_shape(self, triangle, path4):
        g1 = Graph.from_edges(4, [(0, 1)])
        g2 = Graph.from_edges(4, [(0, 1), (1, 2)])
        trails = degree_trails([g1, g2])
        assert trails.shape == (4, 2)
        assert trails[1, 0] == 1 and trails[1, 1] == 2

    def test_mismatched_vertex_sets_rejected(self, triangle, path4):
        with pytest.raises(ValueError):
            degree_trails([triangle, path4])

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            degree_trails([])

    def test_expected_trails(self, fig1b):
        trails = expected_degree_trails([fig1b, fig1b])
        assert trails.shape == (4, 2)
        assert trails[0, 0] == pytest.approx(2.4)


class TestMatching:
    def test_exact_match_integer_trails(self):
        trails = np.array([[1.0, 2.0], [1.0, 3.0], [1.0, 2.0]])
        matches = trail_matches(np.array([1.0, 2.0]), trails)
        assert list(matches) == [0, 2]

    def test_tolerance(self):
        trails = np.array([[1.0, 2.0]])
        assert len(trail_matches(np.array([1.4, 2.4]), trails, tol=0.5)) == 1
        assert len(trail_matches(np.array([1.6, 2.0]), trails, tol=0.5)) == 0


class TestReidentification:
    def test_identical_releases_full_reid_when_unique(self):
        """Publishing the untouched graph re-identifies every unique trail."""
        g1 = Graph.from_edges(4, [(0, 1)])
        g2 = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        trails = degree_trails([g1, g2])
        rate = reidentification_rate(trails, trails)
        assert rate == trail_uniqueness_rate(trails)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            reidentification_rate(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_wrong_unique_match_does_not_count(self):
        original = np.array([[5.0], [1.0]])
        published = np.array([[1.0], [9.0]])
        # vertex 0's trail (5) matches nothing; vertex 1's trail (1)
        # uniquely matches published vertex 0 — unique but WRONG.
        assert reidentification_rate(original, published) == 0.0

    def test_obfuscation_reduces_reidentification(self):
        """Sequential uncertain releases must leak less than plain ones."""
        from repro.core.search import obfuscate

        g = erdos_renyi(60, 0.12, seed=0)
        plain_trails = degree_trails([g, g])
        plain_rate = reidentification_rate(plain_trails, plain_trails)

        res1 = obfuscate(g, k=3, eps=0.2, seed=1, attempts=2, delta=0.05)
        res2 = obfuscate(g, k=3, eps=0.2, seed=2, attempts=2, delta=0.05)
        assert res1.success and res2.success
        published = expected_degree_trails([res1.uncertain, res2.uncertain])
        obf_rate = reidentification_rate(plain_trails, published)
        assert obf_rate <= plain_rate

    def test_longer_trails_more_unique(self):
        rng = np.random.default_rng(3)
        graphs = []
        g = erdos_renyi(80, 0.06, seed=4)
        for step in range(4):
            g = g.copy()
            for _ in range(12):
                u, v = int(rng.integers(80)), int(rng.integers(80))
                if u != v and not g.has_edge(u, v):
                    g.add_edge(u, v)
            graphs.append(g)
        short = trail_uniqueness_rate(degree_trails(graphs[:1]))
        long = trail_uniqueness_rate(degree_trails(graphs))
        assert long >= short


class TestUniquenessRate:
    def test_all_identical_zero(self):
        trails = np.ones((5, 3))
        assert trail_uniqueness_rate(trails) == 0.0

    def test_all_distinct_one(self):
        trails = np.arange(12, dtype=float).reshape(4, 3)
        assert trail_uniqueness_rate(trails) == 1.0

    def test_empty(self):
        assert trail_uniqueness_rate(np.zeros((0, 2))) == 0.0
