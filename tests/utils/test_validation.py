"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
    check_vertex,
)


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, p):
        assert check_probability(p) == p

    @pytest.mark.parametrize("p", [-0.01, 1.01, 2.0])
    def test_rejects_invalid(self, p):
        with pytest.raises(ValueError):
            check_probability(p)

    def test_message_names_parameter(self):
        with pytest.raises(ValueError, match="myprob"):
            check_probability(2.0, "myprob")


class TestCheckFraction:
    def test_accepts_zero(self):
        assert check_fraction(0.0) == 0.0

    def test_rejects_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_fraction(-0.1)


class TestCheckPositive:
    def test_strict_accepts_positive(self):
        assert check_positive(0.1) == 0.1

    def test_strict_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0.0)

    def test_nonstrict_accepts_zero(self):
        assert check_positive(0.0, strict=False) == 0.0

    def test_nonstrict_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, strict=False)


class TestCheckVertex:
    def test_accepts_in_range(self):
        assert check_vertex(3, 5) == 3

    def test_rejects_equal_to_n(self):
        with pytest.raises(ValueError):
            check_vertex(5, 5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_vertex(-1, 5)

    def test_coerces_to_int(self):
        assert check_vertex(2.0, 5) == 2
