"""Tests for repro.utils.entropy."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.entropy import entropy_bits, normalize_distribution


class TestNormalizeDistribution:
    def test_basic(self):
        out = normalize_distribution(np.array([1.0, 3.0]))
        assert np.allclose(out, [0.25, 0.75])

    def test_already_normalised(self):
        out = normalize_distribution(np.array([0.5, 0.5]))
        assert np.allclose(out, [0.5, 0.5])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            normalize_distribution(np.array([1.0, -0.1]))

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError, match="zero"):
            normalize_distribution(np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            normalize_distribution(np.array([]))


class TestEntropyBits:
    def test_uniform_two(self):
        assert entropy_bits(np.array([0.5, 0.5])) == pytest.approx(1.0)

    def test_uniform_k(self):
        for k in (2, 4, 8, 16):
            p = np.full(k, 1.0 / k)
            assert entropy_bits(p) == pytest.approx(math.log2(k))

    def test_point_mass_is_zero(self):
        assert entropy_bits(np.array([1.0, 0.0, 0.0])) == pytest.approx(0.0)

    def test_zero_entries_ignored(self):
        assert entropy_bits(np.array([0.5, 0.5, 0.0])) == pytest.approx(1.0)

    def test_normalize_flag(self):
        assert entropy_bits(np.array([2.0, 2.0]), normalize=True) == pytest.approx(1.0)

    def test_unnormalised_rejected_without_flag(self):
        with pytest.raises(ValueError, match="normalize"):
            entropy_bits(np.array([2.0, 2.0]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            entropy_bits(np.array([1.1, -0.1]))

    def test_known_value(self):
        # H(0.9, 0.1) = -0.9 log2 0.9 - 0.1 log2 0.1
        expected = -(0.9 * math.log2(0.9) + 0.1 * math.log2(0.1))
        assert entropy_bits(np.array([0.9, 0.1])) == pytest.approx(expected)

    @given(
        st.lists(st.floats(min_value=1e-6, max_value=1.0), min_size=1, max_size=40)
    )
    def test_bounds_property(self, weights):
        """0 <= H(p) <= log2(len(p)) for any distribution."""
        h = entropy_bits(np.array(weights), normalize=True)
        assert -1e-9 <= h <= math.log2(len(weights)) + 1e-9

    @given(
        st.lists(st.floats(min_value=1e-6, max_value=1.0), min_size=2, max_size=20)
    )
    def test_permutation_invariance(self, weights):
        p = np.array(weights)
        h1 = entropy_bits(p, normalize=True)
        h2 = entropy_bits(p[::-1].copy(), normalize=True)
        assert h1 == pytest.approx(h2)

    def test_min_entropy_dominated_by_shannon(self):
        """H(p) >= H_inf(p) = -log2 max(p) — underpins the belief measure."""
        rng = np.random.default_rng(0)
        for _ in range(25):
            p = rng.dirichlet(np.ones(10))
            assert entropy_bits(p) >= -math.log2(p.max()) - 1e-9
