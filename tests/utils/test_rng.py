"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_deterministic(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_rng(1).random(5), as_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        a = as_rng(seq)
        assert isinstance(a, np.random.Generator)

    def test_tuple_seed_accepted(self):
        a = as_rng((1, 2)).random(3)
        b = as_rng((1, 2)).random(3)
        assert np.array_equal(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        kids = spawn_rngs(0, 3)
        draws = [k.random(4) for k in kids]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic_from_int_seed(self):
        a = [g.random(3) for g in spawn_rngs(9, 3)]
        b = [g.random(3) for g in spawn_rngs(9, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_prefix_stability(self):
        """Child i is identical regardless of how many siblings follow."""
        a = spawn_rngs(3, 2)[0].random(4)
        b = spawn_rngs(3, 6)[0].random(4)
        assert np.array_equal(a, b)

    def test_generator_seed_consumes_stream(self):
        gen = np.random.default_rng(11)
        kids1 = spawn_rngs(gen, 2)
        kids2 = spawn_rngs(np.random.default_rng(11), 2)
        assert np.array_equal(kids1[0].random(3), kids2[0].random(3))
