"""Fault-injection harness unit tests: determinism, matching, actions."""

import json
import os

import pytest

from repro.resilience.faults import (
    ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    fault_point,
    install_fault_plan,
)


@pytest.fixture(autouse=True)
def _clean_plan():
    install_fault_plan(None)
    yield
    install_fault_plan(None)


class TestFaultRule:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(site="x", action="explode")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="x", probability=1.5)

    def test_matching(self):
        rule = FaultRule(site="exec.task.pre", indices=(3,), attempts=(0,))
        assert rule.matches("exec.task.pre", None, 3, 0)
        assert not rule.matches("exec.task.pre", None, 3, 1)  # retry exempt
        assert not rule.matches("exec.task.pre", None, 4, 0)
        assert not rule.matches("exec.task.post", None, 3, 0)

    def test_key_matching(self):
        rule = FaultRule(site="io.atomic.truncate", key="manifest.json",
                         action="flag", attempts=None)
        assert rule.matches("io.atomic.truncate", "manifest.json", None, 0)
        assert not rule.matches("io.atomic.truncate", "table2.csv", None, 0)

    def test_attempts_none_matches_every_attempt(self):
        rule = FaultRule(site="s", attempts=None)
        assert all(rule.matches("s", None, 0, a) for a in range(5))


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(seed=7, rules=(
            FaultRule(site="exec.task.pre", action="kill", indices=(2,)),
            FaultRule(site="serve.conn.drop", action="flag",
                      attempts=None, times=1, probability=0.5, param=1.5),
        ))
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == plan.seed and clone.rules == plan.rules

    def test_times_caps_firings(self):
        plan = FaultPlan(rules=(
            FaultRule(site="s", action="flag", attempts=None, times=2),
        ))
        fired = [plan.fire("s") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_probability_is_deterministic(self):
        plan = lambda: FaultPlan(seed=42, rules=(
            FaultRule(site="s", action="flag", attempts=None, probability=0.5),
        ))
        pattern = [plan().fire("s", index=i) is not None for i in range(64)]
        assert pattern == [plan().fire("s", index=i) is not None for i in range(64)]
        assert 0 < sum(pattern) < 64  # thinned, not all-or-nothing

    def test_fire_returns_matching_rule(self):
        rule = FaultRule(site="s", action="delay", param=0.25)
        plan = FaultPlan(rules=(rule,))
        assert plan.fire("s", attempt=0) == rule
        assert plan.fire("s", attempt=1) is None


class TestFaultPoint:
    def test_no_plan_is_noop(self):
        assert fault_point("exec.task.pre", index=0) is False

    def test_raise_action(self):
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="exec.task.pre", action="raise", indices=(1,)),
        )))
        assert fault_point("exec.task.pre", index=0) is False
        with pytest.raises(FaultInjected) as info:
            fault_point("exec.task.pre", index=1)
        assert info.value.site == "exec.task.pre"

    def test_flag_action(self):
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="serve.conn.drop", action="flag",
                      attempts=None, times=1),
        )))
        assert fault_point("serve.conn.drop") is True
        assert fault_point("serve.conn.drop") is False  # times=1 spent

    def test_env_var_plan(self):
        plan = FaultPlan(rules=(FaultRule(site="s", action="flag"),))
        os.environ[ENV_VAR] = plan.to_json()
        try:
            install_fault_plan(None)
            # Force the lazy env reload path.
            import repro.resilience.faults as faults

            faults._ENV_LOADED = False
            loaded = active_plan()
            assert loaded is not None and loaded.rules == plan.rules
            assert fault_point("s") is True
        finally:
            del os.environ[ENV_VAR]

    def test_fault_injected_pickles_cleanly(self):
        import pickle

        exc = FaultInjected("exec.task.post", key="k0")
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.site == "exec.task.post" and clone.key == "k0"
        assert str(clone) == str(exc)

    def test_plan_json_is_stable(self):
        plan = FaultPlan(seed=3, rules=(FaultRule(site="s"),))
        assert json.loads(plan.to_json()) == json.loads(
            FaultPlan.from_json(plan.to_json()).to_json()
        )
