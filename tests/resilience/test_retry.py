"""RetryPolicy unit tests: determinism, bounds, budget."""

import pytest

from repro.resilience.retry import RetryPolicy


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_backoff_is_deterministic(self):
        a = RetryPolicy(seed=5)
        b = RetryPolicy(seed=5)
        for attempt in range(6):
            assert a.backoff_s("cell", attempt) == b.backoff_s("cell", attempt)

    def test_backoff_bounds(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0, jitter=0.5)
        for attempt in range(8):
            raw = min(0.1 * 2**attempt, 1.0)
            delay = policy.backoff_s("k", attempt)
            assert raw * 0.5 <= delay <= raw

    def test_keys_decorrelate(self):
        policy = RetryPolicy(jitter=1.0)
        delays = {policy.backoff_s(f"key{i}", 1) for i in range(16)}
        assert len(delays) > 1

    def test_seed_changes_schedule(self):
        assert RetryPolicy(seed=0).backoff_s("k", 1) != RetryPolicy(seed=1).backoff_s("k", 1)

    def test_allows(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.allows(0) and policy.allows(2)
        assert not policy.allows(3)

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_delay_s=0.05, max_delay_s=10.0, jitter=0.0)
        assert policy.backoff_s("k", 0) == 0.05
        assert policy.backoff_s("k", 3) == 0.4
