"""Atomic write helper tests: publication semantics + torn-write fault."""

import os

import pytest

from repro.resilience.atomic import atomic_write_bytes, atomic_write_text
from repro.resilience.faults import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    install_fault_plan,
)


@pytest.fixture(autouse=True)
def _clean_plan():
    install_fault_plan(None)
    yield
    install_fault_plan(None)


class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"\x00\x01\x02")
        assert target.read_bytes() == b"\x00\x01\x02"

    def test_creates_parent_dirs(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "hi")
        assert target.read_text() == "hi"

    def test_replaces_existing(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_stray_after_success(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "data")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_truncate_fault_tears_the_file(self, tmp_path):
        """The fault site simulates the pre-atomic writer: a partial
        payload at the final path, then a crash."""
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="io.atomic.truncate", key="out.json",
                      action="flag", attempts=None, times=1),
        )))
        target = tmp_path / "out.json"
        payload = b'{"complete": true, "padding": "xxxxxxxxxxxxxxxx"}'
        with pytest.raises(FaultInjected):
            atomic_write_bytes(target, payload)
        torn = target.read_bytes()
        assert 0 < len(torn) < len(payload)
        # The fault spent its times=1 budget: the rewrite succeeds.
        atomic_write_bytes(target, payload)
        assert target.read_bytes() == payload

    def test_truncate_fault_keyed_to_other_file_is_inert(self, tmp_path):
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="io.atomic.truncate", key="other.json",
                      action="flag", attempts=None),
        )))
        target = tmp_path / "out.json"
        atomic_write_text(target, "fine")
        assert target.read_text() == "fine"

    def test_fsync_path_used(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd) or real_fsync(fd))
        atomic_write_text(tmp_path / "out.txt", "data")
        assert calls
