"""CheckpointStore tests: atomicity, exactness, fingerprint discipline."""

import json

import numpy as np
import pytest

from repro.resilience.checkpoint import CheckpointStore

FP = {"command": "test", "seed": 0, "grid": [1, 2, 3]}


class TestLifecycle:
    def test_empty_store(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        assert len(store) == 0 and store.completed_keys() == set()

    def test_record_restore_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.begin(FP, resume=False)
        payload = {"sigma": 0.1 + 0.2, "eps": 1e-4, "n": 226413}
        store.record("cell:a", payload)
        reloaded = CheckpointStore(tmp_path / "ckpt")
        restored, arrays = reloaded.restore("cell:a")
        assert restored == payload and arrays == {}
        # Floats round-trip exactly (repr-based JSON formatting).
        assert restored["sigma"] == 0.1 + 0.2

    def test_arrays_round_trip_bit_identical(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.begin(FP, resume=False)
        rng = np.random.default_rng(0)
        us = rng.integers(0, 1000, 500, dtype=np.int64)
        ps = rng.random(500)
        store.record("cell:b", {"n": 1000}, arrays={"us": us, "ps": ps})
        _, arrays = CheckpointStore(tmp_path / "ckpt").restore("cell:b")
        assert arrays["us"].dtype == np.int64
        assert np.array_equal(arrays["us"], us)
        assert arrays["ps"].tobytes() == ps.tobytes()  # bit-identical

    def test_resume_keeps_records(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.begin(FP, resume=False)
        store.record("cell:a", {"x": 1})
        again = CheckpointStore(tmp_path / "ckpt")
        again.begin(FP, resume=True)
        assert "cell:a" in again

    def test_fresh_begin_discards_records_and_blobs(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.begin(FP, resume=False)
        store.record("cell:a", {"x": 1}, arrays={"v": np.arange(3)})
        assert list(store.arrays_dir.glob("*.npz"))
        fresh = CheckpointStore(tmp_path / "ckpt")
        fresh.begin(FP, resume=False)
        assert len(fresh) == 0
        assert not list(fresh.arrays_dir.glob("*.npz"))

    def test_fingerprint_mismatch_refused(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.begin(FP, resume=False)
        other = CheckpointStore(tmp_path / "ckpt")
        with pytest.raises(ValueError, match="refusing --resume"):
            other.begin({**FP, "seed": 1}, resume=True)


class TestCrashModel:
    def test_torn_trailing_line_is_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.begin(FP, resume=False)
        store.record("cell:a", {"x": 1})
        with open(store.ledger, "a") as fh:
            fh.write('{"kind": "cell", "key": "cell:b", "payl')  # torn
        reloaded = CheckpointStore(tmp_path / "ckpt")
        assert "cell:a" in reloaded and "cell:b" not in reloaded

    def test_missing_blob_means_incomplete_cell(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.begin(FP, resume=False)
        store.record("cell:a", {"x": 1}, arrays={"v": np.arange(4)})
        for blob in store.arrays_dir.glob("*.npz"):
            blob.unlink()
        reloaded = CheckpointStore(tmp_path / "ckpt")
        assert reloaded.restore("cell:a") is None

    def test_torn_blob_means_incomplete_cell(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.begin(FP, resume=False)
        store.record("cell:a", {"x": 1}, arrays={"v": np.arange(64)})
        for blob in store.arrays_dir.glob("*.npz"):
            blob.write_bytes(blob.read_bytes()[:10])
        assert CheckpointStore(tmp_path / "ckpt").restore("cell:a") is None

    def test_ledger_is_valid_jsonl_after_every_record(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.begin(FP, resume=False)
        for i in range(5):
            store.record(f"cell:{i}", {"i": i})
            for line in store.ledger.read_text().splitlines():
                json.loads(line)  # never torn mid-run
