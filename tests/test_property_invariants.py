"""Cross-module property-based invariants (hypothesis).

Each test draws random small instances and asserts an invariant that
must hold for *every* input — the safety net under the randomized
algorithms.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.generate import generate_obfuscation
from repro.core.obfuscation_check import (
    compute_degree_posterior,
    is_k_eps_obfuscation,
)
from repro.core.types import ObfuscationParams
from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph
from repro.stats.distance import distance_histogram
from repro.uncertain.graph import UncertainGraph
from repro.uncertain.io import read_uncertain_graph, write_uncertain_graph


def random_graph(n: int, m: int, seed: int) -> Graph:
    rng = np.random.default_rng(seed)
    g = Graph(n)
    tries = 0
    while g.num_edges < m and tries < 20 * m:
        tries += 1
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def random_uncertain(n: int, pairs: int, seed: int) -> UncertainGraph:
    rng = np.random.default_rng(seed)
    ug = UncertainGraph(n)
    for _ in range(pairs):
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v:
            ug.set_probability(u, v, float(rng.random()))
    return ug


class TestUncertainGraphInvariants:
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_expected_degrees_sum_twice_expected_edges(self, n, pairs, seed):
        ug = random_uncertain(n, pairs, seed)
        assert ug.expected_degrees().sum() == pytest.approx(
            2 * ug.expected_num_edges()
        )

    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_io_round_trip_exact(self, n, pairs, seed):
        import tempfile
        from pathlib import Path

        ug = random_uncertain(n, pairs, seed)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "ug.txt"
            write_uncertain_graph(ug, path)
            back = read_uncertain_graph(path, n=n)
        assert sorted(back.candidate_pairs()) == sorted(ug.candidate_pairs())

    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_enumeration_matches_posterior(self, n, pairs, seed):
        """Σ_worlds Pr(W)·1{deg_W(v)=ω} == X_v(ω) for every (v, ω)."""
        ug = random_uncertain(n, pairs, seed)
        post = compute_degree_posterior(ug, method="exact")
        x_enum = np.zeros_like(post.matrix)
        for world, prob in ug.enumerate_worlds():
            for v in range(n):
                d = world.degree(v)
                if d < post.width:
                    x_enum[v, d] += prob
        assert np.allclose(x_enum, post.matrix, atol=1e-9)


class TestPosteriorInvariants:
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=3, max_value=12),
        st.integers(min_value=1, max_value=25),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_column_entropy_bounded_by_log_n(self, n, pairs, seed):
        ug = random_uncertain(n, pairs, seed)
        post = compute_degree_posterior(ug, method="exact")
        for omega in range(post.width):
            assert post.column_entropy(omega) <= np.log2(n) + 1e-9

    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=3, max_value=12),
        st.integers(min_value=1, max_value=25),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_rows_sum_to_one(self, n, pairs, seed):
        ug = random_uncertain(n, pairs, seed)
        post = compute_degree_posterior(ug, method="exact")
        assert np.allclose(post.matrix.sum(axis=1), 1.0)


class TestObfuscationOutputInvariants:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.05, max_value=0.6),
    )
    def test_generate_obfuscation_contract(self, seed, sigma):
        """Whatever the randomness, a successful Algorithm-2 output has
        |E_C| = c|E|, probabilities in [0,1], and passes Definition 2."""
        graph = erdos_renyi(40, 0.15, seed=seed % 1000)
        if graph.num_edges == 0:
            return
        params = ObfuscationParams(k=2, eps=0.4, attempts=1)
        out = generate_obfuscation(graph, sigma, params, seed=seed)
        if not out.success:
            return
        assert out.uncertain.num_candidate_pairs == round(2.0 * graph.num_edges)
        probs = [p for _, _, p in out.uncertain.candidate_pairs()]
        assert all(0.0 <= p <= 1.0 for p in probs)
        assert is_k_eps_obfuscation(out.uncertain, graph, 2, 0.4)


class TestDistanceInvariants:
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=2, max_value=25),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_histogram_partitions_pair_universe(self, n, m, seed):
        g = random_graph(n, m, seed)
        hist = distance_histogram(g)
        assert hist.total_pairs == pytest.approx(g.num_pairs)
        assert (hist.counts >= 0).all()

    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=3, max_value=20),
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_adding_edges_never_increases_distances(self, n, m, seed):
        from repro.stats.distance import average_distance

        g = random_graph(n, m, seed)
        hist_before = distance_histogram(g)
        rng = np.random.default_rng(seed + 1)
        g2 = g.copy()
        for _ in range(10):
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u != v and not g2.has_edge(u, v):
                g2.add_edge(u, v)
                break
        else:
            return
        hist_after = distance_histogram(g2)
        # connected pairs can only grow; disconnected can only shrink
        assert hist_after.connected_pairs >= hist_before.connected_pairs
        assert hist_after.disconnected <= hist_before.disconnected
