"""Tests for distance statistics (§6.3) — exact values + networkx oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi, powerlaw_cluster
from repro.graphs.graph import Graph
from repro.stats.distance import (
    DistanceHistogram,
    average_distance,
    connectivity_length,
    diameter,
    distance_histogram,
    effective_diameter,
    pairwise_distance_distribution,
)


def to_networkx(g: Graph) -> nx.Graph:
    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.num_vertices))
    nxg.add_edges_from(g.edges())
    return nxg


class TestHistogram:
    def test_path_counts(self, path4):
        hist = distance_histogram(path4)
        # distances: 1×3 pairs at d=1, 2 at d=2, 1 at d=3
        assert list(hist.counts[1:4]) == [3.0, 2.0, 1.0]
        assert hist.disconnected == 0.0
        assert hist.exact

    def test_disconnected_pairs(self, two_components):
        hist = distance_histogram(two_components)
        assert hist.counts[1] == 2.0
        assert hist.disconnected == 8.0  # C(5,2)=10 pairs − 2 connected

    def test_total_pairs_invariant(self):
        for seed in range(3):
            g = erdos_renyi(40, 0.05, seed=seed)
            hist = distance_histogram(g)
            assert hist.total_pairs == pytest.approx(g.num_pairs)

    def test_sampled_estimator_unbiased(self):
        g = powerlaw_cluster(300, 2, 0.3, seed=0)
        exact = distance_histogram(g)
        est = [
            distance_histogram(g, sample_size=100, seed=s).connected_pairs
            for s in range(15)
        ]
        assert np.mean(est) == pytest.approx(exact.connected_pairs, rel=0.05)
        assert not distance_histogram(g, sample_size=100, seed=0).exact

    def test_explicit_sources(self, path4):
        hist = distance_histogram(path4, sources=np.array([0, 1, 2, 3]))
        assert hist.counts[1] == 3.0

    def test_empty_graph(self):
        hist = distance_histogram(Graph(0))
        assert hist.total_pairs == 0


class TestScalarStats:
    def test_average_distance_path(self, path4):
        hist = distance_histogram(path4)
        # (3·1 + 2·2 + 1·3)/6 = 10/6
        assert average_distance(hist) == pytest.approx(10 / 6)

    def test_average_distance_against_networkx(self):
        g = erdos_renyi(60, 0.15, seed=4)
        nxg = to_networkx(g)
        if nx.is_connected(nxg):
            hist = distance_histogram(g)
            assert average_distance(hist) == pytest.approx(
                nx.average_shortest_path_length(nxg)
            )

    def test_diameter_against_networkx(self):
        g = erdos_renyi(50, 0.15, seed=5)
        nxg = to_networkx(g)
        if nx.is_connected(nxg):
            assert diameter(distance_histogram(g)) == nx.diameter(nxg)

    def test_diameter_ignores_disconnection(self, two_components):
        assert diameter(distance_histogram(two_components)) == 1.0

    def test_effective_diameter_at_most_diameter(self):
        for seed in range(3):
            g = erdos_renyi(70, 0.1, seed=seed)
            hist = distance_histogram(g)
            assert effective_diameter(hist) <= diameter(hist)

    def test_effective_diameter_interpolates(self):
        """Synthetic histogram: 90% of mass exactly at the boundary."""
        counts = np.array([0.0, 90.0, 10.0])
        hist = DistanceHistogram(counts=counts, disconnected=0.0)
        assert effective_diameter(hist) == pytest.approx(1.0)
        counts = np.array([0.0, 50.0, 50.0])
        hist = DistanceHistogram(counts=counts, disconnected=0.0)
        # target 90: 50 below, interpolate (90-50)/50 into bin 2
        assert effective_diameter(hist) == pytest.approx(1.8)

    def test_connectivity_length_k3(self, triangle):
        hist = distance_histogram(triangle)
        assert connectivity_length(hist) == pytest.approx(1.0)

    def test_connectivity_length_counts_disconnected(self, two_components):
        """Harmonic mean over ALL pairs: 10 pairs, Σ 1/d = 2 → 5."""
        hist = distance_histogram(two_components)
        assert connectivity_length(hist) == pytest.approx(5.0)

    def test_connectivity_length_totally_disconnected(self):
        hist = distance_histogram(Graph(4))
        assert connectivity_length(hist) == float("inf")

    def test_pdd_fractions_sum_to_connected_share(self, two_components):
        pdd = pairwise_distance_distribution(distance_histogram(two_components))
        assert pdd.sum() == pytest.approx(0.2)


class TestAgainstNetworkxSweep:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_full_histogram(self, seed):
        g = erdos_renyi(45, 0.1, seed=seed)
        nxg = to_networkx(g)
        ours = distance_histogram(g)
        lengths = dict(nx.all_pairs_shortest_path_length(nxg))
        counts = {}
        disconnected = 0
        for u in range(45):
            for v in range(u + 1, 45):
                d = lengths.get(u, {}).get(v)
                if d is None:
                    disconnected += 1
                else:
                    counts[d] = counts.get(d, 0) + 1
        for d, c in counts.items():
            assert ours.counts[d] == c
        assert ours.disconnected == disconnected
