"""Tests for the Table-4 statistic registry."""

import pytest

from repro.graphs.generators import powerlaw_cluster
from repro.stats.registry import (
    PAPER_STATISTIC_NAMES,
    degree_only_statistics,
    paper_statistics,
)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(200, 3, 0.5, seed=0)


class TestRegistry:
    def test_all_paper_columns_present(self):
        stats = paper_statistics()
        assert tuple(stats) == PAPER_STATISTIC_NAMES

    def test_all_callables_return_floats(self, graph):
        stats = paper_statistics(distance_backend="exact")
        for name, func in stats.items():
            value = func(graph)
            assert isinstance(value, float), name

    def test_exact_and_sampled_backends_agree_roughly(self, graph):
        exact = paper_statistics(distance_backend="exact")
        sampled = paper_statistics(distance_backend="sampled", sample_size=150)
        assert sampled["S_APD"](graph) == pytest.approx(
            exact["S_APD"](graph), rel=0.1
        )

    def test_anf_backend_agrees_roughly(self, graph):
        exact = paper_statistics(distance_backend="exact")
        anf = paper_statistics(distance_backend="anf")
        assert anf["S_APD"](graph) == pytest.approx(exact["S_APD"](graph), rel=0.2)
        assert anf["S_EDiam"](graph) == pytest.approx(
            exact["S_EDiam"](graph), rel=0.3
        )

    def test_unknown_backend_rejected(self, graph):
        stats = paper_statistics(distance_backend="teleport")
        with pytest.raises(ValueError, match="unknown distance backend"):
            stats["S_APD"](graph)

    def test_histogram_cache_shared(self, graph):
        """Distance stats on the same graph object reuse one histogram."""
        import time

        stats = paper_statistics(distance_backend="exact")
        t0 = time.perf_counter()
        stats["S_APD"](graph)
        first = time.perf_counter() - t0
        t0 = time.perf_counter()
        stats["S_EDiam"](graph)
        stats["S_CL"](graph)
        stats["S_DiamLB"](graph)
        rest = time.perf_counter() - t0
        assert rest < max(first, 0.001) * 2  # cached calls are near-free

    def test_degree_only_subset(self, graph):
        stats = degree_only_statistics()
        assert "S_APD" not in stats
        assert stats["S_NE"](graph) == float(graph.num_edges)
