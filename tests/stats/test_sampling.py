"""Tests for world-sampling estimators and Hoeffding bounds (§6.1)."""

import math

import numpy as np
import pytest

from repro.stats.degree import average_degree, num_edges
from repro.stats.sampling import (
    SampleSummary,
    WorldStatisticsEstimator,
    estimate_statistic,
    hoeffding_error_probability,
    hoeffding_sample_size,
)
from repro.uncertain.graph import UncertainGraph


class TestHoeffding:
    def test_lemma2_formula(self):
        """2·exp(−2ε²r/(b−a)²) literally."""
        val = hoeffding_error_probability(0.1, 100, 0.0, 1.0)
        assert val == pytest.approx(2 * math.exp(-2 * 0.01 * 100))

    def test_capped_at_one(self):
        assert hoeffding_error_probability(1e-6, 1, 0.0, 1.0) == 1.0

    def test_corollary1_inverts_lemma2(self):
        eps, delta, a, b = 0.05, 0.01, 0.0, 1.0
        r = hoeffding_sample_size(eps, delta, a, b)
        assert hoeffding_error_probability(eps, r, a, b) <= delta
        assert hoeffding_error_probability(eps, r - 1, a, b) > delta

    def test_clustering_coefficient_example(self):
        """§6.4: r = ln(2/δ)/(2ε²) for a statistic in [0, 1]."""
        r = hoeffding_sample_size(0.1, 0.05, 0.0, 1.0)
        assert r == math.ceil(math.log(2 / 0.05) / (2 * 0.01))

    def test_wider_range_needs_more_samples(self):
        small = hoeffding_sample_size(0.1, 0.05, 0.0, 1.0)
        large = hoeffding_sample_size(0.1, 0.05, 0.0, 10.0)
        assert large == pytest.approx(100 * small, rel=0.01)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_invalid_epsilon(self, bad):
        with pytest.raises(ValueError):
            hoeffding_sample_size(bad, 0.1, 0, 1)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            hoeffding_sample_size(0.1, 1.5, 0, 1)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            hoeffding_error_probability(0.1, 10, 1.0, 1.0)


class TestSampleSummary:
    def test_moments(self):
        s = SampleSummary(name="x", values=np.array([1.0, 2.0, 3.0]))
        assert s.mean == 2.0
        assert s.std == pytest.approx(1.0)
        assert s.sem == pytest.approx(1.0 / math.sqrt(3))
        assert s.relative_sem == pytest.approx(s.sem / 2.0)

    def test_relative_error(self):
        s = SampleSummary(name="x", values=np.array([9.0, 11.0]))
        assert s.relative_error(20.0) == pytest.approx(0.5)

    def test_zero_reference(self):
        s = SampleSummary(name="x", values=np.array([0.0, 0.0]))
        assert s.relative_error(0.0) == 0.0

    def test_single_sample(self):
        s = SampleSummary(name="x", values=np.array([5.0]))
        assert s.std == 0.0 and s.sem == 0.0


class TestEstimator:
    @pytest.fixture()
    def ug(self):
        return UncertainGraph.from_pairs(
            6, [(0, 1, 0.5), (1, 2, 0.25), (2, 3, 1.0), (4, 5, 0.75)]
        )

    def test_mean_matches_exact_expectation(self, ug):
        """E[S_NE] = Σ p(e) = 2.5; the sampler must agree within Hoeffding."""
        summary = estimate_statistic(ug, num_edges, worlds=4000, seed=0)
        assert summary.mean == pytest.approx(2.5, abs=0.08)

    def test_hoeffding_bound_holds_empirically(self, ug):
        """Run many small estimations; large deviations must be rarer than
        the Lemma-2 bound."""
        exact = 2.5
        r, eps = 30, 0.5
        bound = hoeffding_error_probability(eps, r, 0.0, 4.0)
        rng = np.random.default_rng(1)
        violations = 0
        trials = 300
        for _ in range(trials):
            summary = estimate_statistic(ug, num_edges, worlds=r, seed=rng)
            if abs(summary.mean - exact) >= eps:
                violations += 1
        assert violations / trials <= bound

    def test_multiple_statistics(self, ug):
        est = WorldStatisticsEstimator(
            ug, {"S_NE": num_edges, "S_AD": average_degree}
        )
        out = est.run(worlds=50, seed=2)
        assert set(out) == {"S_NE", "S_AD"}
        assert out["S_AD"].mean == pytest.approx(out["S_NE"].mean / 3, rel=1e-9)

    def test_collect_worlds(self, ug):
        est = WorldStatisticsEstimator(ug, {"S_NE": num_edges})
        est.run(worlds=5, seed=0, collect_worlds=True)
        assert len(est.last_worlds) == 5

    def test_zero_worlds_rejected(self, ug):
        est = WorldStatisticsEstimator(ug, {"S_NE": num_edges})
        with pytest.raises(ValueError):
            est.run(worlds=0)

    def test_deterministic(self, ug):
        a = estimate_statistic(ug, num_edges, worlds=10, seed=5)
        b = estimate_statistic(ug, num_edges, worlds=10, seed=5)
        assert np.array_equal(a.values, b.values)
