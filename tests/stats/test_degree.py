"""Tests for degree-based statistics (§6.2)."""

import numpy as np
import pytest

from repro.graphs.generators import barabasi_albert, erdos_renyi
from repro.graphs.graph import Graph
from repro.stats.degree import (
    average_degree,
    degree_distribution,
    degree_variance,
    expected_average_degree,
    expected_num_edges,
    max_degree,
    num_edges,
    powerlaw_exponent,
)
from repro.uncertain.graph import UncertainGraph


class TestScalars:
    def test_num_edges(self, triangle):
        assert num_edges(triangle) == 3.0

    def test_average_degree(self, star5):
        assert average_degree(star5) == pytest.approx(8 / 5)

    def test_average_degree_empty(self):
        assert average_degree(Graph(0)) == 0.0

    def test_max_degree(self, star5):
        assert max_degree(star5) == 4.0

    def test_degree_variance(self, star5):
        degs = np.array([4, 1, 1, 1, 1], dtype=float)
        assert degree_variance(star5) == pytest.approx(degs.var())

    def test_degree_variance_regular_graph_zero(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert degree_variance(g) == 0.0


class TestDistribution:
    def test_sums_to_one(self, star5):
        assert degree_distribution(star5).sum() == pytest.approx(1.0)

    def test_values(self, star5):
        dist = degree_distribution(star5)
        assert dist[1] == pytest.approx(0.8)
        assert dist[4] == pytest.approx(0.2)

    def test_isolated_vertices_counted(self, two_components):
        dist = degree_distribution(two_components)
        assert dist[0] == pytest.approx(0.2)


class TestPowerlawFit:
    def test_exact_powerlaw_recovered(self):
        """Plant Δ(d) ∝ d^{-2.5} exactly and check the fitted slope."""
        n = 10000
        gamma = 2.5
        ds = np.arange(1, 40)
        weights = ds ** (-gamma)
        counts = np.round(weights / weights.sum() * n).astype(int)
        g = Graph(int(counts.sum()))
        # build a graph with the target degree histogram is overkill; fit on
        # the distribution directly through a stub graph is not possible, so
        # construct a star-forest approximation is messy — instead test on a
        # synthetic Graph subclass is avoided: we check the estimator via BA.
        ba = barabasi_albert(3000, 2, seed=0)
        slope = powerlaw_exponent(ba, d_min=3)
        assert -4.5 < slope < -1.5  # BA degree exponent ≈ -3 in the tail

    def test_insufficient_tail_returns_zero(self, triangle):
        assert powerlaw_exponent(triangle) == 0.0

    def test_dmin_shifts_fit(self):
        g = barabasi_albert(2000, 2, seed=1)
        a = powerlaw_exponent(g, d_min=2)
        b = powerlaw_exponent(g, d_min=6)
        assert a != b  # both defined, fitted on different tails

    def test_negative_slope_on_heavy_tail(self):
        g = barabasi_albert(2000, 3, seed=2)
        assert powerlaw_exponent(g) < 0


class TestExactExpectations:
    def test_expected_num_edges(self, fig1b):
        assert expected_num_edges(fig1b) == pytest.approx(3.3)

    def test_expected_average_degree(self, fig1b):
        assert expected_average_degree(fig1b) == pytest.approx(2 * 3.3 / 4)

    def test_matches_enumeration(self, fig1b):
        by_enum = sum(p * w.num_edges for w, p in fig1b.enumerate_worlds())
        assert expected_num_edges(fig1b) == pytest.approx(by_enum)

    def test_matches_sampling(self):
        """Footnote 5: exact formulas ≈ sampled estimates."""
        rng = np.random.default_rng(0)
        ug = UncertainGraph.from_pairs(
            10, [(i, j, float(rng.random())) for i in range(10) for j in range(i + 1, 10)]
        )
        from repro.uncertain.sampling import WorldSampler

        sampler = WorldSampler(ug)
        sample_mean = np.mean(
            [sampler.sample(seed=s).num_edges for s in range(800)]
        )
        assert expected_num_edges(ug) == pytest.approx(sample_mean, rel=0.05)

    def test_empty_uncertain_graph(self):
        assert expected_average_degree(UncertainGraph(0)) == 0.0
