"""Inverse-CDF sampler + counter-based pair substreams (PR 5 tentpole).

Covers the three sampler layers the ``pair_keyed`` perturbation stream
stands on:

* ``erfinv`` — the pure-NumPy Newton path pinned against SciPy where
  available and against a bisection oracle on ``math.erf`` otherwise;
* ``truncated_normal_ppf`` — moment/KS pinning against the analytic
  ``R_σ`` quantities and the σ → 0 / σ → ∞ edge regimes;
* ``pair_stream_uniforms`` — purity: a pair's draw depends only on
  ``(key, code, substream)``, never on evaluation order or on which
  other pairs are evaluated alongside it.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degree_distribution import (
    ERF_RATIONAL_MAX_ABS_ERROR,
    erf_rational,
)
from repro.core.perturbation import (
    PAIR_SUBSTREAM_PERTURBATION,
    PAIR_SUBSTREAM_WHITE_MASK,
    PAIR_SUBSTREAM_WHITE_VALUE,
    UNIFORM_THRESHOLD,
    erfinv_array,
    erfinv_newton,
    pair_stream_uniforms,
    perturbations_from_uniforms,
    sample_perturbations_inverse,
    truncated_normal_cdf,
    truncated_normal_mean,
    truncated_normal_ppf,
)

try:  # pin against SciPy where available (the CI image ships NumPy only)
    from scipy import special as scipy_special
except ImportError:  # pragma: no cover
    scipy_special = None


def _erfinv_bisection(y: float) -> float:
    """High-precision scalar oracle: invert ``math.erf`` by bisection."""
    lo, hi = 0.0, 8.0
    target = abs(y)
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if math.erf(mid) < target:
            lo = mid
        else:
            hi = mid
    return math.copysign(0.5 * (lo + hi), y)


class TestErfRational:
    def test_within_documented_bound_of_math_erf(self):
        xs = np.linspace(-8.0, 8.0, 20001)
        exact = np.array([math.erf(x) for x in xs])
        assert np.abs(erf_rational(xs) - exact).max() <= ERF_RATIONAL_MAX_ABS_ERROR

    @pytest.mark.skipif(scipy_special is None, reason="scipy not installed")
    def test_within_documented_bound_of_scipy(self):
        xs = np.linspace(-6.0, 6.0, 50001)
        err = np.abs(erf_rational(xs) - scipy_special.erf(xs))
        assert err.max() <= ERF_RATIONAL_MAX_ABS_ERROR

    def test_limits_and_nan(self):
        out = erf_rational(np.array([np.inf, -np.inf, np.nan]))
        assert out[0] == 1.0 and out[1] == -1.0 and np.isnan(out[2])

    def test_odd_symmetry(self):
        xs = np.linspace(0.0, 5.0, 101)
        np.testing.assert_array_equal(erf_rational(-xs), -erf_rational(xs))


#: Without SciPy, every erf evaluation (Newton residuals included) goes
#: through the A&S rational fallback, so absolute accuracy is bounded
#: by its ≤1.5e-7 error instead of machine epsilon.
_ERF_TOL = 1e-12 if scipy_special is not None else 4.0 * ERF_RATIONAL_MAX_ABS_ERROR


class TestErfinv:
    def test_newton_matches_bisection_oracle(self):
        ys = np.array([0.0, 1e-8, 0.1, 0.5, 0.9, 0.99, 0.9999, -0.73])
        ours = erfinv_newton(ys)
        for y, x in zip(ys, ours):
            oracle = _erfinv_bisection(float(y))
            # An erf error of ε displaces the inverse by ε/erf'(x); with
            # the no-SciPy rational fallback ε is its 1.5e-7 bound.
            tol = max(5e-8, 2.0 * _ERF_TOL * math.exp(oracle * oracle))
            assert x == pytest.approx(oracle, abs=tol)

    @pytest.mark.skipif(scipy_special is None, reason="scipy not installed")
    def test_newton_within_1e12_of_scipy(self):
        """The documented Newton tolerance on the |y| ≤ 1 - 1e-4 band."""
        ys = np.linspace(-(1.0 - 1e-4), 1.0 - 1e-4, 40001)
        err = np.abs(erfinv_newton(ys) - scipy_special.erfinv(ys))
        assert err.max() <= 1e-12

    @pytest.mark.skipif(scipy_special is None, reason="scipy not installed")
    def test_dispatcher_uses_scipy(self):
        ys = np.linspace(-0.99, 0.99, 101)
        np.testing.assert_array_equal(erfinv_array(ys), scipy_special.erfinv(ys))

    def test_roundtrip_through_erf(self):
        """erf(erfinv(y)) = y to a few ulps wherever erf is unsaturated
        (to the rational fallback's bound when SciPy is absent)."""
        ys = np.linspace(-0.999999999, 0.999999999, 10001)
        xs = erfinv_newton(ys)
        back = np.array([math.erf(x) for x in xs])
        assert np.abs(back - ys).max() < max(1e-13, _ERF_TOL)

    def test_boundary_and_out_of_range(self):
        out = erfinv_newton(np.array([1.0, -1.0, 1.5, -2.0]))
        assert out[0] == np.inf and out[1] == -np.inf
        assert np.isnan(out[2]) and np.isnan(out[3])

    def test_zero_maps_to_zero(self):
        assert abs(erfinv_newton(np.array([0.0]))[0]) <= _ERF_TOL


class TestTruncatedNormalPpf:
    def test_roundtrip_against_cdf(self):
        rng = np.random.default_rng(0)
        for sigma in (0.05, 0.35, 1.0, 4.0, 7.9):
            u = rng.random(5000)
            r = truncated_normal_ppf(u, np.full(5000, sigma))
            assert (r >= 0).all() and (r <= 1).all()
            # truncated_normal_cdf uses math.erf; the ppf goes through
            # erf_array, so without SciPy the gap is the fallback's.
            assert np.abs(truncated_normal_cdf(r, sigma) - u).max() < max(
                1e-9, 4.0 * _ERF_TOL
            )

    def test_moment_pinning_against_mean(self):
        """Empirical inverse-CDF moments match the analytic R_σ mean."""
        for sigma in (0.1, 0.5, 2.0, 5.0):
            samples = sample_perturbations_inverse(np.full(40000, sigma), seed=7)
            assert samples.mean() == pytest.approx(
                truncated_normal_mean(sigma), abs=0.01
            )

    def test_sigma_zero_exact_zero(self):
        u = np.random.default_rng(1).random(100)
        assert (truncated_normal_ppf(u, np.zeros(100)) == 0.0).all()

    def test_uniform_regime_passthrough(self):
        """σ ≥ UNIFORM_THRESHOLD returns the uniform unchanged — the
        identical distribution the rejection sampler uses there."""
        u = np.random.default_rng(2).random(256)
        out = truncated_normal_ppf(u, np.full(256, UNIFORM_THRESHOLD))
        np.testing.assert_array_equal(out, u)

    def test_tiny_sigma_tail(self):
        """σ → 0⁺: the saturated-erf tail still yields finite r ≤ 1."""
        u = np.array([0.0, 0.5, 1.0 - 2.0**-53])
        out = truncated_normal_ppf(u, np.full(3, 0.01))
        assert np.isfinite(out).all()
        assert out[0] == 0.0 and (out <= 1.0).all()

    def test_monotone_in_u(self):
        u = np.linspace(0, 1 - 1e-9, 500)
        r = truncated_normal_ppf(u, np.full(500, 0.4))
        assert (np.diff(r) >= 0).all()

    def test_mixed_sigmas_elementwise(self):
        """Each element follows its own σ — pure elementwise inversion."""
        u = np.full(3, 0.25)
        sigmas = np.array([0.0, 0.3, 20.0])
        out = truncated_normal_ppf(u, sigmas)
        assert out[0] == 0.0
        assert out[1] == truncated_normal_ppf(np.array([0.25]), np.array([0.3]))[0]
        assert out[2] == 0.25

    def test_validation(self):
        with pytest.raises(ValueError, match="same shape"):
            truncated_normal_ppf(np.zeros(3), np.zeros(2))
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            truncated_normal_ppf(np.array([1.0]), np.array([0.5]))
        with pytest.raises(ValueError, match="non-negative"):
            truncated_normal_ppf(np.array([0.5]), np.array([-0.1]))

    def test_inverse_sampler_consumes_fixed_draws(self):
        """One uniform per element, σ-independent — stream positions
        never depend on acceptance luck (unlike the rejection path)."""
        sigmas = np.array([0.0, 0.2, 5.0, 9.0])
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        sample_perturbations_inverse(sigmas, seed=rng_a)
        rng_b.random(sigmas.shape)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_ks_against_cdf(self):
        sigma = 0.35
        samples = np.sort(
            sample_perturbations_inverse(np.full(20000, sigma), seed=9)
        )
        empirical = np.arange(1, len(samples) + 1) / len(samples)
        theoretical = truncated_normal_cdf(samples, sigma)
        assert np.abs(empirical - theoretical).max() < 0.015


class TestPairStreamUniforms:
    def test_deterministic(self):
        codes = np.arange(1000)
        a = pair_stream_uniforms(42, codes, PAIR_SUBSTREAM_PERTURBATION)
        b = pair_stream_uniforms(42, codes, PAIR_SUBSTREAM_PERTURBATION)
        np.testing.assert_array_equal(a, b)

    def test_order_invariant(self):
        codes = np.random.default_rng(0).permutation(5000)
        full = pair_stream_uniforms(7, np.arange(5000), PAIR_SUBSTREAM_PERTURBATION)
        shuffled = pair_stream_uniforms(7, codes, PAIR_SUBSTREAM_PERTURBATION)
        np.testing.assert_array_equal(shuffled, full[codes])

    def test_membership_invariant(self):
        """A pair's draw never depends on which other pairs are drawn."""
        rng = np.random.default_rng(1)
        codes = rng.choice(10**9, size=4000, replace=False)
        subset = codes[rng.random(4000) < 0.3]
        full = pair_stream_uniforms(99, codes, PAIR_SUBSTREAM_WHITE_MASK)
        part = pair_stream_uniforms(99, subset, PAIR_SUBSTREAM_WHITE_MASK)
        lookup = dict(zip(codes.tolist(), full.tolist()))
        np.testing.assert_array_equal(part, [lookup[c] for c in subset.tolist()])

    def test_substreams_differ(self):
        codes = np.arange(2000)
        streams = [
            pair_stream_uniforms(5, codes, s)
            for s in (
                PAIR_SUBSTREAM_PERTURBATION,
                PAIR_SUBSTREAM_WHITE_MASK,
                PAIR_SUBSTREAM_WHITE_VALUE,
            )
        ]
        assert not np.array_equal(streams[0], streams[1])
        assert not np.array_equal(streams[1], streams[2])
        # and they are uncorrelated enough to act as independent draws
        assert abs(np.corrcoef(streams[0], streams[1])[0, 1]) < 0.05

    def test_keys_differ(self):
        codes = np.arange(2000)
        a = pair_stream_uniforms(1, codes, PAIR_SUBSTREAM_PERTURBATION)
        b = pair_stream_uniforms(2, codes, PAIR_SUBSTREAM_PERTURBATION)
        assert not np.array_equal(a, b)

    def test_range_and_uniformity(self):
        u = pair_stream_uniforms(123, np.arange(200000), PAIR_SUBSTREAM_PERTURBATION)
        assert (u >= 0).all() and (u < 1).all()
        assert u.mean() == pytest.approx(0.5, abs=0.005)
        assert u.std() == pytest.approx(math.sqrt(1 / 12), abs=0.005)
        # all 8 leading octant bins populated evenly
        hist = np.bincount((u * 8).astype(int), minlength=8)
        assert hist.min() > 0.9 * len(u) / 8

    def test_negative_codes_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            pair_stream_uniforms(0, np.array([-1]), 0)

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=2**62), st.integers(0, 2**40))
    def test_any_key_code_in_range(self, key, code):
        u = pair_stream_uniforms(key, np.array([code]), PAIR_SUBSTREAM_PERTURBATION)
        assert 0.0 <= u[0] < 1.0


class TestPerturbationsFromUniforms:
    def test_alias_of_ppf(self):
        u = np.random.default_rng(0).random(100)
        sig = np.full(100, 0.7)
        np.testing.assert_array_equal(
            perturbations_from_uniforms(u, sig), truncated_normal_ppf(u, sig)
        )
