"""Tests for parameter/result dataclasses."""

import pytest

from repro.core.types import (
    GenerationOutcome,
    ObfuscationParams,
    ObfuscationResult,
    SearchStep,
)


class TestObfuscationParams:
    def test_paper_defaults(self):
        p = ObfuscationParams(k=20, eps=1e-3)
        assert p.c == 2.0
        assert p.q == 0.01

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0.5, "eps": 0.1},
            {"k": 2, "eps": 1.0},
            {"k": 2, "eps": -0.1},
            {"k": 2, "eps": 0.1, "c": 0.5},
            {"k": 2, "eps": 0.1, "q": 1.5},
            {"k": 2, "eps": 0.1, "attempts": 0},
            {"k": 2, "eps": 0.1, "delta": 0.0},
            {"k": 2, "eps": 0.1, "sigma_init": 0.0},
            {"k": 2, "eps": 0.1, "sigma_init": 4.0, "sigma_max": 2.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ObfuscationParams(**kwargs)

    def test_frozen(self):
        p = ObfuscationParams(k=2, eps=0.1)
        with pytest.raises(AttributeError):
            p.k = 3


class TestOutcomes:
    def test_generation_success_flag(self):
        fail = GenerationOutcome(eps_achieved=float("inf"), uncertain=None, sigma=1.0)
        assert not fail.success

    def test_search_step_success(self):
        assert SearchStep(sigma=0.1, eps_achieved=0.01, phase="bisection").success
        assert not SearchStep(sigma=0.1, eps_achieved=float("inf"), phase="doubling").success

    def test_result_edges_per_second(self):
        params = ObfuscationParams(k=2, eps=0.1)
        res = ObfuscationResult(
            uncertain=None,
            sigma=float("nan"),
            eps_achieved=float("inf"),
            params=params,
            edges_processed=1000,
            elapsed_seconds=2.0,
        )
        assert res.edges_per_second == 500.0

    def test_result_zero_elapsed(self):
        params = ObfuscationParams(k=2, eps=0.1)
        res = ObfuscationResult(
            uncertain=None,
            sigma=float("nan"),
            eps_achieved=float("inf"),
            params=params,
        )
        assert res.edges_per_second == 0.0
