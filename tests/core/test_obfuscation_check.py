"""Tests for the X/Y posterior machinery and the Definition-2 checker."""

import math

import numpy as np
import pytest

from repro.core.obfuscation_check import (
    DegreePosterior,
    compute_degree_posterior,
    is_k_eps_obfuscation,
    tolerance_achieved,
)
from repro.graphs.graph import Graph
from repro.uncertain.graph import UncertainGraph


class TestDegreePosterior:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            DegreePosterior(np.zeros(4))

    def test_x_row_and_column(self, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        assert post.x_row(0).sum() == pytest.approx(1.0)
        assert post.x_column(2)[2] == pytest.approx(0.720, abs=5e-4)

    def test_out_of_range_column_is_zero(self, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        assert (post.x_column(99) == 0).all()
        assert post.column_entropy(99) == 0.0

    def test_y_column_unattainable_raises(self):
        ug = UncertainGraph.from_pairs(3, [(0, 1, 1.0)])
        post = compute_degree_posterior(ug, method="exact")
        with pytest.raises(ValueError, match="unattainable"):
            post.y_column(2)

    def test_y_column_normalised(self, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        for omega in range(4):
            assert post.y_column(omega).sum() == pytest.approx(1.0)

    def test_entropy_by_degree_caches_distinct(self, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        by_deg = post.entropy_by_degree(np.array([3, 1, 2, 2]))
        assert set(by_deg) == {1, 2, 3}

    def test_obfuscation_entropies_shape(self, fig1a, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        ent = post.obfuscation_entropies(fig1a.degrees())
        assert ent.shape == (4,)
        assert ent[2] == pytest.approx(ent[3])  # same original degree

    def test_wrong_length_rejected(self, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        with pytest.raises(ValueError):
            post.obfuscation_entropies(np.array([1, 2]))

    def test_levels_are_two_to_entropy(self, fig1a, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        ent = post.obfuscation_entropies(fig1a.degrees())
        lev = post.obfuscation_levels(fig1a.degrees())
        assert np.allclose(lev, np.exp2(ent))

    def test_k_below_one_rejected(self, fig1a, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        with pytest.raises(ValueError):
            post.k_obfuscated(fig1a.degrees(), 0.5)

    def test_k_one_always_satisfied(self, fig1a, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        assert post.k_obfuscated(fig1a.degrees(), 1).all()


class TestComputePosterior:
    def test_width_override(self, fig1b):
        post = compute_degree_posterior(fig1b, method="exact", width=2)
        assert post.width == 2

    def test_methods_agree_on_small_supports(self, fig1b):
        exact = compute_degree_posterior(fig1b, method="exact")
        auto = compute_degree_posterior(fig1b, method="auto")
        assert np.allclose(exact.matrix, auto.matrix)

    def test_normal_method_rows_sum_to_one(self, fig1b):
        post = compute_degree_posterior(fig1b, method="normal")
        assert np.allclose(post.matrix.sum(axis=1), 1.0, atol=1e-6)

    def test_entropy_upper_bound(self, fig1b):
        """H(Y_ω) ≤ log2 n always."""
        post = compute_degree_posterior(fig1b, method="exact")
        for omega in range(post.width):
            assert post.column_entropy(omega) <= math.log2(4) + 1e-9


class TestToleranceAchieved:
    def test_fully_obfuscated_is_zero(self):
        """A 4-cycle lifted to certainty: both degrees... all deg 2, count 4."""
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        ug = UncertainGraph.from_graph(g)
        assert tolerance_achieved(ug, g.degrees(), k=4) == pytest.approx(0.0)

    def test_nothing_obfuscated_is_one(self, star5):
        ug = UncertainGraph.from_graph(star5)
        # k=5 needs entropy >= log2 5; max possible with 4 leaves is 2 bits
        assert tolerance_achieved(ug, star5.degrees(), k=5) == pytest.approx(1.0)

    def test_monotone_in_k(self, fig1a, fig1b):
        degrees = fig1a.degrees()
        values = [tolerance_achieved(fig1b, degrees, k) for k in (1, 2, 3, 4, 8)]
        assert values == sorted(values)

    def test_posterior_reuse(self, fig1a, fig1b):
        degrees = fig1a.degrees()
        post = compute_degree_posterior(fig1b, method="exact")
        a = tolerance_achieved(fig1b, degrees, 3, posterior=post)
        b = tolerance_achieved(fig1b, degrees, 3)
        assert a == b


class TestIsKEpsObfuscation:
    def test_accepts_graph_or_degrees(self, fig1a, fig1b):
        assert is_k_eps_obfuscation(fig1b, fig1a, 3, 0.25)
        assert is_k_eps_obfuscation(fig1b, fig1a.degrees(), 3, 0.25)

    def test_certain_graph_self_check(self):
        """k-anonymity of a regular graph: every vertex has count n."""
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        ug = UncertainGraph.from_graph(g)
        assert is_k_eps_obfuscation(ug, g, k=4, eps=0.0)
        assert not is_k_eps_obfuscation(ug, g, k=5, eps=0.0)
