"""Tree-product/FFT Lemma-1 kernel: oracle pins and dispatch property.

The staircase DP (`poisson_binomial_pmf_batch`) is the pinned oracle;
the hierarchical pairwise-convolution kernel
(`poisson_binomial_pmf_tree`) must agree to ≤1e-10 everywhere, and
``kernel="auto"`` must *bit-match* whichever kernel it dispatches each
row to — the property that makes the dispatch a pure performance choice.
"""

import numpy as np
import pytest

from repro.core.degree_distribution import (
    TREE_CROSSOVER_WIDTH,
    poisson_binomial_pmf,
)
from repro.core.posterior_batch import (
    TREE_FFT_MIN_DEGREE,
    degree_posterior_matrix,
    fold_in_staircase,
    poisson_binomial_pmf_batch,
    poisson_binomial_pmf_tree,
)

TOL = 1e-10


def _ragged_csr(counts, rng):
    counts = np.asarray(counts, dtype=np.int64)
    indptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    data = rng.random(int(counts.sum()))
    return indptr, data


class TestTreeKernelOracle:
    @pytest.mark.parametrize("ell", [1, 2, 3, 5, 8, 17, 33, 64, 100, 257, 1000])
    def test_matches_staircase_random_rows(self, ell):
        rng = np.random.default_rng(ell)
        probs = rng.random((6, ell))
        tree = poisson_binomial_pmf_tree(probs)
        stair = poisson_binomial_pmf_batch(probs)
        assert np.abs(tree - stair).max() < TOL

    @pytest.mark.parametrize("ell", [1, 7, 100, 300])
    def test_degenerate_probabilities(self, ell):
        """Rows of all-0, all-1, and mixed {0, 1} probabilities."""
        probs = np.zeros((4, ell))
        probs[1] = 1.0
        probs[2, : ell // 2] = 1.0
        probs[3] = np.arange(ell) % 2
        tree = poisson_binomial_pmf_tree(probs)
        stair = poisson_binomial_pmf_batch(probs)
        assert np.abs(tree - stair).max() < TOL
        # all-ones row must put unit mass exactly at ell
        assert tree[1, ell] == pytest.approx(1.0, abs=TOL)

    def test_matches_scalar_oracle(self):
        rng = np.random.default_rng(0)
        probs = rng.random((1, 200))
        tree = poisson_binomial_pmf_tree(probs)[0]
        assert np.abs(tree - poisson_binomial_pmf(probs[0])).max() < TOL

    def test_empty_matrix_and_empty_rows(self):
        assert poisson_binomial_pmf_tree(np.zeros((0, 5))).shape == (0, 6)
        out = poisson_binomial_pmf_tree(np.zeros((3, 0)))
        assert out.shape == (3, 1)
        assert (out[:, 0] == 1.0).all()

    @pytest.mark.parametrize("support", [0, 1, 10, 99, 500])
    def test_support_truncation_drops_tail(self, support):
        """Truncation keeps exact point probabilities, never lumps."""
        rng = np.random.default_rng(1)
        probs = rng.random((4, 100))
        full = poisson_binomial_pmf_tree(probs)
        cut = poisson_binomial_pmf_tree(probs, support=support)
        assert cut.shape == (4, support + 1)
        keep = min(support + 1, full.shape[1])
        assert np.abs(cut[:, :keep] - full[:, :keep]).max() < TOL
        assert (cut[:, keep:] == 0.0).all()

    def test_width_one_rows(self):
        rng = np.random.default_rng(2)
        probs = rng.random((5, 1))
        tree = poisson_binomial_pmf_tree(probs)
        assert np.abs(tree[:, 0] - (1.0 - probs[:, 0])).max() < TOL
        assert np.abs(tree[:, 1] - probs[:, 0]).max() < TOL

    def test_fft_levels_exercised(self):
        """Wide rows must cross the direct→FFT escalation threshold."""
        ell = 8 * TREE_FFT_MIN_DEGREE
        rng = np.random.default_rng(3)
        probs = rng.random((2, ell))
        tree = poisson_binomial_pmf_tree(probs)
        stair = poisson_binomial_pmf_batch(probs)
        assert np.abs(tree - stair).max() < TOL
        # non-negativity is enforced on the FFT path
        assert (tree >= 0.0).all()

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf_tree(np.array([[0.5, 1.5]]))
        with pytest.raises(ValueError):
            poisson_binomial_pmf_tree(np.array([[-0.1]]))
        with pytest.raises(ValueError):
            poisson_binomial_pmf_tree(np.array([0.5, 0.5]))


class TestKernelDispatch:
    def _mixed_csr(self, seed=0):
        rng = np.random.default_rng(seed)
        counts = np.concatenate(
            [
                rng.integers(0, 30, size=40),
                rng.integers(TREE_CROSSOVER_WIDTH + 1, 400, size=12),
                [0, 1, TREE_CROSSOVER_WIDTH, TREE_CROSSOVER_WIDTH + 1],
            ]
        )
        rng.shuffle(counts)
        return counts, *_ragged_csr(counts, rng)

    def test_auto_bit_matches_dispatched_kernel(self):
        """Each row of kernel="auto" equals the kernel it dispatched to,
        bit for bit, regardless of the batch's other rows."""
        counts, indptr, data = self._mixed_csr()
        auto = degree_posterior_matrix(indptr, data, method="exact", kernel="auto")
        stair = degree_posterior_matrix(
            indptr, data, method="exact", kernel="staircase"
        )
        tree = degree_posterior_matrix(indptr, data, method="exact", kernel="tree")
        wide = counts > TREE_CROSSOVER_WIDTH
        assert np.array_equal(auto[~wide], stair[~wide])
        assert np.array_equal(auto[wide], tree[wide])

    def test_auto_bit_match_is_batch_independent(self):
        """A wide row's values don't depend on which rows share the batch."""
        rng = np.random.default_rng(7)
        ell = 3 * TREE_CROSSOVER_WIDTH
        row = rng.random(ell)
        solo_indptr = np.array([0, ell], dtype=np.int64)
        solo = degree_posterior_matrix(
            solo_indptr, row, method="exact", kernel="auto"
        )[0]
        counts = np.array([5, ell, 300, 0], dtype=np.int64)
        indptr = np.zeros(5, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        data = rng.random(int(counts.sum()))
        data[5 : 5 + ell] = row
        batched = degree_posterior_matrix(indptr, data, method="exact", kernel="auto")
        assert np.array_equal(batched[1, : len(solo)], solo)

    def test_tree_kernel_pinned_against_staircase(self):
        counts, indptr, data = self._mixed_csr(seed=3)
        stair = degree_posterior_matrix(
            indptr, data, method="exact", kernel="staircase"
        )
        tree = degree_posterior_matrix(indptr, data, method="exact", kernel="tree")
        assert np.abs(tree - stair).max() < TOL

    def test_method_auto_unchanged_by_kernel_dispatch(self):
        """method="auto" exact rows sit below the crossover, so the
        kernel knob cannot perturb the engine's pinned auto path."""
        counts, indptr, data = self._mixed_csr(seed=5)
        base = degree_posterior_matrix(indptr, data, method="auto")
        explicit = degree_posterior_matrix(
            indptr, data, method="auto", kernel="staircase"
        )
        assert np.array_equal(base, explicit)

    def test_unknown_kernel_rejected(self):
        indptr = np.array([0, 1], dtype=np.int64)
        data = np.array([0.5])
        with pytest.raises(ValueError, match="unknown kernel"):
            degree_posterior_matrix(indptr, data, kernel="fft")
        with pytest.raises(ValueError, match="unknown kernel"):
            fold_in_staircase(np.ones((1, 2)), indptr, data, kernel="fft")


class TestFoldKernelPath:
    def _fold_case(self, seed=0):
        rng = np.random.default_rng(seed)
        rows, width = 24, 220
        base = rng.random((rows, width))
        base /= base.sum(axis=1, keepdims=True)
        counts = np.concatenate(
            [
                rng.integers(0, 20, size=rows - 8),
                rng.integers(TREE_CROSSOVER_WIDTH + 1, 300, size=8),
            ]
        )
        rng.shuffle(counts)
        indptr, data = _ragged_csr(counts, rng)
        return base, indptr, data

    def test_fold_tree_matches_staircase(self):
        base, indptr, data = self._fold_case()
        stair = fold_in_staircase(base, indptr, data, kernel="staircase")
        tree = fold_in_staircase(base, indptr, data, kernel="tree")
        auto = fold_in_staircase(base, indptr, data, kernel="auto")
        assert np.abs(tree - stair).max() < TOL
        assert np.abs(auto - stair).max() < TOL

    def test_fold_auto_narrow_rows_bit_match_staircase(self):
        """Rows below the crossover keep the staircase arithmetic."""
        rng = np.random.default_rng(9)
        base = rng.random((10, 40))
        base /= base.sum(axis=1, keepdims=True)
        counts = rng.integers(0, TREE_CROSSOVER_WIDTH, size=10)
        indptr, data = _ragged_csr(counts, rng)
        stair = fold_in_staircase(base, indptr, data, kernel="staircase")
        auto = fold_in_staircase(base, indptr, data, kernel="auto")
        assert np.array_equal(auto, stair)
