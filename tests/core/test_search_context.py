"""SearchContext reuse + array/sequential engine equivalence (PR 4).

The headline regression pin: a full :func:`repro.core.obfuscate` run —
doubling phase, bisection, winning release — must be *unchanged* under
the array engine at a fixed seed, because both engines consume the
identical RNG stream and every vectorised stage is bit-compatible with
its sequential ground truth.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.generate import SearchContext, generate_obfuscation
from repro.core.search import obfuscate, obfuscate_with_fallback
from repro.core.types import ObfuscationParams
from repro.graphs.generators import erdos_renyi, powerlaw_cluster


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(90, 0.1, seed=7)


def _params(engine, **kw):
    base = dict(k=4, eps=0.15, attempts=3)
    base.update(kw)
    return ObfuscationParams(engine=engine, **base)


class TestEngineEquivalence:
    @pytest.mark.parametrize("sigma", [0.0, 0.05, 0.3, 1.0])
    def test_generate_identical_at_fixed_seed(self, graph, sigma):
        array = generate_obfuscation(graph, sigma, _params("array"), seed=11)
        seq = generate_obfuscation(graph, sigma, _params("sequential"), seed=11)
        assert array.eps_achieved == seq.eps_achieved
        assert array.attempts_made == seq.attempts_made
        assert array.pairs_drawn == seq.pairs_drawn
        assert array.success == seq.success
        if array.success:
            assert sorted(array.uncertain.candidate_pairs()) == sorted(
                seq.uncertain.candidate_pairs()
            )

    def test_white_noise_path_identical(self, graph):
        array = generate_obfuscation(graph, 0.3, _params("array", q=0.4), seed=5)
        seq = generate_obfuscation(graph, 0.3, _params("sequential", q=0.4), seed=5)
        assert array.eps_achieved == seq.eps_achieved
        assert sorted(array.uncertain.candidate_pairs()) == sorted(
            seq.uncertain.candidate_pairs()
        )

    def test_uniform_weighting_identical(self, graph):
        kw = dict(weighting="uniform")
        array = generate_obfuscation(graph, 0.2, _params("array", **kw), seed=9)
        seq = generate_obfuscation(graph, 0.2, _params("sequential", **kw), seed=9)
        assert array.eps_achieved == seq.eps_achieved

    @pytest.mark.parametrize(
        "k,eps", [(3, 0.2), (4, 0.15), (8, 0.3)]
    )
    def test_full_obfuscate_trace_unchanged(self, graph, k, eps):
        """The pinned end-to-end regression: identical search traces."""
        array = obfuscate(
            graph, k=k, eps=eps, seed=0, attempts=2, delta=0.02, engine="array"
        )
        seq = obfuscate(
            graph, k=k, eps=eps, seed=0, attempts=2, delta=0.02,
            engine="sequential",
        )
        assert [(s.sigma, s.eps_achieved, s.phase) for s in array.trace] == [
            (s.sigma, s.eps_achieved, s.phase) for s in seq.trace
        ]
        assert array.sigma == seq.sigma
        assert array.eps_achieved == seq.eps_achieved
        assert array.edges_processed == seq.edges_processed
        assert sorted(array.uncertain.candidate_pairs()) == sorted(
            seq.uncertain.candidate_pairs()
        )

    def test_failure_trace_unchanged(self, star5):
        kwargs = dict(k=5, eps=0.0, seed=0, attempts=1, delta=0.1, sigma_max=4.0)
        array = obfuscate(star5, engine="array", **kwargs)
        seq = obfuscate(star5, engine="sequential", **kwargs)
        assert not array.success and not seq.success
        assert math.isnan(array.sigma) and math.isnan(seq.sigma)
        assert array.edges_processed == seq.edges_processed
        assert [(s.sigma, s.eps_achieved) for s in array.trace] == [
            (s.sigma, s.eps_achieved) for s in seq.trace
        ]

    def test_powerlaw_graph_trace_unchanged(self):
        graph = powerlaw_cluster(150, 3, 0.4, seed=1)
        array = obfuscate(
            graph, k=5, eps=0.1, seed=2, attempts=2, delta=0.05, engine="array"
        )
        seq = obfuscate(
            graph, k=5, eps=0.1, seed=2, attempts=2, delta=0.05,
            engine="sequential",
        )
        assert [(s.sigma, s.eps_achieved) for s in array.trace] == [
            (s.sigma, s.eps_achieved) for s in seq.trace
        ]


class TestSearchContext:
    def test_sigma_setups_memoised(self, graph):
        ctx = SearchContext(graph, eps=0.15)
        first = ctx.sigma_setup(0.5)
        assert ctx.sigma_setup(0.5) is first
        assert ctx.sigma_setup(0.25) is not first

    def test_external_excluded_not_memoised(self, graph):
        ctx = SearchContext(graph, eps=0.15)
        excluded = np.array([0, 1, 2])
        setup = ctx.setup_for_excluded(0.5, excluded)
        np.testing.assert_array_equal(setup.excluded, excluded)
        assert not ctx._setups  # ad-hoc setups never pollute the memo

    def test_check_rejects_other_graph(self, graph):
        ctx = SearchContext.for_params(graph, ObfuscationParams(k=3, eps=0.1))
        other = erdos_renyi(20, 0.3, seed=1)
        with pytest.raises(ValueError, match="different graph"):
            ctx.check(other, ObfuscationParams(k=3, eps=0.1))

    def test_check_rejects_mismatched_params(self, graph):
        ctx = SearchContext.for_params(graph, ObfuscationParams(k=3, eps=0.1))
        with pytest.raises(ValueError, match="does not match"):
            ctx.check(graph, ObfuscationParams(k=3, eps=0.2))
        # c / k / q may differ freely
        ctx.check(graph, ObfuscationParams(k=8, eps=0.1, c=3.0, q=0.2))

    def test_generate_accepts_shared_context(self, graph):
        params = ObfuscationParams(k=4, eps=0.15, attempts=2)
        ctx = SearchContext.for_params(graph, params)
        a = generate_obfuscation(graph, 0.3, params, seed=4, context=ctx)
        b = generate_obfuscation(graph, 0.3, params, seed=4)
        assert a.eps_achieved == b.eps_achieved
        assert 0.3 in ctx._setups

    def test_obfuscate_with_context_kwarg(self, graph):
        params = ObfuscationParams(k=4, eps=0.15, attempts=2, delta=0.05)
        ctx = SearchContext.for_params(graph, params)
        with_ctx = obfuscate(graph, 4, 0.15, params=params, seed=1, context=ctx)
        without = obfuscate(graph, 4, 0.15, params=params, seed=1)
        assert with_ctx.sigma == without.sigma
        assert len(ctx._setups) > 0

    def test_fallback_shares_context_and_matches(self, star5):
        """c escalation reuses the σ memo and stays seed-equivalent."""
        kwargs = dict(
            c_values=(1.5, 2.0), seed=0, attempts=1, delta=0.1, sigma_max=2.0
        )
        array = obfuscate_with_fallback(star5, 5, 0.0, engine="array", **kwargs)
        seq = obfuscate_with_fallback(star5, 5, 0.0, engine="sequential", **kwargs)
        assert array.params.c == seq.params.c == 2.0
        assert array.edges_processed == seq.edges_processed


class TestOutcomeAccounting:
    def test_attempts_made_is_winning_attempt(self, graph):
        """The winning attempt index survives (no clobber to attempts)."""
        out = generate_obfuscation(graph, 0.4, _params("array", attempts=4), seed=2)
        assert out.success
        assert 1 <= out.attempts_made <= 4
        seq = generate_obfuscation(
            graph, 0.4, _params("sequential", attempts=4), seed=2
        )
        assert out.attempts_made == seq.attempts_made

    def test_attempts_made_on_failure_counts_all(self, star5):
        params = ObfuscationParams(k=5, eps=0.0, attempts=3)
        out = generate_obfuscation(star5, 0.1, params, seed=0)
        assert not out.success
        assert out.attempts_made == 3

    def test_pairs_drawn_counts_actual_draws(self, graph):
        out = generate_obfuscation(graph, 0.3, _params("array"), seed=1)
        # every attempt consumes at least one sampling batch of 4096 pairs
        assert out.pairs_drawn >= 4096 * 3

    def test_edges_processed_sums_probe_draws(self, graph):
        result = obfuscate(
            graph, k=4, eps=0.15, seed=0, attempts=2, delta=0.05, engine="array"
        )
        assert result.edges_processed > 0
        assert result.edges_processed % 4096 == 0  # whole batches only
        assert result.edges_per_second > 0
