"""The paper's worked examples as exact regression anchors.

Table 1 (the X and Y matrices of Figure 1(b)), Example 1's arithmetic,
and Example 2's entropies and (3, 0.25)-obfuscation verdict are all
asserted against the published decimals.
"""

import numpy as np
import pytest

from repro.core.obfuscation_check import (
    compute_degree_posterior,
    is_k_eps_obfuscation,
    tolerance_achieved,
)

#: Table 1's X matrix (rows v1..v4, columns deg 0..3), as printed.
PAPER_X = np.array(
    [
        [0.006, 0.092, 0.398, 0.504],
        [0.054, 0.348, 0.542, 0.056],
        [0.020, 0.260, 0.720, 0.000],
        [0.180, 0.740, 0.080, 0.000],
    ]
)

#: Table 1's Y matrix (columns normalised), as printed.
PAPER_Y = np.array(
    [
        [0.023, 0.064, 0.229, 0.900],
        [0.208, 0.242, 0.311, 0.100],
        [0.077, 0.180, 0.414, 0.000],
        [0.692, 0.514, 0.046, 0.000],
    ]
)


class TestTable1:
    def test_x_matrix(self, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        assert post.matrix.shape == (4, 4)
        assert np.allclose(post.matrix, PAPER_X, atol=5e-4)

    def test_rows_are_distributions(self, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        assert np.allclose(post.matrix.sum(axis=1), 1.0)

    def test_y_columns(self, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        for omega in range(4):
            assert np.allclose(post.y_column(omega), PAPER_Y[:, omega], atol=1.5e-3)

    def test_example1_degree3_posterior(self, fig1b):
        """'If we look for a vertex of degree 3 in G, it is either v1 with
        probability 0.9 or v2 with probability 0.1.'"""
        post = compute_degree_posterior(fig1b, method="exact")
        y3 = post.y_column(3)
        assert y3[0] == pytest.approx(0.9, abs=1e-3)
        assert y3[1] == pytest.approx(0.1, abs=1e-3)
        assert y3[2] == 0.0 and y3[3] == 0.0


class TestExample2:
    def test_entropy_deg3(self, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        assert post.column_entropy(3) == pytest.approx(0.469, abs=1e-3)

    def test_entropy_deg1(self, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        assert post.column_entropy(1) == pytest.approx(1.688, abs=1e-3)

    def test_entropy_deg2(self, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        assert post.column_entropy(2) == pytest.approx(1.742, abs=1e-3)

    def test_entropy_orderings(self, fig1b):
        """deg-1 and deg-2 columns exceed log2(3); deg-3 does not."""
        post = compute_degree_posterior(fig1b, method="exact")
        assert post.column_entropy(1) > np.log2(3)
        assert post.column_entropy(2) > np.log2(3)
        assert post.column_entropy(3) < np.log2(3)

    def test_three_quarters_obfuscated(self, fig1a, fig1b):
        """Three of four vertices are 3-obfuscated: ε' = 0.25 exactly."""
        eps_prime = tolerance_achieved(fig1b, fig1a.degrees(), k=3, method="exact")
        assert eps_prime == pytest.approx(0.25)

    def test_is_3_025_obfuscation(self, fig1a, fig1b):
        """Example 2's verdict: Figure 1(b) is a (3, 0.25)-obfuscation."""
        assert is_k_eps_obfuscation(fig1b, fig1a, k=3, eps=0.25, method="exact")

    def test_not_3_01_obfuscation(self, fig1a, fig1b):
        assert not is_k_eps_obfuscation(fig1b, fig1a, k=3, eps=0.1, method="exact")

    def test_v1_is_the_unprotected_vertex(self, fig1a, fig1b):
        post = compute_degree_posterior(fig1b, method="exact")
        mask = post.k_obfuscated(fig1a.degrees(), 3)
        assert not mask[0]  # v1, degree 3
        assert mask[1] and mask[2] and mask[3]


class TestSection3CertainGraphObservation:
    """§3: on a certain graph, Y_ω is uniform over P⁻¹(ω)."""

    def test_uniform_posterior(self, fig1a):
        from repro.uncertain.graph import UncertainGraph

        ug = UncertainGraph.from_graph(fig1a)
        post = compute_degree_posterior(ug, method="exact")
        # degree 2 is shared by v3, v4 → Y is 1/2 each, entropy = 1 bit
        y2 = post.y_column(2)
        assert np.allclose(y2, [0.0, 0.0, 0.5, 0.5])
        assert post.column_entropy(2) == pytest.approx(1.0)

    def test_unique_degree_entropy_zero(self, fig1a):
        from repro.uncertain.graph import UncertainGraph

        ug = UncertainGraph.from_graph(fig1a)
        post = compute_degree_posterior(ug, method="exact")
        assert post.column_entropy(3) == pytest.approx(0.0)
        assert post.column_entropy(1) == pytest.approx(0.0)
