"""Tests for the truncated-normal perturbation sampler (Equation 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.perturbation import (
    UNIFORM_THRESHOLD,
    sample_perturbation,
    sample_perturbations,
    truncated_normal_cdf,
    truncated_normal_mean,
    truncated_normal_pdf,
)


class TestDensity:
    def test_integrates_to_one(self):
        xs = np.linspace(0, 1, 20001)
        for sigma in (0.1, 0.5, 2.0):
            pdf = truncated_normal_pdf(xs, sigma)
            assert np.trapezoid(pdf, xs) == pytest.approx(1.0, abs=1e-4)

    def test_zero_outside_unit_interval(self):
        pdf = truncated_normal_pdf(np.array([-0.5, 1.5]), 0.3)
        assert (pdf == 0).all()

    def test_monotone_decreasing(self):
        xs = np.linspace(0, 1, 50)
        pdf = truncated_normal_pdf(xs, 0.4)
        assert (np.diff(pdf) <= 0).all()

    def test_sigma_zero_rejected(self):
        with pytest.raises(ValueError):
            truncated_normal_pdf(np.array([0.5]), 0.0)

    def test_cdf_endpoints(self):
        assert truncated_normal_cdf(np.array([0.0]), 0.5)[0] == pytest.approx(0.0)
        assert truncated_normal_cdf(np.array([1.0]), 0.5)[0] == pytest.approx(1.0)

    def test_cdf_monotone(self):
        xs = np.linspace(0, 1, 30)
        cdf = truncated_normal_cdf(xs, 0.7)
        assert (np.diff(cdf) >= 0).all()


class TestMean:
    def test_small_sigma_half_normal_limit(self):
        """For σ ≪ 1 truncation is irrelevant: mean → σ·√(2/π)."""
        sigma = 0.01
        assert truncated_normal_mean(sigma) == pytest.approx(
            sigma * np.sqrt(2 / np.pi), rel=1e-6
        )

    def test_large_sigma_uniform_limit(self):
        """For σ ≫ 1 the density flattens: mean → 1/2."""
        assert truncated_normal_mean(100.0) == pytest.approx(0.5, abs=1e-3)

    def test_monotone_in_sigma(self):
        means = [truncated_normal_mean(s) for s in (0.05, 0.2, 1.0, 5.0)]
        assert means == sorted(means)


class TestSampler:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        sigmas = rng.uniform(0.01, 20.0, size=5000)
        samples = sample_perturbations(sigmas, seed=1)
        assert (samples >= 0).all() and (samples <= 1).all()

    def test_sigma_zero_gives_zero(self):
        samples = sample_perturbations(np.zeros(10), seed=0)
        assert (samples == 0).all()

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            sample_perturbations(np.array([-0.1]))

    def test_empirical_mean_matches_theory(self):
        for sigma in (0.1, 0.5, 2.0):
            samples = sample_perturbations(np.full(40000, sigma), seed=7)
            assert samples.mean() == pytest.approx(
                truncated_normal_mean(sigma), abs=0.01
            )

    def test_huge_sigma_near_uniform(self):
        samples = sample_perturbations(np.full(40000, UNIFORM_THRESHOLD + 5), seed=2)
        assert samples.mean() == pytest.approx(0.5, abs=0.02)
        assert samples.std() == pytest.approx(np.sqrt(1 / 12), abs=0.02)

    def test_smaller_sigma_smaller_perturbation(self):
        small = sample_perturbations(np.full(5000, 0.05), seed=3).mean()
        large = sample_perturbations(np.full(5000, 0.8), seed=3).mean()
        assert small < large

    def test_shape_preserved(self):
        sigmas = np.full((3, 4), 0.2)
        assert sample_perturbations(sigmas, seed=0).shape == (3, 4)

    def test_deterministic_with_seed(self):
        a = sample_perturbations(np.full(50, 0.3), seed=11)
        b = sample_perturbations(np.full(50, 0.3), seed=11)
        assert np.array_equal(a, b)

    def test_scalar_wrapper(self):
        val = sample_perturbation(0.2, seed=5)
        assert 0.0 <= val <= 1.0

    @settings(max_examples=30)
    @given(st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
    def test_any_sigma_in_bounds_property(self, sigma):
        samples = sample_perturbations(np.full(20, sigma), seed=0)
        assert (samples >= 0).all() and (samples <= 1).all()

    def test_distribution_matches_cdf(self):
        """KS-style check of the rejection sampler against the exact CDF."""
        sigma = 0.35
        samples = np.sort(sample_perturbations(np.full(20000, sigma), seed=9))
        empirical = np.arange(1, len(samples) + 1) / len(samples)
        theoretical = truncated_normal_cdf(samples, sigma)
        assert np.abs(empirical - theoretical).max() < 0.015
