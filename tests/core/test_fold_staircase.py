"""Oracle pins for the stacked fold-in pass and split entropies (PR 5).

``fold_in_staircase`` is the pair_keyed probe path's hot loop: each
row's Bernoulli entries collapse into their product PMF and convolve
into the warm row.  The oracle is the sequential
:func:`repro.core.posterior_batch.fold_in_bernoulli` chain, which the
PR-4 fold tests pin against the Lemma-1 DP itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.obfuscation_check import DegreePosterior, column_entropies_stack
from repro.core.posterior_batch import (
    fold_in_bernoulli,
    fold_in_staircase,
    poisson_binomial_pmf_batch,
)


def _sequential_fold(rows: np.ndarray, indptr, data) -> np.ndarray:
    out = rows.copy()
    for r in range(rows.shape[0]):
        for p in data[indptr[r] : indptr[r + 1]]:
            out[r : r + 1] = fold_in_bernoulli(out[r : r + 1], np.array([p]))
    return out


def _random_case(rng, rows=200, width=30, max_count=15):
    mat = rng.random((rows, width))
    mat /= mat.sum(axis=1, keepdims=True)
    counts = rng.integers(0, max_count, rows)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    data = rng.random(indptr[-1])
    return mat, indptr, data


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestFoldInStaircase:
    def test_matches_sequential_fold(self, rng):
        rows, indptr, data = _random_case(rng)
        out = fold_in_staircase(rows, indptr, data)
        oracle = _sequential_fold(rows, indptr, data)
        assert np.abs(out - oracle).max() <= 1e-12

    def test_wide_rows_with_support_hint(self, rng):
        """Support trimming is an exact no-op wherever rows are zero."""
        rows = np.zeros((64, 139))
        support = rng.integers(1, 20, 64)
        for r in range(64):
            vals = rng.random(support[r])
            rows[r, : support[r]] = vals / vals.sum()
        counts = rng.integers(0, 40, 64)
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        data = rng.random(indptr[-1])
        out = fold_in_staircase(rows, indptr, data, support=support)
        oracle = _sequential_fold(rows, indptr, data)
        assert np.abs(out - oracle).max() <= 1e-12

    def test_cold_rows_equal_pmf_batch(self, rng):
        """Folding into δ₀ rows reproduces the Poisson-binomial PMF."""
        counts = rng.integers(1, 12, 100)
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        data = rng.random(indptr[-1])
        width = int(counts.max()) + 1
        rows = np.zeros((100, width))
        rows[:, 0] = 1.0
        out = fold_in_staircase(rows, indptr, data)
        padded = np.zeros((100, int(counts.max())))
        for r in range(100):
            padded[r, : counts[r]] = data[indptr[r] : indptr[r + 1]]
        oracle = poisson_binomial_pmf_batch(padded, support=width - 1)
        assert np.abs(out - oracle).max() <= 1e-12

    def test_empty_entries_pass_through(self, rng):
        rows, _, _ = _random_case(rng)
        indptr = np.zeros(rows.shape[0] + 1, dtype=np.int64)
        out = fold_in_staircase(rows, indptr, np.empty(0))
        np.testing.assert_array_equal(out, rows)
        assert out is not rows  # a copy unless overwrite is requested

    def test_active_mask_skips_rows(self, rng):
        rows, indptr, data = _random_case(rng)
        active = rng.random(rows.shape[0]) < 0.5
        out = fold_in_staircase(rows, indptr, data, active=active)
        oracle = _sequential_fold(rows, indptr, data)
        np.testing.assert_array_equal(out[~active], rows[~active])
        assert np.abs(out[active] - oracle[active]).max() <= 1e-12

    def test_overwrite_in_place(self, rng):
        rows, indptr, data = _random_case(rng)
        buf = np.ascontiguousarray(rows.copy())
        out = fold_in_staircase(buf, indptr, data, overwrite=True)
        assert out is buf
        assert np.abs(buf - _sequential_fold(rows, indptr, data)).max() <= 1e-12

    def test_overwrite_requires_contiguous_float64(self, rng):
        rows, indptr, data = _random_case(rng)
        with pytest.raises(ValueError, match="C-contiguous"):
            fold_in_staircase(
                rows[:, ::2], indptr, data, overwrite=True
            )

    def test_validation(self, rng):
        rows, indptr, data = _random_case(rng)
        with pytest.raises(ValueError, match="indptr"):
            fold_in_staircase(rows, indptr[:-2], data)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            fold_in_staircase(rows, indptr, data + 2.0)
        with pytest.raises(ValueError, match="support"):
            fold_in_staircase(rows, indptr, data, support=np.ones(3, dtype=int))

    def test_width_one_rows_scale_by_survival(self, rng):
        """Width-1 truncation reduces every fold to a ∏(1-p) scale."""
        rows = np.array([[1.0], [0.5], [0.25]])
        counts = np.array([2, 0, 1])
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        data = np.array([0.3, 0.5, 0.2])
        out = fold_in_staircase(rows, indptr, data)
        oracle = _sequential_fold(rows, indptr, data)
        np.testing.assert_allclose(out, oracle, atol=1e-15)

    def test_single_heavy_row(self, rng):
        """One row with many entries exercises the deep-degree bucket."""
        rows = np.zeros((3, 70))
        rows[:, 0] = 1.0
        counts = np.array([60, 0, 2])
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        data = rng.random(indptr[-1]) * 0.9
        out = fold_in_staircase(rows, indptr, data)
        oracle = _sequential_fold(rows, indptr, data)
        assert np.abs(out - oracle).max() <= 1e-12


class TestColumnEntropiesStack:
    def test_matches_per_attempt_evaluation(self, rng):
        stack = rng.random((3, 50, 20))
        omegas = np.array([0, 3, 7, 19, 25, -1])
        batched = column_entropies_stack(stack, omegas)
        for a in range(3):
            expected = DegreePosterior(stack[a]).column_entropies(omegas)
            np.testing.assert_allclose(batched[a], expected, atol=1e-12)

    def test_zero_mass_columns_are_zero(self):
        stack = np.zeros((2, 10, 5))
        stack[:, :, 1] = 0.1
        out = column_entropies_stack(stack, np.array([0, 1]))
        assert (out[:, 0] == 0.0).all()
        assert (out[:, 1] > 0.0).all()

    def test_validation(self):
        with pytest.raises(ValueError, match="3-D"):
            column_entropies_stack(np.zeros((4, 5)), np.array([0]))
