"""Tests for Poisson-binomial degree machinery (§4, Lemma 1)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degree_distribution import (
    degree_pmf,
    normal_approx_pmf,
    poisson_binomial_mean_var,
    poisson_binomial_pmf,
)


def brute_force_pmf(probs):
    """Enumerate all 2^n outcomes — the oracle for the Lemma-1 DP."""
    n = len(probs)
    pmf = np.zeros(n + 1)
    for outcome in itertools.product([0, 1], repeat=n):
        prob = 1.0
        for o, p in zip(outcome, probs):
            prob *= p if o else (1.0 - p)
        pmf[sum(outcome)] += prob
    return pmf


class TestExactDP:
    def test_empty(self):
        assert np.allclose(poisson_binomial_pmf(np.array([])), [1.0])

    def test_single_bernoulli(self):
        assert np.allclose(poisson_binomial_pmf(np.array([0.3])), [0.7, 0.3])

    def test_binomial_special_case(self):
        """All p equal reduces to Binomial(n, p)."""
        from math import comb

        n, p = 8, 0.35
        pmf = poisson_binomial_pmf(np.full(n, p))
        expected = [comb(n, k) * p**k * (1 - p) ** (n - k) for k in range(n + 1)]
        assert np.allclose(pmf, expected)

    def test_against_brute_force(self):
        probs = np.array([0.1, 0.5, 0.9, 0.33, 0.72])
        assert np.allclose(poisson_binomial_pmf(probs), brute_force_pmf(probs))

    def test_deterministic_probs(self):
        pmf = poisson_binomial_pmf(np.array([1.0, 1.0, 0.0]))
        expected = np.zeros(4)
        expected[2] = 1.0
        assert np.allclose(pmf, expected)

    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            probs = rng.random(rng.integers(1, 40))
            assert poisson_binomial_pmf(probs).sum() == pytest.approx(1.0)

    def test_invalid_probs_rejected(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf(np.array([1.2]))
        with pytest.raises(ValueError):
            poisson_binomial_pmf(np.array([-0.1]))

    def test_paper_example1_value(self):
        """Example 1: Pr(d_{v1} = 2) = 0.398 with incident probs .7/.9/.8."""
        pmf = poisson_binomial_pmf(np.array([0.7, 0.9, 0.8]))
        assert pmf[2] == pytest.approx(0.398)

    @settings(max_examples=60)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=9,
        )
    )
    def test_matches_brute_force_property(self, probs):
        probs = np.array(probs)
        assert np.allclose(
            poisson_binomial_pmf(probs), brute_force_pmf(probs), atol=1e-10
        )

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=0,
            max_size=30,
        )
    )
    def test_valid_distribution_property(self, probs):
        pmf = poisson_binomial_pmf(np.array(probs))
        assert (pmf >= -1e-12).all()
        assert pmf.sum() == pytest.approx(1.0)


class TestMeanVar:
    def test_formulas(self):
        probs = np.array([0.2, 0.5, 0.9])
        mu, var = poisson_binomial_mean_var(probs)
        assert mu == pytest.approx(1.6)
        assert var == pytest.approx(0.2 * 0.8 + 0.25 + 0.09)

    def test_matches_pmf_moments(self):
        rng = np.random.default_rng(1)
        probs = rng.random(15)
        pmf = poisson_binomial_pmf(probs)
        ks = np.arange(len(pmf))
        mu, var = poisson_binomial_mean_var(probs)
        assert (pmf * ks).sum() == pytest.approx(mu)
        assert (pmf * ks**2).sum() - mu**2 == pytest.approx(var)


class TestNormalApproximation:
    def test_sums_to_one(self):
        pmf = normal_approx_pmf(np.full(50, 0.3))
        assert pmf.sum() == pytest.approx(1.0)

    def test_close_to_exact_for_many_addends(self):
        """§4: CLT is accurate once addend count reaches ~30."""
        rng = np.random.default_rng(2)
        probs = rng.uniform(0.2, 0.8, size=200)
        exact = poisson_binomial_pmf(probs)
        approx = normal_approx_pmf(probs)
        assert np.abs(exact - approx).max() < 5e-3

    def test_degenerate_all_certain(self):
        pmf = normal_approx_pmf(np.array([1.0, 1.0, 0.0]))
        assert pmf[2] == pytest.approx(1.0)

    def test_custom_support(self):
        pmf = normal_approx_pmf(np.full(10, 0.5), support=20)
        assert len(pmf) == 21

    def test_invalid_probs_rejected(self):
        with pytest.raises(ValueError):
            normal_approx_pmf(np.array([2.0]))


class TestDegreePmfDispatch:
    def test_auto_small_uses_exact(self):
        probs = np.array([0.5] * 5)
        assert np.allclose(
            degree_pmf(probs, method="auto"), poisson_binomial_pmf(probs)
        )

    def test_auto_large_uses_normal(self):
        probs = np.full(100, 0.4)
        assert np.allclose(
            degree_pmf(probs, method="auto"), normal_approx_pmf(probs)
        )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            degree_pmf(np.array([0.5]), method="quantum")

    def test_support_padding(self):
        pmf = degree_pmf(np.array([0.5]), support=4)
        assert len(pmf) == 5
        assert pmf[2:].sum() == 0.0

    def test_support_truncation_keeps_point_probabilities(self):
        probs = np.array([0.5] * 6)
        full = degree_pmf(probs)
        cut = degree_pmf(probs, support=3)
        assert np.allclose(cut, full[:4])
