"""Incremental posterior engine: fold-out oracle + diff correctness (PR 4).

The full :func:`repro.core.degree_posterior_matrix` recompute is the
equivalence oracle throughout: fold-out/fold-in updates must agree with
it to 1e-12, and the diff-driven selective recompute must agree with it
*bit-for-bit* (row independence of the staircase/CLT passes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.degree_distribution import AUTO_EXACT_LIMIT
from repro.core.generate import generate_obfuscation
from repro.core.posterior_batch import (
    IncrementalDegreePosterior,
    degree_posterior_matrix,
    fold_in_bernoulli,
    fold_out_bernoulli,
    poisson_binomial_pmf_batch,
)
from repro.core.types import ObfuscationParams
from repro.graphs.generators import erdos_renyi
from repro.uncertain.graph import UncertainGraph

ATOL = 1e-12


def _csr(n, us, vs, ps):
    """Canonical incidence CSR of the *code-sorted* pair list — the
    normal form the engine reduces every input to."""
    order = np.argsort(us * n + vs, kind="stable")
    us, vs, ps = us[order], vs[order], ps[order]
    endpoints = np.concatenate([us, vs])
    dup = np.concatenate([ps, ps])
    counts = np.bincount(endpoints, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dup[np.argsort(endpoints, kind="stable")]


def _random_pairs(rng, n, m):
    codes = np.sort(rng.choice(n * (n - 1) // 2, size=m, replace=False))
    # decode the triangular index
    us = np.empty(m, dtype=np.int64)
    vs = np.empty(m, dtype=np.int64)
    for i, c in enumerate(codes.tolist()):
        u = 0
        while c >= n - 1 - u:
            c -= n - 1 - u
            u += 1
        us[i], vs[i] = u, u + 1 + c
    return us, vs


class TestFoldFunctions:
    def test_fold_in_matches_batch_dp(self, rng):
        """Folding the last addend into a finished row is bit-identical
        to having included it in the DP from the start."""
        P = rng.random((6, 9))
        full = poisson_binomial_pmf_batch(P, support=9)
        partial = poisson_binomial_pmf_batch(P[:, :-1], support=9)
        np.testing.assert_array_equal(
            fold_in_bernoulli(partial, P[:, -1]), full
        )

    def test_fold_out_inverts_fold_in(self, rng):
        rows = poisson_binomial_pmf_batch(rng.random((8, 14)), support=10)
        ps = rng.random(8) * 0.5
        round_trip = fold_out_bernoulli(fold_in_bernoulli(rows, ps), ps)
        np.testing.assert_allclose(round_trip, rows, atol=ATOL, rtol=0)

    def test_fold_out_vs_full_dp(self, rng):
        """Removing an addend from the DP row ≈ DP without it (≤1e-12)."""
        P = rng.random((5, 12)) * 0.5
        full = poisson_binomial_pmf_batch(P, support=12)
        without = poisson_binomial_pmf_batch(P[:, :-1], support=12)
        np.testing.assert_allclose(
            fold_out_bernoulli(full, P[:, -1]), without, atol=ATOL, rtol=0
        )

    def test_fold_out_truncated_rows(self, rng):
        """The inverse fold is exact on width-truncated rows too."""
        P = rng.random((5, 20)) * 0.5
        full = poisson_binomial_pmf_batch(P, support=7)  # heavy truncation
        without = poisson_binomial_pmf_batch(P[:, :-1], support=7)
        np.testing.assert_allclose(
            fold_out_bernoulli(full, P[:, -1]), without, atol=ATOL, rtol=0
        )

    def test_fold_out_zero_probability_is_identity(self, rng):
        """The removed-edge path: p = 0 entries fold out exactly."""
        rows = poisson_binomial_pmf_batch(rng.random((4, 6)), support=6)
        np.testing.assert_array_equal(
            fold_out_bernoulli(rows, np.zeros(4)), rows
        )

    def test_fold_out_certain_edge_rejected(self):
        rows = np.array([[0.0, 1.0]])
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            fold_out_bernoulli(rows, np.array([1.0]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            fold_in_bernoulli(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            fold_in_bernoulli(np.zeros((2, 3)), np.zeros(3))


class TestRowIndependence:
    """Sub-CSR recompute == full compute, bit-for-bit, for every method."""

    @pytest.mark.parametrize("method", ["exact", "normal", "auto"])
    def test_subset_rows_bit_identical(self, method, rng):
        n = 40
        us, vs = _random_pairs(rng, n, 150)
        ps = rng.random(150)
        indptr, data = _csr(n, us, vs, ps)
        width = 12
        full = degree_posterior_matrix(indptr, data, method=method, width=width)
        subset = rng.choice(n, size=15, replace=False)
        counts = np.diff(indptr)[subset]
        sub_indptr = np.zeros(len(subset) + 1, dtype=np.int64)
        np.cumsum(counts, out=sub_indptr[1:])
        sub_data = np.concatenate(
            [data[indptr[v] : indptr[v] + c] for v, c in zip(subset, counts)]
        ) if counts.sum() else np.empty(0)
        rows = degree_posterior_matrix(
            sub_indptr, sub_data, method=method, width=width
        )
        np.testing.assert_array_equal(rows, full[subset])

    def test_streamed_addend_path_bit_identical(self, rng, monkeypatch):
        """Above the dense-pad budget (forced-exact on skewed graphs)
        the DP streams addend columns from the CSR — same bits."""
        import repro.core.posterior_batch as pb

        n = 40
        us, vs = _random_pairs(rng, n, 180)
        ps = rng.random(180)
        indptr, data = _csr(n, us, vs, ps)
        dense = degree_posterior_matrix(indptr, data, method="exact", width=10)
        monkeypatch.setattr(pb, "_DENSE_ADDEND_BUDGET", 0)
        streamed = degree_posterior_matrix(indptr, data, method="exact", width=10)
        np.testing.assert_array_equal(streamed, dense)

    def test_out_buffer_reuse(self, rng):
        n = 25
        us, vs = _random_pairs(rng, n, 60)
        ps = rng.random(60)
        indptr, data = _csr(n, us, vs, ps)
        fresh = degree_posterior_matrix(indptr, data, width=9)
        buf = np.full((n, 9), 7.0)  # stale garbage must be cleared
        reused = degree_posterior_matrix(indptr, data, width=9, out=buf)
        assert reused is buf
        np.testing.assert_array_equal(reused, fresh)

    def test_out_buffer_shape_checked(self, rng):
        with pytest.raises(ValueError, match="out"):
            degree_posterior_matrix(
                np.array([0, 0]), np.empty(0), width=3, out=np.zeros((1, 4))
            )


def _mutate(rng, n, us, vs, ps, *, zero_some=False):
    """Drop, reweight and add pairs — the shape of attempt-to-attempt churn."""
    keep = rng.random(len(us)) > 0.15
    us, vs, ps = us[keep], vs[keep], ps[keep].copy()
    touch = rng.random(len(us)) < 0.4
    ps[touch] = rng.random(int(touch.sum()))
    if zero_some and len(ps):
        ps[rng.integers(0, len(ps))] = 0.0  # removed-edge bookkeeping entry
    au, av = _random_pairs(rng, n, 12)
    fresh = ~np.isin(au * n + av, us * n + vs)
    return (
        np.concatenate([us, au[fresh]]),
        np.concatenate([vs, av[fresh]]),
        np.concatenate([ps, rng.random(int(fresh.sum()))]),
    )


class TestIncrementalEngine:
    @pytest.mark.parametrize("method", ["exact", "auto", "normal"])
    def test_exact_mode_bit_identical_to_full(self, method, rng):
        """fold=False: every update equals a fresh full compute exactly."""
        n, width = 50, 11
        engine = IncrementalDegreePosterior(n, width=width, method=method)
        us, vs = _random_pairs(rng, n, 120)
        ps = rng.random(120)
        for _ in range(6):
            X = engine.update_from_pairs(us, vs, ps)
            indptr, data = _csr(n, us, vs, ps)
            ref = degree_posterior_matrix(indptr, data, method=method, width=width)
            np.testing.assert_array_equal(X, ref)
            us, vs, ps = _mutate(rng, n, us, vs, ps, zero_some=True)

    def test_fold_mode_within_oracle_tolerance(self, rng):
        """fold=True: ≤1e-12 vs the full recompute oracle, folds engage."""
        n, width = 50, 11
        engine = IncrementalDegreePosterior(n, width=width, fold=True)
        us, vs = _random_pairs(rng, n, 120)
        ps = rng.random(120) * 0.5  # keep fold-out well-conditioned
        for _ in range(8):
            X = engine.update_from_pairs(us, vs, ps)
            indptr, data = _csr(n, us, vs, ps)
            ref = degree_posterior_matrix(indptr, data, width=width)
            np.testing.assert_allclose(X, ref, atol=ATOL, rtol=0)
            # small diffs: reweight a handful of pairs only
            ps = ps.copy()
            touch = rng.choice(len(ps), size=5, replace=False)
            ps[touch] = rng.random(5) * 0.5
        assert engine.stats["folded"] > 0
        assert engine.stats["skipped"] > 0

    def test_unchanged_update_skips_everything(self, rng):
        n = 30
        us, vs = _random_pairs(rng, n, 70)
        ps = rng.random(70)
        engine = IncrementalDegreePosterior(n, width=8)
        first = engine.update_from_pairs(us, vs, ps).copy()
        again = engine.update_from_pairs(us, vs, ps)
        np.testing.assert_array_equal(again, first)
        assert engine.stats["skipped"] >= n
        assert engine.stats["recomputed"] == 0

    def test_update_from_uncertain_graph(self, fig1b):
        engine = IncrementalDegreePosterior(4, width=4)
        X = engine.update(fig1b)
        indptr, data = fig1b.incident_probability_csr()
        ref = degree_posterior_matrix(indptr, data, width=4)
        np.testing.assert_array_equal(X, ref)

    def test_white_noise_and_removed_edge_paths(self):
        """Engine tracks real Algorithm-2 attempt streams: q-white-noise
        perturbations and p=0 removed-edge entries included."""
        graph = erdos_renyi(60, 0.12, seed=3)
        params = ObfuscationParams(k=1, eps=0.9, q=0.3, attempts=1)
        engine = IncrementalDegreePosterior(
            60, width=int(graph.degrees().max()) + 2, fold=True
        )
        for seed in range(4):
            for sigma in (0.0, 0.4):  # σ=0 exercises exact p ∈ {0, 1} folds
                out = generate_obfuscation(graph, sigma, params, seed=seed)
                us, vs, ps = out.uncertain.pair_arrays()
                X = engine.update_from_pairs(us, vs, ps)
                indptr, data = _csr(60, us, vs, ps)
                ref = degree_posterior_matrix(
                    indptr, data, width=engine._width
                )
                np.testing.assert_allclose(X, ref, atol=ATOL, rtol=0)

    def test_rows_crossing_exact_limit_recomputed(self, rng):
        """auto mode: a vertex crossing AUTO_EXACT_LIMIT switches bucket
        and must be recomputed, not folded."""
        n = AUTO_EXACT_LIMIT + 10
        hub = 0
        others = np.arange(1, AUTO_EXACT_LIMIT + 1)
        us = np.full(len(others), hub)
        ps = rng.random(len(others))
        engine = IncrementalDegreePosterior(n, width=6, fold=True)
        engine.update_from_pairs(us, others, ps)
        # push the hub over the exact limit
        us2 = np.concatenate([us, [hub]])
        vs2 = np.concatenate([others, [AUTO_EXACT_LIMIT + 5]])
        ps2 = np.concatenate([ps, [0.4]])
        X = engine.update_from_pairs(us2, vs2, ps2)
        indptr, data = _csr(n, us2, vs2, ps2)
        ref = degree_posterior_matrix(indptr, data, width=6)
        np.testing.assert_array_equal(X, ref)

    def test_input_validation(self):
        engine = IncrementalDegreePosterior(5, width=3)
        with pytest.raises(ValueError, match="strictly increasing"):
            engine.update_from_pairs(
                np.array([0, 0]),
                np.array([1, 1]),
                np.array([0.5, 0.5]),
                codes=np.array([1, 1]),
            )
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            engine.update_from_pairs(
                np.array([0]), np.array([1]), np.array([1.5])
            )
        with pytest.raises(ValueError):
            IncrementalDegreePosterior(5, width=0)
        with pytest.raises(ValueError):
            IncrementalDegreePosterior(5, width=3, method="bogus")
