"""Fine-grained semantic checks of Algorithm 2's moving parts.

Each test pins one sentence of §5.3's prose to observable behaviour of
the implementation, so a future refactor cannot silently diverge from
the paper.
"""

import numpy as np
import pytest

from repro.core.generate import generate_obfuscation
from repro.core.types import ObfuscationParams
from repro.graphs.generators import powerlaw_cluster


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(250, 3, 0.4, seed=0)


class TestCandidateSetSemantics:
    def test_most_original_edges_stay_in_ec(self, graph):
        """§5.3: 'the resulting set E_C includes most of the edges in E'."""
        params = ObfuscationParams(k=1, eps=0.5, attempts=1)
        out = generate_obfuscation(graph, 0.1, params, seed=1)
        in_ec = sum(
            1
            for u, v in graph.edges()
            if any(
                (min(u, v), max(u, v)) == (a, b)
                for a, b, _ in out.uncertain.incident_pairs(u)
            )
        )
        assert in_ec > 0.9 * graph.num_edges

    def test_removed_edges_become_certain_non_edges(self, graph):
        """A true edge dropped from E_C has p = 0 — full deletion."""
        params = ObfuscationParams(k=1, eps=0.5, attempts=1)
        out = generate_obfuscation(graph, 0.1, params, seed=2)
        ec_pairs = {(u, v) for u, v, _ in out.uncertain.candidate_pairs()}
        removed = [e for e in graph.edges() if e not in ec_pairs]
        for u, v in removed:
            assert out.uncertain.probability(u, v) == 0.0

    def test_injected_pairs_are_original_non_edges(self, graph):
        params = ObfuscationParams(k=1, eps=0.5, attempts=1)
        out = generate_obfuscation(graph, 0.1, params, seed=3)
        injected = [
            (u, v)
            for u, v, _ in out.uncertain.candidate_pairs()
            if not graph.has_edge(u, v)
        ]
        assert injected  # c = 2 forces ~|E| additions
        assert len(injected) >= graph.num_edges // 2


class TestPerturbationSemantics:
    def test_edge_probability_is_one_minus_r(self, graph):
        """Line 19: p(e) = 1 − r_e for true edges, r_e for non-edges —
        with σ → 0 and q = 0 the split is exact (r_e = 0)."""
        params = ObfuscationParams(k=1, eps=0.5, q=0.0, attempts=1)
        out = generate_obfuscation(graph, 0.0, params, seed=4)
        for u, v, p in out.uncertain.candidate_pairs():
            assert p == (1.0 if graph.has_edge(u, v) else 0.0)

    def test_white_noise_fraction_roughly_q(self, graph):
        """Lines 15-18: a q-fraction of pairs gets uniform perturbations.
        With σ = 0 the R_σ draws are exactly 0/1, so any interior
        probability must come from the white-noise branch."""
        params = ObfuscationParams(k=1, eps=0.5, q=0.2, attempts=1)
        out = generate_obfuscation(graph, 0.0, params, seed=5)
        probs = np.array([p for _, _, p in out.uncertain.candidate_pairs()])
        interior = ((probs > 1e-12) & (probs < 1 - 1e-12)).mean()
        assert interior == pytest.approx(0.2, abs=0.05)

    def test_sigma_scales_perturbation_mass(self, graph):
        """Larger σ moves true-edge probabilities further from 1."""
        params = ObfuscationParams(k=1, eps=0.5, q=0.0, attempts=1)
        means = []
        for sigma in (0.01, 0.3):
            out = generate_obfuscation(graph, sigma, params, seed=6)
            kept = [
                p
                for u, v, p in out.uncertain.candidate_pairs()
                if graph.has_edge(u, v)
            ]
            means.append(np.mean(kept))
        assert means[0] > means[1]


class TestExclusionSemantics:
    def test_excluded_vertices_receive_no_injected_pairs(self, graph):
        """Lines 8-9 sample u, v from V \\ H only, so every *new* pair
        avoids H (original edges incident to H may remain in E_C)."""
        params = ObfuscationParams(k=1, eps=0.2, attempts=1)
        hubs = np.argsort(graph.degrees())[-5:]
        out = generate_obfuscation(
            graph, 0.1, params, seed=7, excluded=hubs
        )
        hub_set = set(int(h) for h in hubs)
        for u, v, _ in out.uncertain.candidate_pairs():
            if not graph.has_edge(u, v):
                assert u not in hub_set and v not in hub_set
