"""Equivalence tests: batched posterior engine vs the scalar ground truth.

The batched kernels of :mod:`repro.core.posterior_batch` must reproduce
the scalar §4 machinery — ``poisson_binomial_pmf`` bit-for-bit (the 2-D
fold performs identical IEEE operations in identical order) and the full
``compute_degree_posterior`` matrix to 1e-12 (fold order over a vertex's
incident pairs may differ between the dict and CSR representations).
"""

import numpy as np
import pytest

from repro.core.degree_distribution import (
    AUTO_EXACT_LIMIT,
    degree_pmf,
    normal_approx_pmf,
    poisson_binomial_mean_var,
    poisson_binomial_pmf,
)
from repro.core.obfuscation_check import (
    compute_degree_posterior,
    compute_degree_posterior_scalar,
    tolerance_achieved,
)
from repro.core.posterior_batch import (
    degree_posterior_matrix,
    normal_approx_pmf_batch,
    poisson_binomial_pmf_batch,
)
from repro.uncertain.graph import UncertainGraph

ATOL = 1e-12


def random_uncertain(rng, n, density=0.3) -> UncertainGraph:
    """A random uncertain graph on ``n`` vertices (dict-backed)."""
    pairs = []
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                pairs.append((u, v, float(rng.random())))
    return UncertainGraph.from_pairs(n, pairs)


class TestPoissonBinomialBatch:
    def test_matches_scalar_bit_for_bit(self):
        rng = np.random.default_rng(0)
        for ell in (1, 2, 7, 40):
            P = rng.random((5, ell))
            batch = poisson_binomial_pmf_batch(P)
            for r in range(5):
                # Same fold, same order → identical IEEE arithmetic.
                assert np.array_equal(batch[r], poisson_binomial_pmf(P[r]))

    def test_truncated_fold_matches_truncated_scalar(self):
        rng = np.random.default_rng(1)
        P = rng.random((4, 20))
        for support in (0, 1, 5, 19, 30):
            batch = poisson_binomial_pmf_batch(P, support=support)
            assert batch.shape == (4, support + 1)
            for r in range(4):
                expected = degree_pmf(P[r], method="exact", support=support)
                assert np.array_equal(batch[r], expected)

    def test_zero_padding_is_noop(self):
        rng = np.random.default_rng(2)
        P = rng.random((3, 6))
        padded = np.hstack([P, np.zeros((3, 4))])
        assert np.array_equal(
            poisson_binomial_pmf_batch(padded, support=6),
            poisson_binomial_pmf_batch(P, support=6),
        )

    def test_zero_rows(self):
        out = poisson_binomial_pmf_batch(np.empty((0, 3)))
        assert out.shape == (0, 4)

    def test_no_addends(self):
        out = poisson_binomial_pmf_batch(np.empty((2, 0)), support=3)
        assert np.array_equal(out, [[1, 0, 0, 0], [1, 0, 0, 0]])

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf_batch(np.array([[0.5, 1.5]]))
        with pytest.raises(ValueError):
            poisson_binomial_pmf_batch(np.array([0.5, 0.5]))  # 1-D


class TestNormalApproxBatch:
    def _moments(self, probs):
        mu, var = poisson_binomial_mean_var(probs)
        return np.array([mu]), np.array([var]), np.array([len(probs)])

    @pytest.mark.parametrize("ell", [1, 3, 10, 80])
    def test_matches_scalar(self, ell):
        rng = np.random.default_rng(ell)
        probs = rng.random(ell)
        for support in (0, 2, ell - 1, ell, ell + 5):
            mus, variances, lengths = self._moments(probs)
            batch = normal_approx_pmf_batch(
                mus, variances, lengths, support=support
            )
            expected = degree_pmf(probs, method="normal", support=support)
            assert batch.shape == (1, support + 1)
            np.testing.assert_allclose(batch[0], expected, atol=ATOL, rtol=0)

    def test_degenerate_rows(self):
        # All-certain addends: delta at round(μ), clipped like the scalar.
        probs = np.array([1.0, 1.0, 0.0])
        for support in (1, 2, 5):
            mus, variances, lengths = self._moments(probs)
            batch = normal_approx_pmf_batch(
                mus, variances, lengths, support=support
            )
            expected = degree_pmf(probs, method="normal", support=support)
            assert np.array_equal(batch[0], expected)

    def test_empty_vertex_row(self):
        batch = normal_approx_pmf_batch(
            np.array([0.0]), np.array([0.0]), np.array([0]), support=3
        )
        expected = degree_pmf(np.empty(0), method="normal", support=3)
        assert np.array_equal(batch[0], expected)

    def test_mixed_rows_in_one_call(self):
        rng = np.random.default_rng(7)
        vectors = [rng.random(5), np.ones(4), np.empty(0), rng.random(50)]
        moments = [poisson_binomial_mean_var(p) for p in vectors]
        batch = normal_approx_pmf_batch(
            np.array([m for m, _ in moments]),
            np.array([v for _, v in moments]),
            np.array([len(p) for p in vectors]),
            support=10,
        )
        for row, probs in zip(batch, vectors):
            expected = degree_pmf(probs, method="normal", support=10)
            np.testing.assert_allclose(row, expected, atol=ATOL, rtol=0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            normal_approx_pmf_batch(
                np.array([1.0]), np.array([1.0, 2.0]), np.array([3]), support=2
            )


class TestDegreePosteriorEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("method", ["exact", "normal", "auto"])
    def test_random_graphs_match_scalar(self, seed, method):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 50))
        ug = random_uncertain(rng, n, density=float(rng.uniform(0.05, 0.6)))
        for width in (None, 1, 4, n + 2):
            batch = compute_degree_posterior(ug, method=method, width=width)
            scalar = compute_degree_posterior_scalar(
                ug, method=method, width=width
            )
            assert batch.matrix.shape == scalar.matrix.shape
            np.testing.assert_allclose(
                batch.matrix, scalar.matrix, atol=ATOL, rtol=0
            )

    def test_auto_crosses_the_clt_threshold(self):
        # A hub vertex above AUTO_EXACT_LIMIT plus small vertices below it,
        # so one matrix mixes both engine paths.
        hub_deg = AUTO_EXACT_LIMIT + 10
        n = hub_deg + 1
        rng = np.random.default_rng(3)
        pairs = [(0, v, float(rng.random())) for v in range(1, n)]
        ug = UncertainGraph.from_pairs(n, pairs)
        batch = compute_degree_posterior(ug, method="auto", width=20)
        scalar = compute_degree_posterior_scalar(ug, method="auto", width=20)
        np.testing.assert_allclose(batch.matrix, scalar.matrix, atol=ATOL, rtol=0)
        # The hub row really took the CLT path: it differs from exact.
        exact = compute_degree_posterior(ug, method="exact", width=20)
        assert not np.allclose(batch.matrix[0], exact.matrix[0], atol=1e-15)

    def test_empty_graph(self):
        ug = UncertainGraph(4)
        batch = compute_degree_posterior(ug)
        scalar = compute_degree_posterior_scalar(ug)
        assert batch.matrix.shape == (4, 1)
        assert np.array_equal(batch.matrix, scalar.matrix)
        assert (batch.matrix[:, 0] == 1.0).all()

    def test_isolated_vertices_among_connected(self):
        ug = UncertainGraph.from_pairs(6, [(0, 1, 0.5), (0, 2, 0.25)])
        batch = compute_degree_posterior(ug, width=4)
        scalar = compute_degree_posterior_scalar(ug, width=4)
        np.testing.assert_allclose(batch.matrix, scalar.matrix, atol=ATOL, rtol=0)
        assert batch.matrix[5, 0] == 1.0

    def test_keep_zero_pairs_count_as_addends(self, fig1b):
        # Alg. 2 stores deleted true edges as explicit p=0 pairs; both
        # engines must treat them as (vacuous) Bernoulli addends.
        ug = fig1b.copy()
        ug.set_probability(2, 3, 0.0, keep_zero=True)
        batch = compute_degree_posterior(ug, method="exact")
        scalar = compute_degree_posterior_scalar(ug, method="exact")
        np.testing.assert_allclose(batch.matrix, scalar.matrix, atol=ATOL, rtol=0)

    def test_tolerance_achieved_on_batched_engine(self, fig1a, fig1b):
        eps = tolerance_achieved(fig1b, fig1a.degrees(), k=2)
        posterior = compute_degree_posterior_scalar(
            fig1b, method="auto", width=int(fig1a.degrees().max()) + 1
        )
        eps_scalar = tolerance_achieved(
            fig1b, fig1a.degrees(), k=2, posterior=posterior
        )
        assert eps == eps_scalar

    def test_degree_posterior_matrix_rejects_bad_input(self):
        with pytest.raises(ValueError, match="method"):
            degree_posterior_matrix(
                np.array([0, 1]), np.array([0.5]), method="bogus"
            )
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            degree_posterior_matrix(np.array([0, 1]), np.array([1.5]))
        with pytest.raises(ValueError, match="width"):
            degree_posterior_matrix(np.array([0, 1]), np.array([0.5]), width=0)


class TestArrayBackedGraph:
    def test_from_arrays_matches_from_pairs(self):
        rng = np.random.default_rng(11)
        n = 30
        ref = random_uncertain(rng, n, density=0.3)
        us, vs, ps = ref.pair_arrays()
        fast = UncertainGraph.from_arrays(n, us, vs, ps)
        assert fast.num_candidate_pairs == ref.num_candidate_pairs
        for u, v, p in ref.candidate_pairs():
            assert fast.probability(u, v) == p
        np.testing.assert_allclose(
            fast.expected_degrees(), ref.expected_degrees(), atol=ATOL, rtol=0
        )
        assert fast.expected_num_edges() == pytest.approx(ref.expected_num_edges())
        np.testing.assert_allclose(
            compute_degree_posterior(fast).matrix,
            compute_degree_posterior_scalar(ref).matrix,
            atol=ATOL,
            rtol=0,
        )

    def test_from_arrays_orients_and_drops_zeros(self):
        ug = UncertainGraph.from_arrays(
            4, [3, 2], [0, 1], [0.5, 0.0]
        )
        assert ug.num_candidate_pairs == 1
        assert ug.probability(0, 3) == 0.5
        kept = UncertainGraph.from_arrays(
            4, [3, 2], [0, 1], [0.5, 0.0], keep_zero=True
        )
        assert kept.num_candidate_pairs == 2
        assert kept.probability(1, 2) == 0.0

    def test_from_arrays_validation(self):
        with pytest.raises(ValueError, match="distinct"):
            UncertainGraph.from_arrays(3, [1], [1], [0.5])
        with pytest.raises(ValueError, match="< n"):
            UncertainGraph.from_arrays(3, [0], [3], [0.5])
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            UncertainGraph.from_arrays(3, [0], [1], [1.5])
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            UncertainGraph.from_arrays(3, [0], [1], [np.nan])
        with pytest.raises(ValueError, match="duplicate"):
            UncertainGraph.from_arrays(3, [0, 1], [1, 0], [0.5, 0.6])
        with pytest.raises(ValueError, match="lengths"):
            UncertainGraph.from_arrays(3, [0], [1, 2], [0.5])

    def test_from_arrays_does_not_freeze_caller_buffer(self):
        ps = np.array([0.5, 0.25])
        UncertainGraph.from_arrays(3, np.array([0, 1]), np.array([1, 2]), ps)
        assert ps.flags.writeable
        ps[0] = 0.9  # still the caller's to mutate

    def test_incident_csr_groups_all_vertices(self):
        rng = np.random.default_rng(13)
        ug = random_uncertain(rng, 25, density=0.25)
        indptr, data = ug.incident_probability_csr()
        assert indptr.shape == (26,)
        assert len(data) == 2 * ug.num_candidate_pairs
        for v in range(25):
            grouped = np.sort(data[indptr[v] : indptr[v + 1]])
            scalar = np.sort(ug.incident_probabilities(v))
            assert np.array_equal(grouped, scalar)

    def test_mutation_invalidates_array_caches(self):
        ug = UncertainGraph.from_arrays(4, [0, 1], [1, 2], [0.5, 0.25])
        assert ug.expected_num_edges() == pytest.approx(0.75)
        ug.set_probability(2, 3, 1.0)
        assert ug.expected_num_edges() == pytest.approx(1.75)
        indptr, _ = ug.incident_probability_csr()
        assert indptr[-1] == 6
        ug.set_probability(0, 1, 0.0)  # deletion also invalidates
        assert ug.num_candidate_pairs == 2
        assert ug.expected_num_edges() == pytest.approx(1.25)

    def test_copy_isolates_mutations(self):
        ug = UncertainGraph.from_arrays(3, [0], [1], [0.5])
        clone = ug.copy()
        clone.set_probability(0, 1, 0.9)
        assert ug.probability(0, 1) == 0.5
        assert clone.probability(0, 1) == 0.9

    def test_expected_degrees_matches_pair_loop(self):
        rng = np.random.default_rng(17)
        ug = random_uncertain(rng, 40, density=0.2)
        reference = np.zeros(40)
        for u, v, p in ug.candidate_pairs():
            reference[u] += p
            reference[v] += p
        np.testing.assert_allclose(
            ug.expected_degrees(), reference, atol=ATOL, rtol=0
        )


class TestVectorisedErf:
    def test_normal_approx_matches_math_erf_reference(self):
        import math

        from repro.core.degree_distribution import ERF_RATIONAL_MAX_ABS_ERROR

        try:
            import scipy  # noqa: F401

            # SciPy's erf is machine-exact; without it erf_array lands
            # on the A&S 7.1.26 rational fallback with its documented
            # ≤1.5e-7 absolute error (one per CDF edge of the diff).
            tol = ATOL
        except ImportError:  # pragma: no cover - CI ships NumPy only
            tol = 2.0 * ERF_RATIONAL_MAX_ABS_ERROR
        rng = np.random.default_rng(19)
        probs = rng.random(40)
        pmf = normal_approx_pmf(probs)
        mu = float(probs.sum())
        sigma = math.sqrt(float((probs * (1.0 - probs)).sum()))
        edges = (np.arange(len(probs) + 2) - 0.5 - mu) / (sigma * math.sqrt(2))
        cdf = np.array([0.5 * (1.0 + math.erf(x)) for x in edges])
        cdf[0], cdf[-1] = 0.0, 1.0
        np.testing.assert_allclose(pmf, np.diff(cdf), atol=tol, rtol=0)
