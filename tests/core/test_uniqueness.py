"""Tests for θ-commonness/uniqueness (Definition 3, Equation 7)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.uniqueness import (
    degree_commonness,
    degree_uniqueness,
    gaussian_kernel,
    pair_uniqueness,
    property_commonness,
    redistribute_sigma,
)


class TestGaussianKernel:
    def test_zero_distance_is_one(self):
        assert gaussian_kernel(np.array([0.0]), 2.0)[0] == pytest.approx(1.0)

    def test_decreasing_in_distance(self):
        vals = gaussian_kernel(np.array([0.0, 1.0, 2.0, 5.0]), 1.5)
        assert (np.diff(vals) < 0).all()

    def test_theta_zero_is_indicator(self):
        vals = gaussian_kernel(np.array([0.0, 0.5, 1.0]), 0.0)
        assert list(vals) == [1.0, 0.0, 0.0]

    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError):
            gaussian_kernel(np.array([1.0]), -0.1)

    def test_wider_theta_flatter(self):
        d = np.array([3.0])
        assert gaussian_kernel(d, 5.0)[0] > gaussian_kernel(d, 1.0)[0]


class TestDegreeCommonness:
    def test_theta_zero_counts_exact_matches(self):
        degrees = np.array([1, 1, 1, 2, 5])
        c = degree_commonness(degrees, 0.0)
        assert c[1] == pytest.approx(3.0)
        assert c[2] == pytest.approx(1.0)
        assert c[5] == pytest.approx(1.0)
        assert c[3] == pytest.approx(0.0)

    def test_smoothing_spreads_mass(self):
        degrees = np.array([1, 1, 1, 2])
        c = degree_commonness(degrees, 1.0)
        # degree 2's commonness now borrows from the three degree-1 vertices
        assert c[2] > 1.0

    def test_attained_degree_at_least_one(self):
        rng = np.random.default_rng(0)
        degrees = rng.integers(0, 20, size=50)
        for theta in (0.0, 0.5, 3.0):
            c = degree_commonness(degrees, theta)
            for d in np.unique(degrees):
                assert c[d] >= 1.0 - 1e-12

    def test_total_mass_bounded_by_n(self):
        degrees = np.array([0, 1, 2, 3, 4])
        c = degree_commonness(degrees, 2.0)
        assert (c <= 5.0 + 1e-9).all()

    def test_empty_input(self):
        assert degree_commonness(np.array([], dtype=int), 1.0).size == 0

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            degree_commonness(np.array([-1]), 1.0)


class TestDegreeUniqueness:
    def test_rare_degree_more_unique(self):
        degrees = np.array([1] * 10 + [50])
        u = degree_uniqueness(degrees, 0.5)
        assert u[-1] > u[0]

    def test_bounds(self):
        degrees = np.array([2, 2, 3, 7])
        u = degree_uniqueness(degrees, 1.0)
        assert (u > 0).all()
        assert (u <= 1.0 + 1e-12).all()

    def test_identical_degrees_identical_uniqueness(self):
        degrees = np.array([4, 4, 4, 4])
        u = degree_uniqueness(degrees, 0.7)
        assert np.allclose(u, u[0])

    @given(st.floats(min_value=0.0, max_value=5.0))
    def test_any_theta_finite(self, theta):
        degrees = np.array([0, 1, 1, 3, 8])
        u = degree_uniqueness(degrees, theta)
        assert np.isfinite(u).all()


class TestPropertyCommonness:
    def test_matches_degree_specialisation(self):
        degrees = np.array([1, 2, 2, 5, 7])
        via_generic = property_commonness(
            list(degrees), 1.3, lambda a, b: abs(a - b)
        )
        via_degree = degree_commonness(degrees, 1.3)[degrees]
        assert np.allclose(via_generic, via_degree)

    def test_arbitrary_domain(self):
        values = ["aa", "ab", "zz"]
        dist = lambda a, b: sum(x != y for x, y in zip(a, b))
        c = property_commonness(values, 1.0, dist)
        assert c[0] > c[2]  # 'aa' has a close neighbour 'ab'


class TestRedistribution:
    def test_mean_preserved(self):
        """Equation 7: the average of σ(e) equals σ."""
        rng = np.random.default_rng(3)
        uniq = rng.random(100) + 0.01
        sigmas = redistribute_sigma(0.25, uniq)
        assert sigmas.mean() == pytest.approx(0.25)

    def test_proportional_to_uniqueness(self):
        sigmas = redistribute_sigma(1.0, np.array([1.0, 2.0, 3.0]))
        assert sigmas[2] / sigmas[0] == pytest.approx(3.0)

    def test_empty_input(self):
        assert redistribute_sigma(1.0, np.array([])).size == 0

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            redistribute_sigma(1.0, np.zeros(3))

    def test_pair_uniqueness_is_mean_of_endpoints(self):
        vu = np.array([0.1, 0.5, 0.9])
        us = np.array([0, 1])
        vs = np.array([2, 2])
        pu = pair_uniqueness(vu, us, vs)
        assert pu[0] == pytest.approx(0.5)
        assert pu[1] == pytest.approx(0.7)

    def test_prefactor_invariance(self):
        """Dropping the Gaussian prefactor cannot change σ(e): scaling all
        uniqueness values by any constant leaves Eq. 7 invariant."""
        uniq = np.array([0.2, 0.4, 1.0])
        a = redistribute_sigma(0.5, uniq)
        b = redistribute_sigma(0.5, 37.5 * uniq)
        assert np.allclose(a, b)
