"""Tests for Algorithm 1 (binary-search driver)."""

import pytest

from repro.core.obfuscation_check import is_k_eps_obfuscation
from repro.core.search import obfuscate, obfuscate_with_fallback
from repro.core.types import ObfuscationParams
from repro.graphs.generators import erdos_renyi


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(90, 0.1, seed=7)


@pytest.fixture(scope="module")
def result(graph):
    return obfuscate(graph, k=4, eps=0.15, seed=0, attempts=2, delta=0.02)


class TestObfuscate:
    def test_succeeds(self, result):
        assert result.success

    def test_output_verifies(self, graph, result):
        assert is_k_eps_obfuscation(result.uncertain, graph, 4, 0.15)

    def test_eps_achieved_within_tolerance(self, result):
        assert result.eps_achieved <= 0.15

    def test_trace_has_doubling_then_bisection(self, result):
        phases = [s.phase for s in result.trace]
        assert phases[0] == "doubling"
        assert "bisection" in phases
        # once bisection starts, doubling never reappears
        first_bis = phases.index("bisection")
        assert all(p == "bisection" for p in phases[first_bis:])

    def test_sigma_is_a_successful_probe(self, result):
        successes = [s.sigma for s in result.trace if s.success]
        assert result.sigma in successes

    def test_sigma_is_smallest_success(self, result):
        successes = [s.sigma for s in result.trace if s.success]
        assert result.sigma == min(successes)

    def test_bisection_interval_shrinks_to_delta(self, result):
        """Final bracket width must be < 2·delta."""
        fails = [s.sigma for s in result.trace if not s.success]
        lower = max(fails, default=0.0)
        assert result.sigma - lower <= 2 * 0.02 + 1e-12

    def test_throughput_accounting(self, result):
        assert result.edges_processed > 0
        assert result.elapsed_seconds > 0
        assert result.edges_per_second > 0

    def test_deterministic(self, graph):
        a = obfuscate(graph, k=3, eps=0.2, seed=5, attempts=1, delta=0.05)
        b = obfuscate(graph, k=3, eps=0.2, seed=5, attempts=1, delta=0.05)
        assert a.sigma == b.sigma
        assert a.eps_achieved == b.eps_achieved

    def test_params_and_overrides_conflict(self, graph):
        params = ObfuscationParams(k=3, eps=0.2)
        with pytest.raises(TypeError):
            obfuscate(graph, 3, 0.2, params=params, q=0.05)

    def test_failure_mode(self, star5):
        """Impossible requirement fails cleanly with a full trace."""
        res = obfuscate(
            star5, k=5, eps=0.0, seed=0, attempts=1, delta=0.1, sigma_max=4.0
        )
        assert not res.success
        assert res.uncertain is None
        assert res.eps_achieved == float("inf")
        assert all(s.phase == "doubling" for s in res.trace)


class TestMonotonicityOfDifficulty:
    def test_sigma_grows_with_k(self, graph):
        """The paper's Table-2 observation: larger k needs larger σ."""
        sigma_small = obfuscate(graph, k=2, eps=0.15, seed=3, attempts=2, delta=0.01).sigma
        sigma_large = obfuscate(graph, k=8, eps=0.15, seed=3, attempts=2, delta=0.01).sigma
        assert sigma_large >= sigma_small


class TestFallback:
    def test_returns_first_success(self, graph):
        res = obfuscate_with_fallback(
            graph, 3, 0.2, c_values=(2.0, 3.0), seed=1, attempts=1, delta=0.05
        )
        assert res.success
        assert res.params.c == 2.0

    def test_escalates_on_failure(self, star5):
        res = obfuscate_with_fallback(
            star5,
            5,
            0.0,
            c_values=(1.5, 2.0),
            seed=0,
            attempts=1,
            delta=0.1,
            sigma_max=2.0,
        )
        assert not res.success
        assert res.params.c == 2.0  # last attempted
