"""Seed-equivalence of the array-native candidate builder (PR 4).

The vectorised builder consumes the *same* RNG stream as the per-draw
Python loop, so at any fixed RNG state both must produce bit-identical
candidate sets, identical draw counts, and leave the generator in the
same state.  These tests pin that contract — the foundation of the
array engine's "same seed ⇒ same obfuscation" guarantee.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.generate import (
    CandidateStallError,
    WeightedVertexSampler,
    _build_candidate_codes,
    _build_candidate_set,
    _merge_sorted_disjoint,
    _sorted_contains,
)
from repro.graphs.generators import erdos_renyi, powerlaw_cluster
from repro.graphs.graph import Graph


def _uniform_probs(n: int) -> np.ndarray:
    return np.full(n, 1.0 / n)


def _skewed_probs(n: int, seed: int, zero_fraction: float = 0.0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    w = rng.random(n) ** 3
    if zero_fraction:
        w[rng.random(n) < zero_fraction] = 0.0
        if not w.any():
            w[0] = 1.0
    return w / w.sum()


class TestWeightedVertexSampler:
    """The table-accelerated sampler must replicate ``rng.choice`` exactly."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n", [2, 17, 500, 2500])
    def test_bit_identical_to_choice(self, n, seed):
        probs = _skewed_probs(n, seed)
        sampler = WeightedVertexSampler(probs)
        r_choice = np.random.default_rng(seed)
        r_sampler = np.random.default_rng(seed)
        expected = r_choice.choice(n, size=4096, p=probs, replace=True)
        got = sampler.sample(r_sampler, 4096)
        np.testing.assert_array_equal(got, expected)
        # ...and the generators end in the same state, so downstream
        # draws (perturbations, white noise) stay aligned.
        assert r_choice.bit_generator.state == r_sampler.bit_generator.state

    def test_zero_probability_runs(self):
        """Long runs of excluded (zero-weight) vertices are never drawn
        and do not break the tie-jump refinement."""
        probs = _skewed_probs(800, 7, zero_fraction=0.6)
        sampler = WeightedVertexSampler(probs)
        r_choice = np.random.default_rng(3)
        r_sampler = np.random.default_rng(3)
        expected = r_choice.choice(800, size=8192, p=probs, replace=True)
        got = sampler.sample(r_sampler, 8192)
        np.testing.assert_array_equal(got, expected)
        assert not np.isin(got, np.flatnonzero(probs == 0.0)).any()

    def test_mass_concentration(self):
        """A single vertex holding almost all mass (σ → 0 uniqueness)."""
        w = np.full(300, 1e-9)
        w[123] = 1.0
        probs = w / w.sum()
        sampler = WeightedVertexSampler(probs)
        r_choice = np.random.default_rng(5)
        r_sampler = np.random.default_rng(5)
        np.testing.assert_array_equal(
            sampler.sample(r_sampler, 4096),
            r_choice.choice(300, size=4096, p=probs, replace=True),
        )


class TestSortedSetHelpers:
    def test_merge_sorted_disjoint(self, rng):
        a = np.unique(rng.integers(0, 10_000, 500))
        universe = np.setdiff1d(np.arange(10_000), a)
        b = np.sort(rng.choice(universe, 300, replace=False))
        merged = _merge_sorted_disjoint(a, b)
        np.testing.assert_array_equal(merged, np.union1d(a, b))

    def test_merge_empty_sides(self):
        a = np.array([1, 5, 9])
        empty = np.empty(0, dtype=np.int64)
        np.testing.assert_array_equal(_merge_sorted_disjoint(a, empty), a)
        np.testing.assert_array_equal(_merge_sorted_disjoint(empty, a), a)

    def test_sorted_contains(self, rng):
        hay = np.unique(rng.integers(0, 1000, 200))
        needles = rng.integers(0, 1000, 500)
        np.testing.assert_array_equal(
            _sorted_contains(hay, needles), np.isin(needles, hay)
        )
        assert not _sorted_contains(np.empty(0, dtype=np.int64), needles).any()


def _as_code_set(candidate: set[tuple[int, int]], n: int) -> np.ndarray:
    return np.sort(np.array([u * n + v for u, v in candidate], dtype=np.int64))


class TestBuilderEquivalence:
    """Sequential vs vectorised builder: bit-identical pair sets."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize("c", [1.0, 1.5, 2.0, 3.0])
    def test_same_candidate_set_er(self, seed, c):
        graph = erdos_renyi(120, 0.08, seed=seed)
        self._check(graph, c, seed, _uniform_probs(120))

    @pytest.mark.parametrize("seed", [1, 4])
    def test_same_candidate_set_powerlaw_skewed_q(self, seed):
        graph = powerlaw_cluster(150, 3, 0.3, seed=seed)
        probs = _skewed_probs(150, seed, zero_fraction=0.2)
        self._check(graph, 2.0, seed, probs)

    def _check(self, graph: Graph, c: float, seed: int, probs: np.ndarray):
        n, m = graph.num_vertices, graph.num_edges
        target = int(round(c * m))
        sampler = WeightedVertexSampler(probs)
        rng_seq = np.random.default_rng(seed)
        rng_vec = np.random.default_rng(seed)
        candidate, draws_seq = _build_candidate_set(
            n, graph.edge_set(), target, probs, rng_seq
        )
        codes, is_edge, removed, draws_vec = _build_candidate_codes(
            n, graph.edge_codes(), target, sampler, rng_vec
        )
        assert draws_seq == draws_vec
        assert rng_seq.bit_generator.state == rng_vec.bit_generator.state
        assert len(codes) == target
        np.testing.assert_array_equal(codes, _as_code_set(candidate, n))
        # the membership mask must agree with the original edge set
        np.testing.assert_array_equal(
            is_edge, np.isin(codes, graph.edge_codes())
        )
        # the removed list is exactly the edges missing from the candidates
        np.testing.assert_array_equal(
            removed, np.setdiff1d(graph.edge_codes(), codes)
        )

    def test_c_equal_one_draws_nothing(self, star5):
        """target == |E|: both builders return E without consuming RNG."""
        probs = _uniform_probs(5)
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        candidate, d1 = _build_candidate_set(5, star5.edge_set(), 4, probs, rng_a)
        codes, is_edge, removed, d2 = _build_candidate_codes(
            5, star5.edge_codes(), 4, WeightedVertexSampler(probs), rng_b
        )
        assert d1 == d2 == 0
        assert candidate == star5.edge_set()
        np.testing.assert_array_equal(codes, star5.edge_codes())
        assert is_edge.all()
        assert len(removed) == 0

    def test_stall_raises_identically(self, star5):
        """Absorbing targets stall both builders at the same draw count."""
        probs = _uniform_probs(5)
        target = 3 * star5.num_edges  # K5 has only 10 pairs; unreachable
        rng_a = np.random.default_rng(2)
        rng_b = np.random.default_rng(2)
        with pytest.raises(CandidateStallError) as seq_err:
            _build_candidate_set(5, star5.edge_set(), target, probs, rng_a)
        with pytest.raises(CandidateStallError) as vec_err:
            _build_candidate_codes(
                5, star5.edge_codes(), target, WeightedVertexSampler(probs), rng_b
            )
        assert seq_err.value.pairs_drawn == vec_err.value.pairs_drawn > 0
        assert rng_a.bit_generator.state == rng_b.bit_generator.state
