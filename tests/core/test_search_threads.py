"""Concurrent searches must keep their run counters scoped per call.

Regression for the global-registry-delta bug: ``ObfuscationResult``
counters (``edges_processed``, ``rows_folded``, ``rows_recomputed``)
used to be computed as before/after deltas of the process-wide
:mod:`repro.obs` registry, so two interleaved searches each absorbed
the other's totals.  The counters now accumulate from each probe's
``GenerationOutcome`` inside the call, so a threaded run must report
exactly what a solo run of the same seed reports.
"""

from __future__ import annotations

import threading

from repro.core.search import obfuscate
from repro.graphs import erdos_renyi


def _run(graph, seed):
    return obfuscate(
        graph, k=3, eps=0.2, seed=seed, attempts=2, delta=0.05
    )


class TestThreadedCounterScoping:
    def test_two_concurrent_searches_do_not_share_counters(self):
        # Different graph sizes => different per-search totals, so
        # cross-absorption cannot cancel out.
        g_small = erdos_renyi(40, 0.2, seed=1)
        g_large = erdos_renyi(90, 0.12, seed=2)

        solo_small = _run(g_small, seed=7)
        solo_large = _run(g_large, seed=9)
        assert (solo_small.rows_folded, solo_small.rows_recomputed) != (
            solo_large.rows_folded,
            solo_large.rows_recomputed,
        )

        results: dict[str, object] = {}
        barrier = threading.Barrier(2)

        def work(name, graph, seed):
            barrier.wait()  # maximise interleaving
            results[name] = _run(graph, seed)

        threads = [
            threading.Thread(target=work, args=("small", g_small, 7)),
            threading.Thread(target=work, args=("large", g_large, 9)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for solo, name in ((solo_small, "small"), (solo_large, "large")):
            threaded = results[name]
            assert threaded.edges_processed == solo.edges_processed
            assert threaded.rows_folded == solo.rows_folded
            assert threaded.rows_recomputed == solo.rows_recomputed
            assert threaded.sigma == solo.sigma

    def test_interleaved_sequential_searches_stay_scoped(self):
        """Same property without threads: a second search between a
        first search's construction and result must not leak in (guards
        the accumulator against registry reads sneaking back)."""
        g = erdos_renyi(40, 0.2, seed=1)
        first = _run(g, seed=7)
        _run(erdos_renyi(90, 0.12, seed=2), seed=9)
        again = _run(g, seed=7)
        assert again.edges_processed == first.edges_processed
        assert again.rows_folded == first.rows_folded
        assert again.rows_recomputed == first.rows_recomputed
