"""Tests for the sampled property posterior (Equation 2, arbitrary P)."""

import numpy as np
import pytest

from repro.core.generic_posterior import (
    SampledPropertyPosterior,
    degree_property,
    neighbor_degree_property,
    sample_property_posterior,
)
from repro.core.obfuscation_check import compute_degree_posterior
from repro.uncertain.graph import UncertainGraph


class TestProperties:
    def test_degree_property(self, triangle):
        assert degree_property(triangle, 0) == 2

    def test_neighbor_degree_property(self, star5):
        assert neighbor_degree_property(star5, 0) == (1, 1, 1, 1)
        assert neighbor_degree_property(star5, 1) == (4,)

    def test_neighbor_degree_isolated(self, two_components):
        assert neighbor_degree_property(two_components, 4) == ()


class TestSampledPosterior:
    def test_matches_exact_degree_posterior(self, fig1b):
        """Monte-Carlo X̂ converges to the closed-form X of §4."""
        sampled = sample_property_posterior(
            fig1b, degree_property, worlds=6000, seed=0
        )
        exact = compute_degree_posterior(fig1b, method="exact")
        for v in range(4):
            for omega in range(4):
                assert sampled.x_value(v, omega) == pytest.approx(
                    exact.matrix[v, omega], abs=0.03
                )

    def test_entropies_match_exact(self, fig1a, fig1b):
        sampled = sample_property_posterior(
            fig1b, degree_property, worlds=6000, seed=1
        )
        exact = compute_degree_posterior(fig1b, method="exact")
        degrees = fig1a.degrees()
        sampled_ent = sampled.obfuscation_entropies(list(degrees))
        exact_ent = exact.obfuscation_entropies(degrees)
        assert np.allclose(sampled_ent, exact_ent, atol=0.1)

    def test_rows_are_distributions(self, fig1b):
        sampled = sample_property_posterior(
            fig1b, degree_property, worlds=200, seed=2
        )
        for v in range(4):
            total = sum(
                sampled.x_value(v, omega) for omega in range(5)
            )
            assert total == pytest.approx(1.0)

    def test_unseen_value_entropy_zero(self, fig1b):
        sampled = sample_property_posterior(
            fig1b, degree_property, worlds=50, seed=3
        )
        assert sampled.column_entropy("never-seen") == 0.0

    def test_neighbor_degree_stronger_than_degree(self, fig1a, fig1b):
        """A richer property can only sharpen the adversary's posterior:
        entropy under P2 (neighbour degrees) ≤ entropy under P1 (degree)
        + sampling noise."""
        worlds = 3000
        deg_post = sample_property_posterior(
            fig1b, degree_property, worlds=worlds, seed=4
        )
        nbr_post = sample_property_posterior(
            fig1b, neighbor_degree_property, worlds=worlds, seed=4
        )
        deg_values = [int(d) for d in fig1a.degrees()]
        nbr_values = [neighbor_degree_property(fig1a, v) for v in range(4)]
        h_deg = deg_post.obfuscation_entropies(deg_values)
        h_nbr = nbr_post.obfuscation_entropies(nbr_values)
        assert (h_nbr <= h_deg + 0.15).all()

    def test_tolerance_achieved(self, fig1a, fig1b):
        sampled = sample_property_posterior(
            fig1b, degree_property, worlds=4000, seed=5
        )
        eps = sampled.tolerance_achieved([int(d) for d in fig1a.degrees()], 3)
        assert eps == pytest.approx(0.25, abs=0.01)

    def test_k_below_one_rejected(self, fig1b):
        sampled = sample_property_posterior(
            fig1b, degree_property, worlds=10, seed=6
        )
        with pytest.raises(ValueError):
            sampled.k_obfuscated([0, 0, 0, 0], 0.5)

    def test_wrong_length_rejected(self, fig1b):
        sampled = sample_property_posterior(
            fig1b, degree_property, worlds=10, seed=7
        )
        with pytest.raises(ValueError):
            sampled.obfuscation_entropies([1, 2])

    def test_zero_worlds_rejected(self, fig1b):
        with pytest.raises(ValueError):
            sample_property_posterior(fig1b, degree_property, worlds=0)
        with pytest.raises(ValueError):
            SampledPropertyPosterior([{}], 0)

    def test_deterministic(self, fig1b):
        a = sample_property_posterior(fig1b, degree_property, worlds=30, seed=9)
        b = sample_property_posterior(fig1b, degree_property, worlds=30, seed=9)
        for v in range(4):
            for omega in range(4):
                assert a.x_value(v, omega) == b.x_value(v, omega)
