"""Tests for Algorithm 2 (GenerateObfuscation)."""

import numpy as np
import pytest

from repro.core.generate import (
    generate_obfuscation,
    select_excluded_vertices,
)
from repro.core.obfuscation_check import is_k_eps_obfuscation
from repro.core.types import ObfuscationParams
from repro.graphs.generators import erdos_renyi, powerlaw_cluster
from repro.graphs.graph import Graph


@pytest.fixture(scope="module")
def er_graph():
    return erdos_renyi(80, 0.12, seed=3)


class TestExcludedVertices:
    def test_size_is_ceil_half_eps_n(self):
        uniq = np.linspace(0.1, 1.0, 100)
        assert len(select_excluded_vertices(uniq, 0.1, 100)) == 5
        assert len(select_excluded_vertices(uniq, 0.01, 100)) == 1
        assert len(select_excluded_vertices(uniq, 0.0, 100)) == 0

    def test_picks_most_unique(self):
        uniq = np.array([0.1, 0.9, 0.2, 0.8, 0.3])
        h = select_excluded_vertices(uniq, 0.8, 5)  # ceil(2) = 2
        assert set(h) == {1, 3}

    def test_ties_broken_by_id(self):
        uniq = np.ones(6)
        h = select_excluded_vertices(uniq, 0.4, 6)  # ceil(1.2) = 2
        assert list(h) == [0, 1]


class TestGenerateObfuscation:
    def test_candidate_set_size(self, er_graph):
        params = ObfuscationParams(k=2, eps=0.3, c=2.0, attempts=1)
        out = generate_obfuscation(er_graph, 0.2, params, seed=0)
        if out.success:
            assert out.uncertain.num_candidate_pairs == round(2.0 * er_graph.num_edges)

    def test_probabilities_in_unit_interval(self, er_graph):
        params = ObfuscationParams(k=2, eps=0.3, attempts=1)
        out = generate_obfuscation(er_graph, 0.3, params, seed=1)
        assert out.success
        for _, _, p in out.uncertain.candidate_pairs():
            assert 0.0 <= p <= 1.0

    def test_output_verifies_independently(self, er_graph):
        params = ObfuscationParams(k=3, eps=0.2, attempts=2)
        out = generate_obfuscation(er_graph, 0.4, params, seed=2)
        assert out.success
        assert out.eps_achieved <= 0.2
        assert is_k_eps_obfuscation(out.uncertain, er_graph, 3, 0.2)

    def test_failure_returns_infinity(self, star5):
        """k beyond what a 5-vertex star can support must fail."""
        params = ObfuscationParams(k=5, eps=0.0, attempts=2)
        out = generate_obfuscation(star5, 0.1, params, seed=0)
        assert not out.success
        assert out.eps_achieved == float("inf")
        assert out.uncertain is None

    def test_sigma_zero_keeps_graph_nearly_intact(self, er_graph):
        """σ = 0 draws r_e = 0, so p = 1 on kept edges, p = 0 on non-edges
        (up to the q-fraction of white noise and E_C removals)."""
        params = ObfuscationParams(k=1, eps=0.5, q=0.0, attempts=1)
        out = generate_obfuscation(er_graph, 0.0, params, seed=4)
        assert out.success  # k=1 is trivially satisfied
        for u, v, p in out.uncertain.candidate_pairs():
            assert p in (0.0, 1.0)
            if p == 1.0:
                assert er_graph.has_edge(u, v)

    def test_negative_sigma_rejected(self, er_graph):
        params = ObfuscationParams(k=2, eps=0.2)
        with pytest.raises(ValueError):
            generate_obfuscation(er_graph, -1.0, params)

    def test_empty_graph_rejected(self):
        params = ObfuscationParams(k=2, eps=0.2)
        with pytest.raises(ValueError):
            generate_obfuscation(Graph(5), 0.1, params)

    def test_deterministic_given_seed(self, er_graph):
        params = ObfuscationParams(k=2, eps=0.3, attempts=1)
        a = generate_obfuscation(er_graph, 0.2, params, seed=9)
        b = generate_obfuscation(er_graph, 0.2, params, seed=9)
        assert a.eps_achieved == b.eps_achieved
        if a.success:
            pairs_a = sorted(a.uncertain.candidate_pairs())
            pairs_b = sorted(b.uncertain.candidate_pairs())
            assert pairs_a == pairs_b

    def test_external_excluded_set_respected(self, er_graph):
        params = ObfuscationParams(k=2, eps=0.3, attempts=1)
        hubs = np.argsort(er_graph.degrees())[-2:]
        out = generate_obfuscation(er_graph, 0.2, params, seed=0, excluded=hubs)
        if out.success:
            # excluded vertices receive no NEW candidate pairs
            for v in hubs:
                for u, w, _ in out.uncertain.incident_pairs(int(v)):
                    assert er_graph.has_edge(u, w)

    @pytest.mark.parametrize("stream", ["pair_keyed", "attempt"])
    def test_true_edges_keep_high_probability_small_sigma(self, stream):
        g = powerlaw_cluster(120, 3, 0.4, seed=0)
        params = ObfuscationParams(k=1, eps=0.5, q=0.0, attempts=1, stream=stream)
        out = generate_obfuscation(g, 0.01, params, seed=1)
        kept = [
            p
            for u, v, p in out.uncertain.candidate_pairs()
            if g.has_edge(u, v)
        ]
        # Both streams spread σ(e) ∝ U_σ(e); their normalisers differ
        # (candidate-set mean vs its Q-expectation), so the exact mean
        # shifts slightly between them — both stay near-certain.
        assert np.mean(kept) > 0.93

    def test_dense_graph_unreachable_target_rejected(self):
        complete = Graph.from_edges(5, [(i, j) for i in range(5) for j in range(i + 1, 5)])
        params = ObfuscationParams(k=1, eps=0.4, c=3.0, attempts=1)
        with pytest.raises(ValueError, match="reduce c"):
            generate_obfuscation(complete, 0.1, params, seed=0)

    def test_stochastic_stall_counts_as_failed_attempt(self, star5):
        """Feasible-but-absorbing candidate targets fail gracefully."""
        params = ObfuscationParams(k=5, eps=0.0, attempts=1)
        out = generate_obfuscation(star5, 0.1, params, seed=0)
        assert not out.success
