"""The unified chunk planner: decomposition invariants + pinned auto rules."""

from __future__ import annotations

import inspect

import pytest

from repro.exec.plan import (
    ANF_REGISTER_STACK_BYTES,
    KEEP_MATRIX_BYTES,
    PACKED_DRAW_BYTES,
    POSTERIOR_SLAB_BYTES,
    RELEASE_CHUNK_DEFAULT,
    SAMPLE_CHUNK_DEFAULT,
    Chunk,
    ChunkPlan,
    draw_rows_per_pass,
    posterior_rows_chunk_size,
    world_eval_chunk_size,
)


class TestChunkPlan:
    @pytest.mark.parametrize(
        "total,chunk_size", [(1, 1), (10, 3), (10, 10), (10, 100), (97, 8)]
    )
    def test_chunks_partition_total(self, total, chunk_size):
        plan = ChunkPlan("worlds", total, chunk_size)
        chunks = list(plan)
        assert len(chunks) == len(plan)
        assert chunks[0].lo == 0
        assert chunks[-1].hi == total
        for i, chunk in enumerate(chunks):
            assert chunk.index == i
            assert 1 <= chunk.count <= chunk_size
        # contiguous: each chunk starts where the previous ended
        for prev, cur in zip(chunks, chunks[1:]):
            assert cur.lo == prev.hi

    def test_empty_total_yields_no_chunks(self):
        plan = ChunkPlan("rows", 0, 5)
        assert len(plan) == 0
        assert list(plan) == []

    def test_deterministic(self):
        a = list(ChunkPlan("worlds", 100, 7))
        b = list(ChunkPlan("worlds", 100, 7))
        assert a == b  # frozen dataclasses compare by value

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ChunkPlan("worlds", 10, 0)
        with pytest.raises(ValueError, match="total"):
            ChunkPlan("worlds", -1, 4)

    def test_chunk_count_property(self):
        assert Chunk(0, 3, 11).count == 8

    def test_cells_plan_is_one_per_chunk(self):
        plan = ChunkPlan.cells(5)
        assert [c.count for c in plan] == [1] * 5

    def test_releases_plan_default(self):
        assert ChunkPlan.releases(100).chunk_size == RELEASE_CHUNK_DEFAULT
        assert ChunkPlan.releases(100, chunk_size=7).chunk_size == 7

    def test_worlds_plan_auto_matches_rule(self):
        plan = ChunkPlan.worlds(
            64, num_vertices=1000, num_candidate_pairs=5000, anf=True
        )
        assert plan.chunk_size == world_eval_chunk_size(
            1000, 5000, anf=True
        )

    def test_posterior_plan_auto_matches_rule(self):
        plan = ChunkPlan.posterior_rows(10_000, width=200)
        assert plan.chunk_size == posterior_rows_chunk_size(200)


class TestAutoRules:
    def test_world_eval_anf_bounds_register_stack(self):
        n, b = 1000, 6
        size = world_eval_chunk_size(n, 10, anf=True, anf_b=b)
        assert size == ANF_REGISTER_STACK_BYTES // (n << b)
        # the next world would overflow the ~2 MB register-stack bound
        assert (size + 1) * (n << b) > ANF_REGISTER_STACK_BYTES

    def test_world_eval_plain_bounds_keep_matrix(self):
        m = 50_000
        size = world_eval_chunk_size(1000, m, anf=False)
        assert size == KEEP_MATRIX_BYTES // m

    def test_world_eval_clamps_to_one_on_huge_graphs(self):
        # the PR-8 regression: a zero chunk size on paper-scale n
        assert world_eval_chunk_size(10**9, 10**12, anf=True) == 1
        assert world_eval_chunk_size(10**9, 10**12, anf=False) == 1

    def test_posterior_rows_bounds_slab(self):
        width = 5000
        size = posterior_rows_chunk_size(width)
        assert size == POSTERIOR_SLAB_BYTES // (width * 8)
        assert posterior_rows_chunk_size(10**12) == 1

    def test_draw_rows_bounds_uniform_transient(self):
        m = 123_456
        assert draw_rows_per_pass(m) == PACKED_DRAW_BYTES // m
        assert draw_rows_per_pass(10**12) == 1


class TestConsolidation:
    """The three ad-hoc ``auto`` conventions now come from the planner."""

    def test_release_stream_default_is_planner_constant(self):
        from repro.worlds.releases import stream_releases

        default = inspect.signature(stream_releases).parameters["chunk_size"]
        assert default.default == RELEASE_CHUNK_DEFAULT

    def test_estimator_default_is_planner_constant(self):
        from repro.worlds.estimator import BatchedWorldStatisticsEstimator

        default = inspect.signature(
            BatchedWorldStatisticsEstimator.__init__
        ).parameters["chunk_size"]
        assert default.default == SAMPLE_CHUNK_DEFAULT

    def test_packed_draw_uses_planner_rule(self):
        from repro.worlds import batch

        assert batch.draw_rows_per_pass is draw_rows_per_pass
