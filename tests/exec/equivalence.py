"""Reusable seed-equivalence harness: serial == sharded, bit for bit.

Every engine that dispatches through :class:`repro.exec.ChunkExecutor`
carries the same promise — sharding is an implementation detail, the
numbers are the serial numbers.  This module is the one place that
promise is phrased as code: a workload is a ``build(executor)``
callable, and :func:`assert_seed_equivalent` runs it serially, then
under the serial backend and 2- and 4-process pools, asserting the
results compare bit-exactly each time.

Comparators for the repo's three result shapes (summary dicts from the
estimator, array dicts from ``evaluate_stream``, Table-2 sweep entry
lists) live here too, so new equivalence pins are one-liners.
"""

from __future__ import annotations

import numpy as np

from repro.exec import ChunkExecutor
from repro.uncertain.graph import UncertainGraph

#: The pinned grid: serial reference plus these executor worker counts.
WORKER_GRID = (1, 2, 4)


def run_grid(build, *, workers=WORKER_GRID):
    """``build(executor)`` serially, then once per worker count.

    Returns ``[(label, result), ...]`` with the bare serial run
    (``executor=None``) first.  ``workers == 1`` exercises the serial
    *backend* (an executor object whose ``map`` is a list
    comprehension), which must also be indistinguishable.
    """
    runs = [("serial", build(None))]
    for count in workers:
        if count <= 1:
            with ChunkExecutor(backend="serial") as ex:
                runs.append((f"workers={count}", build(ex)))
        else:
            with ChunkExecutor(backend="process", workers=count) as ex:
                runs.append((f"workers={count}", build(ex)))
    return runs


def assert_seed_equivalent(build, equal, *, workers=WORKER_GRID):
    """Pin ``build`` to bit-identical results at every worker count.

    ``equal(reference, other) -> bool`` must compare bit-exactly (no
    tolerances — parallel float summation reorders are exactly the bug
    class this harness exists to catch).  Returns the serial reference
    result for follow-up assertions.
    """
    runs = run_grid(build, workers=workers)
    _, reference = runs[0]
    for label, result in runs[1:]:
        assert equal(reference, result), (
            f"sharded result diverges from serial at {label}"
        )
    return reference


# ----------------------------------------------------------------------
# comparators
# ----------------------------------------------------------------------

def summaries_equal(a, b) -> bool:
    """``dict[str, SampleSummary]`` — compare the raw per-world values."""
    return set(a) == set(b) and all(
        np.array_equal(a[name].values, b[name].values) for name in a
    )


def array_dicts_equal(a, b) -> bool:
    """``dict[str, np.ndarray]`` (the ``evaluate_stream`` shape)."""
    return set(a) == set(b) and all(
        np.array_equal(a[name], b[name]) for name in a
    )


def sweeps_equal(a, b) -> bool:
    """Table-2 sweep entry lists: cell keys, σ, and the full release."""
    if len(a) != len(b):
        return False
    for ea, eb in zip(a, b):
        if (ea.dataset, ea.k, ea.paper_eps, ea.eps_used) != (
            eb.dataset, eb.k, eb.paper_eps, eb.eps_used
        ):
            return False
        if ea.result.success != eb.result.success:
            return False
        if not ea.result.success:
            continue
        if ea.result.sigma != eb.result.sigma:
            return False
        pairs_a = ea.result.uncertain.pair_arrays()
        pairs_b = eb.result.uncertain.pair_arrays()
        if not all(np.array_equal(x, y) for x, y in zip(pairs_a, pairs_b)):
            return False
    return True


# ----------------------------------------------------------------------
# shared workload inputs
# ----------------------------------------------------------------------

def random_uncertain(
    n: int, pairs: int, seed: int, *, certain_fraction: float = 0.2
) -> UncertainGraph:
    """A random sparse uncertain graph (mixed certain/fractional pairs)."""
    rng = np.random.default_rng(seed)
    chosen: dict[tuple[int, int], float] = {}
    while len(chosen) < pairs:
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u == v:
            continue
        p = 1.0 if rng.random() < certain_fraction else float(rng.random())
        chosen[(min(u, v), max(u, v))] = p
    return UncertainGraph.from_pairs(
        n, [(u, v, p) for (u, v), p in chosen.items()]
    )
