"""The chunk executor: ordering, obs round-trip, shared memory, crashes."""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.exec import ChunkExecutor, effective_workers, make_executor
from repro.obs.metrics import REGISTRY, reset_metrics
from repro.obs.trace import disable_tracing, enable_tracing, span


# Task functions must be module-level: workers import them by reference.

def _scale_slice(task, shared):
    lo, hi = task
    return shared["xs"][lo:hi] * 2.0


def _identity(task, shared):
    return task


def _echo_shared(task, shared):
    return shared


def _count_and_echo(task, shared):
    REGISTRY.counter("test.exec.tasks").add()
    REGISTRY.counter("test.exec.items").add(task)
    return task


def _spanned(task, shared):
    with span("test.exec.child", task=task):
        return task * 10


def _explode_on_two(task, shared):
    if task == 2:
        raise RuntimeError(f"task {task} exploded")
    return task


def _shm_segments() -> list[str]:
    return glob.glob("/dev/shm/repro-*")


class TestMapContract:
    def test_process_matches_serial_with_shared_arrays(self):
        xs = np.arange(100, dtype=np.float64)
        tasks = [(0, 10), (10, 55), (55, 100)]
        serial = ChunkExecutor(backend="serial").map(
            _scale_slice, tasks, shared={"xs": xs}
        )
        with ChunkExecutor(backend="process", workers=2) as ex:
            sharded = ex.map(_scale_slice, tasks, shared={"xs": xs})
        assert len(serial) == len(sharded) == len(tasks)
        for a, b in zip(serial, sharded):
            assert np.array_equal(a, b)

    def test_results_come_back_in_task_order(self):
        tasks = list(range(17))
        with ChunkExecutor(backend="process", workers=4) as ex:
            assert ex.map(_identity, tasks) == tasks

    def test_empty_task_list(self):
        with ChunkExecutor(backend="process", workers=2) as ex:
            assert ex.map(_identity, []) == []

    def test_serial_backend_passes_shared_through_untouched(self):
        shared = {"xs": np.arange(3)}
        [echoed] = ChunkExecutor(backend="serial").map(
            _echo_shared, [0], shared=shared
        )
        assert echoed is shared  # no copy, no shm export

    def test_pool_reused_across_maps(self):
        with ChunkExecutor(backend="process", workers=2) as ex:
            ex.map(_identity, [1, 2])
            pool = ex._pool
            ex.map(_identity, [3, 4])
            assert ex._pool is pool

    def test_no_shared_memory_leak_after_map(self):
        xs = np.arange(1000, dtype=np.float64)
        with ChunkExecutor(backend="process", workers=2) as ex:
            ex.map(_scale_slice, [(0, 500), (500, 1000)], shared={"xs": xs})
            assert _shm_segments() == []  # unlinked per map, not per close
        assert _shm_segments() == []


class TestObsRoundTrip:
    def test_worker_metrics_merge_into_parent(self):
        reset_metrics()
        tasks = [1, 2, 3, 4, 5]
        with ChunkExecutor(backend="process", workers=2) as ex:
            ex.map(_count_and_echo, tasks)
        assert REGISTRY.get("test.exec.tasks") == len(tasks)
        assert REGISTRY.get("test.exec.items") == sum(tasks)

    def test_worker_spans_graft_under_exec_map(self):
        tasks = [1, 2, 3]
        tracer = enable_tracing(None)
        try:
            with ChunkExecutor(backend="process", workers=2) as ex:
                results = ex.map(_spanned, tasks)
        finally:
            disable_tracing()
        assert results == [10, 20, 30]
        ids = [rec["id"] for rec in tracer.finished]
        assert len(ids) == len(set(ids))
        children = [r for r in tracer.finished if r["name"] == "test.exec.child"]
        assert len(children) == len(tasks)  # exactly once each: no double-write
        [map_span] = [r for r in tracer.finished if r["name"] == "exec.map"]
        assert all(rec["parent"] == map_span["id"] for rec in children)
        assert all(rec["depth"] == map_span["depth"] + 1 for rec in children)

    def test_no_spans_shipped_when_tracing_disabled(self):
        with ChunkExecutor(backend="process", workers=2) as ex:
            assert ex.map(_spanned, [1]) == [10]  # no tracer: still works


class TestCrashPropagation:
    def test_worker_exception_reraises_in_parent(self):
        with ChunkExecutor(backend="process", workers=2) as ex:
            with pytest.raises(RuntimeError, match="task 2 exploded"):
                ex.map(_explode_on_two, [0, 1, 2, 3])
            # the map tore the pool down so stranded siblings cannot
            # touch unlinked segments; the next map rebuilds it
            assert ex._pool is None
            assert _shm_segments() == []
            assert ex.map(_identity, [7]) == [7]

    def test_crash_with_shared_arrays_unlinks_segments(self):
        xs = np.arange(10, dtype=np.float64)
        with ChunkExecutor(backend="process", workers=2) as ex:
            with pytest.raises(RuntimeError):
                ex.map(_explode_on_two, [2], shared={"xs": xs})
        assert _shm_segments() == []


class TestConstruction:
    def test_effective_workers(self):
        import os

        cpus = os.cpu_count() or 1
        assert effective_workers(None) == cpus
        assert effective_workers(0) == cpus
        assert effective_workers(3) == 3
        with pytest.raises(ValueError):
            effective_workers(-1)

    def test_make_executor_mapping(self):
        assert make_executor(1).backend == "serial"
        assert make_executor(None).workers >= 1
        ex = make_executor(2)
        try:
            assert ex.backend == "process"
            assert ex.workers == 2
        finally:
            ex.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ChunkExecutor(backend="threads")

    def test_close_is_idempotent(self):
        ex = ChunkExecutor(backend="process", workers=2)
        ex.map(_identity, [1])
        ex.close()
        ex.close()
        assert ex._pool is None
