"""Seed-equivalence pins: serial == sharded at 1/2/4 workers, bit for bit.

Each test phrases one engine's workload as a ``build(executor)``
callable and runs it through the :mod:`tests.exec.equivalence` harness.
These are the contracts that make ``--workers N`` safe to default on:
parallelism must never be observable in the numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.posterior_batch import (
    degree_posterior_matrix,
    degree_posterior_matrix_sharded,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_obfuscation_sweep
from repro.graphs.generators import barabasi_albert
from repro.worlds.estimator import (
    BatchedWorldStatisticsEstimator,
    BatchStatisticsEngine,
)
from repro.worlds.releases import stream_releases

from tests.exec.equivalence import (
    array_dicts_equal,
    assert_seed_equivalent,
    random_uncertain,
    summaries_equal,
    sweeps_equal,
)


@pytest.fixture(scope="module")
def uncertain():
    """~60 vertices, 200 candidate pairs — real structure, fast worlds."""
    return random_uncertain(60, 200, seed=7)


class TestPosteriorRows:
    def test_row_shards_match_monolithic(self, uncertain):
        indptr, data = uncertain.incident_probability_csr()

        def build(executor):
            if executor is None:
                return degree_posterior_matrix(indptr, data)
            return degree_posterior_matrix_sharded(
                indptr, data, executor=executor, chunk_size=7
            )

        matrix = assert_seed_equivalent(build, np.array_equal)
        assert matrix.shape[0] == uncertain.num_vertices

    def test_width_is_resolved_globally(self, uncertain):
        # a shard whose local max addend count is below the global width
        # must still emit global-width rows (zero-padded tail)
        indptr, data = uncertain.incident_probability_csr()
        with_width = degree_posterior_matrix(indptr, data, width=40)

        def build(executor):
            if executor is None:
                return with_width
            return degree_posterior_matrix_sharded(
                indptr, data, executor=executor, width=40, chunk_size=5
            )

        assert_seed_equivalent(build, np.array_equal)


class TestWorldStatistics:
    def test_estimator_run(self, uncertain):
        def build(executor):
            estimator = BatchedWorldStatisticsEstimator(
                uncertain, distance_seed=0, executor=executor
            )
            return estimator.run(worlds=16, seed=5)

        summaries = assert_seed_equivalent(build, summaries_equal)
        assert all(len(s.values) == 16 for s in summaries.values())

    def test_estimator_run_exact_distance_backend(self, uncertain):
        # no ANF register stack: the keep-matrix chunk rule + BFS kernels
        def build(executor):
            estimator = BatchedWorldStatisticsEstimator(
                uncertain,
                distance_backend="exact",
                distance_seed=0,
                executor=executor,
            )
            return estimator.run(worlds=8, seed=11)

        assert_seed_equivalent(build, summaries_equal, workers=(2,))


class TestReleaseUnions:
    def test_evaluate_stream_over_perturbation_releases(self):
        graph = barabasi_albert(80, 3, seed=1)

        def build(executor):
            engine = BatchStatisticsEngine(distance_seed=0)
            batches = stream_releases(
                graph, "perturbation", 0.05, 12, seed=3, chunk_size=4
            )
            return engine.evaluate_stream(batches, executor=executor)

        values = assert_seed_equivalent(build, array_dicts_equal)
        assert all(v.shape == (12,) for v in values.values())


class TestTable2Grid:
    def test_full_grid_rows(self):
        config = ExperimentConfig(
            datasets=("dblp",),
            scale=0.1,
            k_values=(20,),
            eps_values=(1e-3,),
            worlds=8,
            attempts=2,
            delta=0.05,
            seed=0,
        )

        def build(executor):
            return run_obfuscation_sweep(config, executor=executor)

        sweep = assert_seed_equivalent(build, sweeps_equal)
        assert len(sweep) == 1
        assert sweep[0].result.success
