"""Executor fault tolerance under the deterministic chaos harness.

The pinned contract (ISSUE 10): SIGKILL one worker mid-``map`` at two
workers and the map still completes — bit-identical to a fault-free
run — with the retry recorded in the metrics the manifest snapshots.
Everything here runs at tiny task counts so the whole module stays in
CI-smoke time.
"""

import glob

import numpy as np
import pytest

from repro.exec import (
    ChunkExecutor,
    TaskFailure,
    TaskTimeoutError,
    WorkerLostError,
    make_executor,
)
from repro.obs.metrics import REGISTRY
from repro.resilience import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    install_fault_plan,
)


def _square(x, shared=None):
    return x * x


def _rng_draw(seed, shared=None):
    # Seed-pinned payload: retries must reproduce it bit-for-bit.
    return np.random.default_rng(seed).random(32)


def _index_shared(i, shared):
    return float(shared["base"][i])


def _shm_leaks():
    return glob.glob("/dev/shm/repro_*")


@pytest.fixture(autouse=True)
def _clean_plan():
    install_fault_plan(None)
    yield
    install_fault_plan(None)


@pytest.fixture
def _fast_retry():
    # Keep chaos tests quick: small backoff, generous budget.
    return RetryPolicy(max_retries=3, base_delay_s=0.01, max_delay_s=0.05)


class TestWorkerKill:
    def test_sigkill_mid_map_is_bit_identical(self, _fast_retry):
        """The ISSUE-10 pinned test."""
        seeds = list(range(10))
        expected = [_rng_draw(s) for s in seeds]

        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="exec.task.pre", action="kill", indices=(3,)),
        )))
        before = REGISTRY.get("exec.retries")
        ex = make_executor(2, retry=_fast_retry)
        try:
            got = ex.map(_rng_draw, seeds)
        finally:
            ex.close()

        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            assert np.array_equal(g, e)  # bit-identical despite the kill
        assert REGISTRY.get("exec.worker_deaths") >= 1
        assert REGISTRY.get("exec.retries") > before  # recorded for manifest
        assert _shm_leaks() == []

    def test_kill_with_shared_arrays(self, _fast_retry):
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="exec.task.pre", action="kill", indices=(1,)),
        )))
        base = np.arange(100, dtype=np.float64)
        ex = make_executor(2, retry=_fast_retry)
        try:
            got = ex.map(_index_shared, list(range(6)), shared={"base": base})
        finally:
            ex.close()
        assert got == [float(i) for i in range(6)]
        assert _shm_leaks() == []

    def test_repeated_kills_exhaust_retry_budget(self):
        # attempts=None: the kill chases every retry; the budget must
        # eventually surface WorkerLostError instead of looping forever.
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="exec.task.pre", action="kill",
                      indices=(0,), attempts=None),
        )))
        ex = make_executor(
            2, retry=RetryPolicy(max_retries=1, base_delay_s=0.01)
        )
        with pytest.raises(WorkerLostError):
            ex.map(_square, [1, 2, 3])
        assert ex._pool is None  # close-on-raise contract
        assert _shm_leaks() == []


class TestTransientErrors:
    def test_transient_raise_is_retried(self, _fast_retry):
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="exec.task.post", action="raise", indices=(2,)),
        )))
        before = REGISTRY.get("exec.retries")
        ex = make_executor(2, retry=_fast_retry)
        try:
            got = ex.map(_square, list(range(6)))
        finally:
            ex.close()
        assert got == [x * x for x in range(6)]
        assert REGISTRY.get("exec.retries") > before

    def test_serial_path_retries_too(self, _fast_retry):
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="exec.task.pre", action="raise", indices=(1,)),
        )))
        ex = ChunkExecutor(workers=1, retry=_fast_retry)
        got = ex.map(_square, [1, 2, 3])
        assert got == [1, 4, 9]

    def test_persistent_raise_propagates_without_quarantine(self):
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="exec.task.pre", action="raise",
                      indices=(1,), attempts=None),
        )))
        ex = make_executor(
            2, retry=RetryPolicy(max_retries=1, base_delay_s=0.01)
        )
        with pytest.raises(FaultInjected):
            ex.map(_square, [1, 2, 3])
        assert ex._pool is None


class TestQuarantine:
    def test_poison_task_is_quarantined(self):
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="exec.task.pre", action="raise",
                      indices=(1,), attempts=None),
        )))
        before = REGISTRY.get("exec.poisoned")
        ex = make_executor(
            2,
            retry=RetryPolicy(max_retries=1, base_delay_s=0.01),
            quarantine=True,
        )
        try:
            got = ex.map(_square, [1, 2, 3])
        finally:
            ex.close()
        assert got[0] == 1 and got[2] == 9
        failure = got[1]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 1 and failure.retries >= 1
        assert "FaultInjected" in failure.kind or "fault" in failure.error.lower()
        assert REGISTRY.get("exec.poisoned") > before
        assert _shm_leaks() == []

    def test_quarantine_serial_path(self):
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="exec.task.pre", action="raise",
                      indices=(0,), attempts=None),
        )))
        ex = ChunkExecutor(
            workers=1,
            retry=RetryPolicy(max_retries=0, base_delay_s=0.01),
            quarantine=True,
        )
        got = ex.map(_square, [5, 6])
        assert isinstance(got[0], TaskFailure) and got[1] == 36


class TestTimeouts:
    def test_straggler_is_timed_out_and_retried(self, _fast_retry):
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="exec.task.pre", action="delay",
                      indices=(1,), param=5.0),
        )))
        before = REGISTRY.get("exec.timeouts")
        ex = make_executor(2, task_timeout_s=0.4, retry=_fast_retry)
        try:
            got = ex.map(_square, [1, 2, 3])
        finally:
            ex.close()
        assert got == [1, 4, 9]
        assert REGISTRY.get("exec.timeouts") > before

    def test_persistent_hang_raises_timeout(self):
        install_fault_plan(FaultPlan(rules=(
            FaultRule(site="exec.task.pre", action="delay",
                      indices=(0,), attempts=None, param=5.0),
        )))
        ex = make_executor(
            2,
            task_timeout_s=0.3,
            retry=RetryPolicy(max_retries=0, base_delay_s=0.01),
        )
        with pytest.raises(TaskTimeoutError):
            ex.map(_square, [1, 2])
        assert ex._pool is None
        assert _shm_leaks() == []


class TestOnResult:
    def test_on_result_fires_in_order(self):
        seen = []
        ex = make_executor(2)
        try:
            got = ex.map(
                _square, [1, 2, 3, 4], on_result=lambda i, v: seen.append((i, v))
            )
        finally:
            ex.close()
        assert got == [1, 4, 9, 16]
        assert seen == [(0, 1), (1, 4), (2, 9), (3, 16)]

    def test_on_result_serial(self):
        seen = []
        ex = ChunkExecutor(workers=1)
        got = ex.map(_square, [2, 3], on_result=lambda i, v: seen.append(i))
        assert got == [4, 9] and seen == [0, 1]
