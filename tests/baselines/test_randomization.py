"""Tests for random sparsification/perturbation baselines."""

import numpy as np
import pytest

from repro.baselines.randomization import (
    addition_probability,
    random_perturbation,
    random_sparsification,
)
from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(120, 0.08, seed=0)


class TestSparsification:
    def test_p_zero_identity(self, graph):
        assert random_sparsification(graph, 0.0, seed=0) == graph

    def test_p_one_empties(self, graph):
        assert random_sparsification(graph, 1.0, seed=0).num_edges == 0

    def test_no_additions(self, graph):
        out = random_sparsification(graph, 0.4, seed=1)
        assert out.edge_set() <= graph.edge_set()

    def test_expected_removal_fraction(self, graph):
        p = 0.3
        counts = [
            random_sparsification(graph, p, seed=s).num_edges for s in range(20)
        ]
        expected = (1 - p) * graph.num_edges
        assert np.mean(counts) == pytest.approx(expected, rel=0.05)

    def test_invalid_p(self, graph):
        with pytest.raises(ValueError):
            random_sparsification(graph, 1.2)

    def test_deterministic(self, graph):
        a = random_sparsification(graph, 0.5, seed=9)
        b = random_sparsification(graph, 0.5, seed=9)
        assert a == b


class TestAdditionProbability:
    def test_formula(self, graph):
        m, pairs = graph.num_edges, graph.num_pairs
        assert addition_probability(graph) == pytest.approx(m / (pairs - m))

    def test_complete_graph_zero(self):
        g = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert addition_probability(g) == 0.0


class TestPerturbation:
    def test_p_zero_identity(self, graph):
        assert random_perturbation(graph, 0.0, seed=0) == graph

    def test_expected_edge_count_preserved(self, graph):
        """Removals and additions balance in expectation (§7.3)."""
        p = 0.3
        counts = [
            random_perturbation(graph, p, seed=s).num_edges for s in range(20)
        ]
        assert np.mean(counts) == pytest.approx(graph.num_edges, rel=0.05)

    def test_adds_only_original_non_edges(self, graph):
        out = random_perturbation(graph, 0.5, seed=2)
        added = out.edge_set() - graph.edge_set()
        for u, v in added:
            assert not graph.has_edge(u, v)

    def test_removal_rate(self, graph):
        p = 0.4
        kept = [
            len(random_perturbation(graph, p, seed=s).edge_set() & graph.edge_set())
            for s in range(20)
        ]
        assert np.mean(kept) == pytest.approx((1 - p) * graph.num_edges, rel=0.06)

    def test_deterministic(self, graph):
        a = random_perturbation(graph, 0.3, seed=4)
        b = random_perturbation(graph, 0.3, seed=4)
        assert a == b
