"""Tests for anonymity levels of randomized releases (Figure-4 machinery)."""

import math

import numpy as np
import pytest

from repro.baselines.anonymity import (
    binomial_pmf,
    cumulative_anonymity_curve,
    original_anonymity_levels,
    perturbation_transition,
    randomization_anonymity_levels,
    sparsification_transition,
)
from repro.baselines.randomization import random_perturbation, random_sparsification
from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph


class TestBinomialPmf:
    def test_sums_to_one(self):
        for n, p in [(0, 0.3), (5, 0.5), (40, 0.01), (100, 0.97)]:
            assert binomial_pmf(n, p).sum() == pytest.approx(1.0)

    def test_against_scipy(self):
        from scipy import stats

        for n, p in [(7, 0.4), (30, 0.1)]:
            ours = binomial_pmf(n, p)
            theirs = stats.binom.pmf(np.arange(n + 1), n, p)
            assert np.allclose(ours, theirs)

    def test_edge_cases(self):
        assert binomial_pmf(5, 0.0)[0] == 1.0
        assert binomial_pmf(5, 1.0)[5] == 1.0

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            binomial_pmf(-1, 0.5)


class TestTransitions:
    def test_sparsification_is_binomial(self):
        row = sparsification_transition(6, 0.3, 10)
        assert row.sum() == pytest.approx(1.0)
        assert np.allclose(row[:7], binomial_pmf(6, 0.7))
        assert (row[7:] == 0).all()

    def test_sparsification_cannot_grow_degree(self):
        row = sparsification_transition(3, 0.5, 10)
        assert (row[4:] == 0).all()

    def test_perturbation_can_grow_degree(self):
        row = perturbation_transition(3, 0.5, 0.05, 50, 10)
        assert row[5] > 0

    def test_perturbation_row_mass(self):
        row = perturbation_transition(4, 0.3, 0.001, 200, 199)
        assert row.sum() == pytest.approx(1.0, abs=1e-6)

    def test_perturbation_zero_addition_matches_sparsification(self):
        a = perturbation_transition(5, 0.4, 0.0, 100, 20)
        b = sparsification_transition(5, 0.4, 20)
        assert np.allclose(a, b)


class TestOriginalLevels:
    def test_counts_same_degree_vertices(self, star5):
        levels = original_anonymity_levels(star5)
        assert levels[0] == 1.0  # unique hub
        assert (levels[1:] == 4.0).all()

    def test_regular_graph_full_anonymity(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert (original_anonymity_levels(g) == 4.0).all()


class TestRandomizationLevels:
    @pytest.fixture(scope="class")
    def graph(self):
        return erdos_renyi(150, 0.06, seed=1)

    def test_levels_positive_and_bounded(self, graph):
        published = random_sparsification(graph, 0.3, seed=0)
        levels = randomization_anonymity_levels(graph, published, "sparsification", 0.3)
        assert (levels >= 0).all()
        assert (levels <= graph.num_vertices + 1e-6).all()

    def test_more_noise_more_anonymity(self, graph):
        """Median anonymity grows with the perturbation strength."""
        meds = []
        for p in (0.05, 0.6):
            published = random_perturbation(graph, p, seed=2)
            levels = randomization_anonymity_levels(
                graph, published, "perturbation", p
            )
            meds.append(np.median(levels))
        assert meds[1] > meds[0]

    def test_unknown_scheme_rejected(self, graph):
        published = random_sparsification(graph, 0.3, seed=0)
        with pytest.raises(ValueError, match="unknown scheme"):
            randomization_anonymity_levels(graph, published, "swapping", 0.3)

    def test_entropy_grouping_consistency(self, graph):
        """Vertices with the same original degree share a level."""
        published = random_sparsification(graph, 0.2, seed=3)
        levels = randomization_anonymity_levels(graph, published, "sparsification", 0.2)
        degrees = graph.degrees()
        for d in np.unique(degrees):
            vals = levels[degrees == d]
            assert np.allclose(vals, vals[0])


class TestCumulativeCurve:
    def test_monotone_nondecreasing(self):
        levels = np.array([1.0, 2.5, 2.5, 10.0])
        curve = cumulative_anonymity_curve(levels, np.arange(1, 12))
        assert (np.diff(curve) >= 0).all()

    def test_counts(self):
        levels = np.array([1.0, 2.0, 5.0])
        curve = cumulative_anonymity_curve(levels, np.array([1.0, 2.0, 4.0, 5.0]))
        assert list(curve) == [1, 2, 2, 3]

    def test_matches_paper_semantics(self, star5):
        """'number of vertices that have obfuscation level <= k'."""
        levels = original_anonymity_levels(star5)
        curve = cumulative_anonymity_curve(levels, np.array([1.0, 3.0, 4.0]))
        assert list(curve) == [1, 1, 5]
