"""Tests for anonymity levels of randomized releases (Figure-4 machinery)."""

import math

import numpy as np
import pytest

from repro.baselines.anonymity import (
    _entropy_from_grouped,
    binomial_pmf,
    cumulative_anonymity_curve,
    original_anonymity_levels,
    perturbation_transition,
    randomization_anonymity_levels,
    randomization_anonymity_levels_from_observed,
    randomization_transition_matrix,
    sparsification_transition,
)
from repro.baselines.randomization import addition_probability
from repro.baselines.randomization import random_perturbation, random_sparsification
from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph


class TestBinomialPmf:
    def test_sums_to_one(self):
        for n, p in [(0, 0.3), (5, 0.5), (40, 0.01), (100, 0.97)]:
            assert binomial_pmf(n, p).sum() == pytest.approx(1.0)

    def test_against_scipy(self):
        stats = pytest.importorskip("scipy").stats

        for n, p in [(7, 0.4), (30, 0.1)]:
            ours = binomial_pmf(n, p)
            theirs = stats.binom.pmf(np.arange(n + 1), n, p)
            assert np.allclose(ours, theirs)

    def test_edge_cases(self):
        assert binomial_pmf(5, 0.0)[0] == 1.0
        assert binomial_pmf(5, 1.0)[5] == 1.0

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            binomial_pmf(-1, 0.5)


class TestTransitions:
    def test_sparsification_is_binomial(self):
        row = sparsification_transition(6, 0.3, 10)
        assert row.sum() == pytest.approx(1.0)
        assert np.allclose(row[:7], binomial_pmf(6, 0.7))
        assert (row[7:] == 0).all()

    def test_sparsification_cannot_grow_degree(self):
        row = sparsification_transition(3, 0.5, 10)
        assert (row[4:] == 0).all()

    def test_perturbation_can_grow_degree(self):
        row = perturbation_transition(3, 0.5, 0.05, 50, 10)
        assert row[5] > 0

    def test_perturbation_row_mass(self):
        row = perturbation_transition(4, 0.3, 0.001, 200, 199)
        assert row.sum() == pytest.approx(1.0, abs=1e-6)

    def test_perturbation_zero_addition_matches_sparsification(self):
        a = perturbation_transition(5, 0.4, 0.0, 100, 20)
        b = sparsification_transition(5, 0.4, 20)
        assert np.allclose(a, b)


class TestOriginalLevels:
    def test_counts_same_degree_vertices(self, star5):
        levels = original_anonymity_levels(star5)
        assert levels[0] == 1.0  # unique hub
        assert (levels[1:] == 4.0).all()

    def test_regular_graph_full_anonymity(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert (original_anonymity_levels(g) == 4.0).all()


class TestRandomizationLevels:
    @pytest.fixture(scope="class")
    def graph(self):
        return erdos_renyi(150, 0.06, seed=1)

    def test_levels_positive_and_bounded(self, graph):
        published = random_sparsification(graph, 0.3, seed=0)
        levels = randomization_anonymity_levels(graph, published, "sparsification", 0.3)
        assert (levels >= 0).all()
        assert (levels <= graph.num_vertices + 1e-6).all()

    def test_more_noise_more_anonymity(self, graph):
        """Median anonymity grows with the perturbation strength."""
        meds = []
        for p in (0.05, 0.6):
            published = random_perturbation(graph, p, seed=2)
            levels = randomization_anonymity_levels(
                graph, published, "perturbation", p
            )
            meds.append(np.median(levels))
        assert meds[1] > meds[0]

    def test_unknown_scheme_rejected(self, graph):
        published = random_sparsification(graph, 0.3, seed=0)
        with pytest.raises(ValueError, match="unknown scheme"):
            randomization_anonymity_levels(graph, published, "swapping", 0.3)

    def test_entropy_grouping_consistency(self, graph):
        """Vertices with the same original degree share a level."""
        published = random_sparsification(graph, 0.2, seed=3)
        levels = randomization_anonymity_levels(graph, published, "sparsification", 0.2)
        degrees = graph.degrees()
        for d in np.unique(degrees):
            vals = levels[degrees == d]
            assert np.allclose(vals, vals[0])


class TestTransitionMatrixBatch:
    """The vectorised (Ω, d_max) build against the per-ω scalar oracle."""

    def test_sparsification_rows_match_scalar(self):
        omegas = np.array([0, 1, 3, 7, 12])
        T = randomization_transition_matrix(
            omegas, "sparsification", 0.35, n=50, max_observed=10
        )
        for i, w in enumerate(omegas):
            np.testing.assert_allclose(
                T[i], sparsification_transition(int(w), 0.35, 10), atol=1e-14
            )

    @pytest.mark.parametrize("p,p_add", [(0.3, 0.002), (0.9, 0.05), (0.1, 0.0)])
    def test_perturbation_rows_match_scalar(self, p, p_add):
        omegas = np.array([0, 2, 5, 11])
        T = randomization_transition_matrix(
            omegas, "perturbation", p, p_add=p_add, n=80, max_observed=20
        )
        for i, w in enumerate(omegas):
            oracle = perturbation_transition(int(w), p, p_add, 80, 20)
            np.testing.assert_allclose(T[i], oracle, atol=1e-13)

    def test_degenerate_probabilities(self):
        omegas = np.array([2, 4])
        none_kept = randomization_transition_matrix(
            omegas, "sparsification", 1.0, n=10, max_observed=5
        )
        assert (none_kept[:, 0] == 1.0).all()
        all_kept = randomization_transition_matrix(
            omegas, "sparsification", 0.0, n=10, max_observed=5
        )
        assert all_kept[0, 2] == 1.0 and all_kept[1, 4] == 1.0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            randomization_transition_matrix(
                np.array([1]), "swapping", 0.5, n=10, max_observed=5
            )


class TestVectorisedLevelsOracle:
    """The one-pass entropy evaluation against the former per-ω loop."""

    @pytest.mark.parametrize("scheme,p", [("sparsification", 0.2), ("perturbation", 0.4)])
    def test_levels_match_scalar_loop(self, scheme, p):
        graph = erdos_renyi(120, 0.07, seed=3)
        observed = np.maximum(graph.degrees() - 1, 0)
        levels = randomization_anonymity_levels_from_observed(
            graph, observed, scheme, p
        )
        n = graph.num_vertices
        max_obs = int(observed.max())
        counts = np.bincount(observed, minlength=max_obs + 1).astype(np.float64)
        p_add = p * addition_probability(graph)
        oracle = []
        for w in graph.degrees():
            w = int(w)
            row = (
                sparsification_transition(w, p, max_obs)
                if scheme == "sparsification"
                else perturbation_transition(w, p, p_add, n, max_obs)
            )
            oracle.append(2.0 ** _entropy_from_grouped(row, counts))
        np.testing.assert_allclose(levels, oracle, rtol=1e-12)


class TestCumulativeCurve:
    def test_monotone_nondecreasing(self):
        levels = np.array([1.0, 2.5, 2.5, 10.0])
        curve = cumulative_anonymity_curve(levels, np.arange(1, 12))
        assert (np.diff(curve) >= 0).all()

    def test_counts(self):
        levels = np.array([1.0, 2.0, 5.0])
        curve = cumulative_anonymity_curve(levels, np.array([1.0, 2.0, 4.0, 5.0]))
        assert list(curve) == [1, 2, 2, 3]

    def test_matches_paper_semantics(self, star5):
        """'number of vertices that have obfuscation level <= k'."""
        levels = original_anonymity_levels(star5)
        curve = cumulative_anonymity_curve(levels, np.array([1.0, 3.0, 4.0]))
        assert list(curve) == [1, 1, 5]
