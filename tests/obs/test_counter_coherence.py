"""Counter coherence: result fields == registry totals on a seeded run.

The refactor that moved run accounting into :mod:`repro.obs` keeps the
``ObfuscationResult``/``GenerationOutcome`` fields as the per-call API
while the registry holds the process totals.  These tests pin the
contract that the two never drift: after ``reset_metrics()`` the
registry totals of one seeded run must equal the fields of the result
it produced — on the array engine AND the sequential ground-truth
engine, under both perturbation streams.
"""

from __future__ import annotations

import pytest

from repro.core.generate import generate_obfuscation
from repro.core.search import obfuscate
from repro.core.types import ObfuscationParams
from repro.graphs.generators import erdos_renyi
from repro.obs.metrics import REGISTRY, reset_metrics

ENGINES = ("array", "sequential")


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.15, seed=1)


@pytest.mark.parametrize("engine", ENGINES)
def test_obfuscate_counters_match_registry(graph, engine):
    reset_metrics()
    result = obfuscate(
        graph, k=3, eps=0.2, seed=7, attempts=2, delta=0.05, engine=engine
    )
    assert result.success

    assert REGISTRY.get("search.runs") == 1
    assert REGISTRY.get("search.probes") == len(result.trace)
    assert REGISTRY.get("generate.pairs_drawn") == result.edges_processed
    assert REGISTRY.get("generate.rows_folded") == result.rows_folded
    assert REGISTRY.get("generate.rows_recomputed") == result.rows_recomputed

    folded = REGISTRY.get("generate.rows_folded")
    recomputed = REGISTRY.get("generate.rows_recomputed")
    if folded + recomputed:
        assert result.fold_fraction == pytest.approx(
            folded / (folded + recomputed)
        )
    else:
        assert result.fold_fraction == 0.0

    # one generate.calls per probe, and the winning probes were counted
    assert REGISTRY.get("generate.calls") == len(result.trace)
    assert 0 < REGISTRY.get("generate.winners") <= len(result.trace)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("stream", ("pair_keyed", "attempt"))
def test_generate_outcome_matches_registry_delta(graph, engine, stream):
    """One Algorithm-2 call adds exactly its outcome fields to the registry."""
    params = ObfuscationParams(
        k=3, eps=0.2, attempts=3, engine=engine, stream=stream
    )
    reset_metrics()
    before = {
        "pairs": REGISTRY.get("generate.pairs_drawn"),
        "attempts": REGISTRY.get("generate.attempts_made"),
        "folded": REGISTRY.get("generate.rows_folded"),
        "recomputed": REGISTRY.get("generate.rows_recomputed"),
    }
    outcome = generate_obfuscation(graph, 0.5, params, seed=11)
    assert REGISTRY.get("generate.pairs_drawn") - before["pairs"] == (
        outcome.pairs_drawn
    )
    assert REGISTRY.get("generate.attempts_made") - before["attempts"] == (
        outcome.attempts_made
    )
    assert REGISTRY.get("generate.rows_folded") - before["folded"] == (
        outcome.rows_folded
    )
    assert REGISTRY.get("generate.rows_recomputed") - before["recomputed"] == (
        outcome.rows_recomputed
    )
    assert REGISTRY.get("generate.calls") == 1


def test_engines_agree_on_pairs_drawn(graph):
    """Seed-equivalent engines must consume identical candidate-pair draws."""
    totals = {}
    for engine in ENGINES:
        reset_metrics()
        result = obfuscate(
            graph, k=3, eps=0.2, seed=7, attempts=2, delta=0.05, engine=engine
        )
        assert result.success
        totals[engine] = (
            REGISTRY.get("search.probes"),
            REGISTRY.get("generate.pairs_drawn"),
        )
    assert totals["array"] == totals["sequential"]


def test_incremental_posterior_counters_reconcile(graph):
    """The posterior.incremental.* raw counts rebuild the fold totals.

    On the attempt-stream array engine, generate.py derives the
    outcome's fold coverage from the incremental engine's stats deltas:
    ``rows_folded = skipped + folded`` and
    ``rows_recomputed = recomputed + n * full_rebuilds``.  The registry
    mirrors of both sides must reconcile the same way.
    """
    params = ObfuscationParams(
        k=3, eps=0.2, attempts=3, engine="array", stream="attempt"
    )
    reset_metrics()
    outcome = generate_obfuscation(graph, 0.5, params, seed=11)
    skipped = REGISTRY.get("posterior.incremental.skipped")
    folded = REGISTRY.get("posterior.incremental.folded")
    recomputed = REGISTRY.get("posterior.incremental.recomputed")
    full = REGISTRY.get("posterior.incremental.full")
    assert skipped + folded == outcome.rows_folded
    assert recomputed + graph.num_vertices * full == outcome.rows_recomputed
    assert REGISTRY.get("generate.rows_folded") == outcome.rows_folded
    assert REGISTRY.get("generate.rows_recomputed") == outcome.rows_recomputed
