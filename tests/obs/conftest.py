"""Shared obs fixtures: keep the process-global tracer/registry clean."""

from __future__ import annotations

import pytest

from repro.obs.metrics import reset_metrics
from repro.obs.trace import disable_tracing


@pytest.fixture(autouse=True)
def _clean_obs_globals():
    """Every test starts untraced with zeroed metrics, and leaves no tracer.

    The tracer slot and the registry are process-wide singletons; a test
    that fails mid-span must not leak an active tracer (or counts) into
    its neighbours.
    """
    disable_tracing()
    reset_metrics()
    yield
    disable_tracing()
    reset_metrics()
