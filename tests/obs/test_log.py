"""Verbosity mapping and idempotent handler setup."""

from __future__ import annotations

import logging

from repro.obs.log import setup_logging, verbosity_level


def test_verbosity_mapping():
    assert verbosity_level() == logging.WARNING
    assert verbosity_level(verbose=1) == logging.INFO
    assert verbosity_level(verbose=2) == logging.DEBUG
    assert verbosity_level(verbose=5) == logging.DEBUG
    assert verbosity_level(quiet=True) == logging.ERROR
    assert verbosity_level(verbose=3, quiet=True) == logging.ERROR  # quiet wins


def test_setup_logging_never_stacks_handlers():
    logger = setup_logging(verbose=1)
    assert logger.name == "repro"
    assert logger.level == logging.INFO
    again = setup_logging(quiet=True)
    assert again is logger
    assert len(logger.handlers) == 1  # replaced, not stacked
    assert logger.level == logging.ERROR
    assert logger.propagate is False
