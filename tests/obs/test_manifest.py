"""Run-manifest schema: build, round-trip, and every rejection path."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.obs.manifest import (
    SCHEMA_ID,
    build_manifest,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.trace import disable_tracing, enable_tracing, span


def _run_manifest(**kwargs):
    tracer = enable_tracing()
    with span("phase", worlds=3):
        with span("chunk"):
            pass
    disable_tracing()
    defaults = dict(
        config={"k": 20, "eps": 1e-3}, seed=7, tracer=tracer, results={"ok": True}
    )
    defaults.update(kwargs)
    return build_manifest("repro test", **defaults)


def test_build_manifest_is_schema_valid():
    manifest = _run_manifest()
    assert validate_manifest(manifest) == []
    assert manifest["schema"] == SCHEMA_ID
    assert manifest["seed"] == 7
    assert manifest["spans"][0]["name"] == "phase"
    assert manifest["spans"][0]["children"][0]["name"] == "chunk"
    assert manifest["results"] == {"ok": True}


def test_elapsed_defaults_to_root_span_total():
    manifest = _run_manifest()
    assert manifest["elapsed_s"] == pytest.approx(
        manifest["spans"][0]["wall_s"]
    )


def test_config_values_are_json_safe():
    manifest = _run_manifest(
        config={
            "path": Path("/tmp/x"),
            "grid": (1, 2),
            "n": np.int64(5),
            "obj": object(),
        }
    )
    encoded = json.loads(json.dumps(manifest["config"]))
    assert encoded["path"] == "/tmp/x"
    assert encoded["grid"] == [1, 2]
    assert encoded["n"] == 5
    assert isinstance(encoded["obj"], str)


def test_metrics_snapshot_included_by_default():
    from repro.obs.metrics import REGISTRY

    REGISTRY.counter("manifest.test").add(3)
    manifest = _run_manifest()
    assert manifest["metrics"]["manifest.test"] == 3


def test_write_load_round_trip(tmp_path):
    manifest = _run_manifest()
    path = write_manifest(tmp_path / "sub" / "manifest.json", manifest)
    assert path.exists()  # parent dirs created
    assert load_manifest(path)["command"] == "repro test"


def test_write_refuses_invalid(tmp_path):
    manifest = _run_manifest()
    del manifest["versions"]
    with pytest.raises(ValueError, match="invalid manifest"):
        write_manifest(tmp_path / "manifest.json", manifest)


def test_load_rejects_corrupted(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps({"schema": SCHEMA_ID}))
    with pytest.raises(ValueError, match="invalid manifest"):
        load_manifest(path)


class TestValidateRejections:
    def test_non_dict(self):
        assert validate_manifest([1]) == ["manifest must be a JSON object"]

    def test_missing_field(self):
        manifest = _run_manifest()
        del manifest["metrics"]
        assert any("metrics" in e for e in validate_manifest(manifest))

    def test_wrong_type(self):
        manifest = _run_manifest()
        manifest["elapsed_s"] = "fast"
        assert any("elapsed_s" in e for e in validate_manifest(manifest))

    def test_wrong_schema_id(self):
        manifest = _run_manifest()
        manifest["schema"] = "other/v9"
        assert any("expected" in e for e in validate_manifest(manifest))

    def test_bad_span_node(self):
        manifest = _run_manifest()
        manifest["spans"] = [{"name": "x"}]  # missing timing fields
        errors = validate_manifest(manifest)
        assert any("wall_s" in e for e in errors)

    def test_bad_nested_span_located(self):
        manifest = _run_manifest()
        manifest["spans"][0]["children"] = ["not a span"]
        errors = validate_manifest(manifest)
        assert any("children[0]" in e for e in errors)

    def test_bad_metric_value(self):
        manifest = _run_manifest()
        manifest["metrics"] = {"x": [1, 2]}
        assert any("metrics['x']" in e for e in validate_manifest(manifest))

    def test_seed_nullable(self):
        manifest = _run_manifest(seed=None)
        assert validate_manifest(manifest) == []
