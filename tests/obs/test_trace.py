"""Span tracer contract: no-op when disabled, faithful records when on."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    _NULL_SPAN,
    current_tracer,
    disable_tracing,
    enable_tracing,
    span,
    traced,
    tracing_enabled,
)


class TestDisabledPath:
    def test_span_returns_the_shared_null_singleton(self):
        assert span("anything", k=1) is _NULL_SPAN
        assert span("other") is _NULL_SPAN

    def test_null_span_is_a_working_context_manager(self):
        with span("x", a=1) as sp:
            sp.set(b=2)  # must be a silent no-op
        assert sp.wall_s == 0.0
        assert sp.cpu_s == 0.0
        assert sp.rss_delta_mb == 0.0

    def test_tracing_disabled_by_default(self):
        assert not tracing_enabled()
        assert current_tracer() is None

    def test_traced_decorator_passes_through(self):
        @traced()
        def f(x):
            return x + 1

        assert f(1) == 2


class TestEnabledPath:
    def test_enable_is_idempotent(self):
        t1 = enable_tracing()
        t2 = enable_tracing()
        assert t1 is t2
        assert tracing_enabled()
        assert current_tracer() is t1

    def test_disable_returns_the_tracer(self):
        t = enable_tracing()
        assert disable_tracing() is t
        assert disable_tracing() is None  # second call: nothing active

    def test_nesting_depth_and_parents(self):
        tracer = enable_tracing()
        with span("outer") as outer:
            with span("inner") as inner:
                pass
        assert outer.depth == 0 and outer.parent_id == -1
        assert inner.depth == 1 and inner.parent_id == outer.span_id
        names = [rec["name"] for rec in tracer.finished]
        assert names == ["inner", "outer"]  # completion order

    def test_attrs_and_set(self):
        tracer = enable_tracing()
        with span("probe", sigma=1.5) as sp:
            sp.set(eps_achieved=0.01)
        rec = tracer.finished[-1]
        assert rec["attrs"] == {"sigma": 1.5, "eps_achieved": 0.01}

    def test_timings_are_populated(self):
        enable_tracing()
        with span("work") as sp:
            sum(range(1000))
        assert sp.wall_s > 0.0
        assert sp.cpu_s >= 0.0

    def test_exception_recorded_and_propagated(self):
        tracer = enable_tracing()
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("no")
        assert tracer.finished[-1]["attrs"]["error"] == "ValueError"

    def test_exception_unwinding_through_nested_spans(self):
        tracer = enable_tracing()
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError
        assert [rec["name"] for rec in tracer.finished] == ["inner", "outer"]
        assert tracer._stack == []

    def test_span_tree_nests_children(self):
        tracer = enable_tracing()
        with span("root"):
            with span("child_a"):
                with span("leaf"):
                    pass
            with span("child_b"):
                pass
        tree = tracer.span_tree()
        assert [node["name"] for node in tree] == ["root"]
        children = tree[0]["children"]
        assert [c["name"] for c in children] == ["child_a", "child_b"]
        assert children[0]["children"][0]["name"] == "leaf"

    def test_traced_decorator_records_qualname_span(self):
        tracer = enable_tracing()

        @traced()
        def do_thing():
            return 3

        @traced("custom")
        def other():
            return 4

        assert do_thing() == 3 and other() == 4
        names = [rec["name"] for rec in tracer.finished]
        assert names[0].endswith("do_thing")
        assert names[1] == "custom"


def test_jsonl_stream(tmp_path):
    path = tmp_path / "trace.jsonl"
    enable_tracing(path)
    with span("a", x=1):
        with span("b"):
            pass
    disable_tracing()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [rec["name"] for rec in records] == ["b", "a"]
    for rec in records:
        assert set(rec) == {
            "id", "parent", "depth", "name", "wall_s", "cpu_s",
            "rss_delta_mb", "attrs",
        }
    assert records[1]["attrs"] == {"x": 1}
    assert records[0]["parent"] == records[1]["id"]
