"""Unit contract of the metrics registry (counters, gauges, histograms)."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_snapshot,
    reset_metrics,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.add()
        c.add(41)
        assert c.value == 42

    def test_add_coerces_to_int(self):
        c = Counter("x")
        c.add(3.0)
        assert c.value == 3 and isinstance(c.value, int)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(7.5)
        assert g.value == 7.5


class TestHistogram:
    def test_observe_summary(self):
        h = Histogram("x")
        for v in (4, 1, 7):
            h.observe(v)
        assert h.count == 3
        assert h.total == 12.0
        assert h.min == 1.0 and h.max == 7.0
        assert h.mean == 4.0

    def test_observe_many_matches_loop(self):
        bulk, loop = Histogram("bulk"), Histogram("loop")
        values = [5, 2, 9, 2]
        bulk.observe_many(values)
        for v in values:
            loop.observe(v)
        assert bulk._snapshot() == loop._snapshot()

    def test_observe_many_empty_is_noop(self):
        h = Histogram("x")
        h.observe_many([])
        assert h.count == 0

    def test_empty_snapshot_is_json_safe(self):
        snap = Histogram("x")._snapshot()
        assert snap == {"count": 0, "total": 0.0, "min": None, "max": None,
                        "mean": None}

    def test_empty_mean_is_nan(self):
        assert math.isnan(Histogram("x").mean)


class TestRegistry:
    def test_handles_are_memoised(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_snapshot_is_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b.count").add(2)
        reg.gauge("a.gauge").set(1.5)
        reg.histogram("c.hist").observe(3)
        snap = reg.snapshot()
        assert list(snap) == ["a.gauge", "b.count", "c.hist"]
        assert snap["b.count"] == 2
        assert snap["a.gauge"] == 1.5
        assert snap["c.hist"]["count"] == 1

    def test_reset_zeroes_in_place(self):
        """Reset must keep existing handles valid — modules memoise them."""
        reg = MetricsRegistry()
        handle = reg.counter("a")
        handle.add(5)
        reg.reset()
        assert handle.value == 0
        handle.add(1)
        assert reg.get("a") == 1

    def test_get_default_for_unregistered(self):
        reg = MetricsRegistry()
        assert reg.get("nope") == 0
        assert reg.get("nope", default=None) is None


def test_module_level_helpers_hit_the_global_registry():
    REGISTRY.counter("test.helper").add(7)
    assert metrics_snapshot()["test.helper"] == 7
    reset_metrics()
    assert metrics_snapshot()["test.helper"] == 0


class TestPercentileHistogram:
    def test_bucketed_percentiles(self):
        h = Histogram("lat", buckets=[1.0, 2.0, 4.0, 8.0])
        for v in (0.5, 1.5, 1.5, 3.0, 7.0, 7.0, 7.0, 7.0, 7.0, 7.0):
            h.observe(v)
        # 10 observations: p50 rank 5 lands in the (4, 8] bucket's
        # cumulative range only at p>=0.5? cumulative: 1, 3, 4, 10.
        assert h.percentile(0.10) == 1.0
        assert h.percentile(0.30) == 2.0
        assert h.percentile(0.40) == 4.0
        assert h.percentile(0.99) == 7.0  # capped at observed max
        assert h.percentile(1.00) == 7.0

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram("lat", buckets=[1.0])
        h.observe(5.0)
        h.observe(9.0)
        assert h.percentile(0.99) == 9.0

    def test_empty_or_bucket_free_percentile_is_nan(self):
        assert math.isnan(Histogram("x", buckets=[1.0]).percentile(0.5))
        assert math.isnan(Histogram("x").percentile(0.5))

    def test_bad_q_rejected(self):
        with pytest.raises(ValueError, match="q must be"):
            Histogram("x", buckets=[1.0]).percentile(1.5)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("x", buckets=[2.0, 1.0])
        with pytest.raises(ValueError, match="ascending"):
            Histogram("x", buckets=[])

    def test_snapshot_includes_percentiles_only_when_bucketed(self):
        h = Histogram("lat", buckets=[1.0, 10.0])
        h.observe(0.5)
        snap = h._snapshot()
        assert snap["p50"] == 0.5 and snap["p99"] == 0.5  # clamped to max
        plain = Histogram("plain")
        plain.observe(0.5)
        assert "p50" not in plain._snapshot()

    def test_observe_many_fills_buckets(self):
        bulk, loop = (
            Histogram("bulk", buckets=[1.0, 2.0]),
            Histogram("loop", buckets=[1.0, 2.0]),
        )
        values = [0.5, 1.5, 9.0]
        bulk.observe_many(values)
        for v in values:
            loop.observe(v)
        assert bulk.bucket_counts == loop.bucket_counts
        assert bulk._snapshot() == loop._snapshot()

    def test_reset_clears_buckets(self):
        h = Histogram("lat", buckets=[1.0])
        h.observe(0.5)
        h._reset()
        assert h.bucket_counts == [0, 0]
        assert math.isnan(h.percentile(0.5))

    def test_registry_memoises_and_rejects_conflicting_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=[1.0, 2.0])
        assert reg.histogram("lat") is h
        assert reg.histogram("lat", buckets=[1.0, 2.0]) is h
        with pytest.raises(ValueError, match="already registered with buckets"):
            reg.histogram("lat", buckets=[3.0])
        plain = reg.histogram("plain")
        with pytest.raises(ValueError, match="already registered with buckets"):
            reg.histogram("plain", buckets=[1.0])
        assert plain.bucket_bounds is None


class TestExponentialBuckets:
    def test_geometric_spacing(self):
        from repro.obs.metrics import exponential_buckets

        b = exponential_buckets(1.0, 2.0, 4)
        assert b == (1.0, 2.0, 4.0, 8.0)

    def test_invalid_rejected(self):
        from repro.obs.metrics import exponential_buckets

        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 2.0, 0)


class TestThreadSafety:
    """Concurrent mutation must not drop increments (serve handlers)."""

    def test_concurrent_counter_adds_are_not_lost(self):
        import threading

        c = Counter("x")
        n, per = 4, 25_000

        def work():
            for _ in range(per):
                c.add(1)

        threads = [threading.Thread(target=work) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n * per

    def test_concurrent_histogram_observes_are_not_lost(self):
        import threading

        h = Histogram("x", buckets=[0.5, 1.5])
        n, per = 4, 10_000

        def work():
            for _ in range(per):
                h.observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == n * per
        assert h.bucket_counts == [0, n * per, 0]

    def test_concurrent_registration_yields_one_handle(self):
        import threading

        reg = MetricsRegistry()
        handles = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            handles.append(reg.counter("shared"))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(h is handles[0] for h in handles)
