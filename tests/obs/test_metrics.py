"""Unit contract of the metrics registry (counters, gauges, histograms)."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_snapshot,
    reset_metrics,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.add()
        c.add(41)
        assert c.value == 42

    def test_add_coerces_to_int(self):
        c = Counter("x")
        c.add(3.0)
        assert c.value == 3 and isinstance(c.value, int)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(7.5)
        assert g.value == 7.5


class TestHistogram:
    def test_observe_summary(self):
        h = Histogram("x")
        for v in (4, 1, 7):
            h.observe(v)
        assert h.count == 3
        assert h.total == 12.0
        assert h.min == 1.0 and h.max == 7.0
        assert h.mean == 4.0

    def test_observe_many_matches_loop(self):
        bulk, loop = Histogram("bulk"), Histogram("loop")
        values = [5, 2, 9, 2]
        bulk.observe_many(values)
        for v in values:
            loop.observe(v)
        assert bulk._snapshot() == loop._snapshot()

    def test_observe_many_empty_is_noop(self):
        h = Histogram("x")
        h.observe_many([])
        assert h.count == 0

    def test_empty_snapshot_is_json_safe(self):
        snap = Histogram("x")._snapshot()
        assert snap == {"count": 0, "total": 0.0, "min": None, "max": None,
                        "mean": None}

    def test_empty_mean_is_nan(self):
        assert math.isnan(Histogram("x").mean)


class TestRegistry:
    def test_handles_are_memoised(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_snapshot_is_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b.count").add(2)
        reg.gauge("a.gauge").set(1.5)
        reg.histogram("c.hist").observe(3)
        snap = reg.snapshot()
        assert list(snap) == ["a.gauge", "b.count", "c.hist"]
        assert snap["b.count"] == 2
        assert snap["a.gauge"] == 1.5
        assert snap["c.hist"]["count"] == 1

    def test_reset_zeroes_in_place(self):
        """Reset must keep existing handles valid — modules memoise them."""
        reg = MetricsRegistry()
        handle = reg.counter("a")
        handle.add(5)
        reg.reset()
        assert handle.value == 0
        handle.add(1)
        assert reg.get("a") == 1

    def test_get_default_for_unregistered(self):
        reg = MetricsRegistry()
        assert reg.get("nope") == 0
        assert reg.get("nope", default=None) is None


def test_module_level_helpers_hit_the_global_registry():
    REGISTRY.counter("test.helper").add(7)
    assert metrics_snapshot()["test.helper"] == 7
    reset_metrics()
    assert metrics_snapshot()["test.helper"] == 0
