"""CLI observability: --trace receipts, bit identity, `repro trace` report."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graphs.generators import erdos_renyi
from repro.graphs.io import write_edge_list
from repro.obs.manifest import SCHEMA_ID, load_manifest


@pytest.fixture()
def edges(tmp_path):
    graph = erdos_renyi(60, 0.15, seed=1)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path


def _obfuscate_args(edges, output):
    return [
        "obfuscate",
        "--input", str(edges),
        "--output", str(output),
        "--k", "3",
        "--eps", "0.2",
        "--attempts", "2",
        "--delta", "0.05",
        "--seed", "7",
    ]


def test_traced_run_is_bit_identical(tmp_path, edges, capsys):
    plain = tmp_path / "plain.txt"
    traced = tmp_path / "traced.txt"
    run_dir = tmp_path / "run"
    assert main(_obfuscate_args(edges, plain)) == 0
    assert main(_obfuscate_args(edges, traced) + ["--trace", str(run_dir)]) == 0
    assert plain.read_bytes() == traced.read_bytes()
    assert "trace written to" in capsys.readouterr().err


def test_trace_dir_receipts(tmp_path, edges):
    run_dir = tmp_path / "run"
    out = tmp_path / "out.txt"
    assert main(_obfuscate_args(edges, out) + ["--trace", str(run_dir)]) == 0

    records = [
        json.loads(line)
        for line in (run_dir / "trace.jsonl").read_text().splitlines()
    ]
    names = {rec["name"] for rec in records}
    assert {"read_input", "obfuscate", "probe", "write_output"} <= names

    manifest = load_manifest(run_dir / "manifest.json")  # raises if invalid
    assert manifest["schema"] == SCHEMA_ID
    assert manifest["command"] == "repro obfuscate"
    assert manifest["seed"] == 7
    assert manifest["config"]["k"] == 3.0
    # observability plumbing must not leak into the recorded config
    assert "trace_dir" not in manifest["config"]
    assert manifest["results"] == {"exit_code": 0}
    assert manifest["metrics"]["search.runs"] >= 1
    assert manifest["metrics"]["generate.pairs_drawn"] > 0


def test_trace_subcommand_reports(tmp_path, edges, capsys):
    run_dir = tmp_path / "run"
    out = tmp_path / "out.txt"
    assert main(_obfuscate_args(edges, out) + ["--trace", str(run_dir)]) == 0
    capsys.readouterr()

    assert main(["trace", str(run_dir)]) == 0
    report = capsys.readouterr().out
    assert "per-phase (top-level spans):" in report
    assert "kernel mix:" in report
    assert "repro obfuscate" in report

    # a bare trace.jsonl (no manifest) still renders the span tables
    assert main(["trace", str(run_dir / "trace.jsonl")]) == 0
    assert "per-phase" in capsys.readouterr().out


def test_trace_subcommand_missing_path(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "nope")]) == 2
    assert "trace:" in capsys.readouterr().err


def test_untraced_run_leaves_no_receipts(tmp_path, edges):
    out = tmp_path / "out.txt"
    assert main(_obfuscate_args(edges, out)) == 0
    assert not list(tmp_path.glob("**/trace.jsonl"))
    assert not list(tmp_path.glob("**/manifest.json"))


def test_verbose_flag_logs_to_stderr(tmp_path, edges, capsys):
    out = tmp_path / "out.txt"
    assert main(_obfuscate_args(edges, out) + ["-v"]) == 0
    capsys.readouterr()  # logging handlers write to the real stderr; just
    # assert the flag parses and the run still succeeds (exit code above)
