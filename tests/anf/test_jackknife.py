"""Tests for jackknife standard errors."""

import math

import numpy as np
import pytest

from repro.anf.jackknife import jackknife, jackknife_mean


class TestJackknife:
    def test_mean_reduces_to_sem(self):
        """Jackknife SE of the mean equals the classic s/√n."""
        values = [3.0, 5.0, 7.0, 9.0, 11.0]
        est, se = jackknife_mean(values)
        assert est == pytest.approx(np.mean(values))
        assert se == pytest.approx(np.std(values, ddof=1) / math.sqrt(len(values)))

    def test_constant_samples_zero_se(self):
        est, se = jackknife_mean([4.0] * 10)
        assert est == 4.0
        assert se == pytest.approx(0.0)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            jackknife([1.0], np.mean)

    def test_generic_statistic(self):
        values = [1.0, 2.0, 3.0, 100.0]
        est, se = jackknife(values, lambda xs: float(np.median(xs)))
        assert est == pytest.approx(2.5)
        assert se > 0

    def test_scale_equivariance(self):
        values = [1.0, 2.0, 4.0, 8.0]
        _, se1 = jackknife_mean(values)
        _, se2 = jackknife_mean([10 * v for v in values])
        assert se2 == pytest.approx(10 * se1)

    def test_accepts_arbitrary_sample_objects(self):
        samples = [np.array([1.0, 2.0]), np.array([3.0, 4.0]), np.array([5.0, 6.0])]
        est, se = jackknife(samples, lambda xs: float(np.mean([x.sum() for x in xs])))
        assert est == pytest.approx(7.0)
        assert se > 0
