"""Tests for the HyperLogLog substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anf.hyperloglog import (
    HyperLogLog,
    estimate_many,
    init_registers,
    splitmix64,
)


class TestSplitmix:
    def test_deterministic(self):
        x = np.arange(10, dtype=np.uint64)
        assert np.array_equal(splitmix64(x), splitmix64(x))

    def test_distinct_inputs_distinct_outputs(self):
        out = splitmix64(np.arange(10000, dtype=np.uint64))
        assert len(np.unique(out)) == 10000

    def test_bit_mixing(self):
        """Consecutive ids land in (approximately) uniform buckets."""
        out = splitmix64(np.arange(64000, dtype=np.uint64))
        buckets = (out & np.uint64(63)).astype(int)
        counts = np.bincount(buckets, minlength=64)
        assert counts.min() > 700  # uniform ≈ 1000 per bucket


class TestHyperLogLogCounter:
    def test_empty_estimate_zero(self):
        assert HyperLogLog(b=8).estimate() == pytest.approx(0.0, abs=1.0)

    def test_duplicates_ignored(self):
        hll = HyperLogLog(b=8)
        for _ in range(100):
            hll.add("same-item")
        assert hll.estimate() == pytest.approx(1.0, abs=0.5)

    @pytest.mark.parametrize("true_count", [100, 1000, 10000])
    def test_estimate_accuracy(self, true_count):
        """Relative error should be within ~4σ of the 1.04/√m guarantee."""
        hll = HyperLogLog(b=10)
        for i in range(true_count):
            hll.add(i)
        rel_err = abs(hll.estimate() - true_count) / true_count
        assert rel_err < 4 * 1.04 / np.sqrt(1024)

    def test_merge_is_union(self):
        a, b = HyperLogLog(b=10), HyperLogLog(b=10)
        for i in range(500):
            a.add(i)
        for i in range(250, 750):
            b.add(i)
        merged = a.merge(b)
        assert merged.estimate() == pytest.approx(750, rel=0.15)

    def test_merge_commutative(self):
        a, b = HyperLogLog(b=8), HyperLogLog(b=8)
        for i in range(100):
            (a if i % 2 else b).add(i)
        assert np.array_equal(a.merge(b).registers, b.merge(a).registers)

    def test_merge_idempotent(self):
        a = HyperLogLog(b=8)
        for i in range(100):
            a.add(i)
        assert np.array_equal(a.merge(a).registers, a.registers)

    def test_merge_mismatched_rejected(self):
        with pytest.raises(ValueError):
            HyperLogLog(b=8).merge(HyperLogLog(b=10))
        with pytest.raises(ValueError):
            HyperLogLog(b=8, seed=1).merge(HyperLogLog(b=8, seed=2))

    def test_invalid_b_rejected(self):
        with pytest.raises(ValueError):
            HyperLogLog(b=2)

    @settings(max_examples=20)
    @given(st.sets(st.integers(min_value=0, max_value=10**9), max_size=200))
    def test_monotone_in_items_property(self, items):
        """Adding items never decreases any register."""
        hll = HyperLogLog(b=6)
        prev = hll.registers
        for item in items:
            hll.add(item)
            now = hll.registers
            assert (now >= prev).all()
            prev = now


class TestVectorised:
    def test_init_registers_shape(self):
        regs = init_registers(50, b=6)
        assert regs.shape == (50, 64)
        # exactly one register set per singleton
        assert ((regs > 0).sum(axis=1) == 1).all()

    def test_singleton_estimates_near_one(self):
        regs = init_registers(100, b=8)
        est = estimate_many(regs)
        assert np.allclose(est, 1.0, atol=0.6)

    def test_seed_changes_registers(self):
        a = init_registers(20, b=6, seed=0)
        b2 = init_registers(20, b=6, seed=1)
        assert not np.array_equal(a, b2)

    def test_union_estimate_scaling(self):
        """Max-merging k singleton rows estimates ≈ k."""
        regs = init_registers(2000, b=10, seed=3)
        merged = regs.max(axis=0)
        est = estimate_many(merged[None, :])[0]
        assert est == pytest.approx(2000, rel=0.15)

    def test_invalid_b(self):
        with pytest.raises(ValueError):
            init_registers(10, b=1)
