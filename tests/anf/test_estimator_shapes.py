"""Shape/branch coverage for the vectorised HLL estimator and CDF helpers."""

import numpy as np
import pytest

from repro.anf.hyperloglog import estimate_many, init_registers
from repro.core.perturbation import truncated_normal_cdf


class TestEstimateManyShapes:
    def test_one_dimensional_input(self):
        regs = init_registers(5, b=6)[0]  # a single row
        out = estimate_many(regs)
        assert out.shape == (1,)
        assert out[0] == pytest.approx(1.0, abs=0.6)

    def test_two_dimensional_input(self):
        regs = init_registers(7, b=6)
        assert estimate_many(regs).shape == (7,)

    def test_all_zero_registers(self):
        regs = np.zeros((3, 64), dtype=np.uint8)
        out = estimate_many(regs)
        # linear counting with all zeros estimates 0
        assert np.allclose(out, 0.0, atol=1e-9)

    def test_saturated_registers_large_estimate(self):
        regs = np.full((1, 64), 30, dtype=np.uint8)
        out = estimate_many(regs)
        assert out[0] > 1e9


class TestCdfShapes:
    def test_scalar_input(self):
        out = truncated_normal_cdf(0.5, 0.4)
        assert np.shape(out) == ()
        assert 0.0 < float(out) < 1.0

    def test_matrix_input(self):
        xs = np.linspace(0, 1, 6).reshape(2, 3)
        out = truncated_normal_cdf(xs, 0.4)
        assert out.shape == (2, 3)
        assert (np.diff(out.ravel()) >= 0).all()

    def test_clamping_outside_unit_interval(self):
        out = truncated_normal_cdf(np.array([-1.0, 2.0]), 0.4)
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
