"""Degree-grouped frontier HyperANF vs the edge-wise ground truth (PR 4).

The multi-world kernel of :mod:`repro.worlds.anf_batch` backported to
the single-graph :func:`repro.anf.hyperanf` must reproduce the original
``np.maximum.at`` sweep exactly: registers are merged with the same
(uint8-exact) max, the change frontier can only shrink the work, never
alter it, and cached per-row estimates are pure functions of row
content — so every ``N(t)`` value and the convergence step match
bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.anf.hyperanf import hyperanf, hyperanf_edgewise
from repro.graphs.datasets import dblp_like
from repro.graphs.generators import erdos_renyi, powerlaw_cluster
from repro.graphs.graph import Graph


def _assert_identical(graph, *, b=6, seed=0, max_steps=None):
    fast = hyperanf(graph, b=b, seed=seed, max_steps=max_steps)
    slow = hyperanf_edgewise(graph, b=b, seed=seed, max_steps=max_steps)
    assert fast.converged_at == slow.converged_at
    np.testing.assert_array_equal(fast.values, slow.values)


class TestBackportEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_erdos_renyi(self, seed):
        _assert_identical(erdos_renyi(150, 0.04, seed=seed), b=7, seed=seed)

    def test_powerlaw(self):
        _assert_identical(powerlaw_cluster(200, 3, 0.4, seed=2), b=6)

    def test_dblp_surrogate(self):
        _assert_identical(dblp_like(scale=0.1, seed=0), b=6)

    def test_register_width_variants(self):
        g = erdos_renyi(80, 0.06, seed=3)
        for b in (4, 8, 10):
            _assert_identical(g, b=b)

    def test_path_graph_long_diameter(self):
        """A path stresses the frontier logic: exactly two rows change
        per late step."""
        n = 40
        g = Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])
        _assert_identical(g, b=7)

    def test_disconnected_and_isolated(self, two_components):
        _assert_identical(two_components)

    def test_empty_graph(self):
        _assert_identical(Graph(0))
        _assert_identical(Graph(7))  # vertices, no edges

    def test_max_steps_cap(self):
        n = 30
        g = Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])
        _assert_identical(g, b=6, max_steps=3)

    def test_converged_at_is_diameter_lower_bound(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        nf = hyperanf(g, b=10, seed=0)
        assert nf.diameter_lower_bound == nf.converged_at
        # path of length 4: registers stabilise after at most 4 steps
        assert nf.converged_at <= 4
