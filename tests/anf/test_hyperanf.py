"""Tests for HyperANF against exact BFS ground truth."""

import numpy as np
import pytest

from repro.anf.distance_stats import (
    anf_distance_histogram,
    neighbourhood_function_to_histogram,
)
from repro.anf.hyperanf import hyperanf
from repro.graphs.generators import erdos_renyi, powerlaw_cluster
from repro.graphs.graph import Graph
from repro.graphs.traversal import all_pairs_distances
from repro.stats.distance import average_distance, diameter, distance_histogram


def exact_neighbourhood_function(g: Graph) -> np.ndarray:
    mat = all_pairs_distances(g)
    finite = mat[mat >= 0]
    max_d = int(finite.max()) if finite.size else 0
    return np.array([(mat >= 0).sum() if t >= max_d else ((mat >= 0) & (mat <= t)).sum()
                     for t in range(max_d + 1)], dtype=float)


class TestNeighbourhoodFunction:
    def test_monotone_nondecreasing(self):
        g = powerlaw_cluster(300, 2, 0.3, seed=0)
        nf = hyperanf(g, b=7, seed=0)
        assert (np.diff(nf.values) >= -1e-9).all()

    def test_t0_estimates_n(self):
        g = erdos_renyi(200, 0.03, seed=1)
        nf = hyperanf(g, b=8, seed=0)
        assert nf.values[0] == pytest.approx(200, rel=0.1)

    def test_matches_exact_on_path(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        nf = hyperanf(g, b=10, seed=0)
        exact = exact_neighbourhood_function(g)
        assert len(nf.values) == len(exact)
        assert np.allclose(nf.values, exact, rtol=0.2)

    def test_converges_at_diameter(self):
        """Register convergence happens exactly at the diameter."""
        g = erdos_renyi(80, 0.08, seed=3)
        hist = distance_histogram(g)
        nf = hyperanf(g, b=9, seed=0)
        # ANF's lower bound can undershoot slightly but never exceeds
        assert nf.converged_at <= diameter(hist) + 1
        assert nf.converged_at >= diameter(hist) - 1

    def test_estimates_total_reachability(self):
        g = powerlaw_cluster(400, 3, 0.4, seed=2)
        nf = hyperanf(g, b=8, seed=1)
        exact = exact_neighbourhood_function(g)
        assert nf.values[-1] == pytest.approx(exact[-1], rel=0.12)

    def test_empty_graph(self):
        nf = hyperanf(Graph(0))
        assert nf.converged_at == 0

    def test_edgeless_graph_converges_immediately(self):
        nf = hyperanf(Graph(10), b=6)
        assert nf.converged_at == 0
        assert len(nf.values) == 1


class TestAnfHistogram:
    def test_counts_close_to_exact(self):
        g = powerlaw_cluster(500, 3, 0.4, seed=4)
        exact = distance_histogram(g)
        est = anf_distance_histogram(g, b=8, seed=0)
        assert not est.exact
        # average distance derived from both histograms agrees within 10%
        assert average_distance(est) == pytest.approx(
            average_distance(exact), rel=0.1
        )

    def test_total_pairs_consistent(self):
        g = erdos_renyi(150, 0.04, seed=5)
        est = anf_distance_histogram(g, b=8, seed=0)
        assert est.total_pairs == pytest.approx(g.num_pairs)

    def test_nonnegative_counts(self):
        g = erdos_renyi(200, 0.05, seed=6)
        est = anf_distance_histogram(g, b=6, seed=2)
        assert (est.counts >= 0).all()
        assert est.disconnected >= 0

    def test_conversion_clamps_negative_increments(self):
        from repro.anf.hyperanf import NeighbourhoodFunction

        nf = NeighbourhoodFunction(
            values=np.array([10.0, 30.0, 28.0]), converged_at=2
        )
        hist = neighbourhood_function_to_histogram(nf, 10)
        assert hist.counts[2] == 0.0
        assert hist.counts[1] == 10.0


class TestRunIndependence:
    def test_different_seeds_different_estimates(self):
        g = powerlaw_cluster(300, 2, 0.3, seed=7)
        a = hyperanf(g, b=6, seed=0).values[-1]
        b = hyperanf(g, b=6, seed=1).values[-1]
        assert a != b

    def test_jackknife_over_runs(self):
        """The paper's protocol: repeat HyperANF, jackknife the statistic."""
        from repro.anf.jackknife import jackknife

        g = powerlaw_cluster(300, 2, 0.3, seed=8)
        runs = [
            average_distance(anf_distance_histogram(g, b=6, seed=s))
            for s in range(8)
        ]
        estimate, se = jackknife(runs, lambda xs: float(np.mean(xs)))
        exact = average_distance(distance_histogram(g))
        assert estimate == pytest.approx(exact, rel=0.15)
        assert se < 0.1 * estimate
