"""End-to-end integration: publish → verify → analyse → compare.

These tests exercise the full public API the way the examples do, on
small surrogates, asserting the paper's qualitative claims rather than
implementation details.
"""

import numpy as np
import pytest

from repro import (
    UncertainGraph,
    is_k_eps_obfuscation,
    obfuscate,
    read_uncertain_graph,
    write_uncertain_graph,
)
from repro.baselines import random_sparsification
from repro.core import compute_degree_posterior
from repro.experiments.config import quick_config
from repro.graphs import dblp_like
from repro.stats import (
    WorldStatisticsEstimator,
    estimate_statistic,
    hoeffding_sample_size,
    num_edges,
    paper_statistics,
)


@pytest.fixture(scope="module")
def graph():
    return dblp_like(scale=0.15, seed=0)


@pytest.fixture(scope="module")
def published(graph):
    result = obfuscate(graph, k=10, eps=0.1, seed=0, attempts=2, delta=5e-3)
    assert result.success
    return result


class TestPublishPipeline:
    def test_verifies(self, graph, published):
        assert is_k_eps_obfuscation(published.uncertain, graph, 10, 0.1)

    def test_round_trips_through_disk(self, tmp_path, graph, published):
        path = tmp_path / "published.txt"
        write_uncertain_graph(published.uncertain, path)
        loaded = read_uncertain_graph(path)
        assert is_k_eps_obfuscation(loaded, graph, 10, 0.1)

    def test_expected_edges_close_to_original(self, graph, published):
        exact = published.uncertain.expected_num_edges()
        assert exact == pytest.approx(graph.num_edges, rel=0.1)

    def test_candidate_set_size_c_times_edges(self, graph, published):
        assert published.uncertain.num_candidate_pairs == round(
            published.params.c * graph.num_edges
        )


class TestAnalysisPipeline:
    def test_hoeffding_guided_sampling(self, published):
        """Consumer workflow: pick r from Corollary 1, then estimate."""
        ug = published.uncertain
        n = ug.num_vertices
        r = hoeffding_sample_size(0.05, 0.1, 0.0, 1.0)
        stats = paper_statistics(distance_backend="anf")
        estimator = WorldStatisticsEstimator(ug, {"S_CC": stats["S_CC"]})
        out = estimator.run(worlds=min(r, 60), seed=1)
        assert 0.0 <= out["S_CC"].mean <= 1.0

    def test_utility_preserved_at_small_k(self, graph, published):
        summary = estimate_statistic(
            published.uncertain, num_edges, worlds=40, seed=2
        )
        assert summary.relative_error(graph.num_edges) < 0.1

    def test_anonymity_levels_raised(self, graph, published):
        post = compute_degree_posterior(
            published.uncertain, width=int(graph.degrees().max()) + 2
        )
        levels = post.obfuscation_levels(graph.degrees())
        from repro.baselines import original_anonymity_levels

        before = original_anonymity_levels(graph)
        # median anonymity must not decrease
        assert np.median(levels) >= np.median(before) * 0.9


class TestComparativeClaim:
    def test_beats_sparsification_at_matched_utility_cost(self, graph, published):
        """Qualitative Table-6 check on a small instance: sparsification
        aggressive enough to matter (p=0.64, the paper's value) loses far
        more edges than the uncertain release loses in expectation."""
        sparse = random_sparsification(graph, 0.64, seed=0)
        sparse_err = abs(sparse.num_edges - graph.num_edges) / graph.num_edges
        ours_err = (
            abs(published.uncertain.expected_num_edges() - graph.num_edges)
            / graph.num_edges
        )
        assert ours_err < sparse_err


class TestQuickConfigPipeline:
    def test_whole_quick_run(self):
        from repro.experiments import (
            run_obfuscation_sweep,
            table2_rows,
            table4_rows,
        )

        cfg = quick_config(k_values=(5,), worlds=6)
        sweep = run_obfuscation_sweep(cfg)
        assert table2_rows(sweep)[0]["success"]
        rows = table4_rows(sweep, cfg)
        assert rows[1]["rel_err"] < 0.2
