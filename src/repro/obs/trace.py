"""Span tracer: nested wall/CPU/peak-RSS timing with JSONL emission.

Usage::

    from repro.obs import enable_tracing, disable_tracing, span

    tracer = enable_tracing("out/trace.jsonl")
    with span("sweep", dataset="dblp"):
        with span("probe", sigma=1.5, phase="doubling"):
            ...
    disable_tracing()
    tree = tracer.span_tree()       # nested dicts for the run manifest

Each finished span records wall-clock seconds (``perf_counter``),
process CPU seconds (``process_time``), the peak-RSS delta across its
body (a monotone high-water mark, so the delta bounds the additional
peak the body demanded), its nesting depth and parent, and any keyword
attributes.  Spans are emitted as one JSON line each, in completion
order, to the trace file (when a path was given) and kept in memory for
:meth:`Tracer.span_tree`.

**Disabled cost is the design constraint**: when no tracer is active,
:func:`span` returns a shared no-op singleton — one global read and one
function call, no allocation beyond the kwargs dict, no clock reads.
Hot paths therefore wrap *phases* (a probe, a chunk, a sweep cell), not
inner loops.  Instrumentation never touches an RNG stream, so traced
and untraced runs are bit-identical in their outputs (pinned by
``tests/obs/test_cli_trace.py`` and the CI ``trace-smoke`` job).
"""

from __future__ import annotations

import functools
import json
import time

from repro.obs.memory import peak_rss_mb

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "disable_tracing",
    "drop_inherited_tracer",
    "enable_tracing",
    "span",
    "traced",
    "tracing_enabled",
]

#: The active tracer, or None.  A module-level slot (not a contextvar)
#: keeps the disabled check to a single global read.
_ACTIVE: "Tracer | None" = None


class _NullSpan:
    """Shared no-op span returned while tracing is disabled.

    Carries zeroed timing attributes so code that reads ``sp.wall_s``
    after the block works identically either way.
    """

    __slots__ = ()
    wall_s = 0.0
    cpu_s = 0.0
    rss_delta_mb = 0.0
    depth = 0
    name = ""
    attrs: dict = {}

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:
        """No-op attribute setter (mirrors :meth:`Span.set`)."""


_NULL_SPAN = _NullSpan()


class Span:
    """One live (then finished) timing region.  Created via :func:`span`."""

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "wall_s",
        "cpu_s",
        "rss_delta_mb",
        "_tracer",
        "_t0",
        "_cpu0",
        "_rss0",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self._tracer = tracer
        self.span_id = -1
        self.parent_id = -1
        self.depth = 0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.rss_delta_mb = 0.0

    def set(self, **attrs) -> None:
        """Attach result attributes discovered inside the block."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._rss0 = peak_rss_mb()
        self._cpu0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Clocks read innermost-first on entry, so the exit order
        # mirrors them and the span never charges itself for the
        # tracer's own bookkeeping.
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.process_time() - self._cpu0
        self.rss_delta_mb = peak_rss_mb() - self._rss0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def to_record(self) -> dict:
        """The span as a flat JSONL-ready dict."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "rss_delta_mb": self.rss_delta_mb,
            "attrs": self.attrs,
        }


class Tracer:
    """Span factory + sink.  Install via :func:`enable_tracing`."""

    def __init__(self, path=None):
        self.path = str(path) if path is not None else None
        self.finished: list[dict] = []
        self._stack: list[Span] = []
        self._next_id = 0
        self._file = open(self.path, "w") if self.path is not None else None

    # ------------------------------------------------------------------
    def span(self, name: str, attrs: dict) -> Span:
        return Span(self, name, attrs)

    def _push(self, sp: Span) -> None:
        sp.span_id = self._next_id
        self._next_id += 1
        sp.parent_id = self._stack[-1].span_id if self._stack else -1
        sp.depth = len(self._stack)
        self._stack.append(sp)

    def _pop(self, sp: Span) -> None:
        # Tolerate exceptions unwinding through several spans at once.
        while self._stack and self._stack[-1] is not sp:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        record = sp.to_record()
        self.finished.append(record)
        if self._file is not None:
            self._file.write(json.dumps(record) + "\n")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # ------------------------------------------------------------------
    def absorb(self, records: list[dict]) -> None:
        """Graft finished spans from a worker process into this trace.

        ``records`` is the worker tracer's ``finished`` list — flat
        span dicts with worker-local ids.  Ids are remapped into this
        tracer's id space, worker roots (``parent == -1``) are attached
        under the currently open span (the executor's ``exec.map``
        span, normally), and depths are shifted accordingly, so the
        grafted spans land in the span tree and the JSONL stream
        exactly where the work logically happened.  This is the *only*
        path by which worker spans reach disk: workers trace in memory
        and ship records over the result channel, never holding the
        trace file (the fork-inherited double-write this replaces).
        """
        if not records:
            return
        base_parent = self._stack[-1].span_id if self._stack else -1
        base_depth = len(self._stack)
        id_map: dict[int, int] = {}
        for rec in records:
            id_map[rec["id"]] = self._next_id
            self._next_id += 1
        for rec in records:
            grafted = dict(rec)
            grafted["id"] = id_map[rec["id"]]
            grafted["parent"] = id_map.get(rec["parent"], base_parent)
            grafted["depth"] = rec["depth"] + base_depth
            self.finished.append(grafted)
            if self._file is not None:
                self._file.write(json.dumps(grafted) + "\n")

    # ------------------------------------------------------------------
    def span_tree(self) -> list[dict]:
        """Finished spans as a nested forest (manifest ``spans`` field).

        Children appear in completion order under their parent; roots
        (``parent == -1``) form the top level.  Spans still open are not
        included.
        """
        nodes = {
            rec["id"]: {
                "name": rec["name"],
                "wall_s": rec["wall_s"],
                "cpu_s": rec["cpu_s"],
                "rss_delta_mb": rec["rss_delta_mb"],
                "attrs": rec["attrs"],
                "children": [],
            }
            for rec in self.finished
        }
        roots: list[dict] = []
        for rec in self.finished:
            parent = nodes.get(rec["parent"])
            (parent["children"] if parent else roots).append(nodes[rec["id"]])
        return roots


# ----------------------------------------------------------------------
# module-level API
# ----------------------------------------------------------------------
def span(name: str, **attrs):
    """A span context manager, or the shared no-op when tracing is off."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, attrs)


def traced(name: str | None = None):
    """Decorator form of :func:`span` (span name defaults to the function's)."""

    def decorate(func):
        label = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if _ACTIVE is None:
                return func(*args, **kwargs)
            with _ACTIVE.span(label, {}):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def enable_tracing(path=None) -> Tracer:
    """Install (and return) the process tracer.

    ``path`` names the JSONL trace file (optional: in-memory only when
    omitted).  Idempotent: if a tracer is already active it is returned
    unchanged — nested drivers share the outermost trace.
    """
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = Tracer(path)
    return _ACTIVE


def disable_tracing() -> Tracer | None:
    """Deactivate and close the tracer; returns it for post-hoc reading."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    if tracer is not None:
        tracer.close()
    return tracer


def drop_inherited_tracer() -> None:
    """Disarm a tracer inherited across ``fork`` (worker initializer).

    A forked worker inherits the parent's active tracer *including its
    open JSONL file object and its buffered, not-yet-flushed bytes*.
    If the child were to close (or even just keep) that handle, the
    inherited buffer would flush from the child too and every span
    could be written twice — once per process.  This drops the child's
    reference without flushing or closing anything: the parent's copy
    of the file descriptor is untouched, and the child starts with no
    tracer (the executor installs a fresh in-memory one per task when
    the parent is tracing).
    """
    global _ACTIVE
    tracer = _ACTIVE
    _ACTIVE = None
    if tracer is not None and tracer._file is not None:
        # The child's fd table is its own after fork: pointing the
        # inherited descriptor at /dev/null means any flush the child
        # ever performs (including the implicit one at interpreter
        # exit) lands nowhere, while the parent's descriptor — a
        # separate entry in a separate process — keeps writing the
        # real trace file.
        import os

        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, tracer._file.fileno())
            os.close(devnull)
        except OSError:  # pragma: no cover - fd already gone
            pass
        tracer._file = None


def tracing_enabled() -> bool:
    return _ACTIVE is not None


def current_tracer() -> Tracer | None:
    return _ACTIVE
