"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the single accounting surface for the quantities the
engines used to lose or hand-plumb through return values: posterior
rows by kernel path (staircase vs tree/FFT vs fold vs CLT),
``TREE_CROSSOVER_WIDTH`` dispatch decisions, candidate-pair redraw
churn, worlds/releases chunk sizes and union-incidence reuse, HyperANF
iterations-to-fixpoint, and the ``rows_folded``/``rows_recomputed``
fold-coverage totals.  Since the serving layer (:mod:`repro.serve`)
landed it is also the per-op latency surface: bucketed histograms
(see below) record request latencies and expose p50/p99.

Design constraints, in priority order:

* **Never perturbs results** — instruments record quantities the hot
  paths have already computed (array sizes, dispatch counts); they
  touch no RNG stream and reorder no floating-point operation, so a
  traced run is bit-identical to an untraced one.
* **Thread-safe** — the serving layer mutates instruments from
  concurrent request handlers, so every mutation (``add``, ``set``,
  ``observe``, in-place ``reset``) holds a per-instrument lock and the
  registry guards its name table with its own lock.  The fast path is
  an *uncontended* ``lock.acquire`` — a single C-level atomic in
  CPython, far below the cost of the array work being counted — so the
  single-threaded engines pay no measurable premium (the CI
  trace-overhead gate stays ≤5%).
* **Always on, and cheap enough for that to be fine** — every
  instrument is incremented once per *batch-level event* (a posterior
  matrix call, an attempt, a chunk, a coalesced serve window), never
  per row or per element.
* **Zero dependencies** — stdlib only.

Handles are memoised by name: modules grab them once at import time
(``_ROWS_TREE = REGISTRY.counter("posterior.rows.tree")``) so the hot
path pays no dict lookup.  :meth:`MetricsRegistry.reset` zeroes values
in place, keeping every existing handle valid — tests bracket a seeded
run with ``reset()`` + ``snapshot()`` to assert counter coherence.

Percentile histograms
---------------------
``Histogram`` is bucket-free by default (count/total/min/max — a few
scalar ops per observe).  Passing ``buckets`` — an ascending sequence
of upper bounds, e.g. from :func:`exponential_buckets` — turns on
bounded-bucket counting: each observation lands in the first bucket
whose bound is ``>= value`` (an implicit +inf bucket catches the
overflow), and :meth:`Histogram.percentile` answers p50/p99-style
queries with resolution bounded by the bucket spacing.  Memory is
``O(len(buckets))`` regardless of observation count, which is what
lets the serving layer keep per-op latency percentiles always-on.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "exponential_buckets",
    "metrics_snapshot",
    "reset_metrics",
]


def exponential_buckets(
    start: float, factor: float, count: int
) -> tuple[float, ...]:
    """``count`` geometric bucket upper bounds: ``start · factor^i``.

    The conventional shape for latency histograms — e.g.
    ``exponential_buckets(1e-5, 1.5, 40)`` spans 10 µs … ~0.3 s with
    ~50% resolution per bucket.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError(
            f"need start > 0, factor > 1, count >= 1; got "
            f"{start}/{factor}/{count}"
        )
    return tuple(start * factor**i for i in range(count))


class Counter:
    """A monotonically increasing integer total (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def add(self, amount: int = 1) -> None:
        with self._lock:
            self.value += int(amount)

    def _reset(self) -> None:
        with self._lock:
            self.value = 0

    def _snapshot(self):
        return self.value

    def _dump(self) -> dict:
        return {"kind": "counter", "value": self.value}

    def _merge(self, dump: dict) -> None:
        self.add(dump["value"])


class Gauge:
    """A last-write-wins scalar (e.g. a configured chunk size)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def _reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def _snapshot(self):
        return self.value

    def _dump(self) -> dict:
        return {"kind": "gauge", "value": self.value}

    def _merge(self, dump: dict) -> None:
        # Last-write-wins semantics: a worker's gauge value stands in
        # for the set() call the serial path would have made.
        self.set(dump["value"])


class Histogram:
    """Streaming count/total/min/max summary of observed values.

    Bucket-free by default: the original consumers (manifests, ``repro
    trace``) want "how many, how big on average, how extreme", and a
    four-field summary keeps ``observe`` to a few scalar ops.  With
    ``buckets`` (ascending upper bounds) it additionally maintains
    bounded bucket counts and answers :meth:`percentile` queries — the
    serving layer's per-op latency surface.  All mutation is
    lock-protected (concurrent request handlers must not drop
    increments).
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "min",
        "max",
        "bucket_bounds",
        "bucket_counts",
        "_lock",
    )

    def __init__(self, name: str, buckets=None):
        self.name = name
        self._lock = threading.Lock()
        if buckets is not None:
            bounds = tuple(float(b) for b in buckets)
            if not bounds or any(
                b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
            ):
                raise ValueError(
                    f"buckets must be non-empty strictly ascending, got {buckets!r}"
                )
            self.bucket_bounds = bounds
        else:
            self.bucket_bounds = None
        self.bucket_counts = None
        self._reset()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if self.bucket_counts is not None:
                self.bucket_counts[bisect_left(self.bucket_bounds, value)] += 1

    def observe_many(self, values) -> None:
        """Bulk observe (e.g. a per-world ``converged_at`` array)."""
        n = len(values)
        if n == 0:
            return
        total = float(sum(values))
        lo, hi = min(values), max(values)
        with self._lock:
            self.count += int(n)
            self.total += total
            if lo < self.min:
                self.min = float(lo)
            if hi > self.max:
                self.max = float(hi)
            if self.bucket_counts is not None:
                for value in values:
                    self.bucket_counts[
                        bisect_left(self.bucket_bounds, float(value))
                    ] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile.

        ``q`` in [0, 1].  Resolution is the bucket spacing: the true
        quantile lies at or below the returned bound (and above the
        previous bound).  The overflow bucket reports the observed
        maximum, so the answer is always finite.  ``nan`` when empty or
        bucket-free.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            if self.bucket_counts is None or self.count == 0:
                return float("nan")
            rank = q * self.count
            seen = 0
            for i, c in enumerate(self.bucket_counts):
                seen += c
                if seen >= rank and seen > 0:
                    if i == len(self.bucket_bounds):
                        return self.max  # overflow bucket
                    return min(self.bucket_bounds[i], self.max)
            return self.max

    def _reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = math.inf
            self.max = -math.inf
            if self.bucket_bounds is not None:
                self.bucket_counts = [0] * (len(self.bucket_bounds) + 1)

    def _snapshot(self):
        if not self.count:
            snap = {"count": 0, "total": 0.0, "min": None, "max": None, "mean": None}
        else:
            snap = {
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.mean,
            }
        if self.bucket_counts is not None and self.count:
            snap["p50"] = self.percentile(0.50)
            snap["p99"] = self.percentile(0.99)
        return snap

    def _dump(self) -> dict:
        """Full mergeable state — unlike :meth:`_snapshot`, includes the
        raw bucket counts so a parent registry can fold a worker's
        histogram in without losing percentile resolution."""
        with self._lock:
            return {
                "kind": "histogram",
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "bounds": self.bucket_bounds,
                "counts": (
                    list(self.bucket_counts)
                    if self.bucket_counts is not None
                    else None
                ),
            }

    def _merge(self, dump: dict) -> None:
        if not dump["count"]:
            return
        with self._lock:
            self.count += dump["count"]
            self.total += dump["total"]
            if dump["min"] < self.min:
                self.min = dump["min"]
            if dump["max"] > self.max:
                self.max = dump["max"]
            if (
                self.bucket_counts is not None
                and dump["counts"] is not None
                and self.bucket_bounds == tuple(dump["bounds"])
            ):
                for i, c in enumerate(dump["counts"]):
                    self.bucket_counts[i] += c


class MetricsRegistry:
    """Name → instrument registry with in-place reset.

    ``counter``/``gauge``/``histogram`` memoise by name, so repeated
    calls return the same handle; asking for a name already registered
    as a different kind (or a histogram with different buckets) raises.
    The name table is guarded by a registry lock; instrument mutation
    holds the per-instrument lock (see module docstring).
    """

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, *args):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name, *args)
            elif type(instrument) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {cls.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, buckets=None) -> Histogram:
        instrument = self._get(
            name, Histogram, *(() if buckets is None else (buckets,))
        )
        if buckets is not None and instrument.bucket_bounds != tuple(
            float(b) for b in buckets
        ):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{instrument.bucket_bounds!r}"
            )
        return instrument

    def snapshot(self) -> dict:
        """Flat name → value dict (histograms become summary dicts).

        Sorted by name so manifests and diffs are stable.
        """
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: instrument._snapshot() for name, instrument in instruments}

    def reset(self) -> None:
        """Zero every instrument *in place* — existing handles stay valid."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument._reset()

    def get(self, name: str, default=0):
        """Snapshot one instrument's value (``default`` when unregistered)."""
        with self._lock:
            instrument = self._instruments.get(name)
        return instrument._snapshot() if instrument is not None else default

    def dump(self) -> dict:
        """Mergeable full state of every instrument (see :meth:`merge`).

        Unlike :meth:`snapshot` this preserves histogram bucket counts,
        so a worker's dump folded into the parent loses nothing.  The
        result is picklable plain data — the shape the
        :mod:`repro.exec` result channel ships.
        """
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: instrument._dump() for name, instrument in instruments}

    def merge(self, dump: dict) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Counters add, gauges take the dumped value (last-write-wins),
        histograms fold count/total/min/max and — when bucket layouts
        agree — bucket counts.  Instruments unknown here are created,
        so a worker that touched a metric the parent never did still
        surfaces it in the merged snapshot.
        """
        for name, data in dump.items():
            kind = data["kind"]
            if kind == "counter":
                self.counter(name)._merge(data)
            elif kind == "gauge":
                self.gauge(name)._merge(data)
            else:
                try:
                    instrument = self.histogram(name, buckets=data["bounds"])
                except ValueError:
                    # Bucket layouts disagree (possible across versions);
                    # _merge still folds the scalar summary safely.
                    instrument = self._get(name, Histogram)
                instrument._merge(data)


#: The process-wide registry every engine instruments against.
REGISTRY = MetricsRegistry()


def metrics_snapshot() -> dict:
    """Snapshot of the process-wide registry."""
    return REGISTRY.snapshot()


def reset_metrics() -> None:
    """Zero the process-wide registry (handles stay valid)."""
    REGISTRY.reset()
