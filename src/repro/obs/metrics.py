"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the single accounting surface for the quantities the
engines used to lose or hand-plumb through return values: posterior
rows by kernel path (staircase vs tree/FFT vs fold vs CLT),
``TREE_CROSSOVER_WIDTH`` dispatch decisions, candidate-pair redraw
churn, worlds/releases chunk sizes and union-incidence reuse, HyperANF
iterations-to-fixpoint, and the ``rows_folded``/``rows_recomputed``
fold-coverage totals.

Design constraints, in priority order:

* **Never perturbs results** — instruments record quantities the hot
  paths have already computed (array sizes, dispatch counts); they
  touch no RNG stream and reorder no floating-point operation, so a
  traced run is bit-identical to an untraced one.
* **Always on, and cheap enough for that to be fine** — every
  instrument is a plain attribute add on a memoised handle, incremented
  once per *batch-level event* (a posterior matrix call, an attempt, a
  chunk), never per row or per element.  The disabled-tracing perf
  gate (<2%) holds because the increments are a handful of integer adds
  against workloads of millions of float ops.
* **Zero dependencies** — stdlib only.

Handles are memoised by name: modules grab them once at import time
(``_ROWS_TREE = REGISTRY.counter("posterior.rows.tree")``) so the hot
path pays no dict lookup.  :meth:`MetricsRegistry.reset` zeroes values
in place, keeping every existing handle valid — tests bracket a seeded
run with ``reset()`` + ``snapshot()`` to assert counter coherence.
"""

from __future__ import annotations

import math

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "metrics_snapshot",
    "reset_metrics",
]


class Counter:
    """A monotonically increasing integer total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += int(amount)

    def _reset(self) -> None:
        self.value = 0

    def _snapshot(self):
        return self.value


class Gauge:
    """A last-write-wins scalar (e.g. a configured chunk size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def _reset(self) -> None:
        self.value = 0.0

    def _snapshot(self):
        return self.value


class Histogram:
    """Streaming count/total/min/max summary of observed values.

    Deliberately bucket-free: the consumers (manifests, ``repro
    trace``) want "how many, how big on average, how extreme", and a
    four-field summary keeps ``observe`` to a few scalar ops.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self._reset()

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values) -> None:
        """Bulk observe (e.g. a per-world ``converged_at`` array)."""
        n = len(values)
        if n == 0:
            return
        self.count += int(n)
        self.total += float(sum(values))
        lo, hi = min(values), max(values)
        if lo < self.min:
            self.min = float(lo)
        if hi > self.max:
            self.max = float(hi)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def _reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _snapshot(self):
        if not self.count:
            return {"count": 0, "total": 0.0, "min": None, "max": None, "mean": None}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Name → instrument registry with in-place reset.

    ``counter``/``gauge``/``histogram`` memoise by name, so repeated
    calls return the same handle; asking for a name already registered
    as a different kind raises.
    """

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = cls(name)
        elif type(instrument) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict:
        """Flat name → value dict (histograms become summary dicts).

        Sorted by name so manifests and diffs are stable.
        """
        return {
            name: self._instruments[name]._snapshot()
            for name in sorted(self._instruments)
        }

    def reset(self) -> None:
        """Zero every instrument *in place* — existing handles stay valid."""
        for instrument in self._instruments.values():
            instrument._reset()

    def get(self, name: str, default=0):
        """Snapshot one instrument's value (``default`` when unregistered)."""
        instrument = self._instruments.get(name)
        return instrument._snapshot() if instrument is not None else default


#: The process-wide registry every engine instruments against.
REGISTRY = MetricsRegistry()


def metrics_snapshot() -> dict:
    """Snapshot of the process-wide registry."""
    return REGISTRY.snapshot()


def reset_metrics() -> None:
    """Zero the process-wide registry (handles stay valid)."""
    REGISTRY.reset()
