"""repro.obs — zero-dependency observability: spans, metrics, manifests.

The measurement backbone behind every engine:

* :mod:`repro.obs.trace` — a context-manager/decorator span tracer
  (wall clock, CPU time, peak-RSS delta, nesting) with JSONL emission;
  near-zero overhead while disabled.
* :mod:`repro.obs.metrics` — an always-on process-wide registry of
  counters/gauges/histograms fed by the hot paths (posterior kernel
  mix, dispatch decisions, candidate churn, chunk sizes, HyperANF
  iterations, fold coverage).
* :mod:`repro.obs.manifest` — JSON run manifests (config, seeds, git
  SHA, versions, span tree, metrics dump) written next to results.
* :mod:`repro.obs.memory` — :func:`peak_rss_mb`, shared by spans,
  manifests and the benchmark harness.
* :mod:`repro.obs.log` — the CLI's ``--verbose``/``--quiet`` logging
  setup.
* :mod:`repro.obs.report` — the ``repro trace`` summariser.

Everything here is observational by construction: instruments record
quantities the engines already computed, touch no RNG stream, and
reorder no floating-point op — a traced run is bit-identical in its
outputs to an untraced one.
"""

from repro.obs.log import setup_logging, verbosity_level
from repro.obs.manifest import (
    SCHEMA_ID,
    build_manifest,
    git_sha,
    library_versions,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.memory import peak_rss_mb
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    exponential_buckets,
    metrics_snapshot,
    reset_metrics,
)
from repro.obs.report import load_trace, resolve_run, summarise_run
from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    span,
    traced,
    tracing_enabled,
)

__all__ = [
    "REGISTRY",
    "SCHEMA_ID",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "build_manifest",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "exponential_buckets",
    "git_sha",
    "library_versions",
    "load_manifest",
    "load_trace",
    "metrics_snapshot",
    "peak_rss_mb",
    "reset_metrics",
    "resolve_run",
    "setup_logging",
    "span",
    "summarise_run",
    "traced",
    "tracing_enabled",
    "validate_manifest",
    "verbosity_level",
    "write_manifest",
]
