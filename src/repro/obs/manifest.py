"""Run manifests: one JSON receipt per CLI/experiment/benchmark run.

A manifest records everything needed to interpret (and re-run) the
results sitting next to it: the resolved configuration, seeds, the git
SHA and library versions of the code that ran, the per-phase span tree
from the tracer, and the final metrics-registry dump (kernel mix,
fold coverage, chunk sizes, ...).

The schema is hand-validated (:func:`validate_manifest`) — no
``jsonschema`` dependency — and pinned by ``tests/obs/test_manifest.py``
and the CI ``trace-smoke`` job.

Manifest layout (``SCHEMA_ID = "repro.obs/manifest.v1"``)::

    {
      "schema":   "repro.obs/manifest.v1",
      "created":  "2026-08-08T12:34:56+00:00",   # ISO-8601
      "command":  "repro obfuscate",              # human-readable entry point
      "argv":     ["--input", "g.txt", ...],      # raw arguments (may be [])
      "config":   {...},                          # resolved knobs, JSON-safe
      "seed":     0,                              # root seed or null
      "git_sha":  "abc123..." | null,             # HEAD at run time
      "versions": {"python": ..., "numpy": ..., "platform": ...},
      "elapsed_s":   12.3,
      "peak_rss_mb": 456.7,
      "spans":    [ {name, wall_s, cpu_s, rss_delta_mb, attrs, children:[...]} ],
      "metrics":  {"posterior.rows.tree": 123, ...},
      "results":  {...}                           # run-specific summary
    }
"""

from __future__ import annotations

import json
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path

from repro.obs.memory import peak_rss_mb
from repro.obs.metrics import metrics_snapshot
from repro.resilience.atomic import atomic_write_text

__all__ = [
    "SCHEMA_ID",
    "build_manifest",
    "git_sha",
    "library_versions",
    "load_manifest",
    "validate_manifest",
    "write_manifest",
]

SCHEMA_ID = "repro.obs/manifest.v1"


def git_sha() -> str | None:
    """HEAD commit of the repository containing this package, if any."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def library_versions() -> dict:
    """Python/NumPy/platform identifiers for the manifest."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a core dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
    }


def _json_safe(value):
    """Best-effort conversion of config values to JSON-encodable types."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # numpy scalars and anything else with an .item()
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return repr(value)


def build_manifest(
    command: str,
    *,
    config: dict | None = None,
    seed: int | None = None,
    argv: list | None = None,
    results: dict | None = None,
    tracer=None,
    metrics: dict | None = None,
    elapsed_s: float | None = None,
) -> dict:
    """Assemble a schema-valid manifest dict.

    ``tracer`` (a :class:`repro.obs.trace.Tracer`, active or already
    disabled) supplies the span tree; ``metrics`` defaults to the
    process-wide registry snapshot; ``elapsed_s`` defaults to the total
    wall time of the tracer's root spans.
    """
    spans = tracer.span_tree() if tracer is not None else []
    if elapsed_s is None:
        elapsed_s = float(sum(s["wall_s"] for s in spans))
    return {
        "schema": SCHEMA_ID,
        "created": datetime.now(timezone.utc).isoformat(),
        "command": command,
        "argv": [str(a) for a in (argv or [])],
        "config": _json_safe(config or {}),
        "seed": None if seed is None else int(seed),
        "git_sha": git_sha(),
        "versions": library_versions(),
        "elapsed_s": elapsed_s,
        "peak_rss_mb": peak_rss_mb(),
        "spans": spans,
        "metrics": metrics if metrics is not None else metrics_snapshot(),
        "results": _json_safe(results or {}),
    }


def write_manifest(path, manifest: dict) -> Path:
    """Validate and write ``manifest`` as pretty-printed JSON.

    The write is atomic (temp sibling + ``os.replace``): a crash while
    publishing leaves the previous manifest, never a truncated one.
    """
    errors = validate_manifest(manifest)
    if errors:
        raise ValueError(f"refusing to write invalid manifest: {errors}")
    path = Path(path)
    atomic_write_text(path, json.dumps(manifest, indent=2, sort_keys=False) + "\n")
    return path


def load_manifest(path) -> dict:
    """Read and validate a manifest file; raises on schema violations.

    A file that is not even JSON — the signature of a torn write from a
    crashed pre-atomic run — is rejected with a clear ``ValueError``
    rather than a raw decode traceback.
    """
    try:
        manifest = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path}: truncated or corrupt manifest (partial write?): {exc}"
        ) from exc
    errors = validate_manifest(manifest)
    if errors:
        raise ValueError(f"{path}: invalid manifest: {errors}")
    return manifest


# ----------------------------------------------------------------------
# schema validation (stdlib-only)
# ----------------------------------------------------------------------
_NUMBER = (int, float)

#: Required top-level fields and their accepted types (None = nullable).
_TOP_FIELDS: dict[str, tuple] = {
    "schema": (str,),
    "created": (str,),
    "command": (str,),
    "argv": (list,),
    "config": (dict,),
    "seed": (int, type(None)),
    "git_sha": (str, type(None)),
    "versions": (dict,),
    "elapsed_s": _NUMBER,
    "peak_rss_mb": _NUMBER,
    "spans": (list,),
    "metrics": (dict,),
    "results": (dict,),
}

_SPAN_FIELDS: dict[str, tuple] = {
    "name": (str,),
    "wall_s": _NUMBER,
    "cpu_s": _NUMBER,
    "rss_delta_mb": _NUMBER,
    "attrs": (dict,),
    "children": (list,),
}


def _check_span(node, where: str, errors: list[str]) -> None:
    if not isinstance(node, dict):
        errors.append(f"{where}: span node must be an object")
        return
    for field, types in _SPAN_FIELDS.items():
        if field not in node:
            errors.append(f"{where}: missing span field {field!r}")
        elif not isinstance(node[field], types) or isinstance(node[field], bool):
            errors.append(f"{where}.{field}: wrong type {type(node[field]).__name__}")
    for i, child in enumerate(node.get("children", []) or []):
        _check_span(child, f"{where}.children[{i}]", errors)


def validate_manifest(manifest) -> list[str]:
    """Return every schema violation (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(manifest, dict):
        return ["manifest must be a JSON object"]
    for field, types in _TOP_FIELDS.items():
        if field not in manifest:
            errors.append(f"missing field {field!r}")
        elif not isinstance(manifest[field], types) or (
            isinstance(manifest[field], bool) and bool not in types
        ):
            errors.append(f"{field}: wrong type {type(manifest[field]).__name__}")
    if manifest.get("schema") not in (None, SCHEMA_ID):
        errors.append(
            f"schema: expected {SCHEMA_ID!r}, got {manifest.get('schema')!r}"
        )
    for i, node in enumerate(manifest.get("spans", []) or []):
        _check_span(node, f"spans[{i}]", errors)
    metrics = manifest.get("metrics")
    if isinstance(metrics, dict):
        for name, value in metrics.items():
            if not isinstance(value, (*_NUMBER, dict, type(None))):
                errors.append(f"metrics[{name!r}]: wrong type {type(value).__name__}")
    versions = manifest.get("versions")
    if isinstance(versions, dict):
        for key in ("python", "numpy", "platform"):
            if key not in versions:
                errors.append(f"versions: missing {key!r}")
    return errors
