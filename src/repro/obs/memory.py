"""Process memory introspection shared by spans, benchmarks and manifests.

Home of :func:`peak_rss_mb`, which previously lived in
``benchmarks/conftest.py`` (which now re-exports it) — the span tracer
needs it too, and the src tree cannot import from the benchmark
harness.
"""

from __future__ import annotations

import sys

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

__all__ = ["peak_rss_mb"]


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB.

    Uses ``resource.getrusage`` where available (``ru_maxrss`` is
    kilobytes on Linux, bytes on macOS); falls back to the tracemalloc
    traced peak when the ``resource`` module is missing, and to NaN when
    neither source exists — callers still run, the column is just
    unavailable.

    The value is a monotone high-water mark, so the *difference* between
    two calls bounds the additional peak memory the enclosed work
    demanded — which is exactly how the span tracer uses it.
    """
    if _resource is not None:
        peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        divisor = 1 << 20 if sys.platform == "darwin" else 1 << 10
        return peak / divisor
    import tracemalloc

    if tracemalloc.is_tracing():  # pragma: no cover - fallback path
        return tracemalloc.get_traced_memory()[1] / (1 << 20)
    return float("nan")  # pragma: no cover - fallback path
