"""Human-readable summaries of trace files and run manifests.

Backs the ``repro trace`` subcommand: given a ``trace.jsonl``, a
``manifest.json``, or a directory holding either, print the per-phase
table (top-level spans), the heaviest spans by cumulative wall time,
and the posterior kernel mix recorded by the metrics registry.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["load_trace", "resolve_run", "summarise_run"]

#: metric name → kernel-mix row label (insertion order = display order).
_KERNEL_MIX_ROWS = {
    "posterior.rows.staircase": "staircase rows",
    "posterior.rows.tree": "tree/FFT rows",
    "posterior.rows.clt": "CLT rows",
    "posterior.fold.rows": "fold-in rows",
    "generate.rows_folded": "rows served by fold",
    "generate.rows_recomputed": "rows recomputed",
}


def load_trace(path) -> list[dict]:
    """Parse a JSONL trace file into flat span records."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def resolve_run(path) -> tuple[dict | None, list[dict]]:
    """Locate the (manifest, span records) pair behind ``path``.

    ``path`` may be a manifest JSON, a JSONL trace, or a directory
    containing ``manifest.json``/``trace.jsonl``.  Span records are
    taken from the trace file when present, else flattened out of the
    manifest's span tree.
    """
    from repro.obs.manifest import load_manifest

    path = Path(path)
    manifest: dict | None = None
    records: list[dict] = []
    if path.is_dir():
        manifest_path = path / "manifest.json"
        trace_path = path / "trace.jsonl"
        if not manifest_path.exists() and not trace_path.exists():
            raise FileNotFoundError(
                f"{path}: no manifest.json or trace.jsonl inside"
            )
        if manifest_path.exists():
            manifest = load_manifest(manifest_path)
        if trace_path.exists():
            records = load_trace(trace_path)
    elif path.suffix == ".jsonl":
        records = load_trace(path)
    else:
        manifest = load_manifest(path)
    if not records and manifest is not None:
        records = _flatten_tree(manifest.get("spans", []))
    return manifest, records


def _flatten_tree(nodes, depth: int = 0) -> list[dict]:
    flat: list[dict] = []
    for node in nodes:
        flat.append({**{k: node[k] for k in node if k != "children"}, "depth": depth})
        flat.extend(_flatten_tree(node.get("children", []), depth + 1))
    return flat


def _fmt_row(cols, widths) -> str:
    return "  ".join(str(c).ljust(w) for c, w in zip(cols, widths)).rstrip()


def _table(header: list[str], rows: list[list]) -> str:
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [_fmt_row(header, widths), _fmt_row(["-" * w for w in widths], widths)]
    lines.extend(_fmt_row(r, widths) for r in rows)
    return "\n".join(lines)


def _aggregate(records: list[dict], *, depth: int | None = None) -> list[list]:
    """Span rows aggregated by name: calls, total wall/cpu, rss delta."""
    totals: dict[str, list[float]] = {}
    for rec in records:
        if depth is not None and rec.get("depth", 0) != depth:
            continue
        agg = totals.setdefault(rec["name"], [0, 0.0, 0.0, 0.0])
        agg[0] += 1
        agg[1] += rec.get("wall_s", 0.0)
        agg[2] += rec.get("cpu_s", 0.0)
        agg[3] += rec.get("rss_delta_mb", 0.0)
    rows = [
        [name, calls, f"{wall:.3f}", f"{cpu:.3f}", f"{rss:+.1f}"]
        for name, (calls, wall, cpu, rss) in totals.items()
    ]
    rows.sort(key=lambda r: -float(r[2]))
    return rows


def _metric_value(metrics: dict, name: str):
    value = metrics.get(name)
    if isinstance(value, dict):  # histogram summary
        return value.get("total", 0)
    return value


def summarise_run(
    manifest: dict | None, records: list[dict], *, top: int = 10
) -> str:
    """The full ``repro trace`` report as one string."""
    sections: list[str] = []
    if manifest is not None:
        sections.append(
            f"run: {manifest.get('command', '?')} @ {manifest.get('created', '?')}\n"
            f"git: {manifest.get('git_sha') or 'unknown'}  "
            f"python {manifest.get('versions', {}).get('python', '?')}  "
            f"numpy {manifest.get('versions', {}).get('numpy', '?')}\n"
            f"elapsed: {manifest.get('elapsed_s', 0.0):.2f}s  "
            f"peak rss: {manifest.get('peak_rss_mb', 0.0):.0f} MiB"
        )

    header = ["span", "calls", "wall_s", "cpu_s", "rss_delta_mb"]
    phase_rows = _aggregate(records, depth=0)
    if phase_rows:
        sections.append("per-phase (top-level spans):\n" + _table(header, phase_rows))

    all_rows = _aggregate(records)[:top]
    if all_rows:
        sections.append(
            f"top spans by cumulative wall time (max {top}):\n"
            + _table(header, all_rows)
        )

    metrics = manifest.get("metrics", {}) if manifest is not None else {}
    mix_rows = []
    mix_total = 0.0
    for name in ("posterior.rows.staircase", "posterior.rows.tree", "posterior.rows.clt"):
        value = _metric_value(metrics, name)
        if value:
            mix_total += value
    for name, label in _KERNEL_MIX_ROWS.items():
        value = _metric_value(metrics, name)
        if value is None:
            continue
        share = (
            f"{100.0 * value / mix_total:.1f}%"
            if mix_total and name.startswith("posterior.rows.")
            else ""
        )
        mix_rows.append([label, f"{value:,}", share])
    if mix_rows:
        sections.append(
            "kernel mix:\n" + _table(["path", "rows", "share"], mix_rows)
        )
    dispatch_tree = _metric_value(metrics, "posterior.dispatch.auto_tree")
    dispatch_stair = _metric_value(metrics, "posterior.dispatch.auto_staircase")
    if dispatch_tree is not None or dispatch_stair is not None:
        sections.append(
            "kernel='auto' dispatch (TREE_CROSSOVER_WIDTH): "
            f"{dispatch_tree or 0:,} tree / {dispatch_stair or 0:,} staircase"
        )
    if not sections:
        sections.append("(empty trace: no spans or metrics recorded)")
    return "\n\n".join(sections)
