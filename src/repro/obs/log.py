"""Structured logging setup for the CLI and experiment drivers.

All repro modules log under the ``"repro"`` namespace
(``logging.getLogger("repro.<module>")``); nothing in ``src/``
configures handlers at import time — a library must stay silent until
an entry point opts in.  :func:`setup_logging` is that opt-in: the CLI
calls it from ``main()`` with the verbosity resolved from
``--verbose``/``--quiet``.

Verbosity mapping::

    --quiet      ERROR   (failures only)
    (default)    WARNING (quiet unless something is off)
    -v           INFO    (phase progress: cells, chunks, writes)
    -vv          DEBUG   (per-chunk/per-probe detail)

Log lines go to stderr so stdout keeps its machine-readable contract
(tables, reports) intact for shell pipelines.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["setup_logging", "verbosity_level"]

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


def verbosity_level(verbose: int = 0, quiet: bool = False) -> int:
    """Map CLI flags to a ``logging`` level."""
    if quiet:
        return logging.ERROR
    if verbose >= 2:
        return logging.DEBUG
    if verbose == 1:
        return logging.INFO
    return logging.WARNING


def setup_logging(verbose: int = 0, quiet: bool = False) -> logging.Logger:
    """Configure the ``repro`` logger tree; idempotent across calls.

    Installs one stderr handler on the ``"repro"`` root logger (replacing
    any handler a previous call installed, so repeated ``main()``
    invocations in one process — the test suite — never stack handlers)
    and sets the level from the flags.  Returns the configured logger.
    """
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
    logger.addHandler(handler)
    logger.setLevel(verbosity_level(verbose, quiet))
    logger.propagate = False
    return logger
