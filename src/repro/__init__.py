"""repro — Injecting Uncertainty in Graphs for Identity Obfuscation.

A from-scratch Python reproduction of Boldi, Bonchi, Gionis, Tassa
(PVLDB 5(11), 2012).  The package publishes social graphs as *uncertain
graphs* — each candidate edge carries a probability — achieving
(k, ε)-obfuscation of vertex identities with less utility loss than
whole-edge randomization.

Typical use::

    from repro import dblp_like, obfuscate

    graph = dblp_like(scale=0.2, seed=0)
    result = obfuscate(graph, k=20, eps=0.05, seed=0)
    published = result.uncertain          # an UncertainGraph

Subpackages
-----------
``repro.graphs``     certain-graph substrate (structure, generators, datasets)
``repro.uncertain``  uncertain-graph model and possible-world sampling
``repro.worlds``     batched possible-world engine (§6 utility evaluation)
``repro.core``       the paper's obfuscation algorithms (§3–§5)
``repro.baselines``  random sparsification/perturbation comparators (§7.3)
``repro.stats``      utility statistics and sampling estimators (§6)
``repro.anf``        HyperANF / HyperLogLog distance substrate
``repro.attacks``    extensions: degree-trail attack, belief measure
``repro.experiments`` table/figure harness behind the benchmarks
"""

from repro.core import (
    ObfuscationParams,
    ObfuscationResult,
    compute_degree_posterior,
    generate_obfuscation,
    is_k_eps_obfuscation,
    obfuscate,
    obfuscate_with_fallback,
    tolerance_achieved,
)
from repro.graphs import (
    Graph,
    dblp_like,
    flickr_like,
    load_dataset,
    read_edge_list,
    write_edge_list,
    y360_like,
)
from repro.uncertain import (
    UncertainGraph,
    WorldSampler,
    read_uncertain_graph,
    sample_world,
    write_uncertain_graph,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "UncertainGraph",
    "WorldSampler",
    "sample_world",
    "obfuscate",
    "obfuscate_with_fallback",
    "generate_obfuscation",
    "ObfuscationParams",
    "ObfuscationResult",
    "compute_degree_posterior",
    "tolerance_achieved",
    "is_k_eps_obfuscation",
    "dblp_like",
    "flickr_like",
    "y360_like",
    "load_dataset",
    "read_edge_list",
    "write_edge_list",
    "read_uncertain_graph",
    "write_uncertain_graph",
    "__version__",
]
