"""Entropy-based anonymity levels of randomized releases (Figure 4).

To compare the uncertain-graph method against sparsification and
perturbation "at the same level of obfuscation", the paper computes, for
each original degree ω, the adversary's posterior over published
vertices and measures its entropy — precisely the Definition-2 quantity,
but under the *randomization* release model (Bonchi et al. [4]):

    X_u(ω) = Pr( observed degree d'(u) | original degree ω )

with the degree-transition law of the scheme:

* sparsification(p):  ``d' | ω  ~  Binomial(ω, 1−p)``
* perturbation(p):    ``d' | ω  ~  Binomial(ω, 1−p) + Binomial(n−1−ω, p_add)``

Then ``Y_ω ∝ X_·(ω)`` over published vertices and the anonymity level of
an original vertex with degree ω is ``2^{H(Y_ω)}`` — directly comparable
with :meth:`repro.core.DegreePosterior.obfuscation_levels`.

For the original (unprotected) graph the same machinery degenerates to
``level(v) = #{u : d(u) = d(v)}`` — plain degree anonymity — which is the
"original" curve of Figure 4.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.randomization import addition_probability
from repro.graphs.graph import Graph
from repro.utils.validation import check_probability


def binomial_pmf(n: int, p: float) -> np.ndarray:
    """Full Binomial(n, p) PMF via the stable multiplicative recurrence.

    Built in log space from the largest term, so it is robust for the
    moderate ``n`` (≤ a few thousand) used by the transition models.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    check_probability(p, "p")
    if n == 0:
        return np.ones(1, dtype=np.float64)
    if p == 0.0:
        out = np.zeros(n + 1)
        out[0] = 1.0
        return out
    if p == 1.0:
        out = np.zeros(n + 1)
        out[n] = 1.0
        return out
    ks = np.arange(n + 1, dtype=np.float64)
    log_pmf = (
        _log_comb(n, ks)
        + ks * math.log(p)
        + (n - ks) * math.log1p(-p)
    )
    return np.exp(log_pmf)


def _log_comb(n: int, ks: np.ndarray) -> np.ndarray:
    """``log C(n, k)`` elementwise via lgamma."""
    from math import lgamma

    log_fact_n = lgamma(n + 1)
    return np.array(
        [log_fact_n - lgamma(k + 1) - lgamma(n - k + 1) for k in ks]
    )


def sparsification_transition(omega: int, p: float, max_observed: int) -> np.ndarray:
    """``Pr(d' = j | ω)`` under sparsification, for j = 0..max_observed."""
    pmf = binomial_pmf(omega, 1.0 - p)
    out = np.zeros(max_observed + 1, dtype=np.float64)
    keep = min(len(pmf), max_observed + 1)
    out[:keep] = pmf[:keep]
    return out


def perturbation_transition(
    omega: int, p: float, p_add: float, n: int, max_observed: int
) -> np.ndarray:
    """``Pr(d' = j | ω)`` under perturbation: a binomial convolution.

    The surviving-edges binomial ``Binomial(ω, 1−p)`` is convolved with
    the added-edges binomial ``Binomial(n−1−ω, p_add)``; the latter is
    truncated where its tail mass drops below 1e-12 (p_add is tiny in
    all the paper's configurations, so the truncation is a few terms).
    """
    survive = binomial_pmf(omega, 1.0 - p)
    n_add = max(n - 1 - omega, 0)
    added = binomial_pmf(n_add, p_add)
    # truncate negligible tail of the addition PMF for speed
    cumulative = np.cumsum(added)
    cut = int(np.searchsorted(cumulative, 1.0 - 1e-12)) + 1
    added = added[:cut]
    conv = np.convolve(survive, added)
    out = np.zeros(max_observed + 1, dtype=np.float64)
    keep = min(len(conv), max_observed + 1)
    out[:keep] = conv[:keep]
    return out


def _log_factorial_table(n: int) -> np.ndarray:
    """``lgamma(i + 1)`` for ``i = 0..n`` — the same scalar ``lgamma``
    calls :func:`_log_comb` makes, tabulated once so the batched
    transition build can form every ``log C(n, k)`` by three gathers."""
    from math import lgamma

    return np.array([lgamma(i + 1.0) for i in range(n + 1)])


def _binomial_pmf_rows(
    ns: np.ndarray, p: float, width: int, logfact: np.ndarray
) -> np.ndarray:
    """Rows of ``Binomial(ns[i], p)`` truncated to ``width`` columns.

    Row ``i`` equals ``binomial_pmf(ns[i], p)[:width]`` (zero-padded):
    the same ``log C + k·log p + (n-k)·log1p(-p)`` expression evaluated
    with the same tabulated ``lgamma`` values and operation order, so
    the batched build is bit-compatible with the scalar recurrence the
    tests keep as oracle.
    """
    ns = np.asarray(ns, dtype=np.int64)
    out = np.zeros((len(ns), width), dtype=np.float64)
    if not len(ns):
        return out
    if p == 0.0:
        out[:, 0] = 1.0
        return out
    if p == 1.0:
        hit = ns < width
        out[np.flatnonzero(hit), ns[hit]] = 1.0
        return out
    ks = np.arange(width, dtype=np.float64)
    valid = ks[None, :] <= ns[:, None]
    n_col = ns[:, None].astype(np.float64)
    with np.errstate(invalid="ignore"):
        log_comb = (
            logfact[ns][:, None]
            - logfact[: width][None, :]
            - np.where(valid, logfact[np.maximum(ns[:, None] - np.arange(width), 0)], 0.0)
        )
        log_pmf = (log_comb + ks[None, :] * math.log(p)) + (
            n_col - ks[None, :]
        ) * math.log1p(-p)
    out = np.where(valid, np.exp(log_pmf), 0.0)
    # n = 0 rows: Binomial(0, p) is a point mass at 0.
    zero = ns == 0
    if zero.any():
        out[zero] = 0.0
        out[zero, 0] = 1.0
    return out


def randomization_transition_matrix(
    omegas: np.ndarray,
    scheme: str,
    p: float,
    *,
    p_add: float = 0.0,
    n: int = 0,
    max_observed: int,
) -> np.ndarray:
    """``Pr(d' = j | ω)`` for a whole batch of original degrees at once.

    Row ``i`` reproduces :func:`sparsification_transition` /
    :func:`perturbation_transition` at ``ω = omegas[i]`` (the per-ω
    scalar builders stay as the pinned oracle): the survival binomials
    come from one vectorised log-space evaluation over a shared
    ``lgamma`` table, and perturbation's addition binomial is truncated
    at the same per-row 1e-12 tail mass before a short shift-and-add
    convolution pass over its few retained terms.
    """
    omegas = np.asarray(omegas, dtype=np.int64)
    width = max_observed + 1
    top = int(max(omegas.max(initial=0), max(n - 1, 0), max_observed))
    logfact = _log_factorial_table(top)
    survive = _binomial_pmf_rows(omegas, 1.0 - p, width, logfact)
    if scheme == "sparsification":
        return survive
    if scheme != "perturbation":
        raise ValueError(
            f"unknown scheme {scheme!r}; use sparsification/perturbation"
        )
    n_adds = np.maximum(n - 1 - omegas, 0)
    # Addition binomials, truncated where their cumulative mass passes
    # 1 - 1e-12 (p_add is tiny in every paper configuration, so the
    # retained prefix is a handful of terms).  The prefix is grown
    # geometrically until every row's threshold lands inside it.
    max_add = int(n_adds.max(initial=0))
    add_width = min(8, max_add + 1)
    while True:
        added = _binomial_pmf_rows(n_adds, p_add, add_width, logfact)
        cumulative = np.cumsum(added, axis=1)
        if add_width > max_add or (cumulative[:, -1] >= 1.0 - 1e-12).all():
            break
        add_width = min(add_width * 2, max_add + 1)
    # Per-row searchsorted(cum, 1-1e-12) + 1, clipped to the grid.
    cuts = np.minimum(
        (cumulative < 1.0 - 1e-12).sum(axis=1) + 1, add_width
    )
    added[np.arange(added.shape[1])[None, :] >= cuts[:, None]] = 0.0
    out = np.zeros_like(survive)
    for t in range(min(int(cuts.max(initial=0)), width)):
        out[:, t:] += survive[:, : width - t] * added[:, t : t + 1]
    return out


def _entropy_from_grouped(
    transition_row: np.ndarray, observed_counts: np.ndarray
) -> float:
    """Entropy of ``Y_ω`` when vertices group by observed degree.

    All vertices sharing an observed degree ``d`` share the posterior
    weight ``T[ω, d]``; with ``c_d`` such vertices the entropy is
    ``−Σ_d c_d · y_d · log2 y_d`` where ``y_d = T[ω,d]/Z`` and
    ``Z = Σ_d c_d·T[ω,d]``.
    """
    weights = transition_row * observed_counts
    total = weights.sum()
    if total <= 0:
        return 0.0
    y = transition_row / total
    mask = (observed_counts > 0) & (y > 0)
    return float(-(observed_counts[mask] * y[mask] * np.log2(y[mask])).sum())


def randomization_anonymity_levels(
    original: Graph,
    published: Graph,
    scheme: str,
    p: float,
) -> np.ndarray:
    """Per-original-vertex anonymity level ``2^{H(Y_{d(v)})}``.

    Parameters
    ----------
    original:
        The original graph G (supplies the adversary's known degrees).
    published:
        One randomized release (supplies the observed degrees).
    scheme:
        ``"sparsification"`` or ``"perturbation"``.
    p:
        The scheme's removal probability (the addition rate of
        perturbation is derived from ``original`` as in the paper).

    Returns
    -------
    numpy.ndarray
        ``levels[v] = 2^{H(Y_{d(v)})}`` for every vertex of G.
    """
    return randomization_anonymity_levels_from_observed(
        original, published.degrees(), scheme, p
    )


def randomization_anonymity_levels_from_observed(
    original: Graph,
    observed: np.ndarray,
    scheme: str,
    p: float,
) -> np.ndarray:
    """:func:`randomization_anonymity_levels` from an observed degree sequence.

    The release enters the entropy computation only through its degree
    sequence, so callers that already hold one — notably the batched
    Table-6 engine, whose :func:`repro.worlds.stats_batch.degree_matrix`
    yields every release's degrees in one pass — can skip materialising
    the published :class:`Graph` entirely.
    """
    check_probability(p, "p")
    n = original.num_vertices
    observed = np.asarray(observed)
    max_observed = int(observed.max(initial=0))
    observed_counts = np.bincount(observed, minlength=max_observed + 1).astype(
        np.float64
    )
    degrees = original.degrees()
    p_add = p * addition_probability(original)

    # One (Ω, d_max) transition-matrix build over the distinct original
    # degrees and one vectorised entropy pass — the former per-ω Python
    # loop re-ran the binomial build and the masked entropy sum per
    # distinct degree (and per release, on the Figure-4 path).
    distinct, inverse = np.unique(degrees, return_inverse=True)
    T = randomization_transition_matrix(
        distinct, scheme, p, p_add=p_add, n=n, max_observed=max_observed
    )
    totals = (T * observed_counts[None, :]).sum(axis=1)
    attainable = totals > 0.0
    y = np.zeros_like(T)
    np.divide(T, totals[:, None], out=y, where=attainable[:, None])
    mask = (observed_counts[None, :] > 0.0) & (y > 0.0)
    ylog = np.zeros_like(y)
    np.log2(y, out=ylog, where=mask)
    entropies = -(
        np.where(mask, observed_counts[None, :] * y * ylog, 0.0)
    ).sum(axis=1)
    entropies[~attainable] = 0.0
    return np.exp2(entropies[inverse])


def original_anonymity_levels(graph: Graph) -> np.ndarray:
    """Degree-anonymity of the unprotected graph: ``levels[v] = |P⁻¹(d_v)|``.

    This is the ``2^H`` of a uniform posterior over same-degree vertices —
    the paper's "original" curve in Figure 4 and the worked observation of
    §3 (uniform ``Y_ω(v) = 1/k`` over ``k`` vertices with the property).
    """
    degrees = graph.degrees()
    counts = np.bincount(degrees)
    return counts[degrees].astype(np.float64)


def cumulative_anonymity_curve(
    levels: np.ndarray, k_grid: np.ndarray
) -> np.ndarray:
    """Figure 4's y-axis: #vertices with anonymity level ≤ k, per grid k."""
    levels = np.sort(np.asarray(levels, dtype=np.float64))
    return np.searchsorted(levels, np.asarray(k_grid, dtype=np.float64), side="right")
