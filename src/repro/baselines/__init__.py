"""Whole-edge randomization baselines and their anonymity analysis (§7.3)."""

from repro.baselines.anonymity import (
    binomial_pmf,
    cumulative_anonymity_curve,
    original_anonymity_levels,
    perturbation_transition,
    randomization_anonymity_levels,
    sparsification_transition,
)
from repro.baselines.randomization import (
    addition_probability,
    random_perturbation,
    random_sparsification,
)

__all__ = [
    "random_sparsification",
    "random_perturbation",
    "addition_probability",
    "binomial_pmf",
    "sparsification_transition",
    "perturbation_transition",
    "randomization_anonymity_levels",
    "original_anonymity_levels",
    "cumulative_anonymity_curve",
]
