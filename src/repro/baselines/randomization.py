"""Random sparsification and random perturbation (§7.3 comparators).

Two whole-edge randomization schemes, exactly as specified in the paper
(after Bonchi et al. [4] and Hay et al. [12]):

* **random sparsification**: every edge ``e ∈ E`` is removed
  independently with probability ``p`` (nothing is added);
* **random perturbation**: every edge is removed with probability ``p``,
  then every non-adjacent pair is added independently with probability
  ``p·|E| / (C(n,2) − |E|)``, so the *expected* number of added edges
  equals the expected number removed — expected edge count is preserved.

Both publish a *certain* graph; they are the obfuscation-by-uncertainty
method's competition in Table 6 and Figure 4.

A randomized release scheme is a distribution over possible worlds
(Nguyen et al. frame both schemes as uncertain graphs), and this module
is written so the single-release functions double as the ground truth
for the batched release engine in :mod:`repro.worlds.releases`: all
randomness flows through two vectorised primitives — one ``m``-uniform
keep draw per release and :func:`sample_addition_indices` for the
perturbation additions — that both paths call identically.  Drawing
``W`` releases through the batch engine therefore consumes the *same*
RNG stream as ``W`` sequential calls with a shared generator, so equal
seeds give identical releases edge-for-edge (pinned by
``tests/worlds/test_releases.py``).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import as_rng
from repro.utils.validation import check_probability


def sample_addition_indices(rng, total_pairs: int, p_add: float) -> np.ndarray:
    """Pair indices hit by an independent ``p_add`` draw over ``[0, total_pairs)``.

    Vectorised geometric skipping: instead of flipping ``C(n, 2)`` coins,
    draw inter-arrival gaps ``1 + ⌊log(1−U)/log(1−p_add)⌋`` in blocks
    sized to cover the expected hit count, so the cost is proportional
    to the number of *hits*, not to the pair universe.  The block size
    is a pure function of ``(total_pairs, p_add)``, which makes stream
    consumption deterministic — the sequential and batched perturbation
    samplers share this primitive and therefore the exact RNG stream.

    Returns a strictly increasing ``int64`` array of pair indices.
    """
    check_probability(p_add, "p_add")
    if p_add <= 0.0 or total_pairs <= 0:
        return np.empty(0, dtype=np.int64)
    if p_add >= 1.0:
        return np.arange(total_pairs, dtype=np.int64)
    log_q = np.log1p(-p_add)
    expected = total_pairs * p_add
    block = int(min(total_pairs, max(32.0, expected + 6.0 * np.sqrt(expected) + 16.0)))
    parts: list[np.ndarray] = []
    last = -1  # last pair index visited so far
    while True:
        draws = rng.random(block)
        # gaps are capped at total_pairs: a longer skip terminates anyway,
        # and the cap keeps the cumulative sum clear of int64 overflow
        gaps = 1 + np.minimum(
            np.floor(np.log1p(-draws) / log_q), float(total_pairs)
        ).astype(np.int64)
        pos = last + np.cumsum(gaps)
        inside = pos < total_pairs
        if not inside.all():
            parts.append(pos[inside])  # pos is increasing: a clean prefix
            break
        parts.append(pos)
        last = int(pos[-1])
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


def decode_pair_indices(idx: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`repro.graphs.graph.pair_index` for an index array.

    Returns ``(us, vs)`` with ``us < vs``, vectorised over ``idx``.  The
    closed-form row is found by the quadratic formula and then nudged by
    one where ``sqrt`` rounding put the index in a neighbouring row.
    """
    idx = np.asarray(idx, dtype=np.int64)
    u = ((2 * n - 1) - np.sqrt((2.0 * n - 1) ** 2 - 8.0 * idx)) // 2
    u = u.astype(np.int64)
    u = np.where(idx < u * (2 * n - u - 1) // 2, u - 1, u)
    u = np.where(idx >= (u + 1) * (2 * n - u - 2) // 2, u + 1, u)
    row_start = u * (2 * n - u - 1) // 2
    v = u + 1 + (idx - row_start)
    return u, v


def _keep_mask(rng, num_edges: int, p: float) -> np.ndarray:
    """The per-release Bernoulli keep vector (one ``m``-uniform draw).

    Kept as the single point that defines how many uniforms one release
    consumes for its removal phase: ``rng.random((W, m))`` fills rows in
    C order, so the batched sampler reproduces ``W`` of these calls from
    one draw.
    """
    return rng.random(num_edges) >= p


def random_sparsification(graph: Graph, p: float, *, seed=None) -> Graph:
    """Remove each edge independently with probability ``p``."""
    check_probability(p, "p")
    rng = as_rng(seed)
    edges = graph.edge_array()
    if len(edges) == 0:
        return Graph(graph.num_vertices)
    keep = _keep_mask(rng, len(edges), p)
    return Graph.from_edge_array(graph.num_vertices, edges[keep])


def addition_probability(graph: Graph) -> float:
    """The paper's balanced addition rate ``p_add/p = |E|/(C(n,2) − |E|)``.

    Multiplied by the removal probability ``p`` this gives the per-pair
    addition probability of :func:`random_perturbation`.
    """
    non_edges = graph.num_pairs - graph.num_edges
    if non_edges <= 0:
        return 0.0
    return graph.num_edges / non_edges


def sample_added_pairs(
    graph: Graph, p: float, rng, *, edge_codes: np.ndarray | None = None
) -> np.ndarray:
    """The addition phase of one perturbation release, as an ``(a, 2)`` array.

    Draws candidate pair indices by geometric skipping, decodes them to
    endpoints and keeps only non-edges of the *original* graph (original
    edges are addition-immune, exactly as in the paper's scheme).
    ``edge_codes`` lets batch callers pass ``graph.edge_codes()`` once
    instead of re-sorting the edge list per release; it does not affect
    the RNG stream.
    """
    p_add = min(1.0, p * addition_probability(graph))
    idx = sample_addition_indices(rng, graph.num_pairs, p_add)
    if len(idx) == 0:
        return np.empty((0, 2), dtype=np.int64)
    us, vs = decode_pair_indices(idx, graph.num_vertices)
    codes = us * np.int64(graph.num_vertices) + vs
    if edge_codes is None:
        edge_codes = graph.edge_codes()
    hit = np.searchsorted(edge_codes, codes)
    hit_safe = np.minimum(hit, max(len(edge_codes) - 1, 0))
    is_edge = (
        edge_codes[hit_safe] == codes
        if len(edge_codes)
        else np.zeros(len(codes), dtype=bool)
    )
    return np.column_stack([us[~is_edge], vs[~is_edge]])


def random_perturbation(graph: Graph, p: float, *, seed=None) -> Graph:
    """Remove edges w.p. ``p``; add non-edges w.p. ``p·|E|/(C(n,2)−|E|)``.

    Addition uses geometric skipping over the non-edge universe
    (:func:`sample_addition_indices`), so the cost is proportional to
    the number of *added* edges, not to ``C(n, 2)``.
    """
    check_probability(p, "p")
    rng = as_rng(seed)
    edges = graph.edge_array()
    keep = _keep_mask(rng, len(edges), p) if len(edges) else np.zeros(0, dtype=bool)
    added = sample_added_pairs(graph, p, rng)
    combined = np.concatenate([edges[keep], added]) if len(edges) else added
    return Graph.from_edge_array(graph.num_vertices, combined)
