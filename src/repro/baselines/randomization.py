"""Random sparsification and random perturbation (§7.3 comparators).

Two whole-edge randomization schemes, exactly as specified in the paper
(after Bonchi et al. [4] and Hay et al. [12]):

* **random sparsification**: every edge ``e ∈ E`` is removed
  independently with probability ``p`` (nothing is added);
* **random perturbation**: every edge is removed with probability ``p``,
  then every non-adjacent pair is added independently with probability
  ``p·|E| / (C(n,2) − |E|)``, so the *expected* number of added edges
  equals the expected number removed — expected edge count is preserved.

Both publish a *certain* graph; they are the obfuscation-by-uncertainty
method's competition in Table 6 and Figure 4.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import as_rng
from repro.utils.validation import check_probability


def random_sparsification(graph: Graph, p: float, *, seed=None) -> Graph:
    """Remove each edge independently with probability ``p``."""
    check_probability(p, "p")
    rng = as_rng(seed)
    out = Graph(graph.num_vertices)
    edges = graph.edge_array()
    if len(edges) == 0:
        return out
    keep = rng.random(len(edges)) >= p
    for u, v in edges[keep]:
        out.add_edge(int(u), int(v))
    return out


def addition_probability(graph: Graph) -> float:
    """The paper's balanced addition rate ``p_add/p = |E|/(C(n,2) − |E|)``.

    Multiplied by the removal probability ``p`` this gives the per-pair
    addition probability of :func:`random_perturbation`.
    """
    non_edges = graph.num_pairs - graph.num_edges
    if non_edges <= 0:
        return 0.0
    return graph.num_edges / non_edges


def random_perturbation(graph: Graph, p: float, *, seed=None) -> Graph:
    """Remove edges w.p. ``p``; add non-edges w.p. ``p·|E|/(C(n,2)−|E|)``.

    Addition uses geometric skipping over the non-edge universe, so the
    cost is proportional to the number of *added* edges, not to
    ``C(n, 2)``.
    """
    check_probability(p, "p")
    rng = as_rng(seed)
    out = random_sparsification(graph, p, seed=rng)
    p_add = p * addition_probability(graph)
    if p_add <= 0.0:
        return out
    n = graph.num_vertices
    total_pairs = graph.num_pairs
    log_q = np.log1p(-p_add) if p_add < 1.0 else None
    idx = -1
    while True:
        if log_q is None:
            idx += 1
        else:
            idx += 1 + int(np.floor(np.log(1.0 - rng.random()) / log_q))
        if idx >= total_pairs:
            break
        u = int((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * idx)) // 2)
        offset = idx - (u * (2 * n - u - 1)) // 2
        v = u + 1 + int(offset)
        # only non-edges of the ORIGINAL graph are candidates for addition
        if not graph.has_edge(u, v) and not out.has_edge(u, v):
            out.add_edge(u, v)
    return out
