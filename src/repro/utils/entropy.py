"""Shannon entropy and distribution helpers.

The paper's privacy notion (Definition 2) lower-bounds the base-2 entropy
of posterior distributions over vertices, so entropy is on the hot path of
the obfuscation checker.  The implementation is vectorised and treats
``0 log 0 = 0`` as usual.
"""

from __future__ import annotations

import numpy as np


def normalize_distribution(weights: np.ndarray) -> np.ndarray:
    """Normalise a non-negative weight vector into a probability vector.

    Parameters
    ----------
    weights:
        Array of non-negative weights; must not be all-zero.

    Returns
    -------
    numpy.ndarray
        ``weights / weights.sum()``.

    Raises
    ------
    ValueError
        If any weight is negative or the total mass is zero.
    """
    w = np.asarray(weights, dtype=float)
    if w.size == 0:
        raise ValueError("cannot normalise an empty weight vector")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights sum to zero; distribution undefined")
    return w / total


def entropy_bits(distribution: np.ndarray, *, normalize: bool = False) -> float:
    """Shannon entropy ``H(p) = -sum p_i log2 p_i`` in bits.

    Parameters
    ----------
    distribution:
        A probability vector.  Zero entries are allowed (contribute 0).
    normalize:
        If true, ``distribution`` is first normalised with
        :func:`normalize_distribution`; this is the convenient form for the
        unnormalised posterior columns ``X_v(ω)`` of the paper.

    Returns
    -------
    float
        Entropy in bits; ``0 ≤ H ≤ log2(len(distribution))``.
    """
    p = np.asarray(distribution, dtype=float)
    if normalize:
        p = normalize_distribution(p)
    else:
        if np.any(p < 0):
            raise ValueError("probabilities must be non-negative")
        total = p.sum()
        if not np.isclose(total, 1.0, atol=1e-8):
            raise ValueError(
                f"distribution sums to {total!r}; pass normalize=True for raw weights"
            )
    nz = p[p > 0]
    return float(-(nz * np.log2(nz)).sum())
