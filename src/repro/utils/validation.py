"""Argument-validation helpers shared across the library.

All validators raise ``ValueError`` (or ``TypeError`` for non-numerics)
with messages that name the offending parameter, so failures surface at
API boundaries instead of deep inside numeric kernels.
"""

from __future__ import annotations


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_fraction(value: float, name: str = "fraction") -> float:
    """Validate a fraction in [0, 1); used for tolerances like ε and q."""
    value = float(value)
    if not 0.0 <= value < 1.0:
        raise ValueError(f"{name} must be in [0, 1), got {value}")
    return value


def check_positive(value: float, name: str = "value", *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative if not strict)."""
    value = float(value)
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_vertex(v: int, n: int, name: str = "vertex") -> int:
    """Validate a vertex id against a graph of ``n`` vertices."""
    v = int(v)
    if not 0 <= v < n:
        raise ValueError(f"{name} must be in [0, {n}), got {v}")
    return v
