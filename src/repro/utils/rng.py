"""Random-number-generator plumbing.

Every randomized routine in this library accepts a ``seed`` argument that
may be ``None`` (fresh OS entropy), an ``int`` (deterministic), or an
already-constructed :class:`numpy.random.Generator`.  Centralising the
coercion here keeps call sites one-line and guarantees reproducibility of
experiments: the benchmark harness passes explicit integer seeds
throughout.
"""

from __future__ import annotations

import numpy as np

#: Union of everything :func:`as_rng` accepts.
SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_rng(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream, a
        :class:`numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged so that callers can thread one stream through
        a pipeline of calls).

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed, n: int) -> list[np.random.SeedSequence]:
    """The ``n`` child :class:`~numpy.random.SeedSequence` roots of ``seed``.

    The counter-based substream derivation under :func:`spawn_rngs`:
    child ``i`` is ``SeedSequence(seed).spawn(n)[i]``, a pure function
    of ``(seed, n, i)``.  Because no bit-stream state is consumed, any
    process can derive any child independently — which is what lets the
    sweep grid shard cells across workers while staying bit-identical
    to the serial loop (each cell's generator is the same object either
    way).  Seed sequences are picklable, so they also travel on the
    :mod:`repro.exec` task channel directly.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        root = np.random.SeedSequence(seed)
    return root.spawn(n)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Used by sampling harnesses that evaluate possible worlds in a loop:
    each world gets its own child stream, so adding/removing worlds never
    perturbs the randomness of the others (important for regression tests
    that pin per-world values).

    Parameters
    ----------
    seed:
        Anything accepted by :func:`as_rng`; a ``Generator`` is consumed
        to produce a fresh entropy root.
    n:
        Number of child generators.

    Returns
    -------
    list[numpy.random.Generator]
    """
    return [
        np.random.default_rng(child) for child in spawn_seed_sequences(seed, n)
    ]
