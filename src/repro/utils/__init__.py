"""Shared low-level helpers: seeded RNG plumbing, entropy, validation.

These utilities are deliberately small and dependency-free (numpy only) so
that every other subpackage can rely on them without import cycles.
"""

from repro.utils.entropy import entropy_bits, normalize_distribution
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
    check_vertex,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "entropy_bits",
    "normalize_distribution",
    "check_fraction",
    "check_positive",
    "check_probability",
    "check_vertex",
]
