"""repro.exec — one sharded execution layer under the three engines.

The ROADMAP's "one execution layer" seam, landed: every engine that
splits work into chunks (the Table-2 sweep grid, Table-4 world
evaluation, Table-6 release streams, posterior row shards) now plans
through :class:`~repro.exec.plan.ChunkPlan` and dispatches through
:class:`~repro.exec.executor.ChunkExecutor`, which runs the chunks
serially or across a fork-based process pool — bit-identically either
way at equal seeds.

* :mod:`repro.exec.plan` — the unified chunk planner (the consolidated
  ``chunk_size="auto"`` rules, all ``>= 1``-clamped).
* :mod:`repro.exec.executor` — serial/process ``map`` with ordered
  results, worker metric/span capture merged back into the parent
  registry and trace, and remote-exception propagation.
* :mod:`repro.exec.shm` — read-only shared-memory NumPy arrays so
  workers never pickle the graph or the union incidence.

Drivers expose the layer as ``--workers N`` (``repro stats``,
``repro compare``, ``python -m repro.experiments``,
``benchmarks/run_paper_scale.py``); library callers pass an executor
to ``run_obfuscation_sweep`` / ``evaluate_utility`` /
``BatchStatisticsEngine.evaluate_stream`` / ``degree_posterior_matrix_sharded``.
"""

from repro.exec.executor import (
    ChunkExecutor,
    TaskFailure,
    TaskTimeoutError,
    WorkerLostError,
    effective_workers,
    make_executor,
)
from repro.exec.plan import (
    ANF_REGISTER_STACK_BYTES,
    KEEP_MATRIX_BYTES,
    PACKED_DRAW_BYTES,
    POSTERIOR_SLAB_BYTES,
    RELEASE_CHUNK_DEFAULT,
    SAMPLE_CHUNK_DEFAULT,
    Chunk,
    ChunkPlan,
    draw_rows_per_pass,
    posterior_rows_chunk_size,
    world_eval_chunk_size,
)
from repro.exec.shm import SharedArrayPack, attach_shared

__all__ = [
    "ANF_REGISTER_STACK_BYTES",
    "KEEP_MATRIX_BYTES",
    "PACKED_DRAW_BYTES",
    "POSTERIOR_SLAB_BYTES",
    "RELEASE_CHUNK_DEFAULT",
    "SAMPLE_CHUNK_DEFAULT",
    "Chunk",
    "ChunkExecutor",
    "ChunkPlan",
    "SharedArrayPack",
    "TaskFailure",
    "TaskTimeoutError",
    "WorkerLostError",
    "attach_shared",
    "draw_rows_per_pass",
    "effective_workers",
    "make_executor",
    "posterior_rows_chunk_size",
    "world_eval_chunk_size",
]
