"""The unified chunk planner: every engine's work-splitting in one place.

Before this module, three layers each carried their own ad-hoc
``chunk_size="auto"`` convention:

* ``worlds/estimator`` sized ANF evaluation slices so the stacked
  ``(W·n, 2^b)`` HyperLogLog register matrix stays ~2 MB (cache
  resident), and non-ANF slices so the transient unpacked keep matrix
  stays ~32 MB;
* ``worlds/releases`` streamed release batches 32 at a time;
* ``worlds/batch.draw_packed_keep_bits`` grouped uniform draws so the
  float64 transient stays ~8 MB.

They are now *pinned properties of this module* — including the PR-8
``>= 1`` clamp that keeps huge-``n`` graphs from computing a zero chunk
size — and every consumer (the estimator, the release stream, the
posterior row shards, the sweep grid) plans through one
:class:`ChunkPlan` abstraction.  A plan is just the deterministic
``[lo, hi)`` decomposition of ``total`` items; which *items* those are
(worlds, releases, posterior rows, grid cells) is the caller's concern.
Plans never touch an RNG stream, so planning is trivially
bit-stable: the same ``(total, chunk_size)`` always yields the same
chunks, whichever backend executes them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ANF_REGISTER_STACK_BYTES",
    "KEEP_MATRIX_BYTES",
    "PACKED_DRAW_BYTES",
    "POSTERIOR_SLAB_BYTES",
    "RELEASE_CHUNK_DEFAULT",
    "SAMPLE_CHUNK_DEFAULT",
    "Chunk",
    "ChunkPlan",
    "draw_rows_per_pass",
    "posterior_rows_chunk_size",
    "world_eval_chunk_size",
]

#: Keep each ANF slice's ``(W·n, 2^b)`` register stack around ~2 MB —
#: on big graphs one huge stacked diffusion is memory-bandwidth-bound
#: and measurably slower than a handful of L2-sized ones.
ANF_REGISTER_STACK_BYTES = 2 << 20

#: Bound the per-slice unpacked keep matrix (``W × m`` bools) to ~32 MB
#: when no register stack exists (degree/triangle kernels, BFS backends).
KEEP_MATRIX_BYTES = 32 << 20

#: Bound the float64 uniform transient of a packed keep-bit draw (~8 MB).
PACKED_DRAW_BYTES = 8 << 20

#: Bound one posterior row shard's ``(rows, width)`` float64 slab (~32 MB).
POSTERIOR_SLAB_BYTES = 32 << 20

#: Releases streamed per batch (the cross-release union working-set bound).
RELEASE_CHUNK_DEFAULT = 32

#: Worlds sampled per estimator pass (the keep-matrix memory bound).
SAMPLE_CHUNK_DEFAULT = 32


def world_eval_chunk_size(
    num_vertices: int, num_candidate_pairs: int, *, anf: bool, anf_b: int = 6
) -> int:
    """Worlds per evaluation slice for one :class:`~repro.worlds.batch.WorldBatch`.

    The consolidated ``chunk_size="auto"`` rule of the batch statistics
    engine: when a stacked ANF diffusion will run, the slice keeps the
    ``(W·n, 2^b)`` register stack cache-resident; otherwise the bound
    comes from the transient unpacked keep matrix.  Always ``>= 1``.
    """
    if anf:
        return max(
            1, ANF_REGISTER_STACK_BYTES // max(num_vertices << anf_b, 1)
        )
    return max(1, KEEP_MATRIX_BYTES // max(num_candidate_pairs, 1))


def posterior_rows_chunk_size(width: int) -> int:
    """Vertices per posterior row shard (bounds the per-shard X slab)."""
    return max(1, POSTERIOR_SLAB_BYTES // max(width * 8, 1))


def draw_rows_per_pass(num_candidate_pairs: int) -> int:
    """Worlds per uniform-draw pass in ``draw_packed_keep_bits``."""
    return max(1, PACKED_DRAW_BYTES // max(num_candidate_pairs, 1))


@dataclass(frozen=True)
class Chunk:
    """One contiguous ``[lo, hi)`` span of a :class:`ChunkPlan`."""

    index: int
    lo: int
    hi: int

    @property
    def count(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True)
class ChunkPlan:
    """Deterministic decomposition of ``total`` items into bounded chunks.

    ``kind`` is a label for telemetry ("worlds", "releases", "rows",
    "cells", …); it does not affect the decomposition.  Iterating a plan
    yields :class:`Chunk` objects in index order — the order every
    backend must preserve when reassembling results.
    """

    kind: str
    total: int
    chunk_size: int

    def __post_init__(self):
        if self.total < 0:
            raise ValueError(f"total must be non-negative, got {self.total}")
        if self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )

    def __len__(self) -> int:
        return -(-self.total // self.chunk_size) if self.total else 0

    def __iter__(self):
        for index, lo in enumerate(range(0, self.total, self.chunk_size)):
            yield Chunk(index, lo, min(lo + self.chunk_size, self.total))

    @classmethod
    def worlds(
        cls,
        total: int,
        *,
        num_vertices: int,
        num_candidate_pairs: int,
        anf: bool,
        anf_b: int = 6,
        chunk_size: int | None = None,
    ) -> "ChunkPlan":
        """World-evaluation plan (the estimator's auto rule)."""
        if chunk_size is None:
            chunk_size = world_eval_chunk_size(
                num_vertices, num_candidate_pairs, anf=anf, anf_b=anf_b
            )
        return cls("worlds", total, chunk_size)

    @classmethod
    def releases(cls, total: int, *, chunk_size: int | None = None) -> "ChunkPlan":
        """Release-stream plan (default :data:`RELEASE_CHUNK_DEFAULT`)."""
        return cls(
            "releases",
            total,
            RELEASE_CHUNK_DEFAULT if chunk_size is None else chunk_size,
        )

    @classmethod
    def posterior_rows(
        cls, total: int, *, width: int, chunk_size: int | None = None
    ) -> "ChunkPlan":
        """Posterior row-shard plan (bounds the per-shard slab)."""
        if chunk_size is None:
            chunk_size = posterior_rows_chunk_size(width)
        return cls("rows", total, chunk_size)

    @classmethod
    def cells(cls, total: int) -> "ChunkPlan":
        """Grid-cell plan: one cell per chunk (cells are the work unit)."""
        return cls("cells", total, 1)
