"""The chunk executor: one dispatch surface under every engine.

:class:`ChunkExecutor` runs a list of chunk tasks through a backend:

* ``backend="serial"`` — plain in-process iteration.  The degenerate
  case every engine already was; metrics and spans flow naturally.
* ``backend="process"`` — a ``fork``-context process pool.  Large
  read-only constants travel via :class:`~repro.exec.shm.SharedArrayPack`
  (zero pickling of the graph), per-chunk data travels pickled, and
  each task result carries the worker's metric dump and buffered span
  records back to the parent, where they are merged into the global
  registry and the active trace (:meth:`repro.obs.trace.Tracer.absorb`).

**Bit-identity discipline.**  The executor itself never touches an RNG
stream: callers draw randomness in the parent (preserving the exact
serial stream positions) or derive per-chunk counter-based substreams
(``SeedSequence.spawn`` children, one per grid cell), and workers
evaluate deterministically.  Results return in task order, so
``executor.map(fn, tasks)`` equals ``[fn(t, shared) for t in tasks]``
bit-for-bit — pinned at 1/2/4 workers by ``tests/exec``.

**Error propagation.**  A task that raises in a worker re-raises in the
parent (the pool's remote-traceback plumbing), after which the executor
tears the map call down and unlinks any shared segments — a crash of
one worker never strands shared memory or deadlocks siblings.

Workers reset the global metrics registry at the start of *every* task
(tasks run sequentially within a worker), so the end-of-task dump *is*
the task's delta; the parent folds each delta in as results arrive.
Fork-inherited tracers are disarmed in the worker initializer
(:func:`repro.obs.trace.drop_inherited_tracer`) so child spans are
buffered in memory and shipped — never double-written to the parent's
JSONL stream.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.obs.metrics import REGISTRY, reset_metrics
from repro.obs.trace import (
    current_tracer,
    disable_tracing,
    drop_inherited_tracer,
    enable_tracing,
    span,
    tracing_enabled,
)
from repro.exec.shm import SharedArrayPack, attach_shared

__all__ = ["ChunkExecutor", "make_executor", "effective_workers"]


def effective_workers(workers: int | None) -> int:
    """Resolve a ``--workers`` value (``None``/``0`` → the CPU count)."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def make_executor(workers: int | None) -> "ChunkExecutor":
    """The conventional ``--workers N`` mapping used by every driver.

    ``None``/``0``/``1`` → the serial backend; ``N > 1`` → a process
    pool of ``N`` workers.  (``0`` resolves to the CPU count first, so
    ``--workers 0`` means "all cores" and only falls back to serial on
    a single-core box.)
    """
    resolved = effective_workers(workers)
    if resolved <= 1:
        return ChunkExecutor(backend="serial")
    return ChunkExecutor(backend="process", workers=resolved)


def _worker_init() -> None:
    """Per-process initialisation, run once right after fork."""
    drop_inherited_tracer()
    reset_metrics()


def _run_task(payload):
    """Worker-side task wrapper: metrics delta + buffered span capture."""
    fn, arg, descriptor, capture_spans = payload
    shared = attach_shared(descriptor)
    reset_metrics()
    tracer = enable_tracing(None) if capture_spans else None
    try:
        result = fn(arg, shared)
    finally:
        if tracer is not None:
            disable_tracing()
    records = tracer.finished if tracer is not None else []
    return result, REGISTRY.dump(), records


class ChunkExecutor:
    """Ordered ``map`` of chunk tasks over a serial or process backend.

    Parameters
    ----------
    backend:
        ``"serial"`` or ``"process"``.
    workers:
        Pool size for the process backend (default: the CPU count).
        Ignored by the serial backend.

    Use as a context manager, or call :meth:`close` when done; the
    process pool is created lazily on first :meth:`map` and reused
    across calls (workers keep their attached shared segments and warm
    caches between maps).
    """

    def __init__(self, *, backend: str = "serial", workers: int | None = None):
        if backend not in ("serial", "process"):
            raise ValueError(
                f"unknown backend {backend!r}; use serial/process"
            )
        self.backend = backend
        self.workers = effective_workers(workers) if backend == "process" else 1
        self._pool = None
        if backend == "process":
            methods = multiprocessing.get_all_start_methods()
            if "fork" not in methods:  # pragma: no cover - non-POSIX
                raise RuntimeError(
                    "the process backend needs the fork start method "
                    f"(available: {methods}); use backend='serial'"
                )

    # ------------------------------------------------------------------
    def map(self, fn, tasks, *, shared=None) -> list:
        """``[fn(task, shared_arrays) for task in tasks]``, maybe sharded.

        Parameters
        ----------
        fn:
            A **module-level** callable ``fn(task, shared) -> result``
            (workers import it by reference).  ``shared`` is a
            ``dict[str, np.ndarray]`` or ``None``.
        tasks:
            The per-chunk arguments, in result order.
        shared:
            Optional dict of large read-only arrays.  The serial
            backend passes it through untouched; the process backend
            exports it to shared memory for the duration of the call.

        Results come back in task order regardless of which worker ran
        what — the property every seed-equivalence pin relies on.
        """
        tasks = list(tasks)
        if self.backend == "serial":
            return [fn(task, shared) for task in tasks]
        return self._map_process(fn, tasks, shared)

    def _map_process(self, fn, tasks, shared) -> list:
        if not tasks:
            return []
        if self._pool is None:
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(self.workers, initializer=_worker_init)
        pack = SharedArrayPack(shared) if shared else None
        descriptor = pack.descriptor if pack is not None else None
        capture = tracing_enabled()
        tracer = current_tracer()
        results = []
        try:
            with span(
                "exec.map",
                backend=self.backend,
                workers=self.workers,
                tasks=len(tasks),
            ):
                payloads = [(fn, task, descriptor, capture) for task in tasks]
                for result, metrics_dump, records in self._pool.imap(
                    _run_task, payloads
                ):
                    REGISTRY.merge(metrics_dump)
                    if tracer is not None:
                        tracer.absorb(records)
                    results.append(result)
        except BaseException:
            # A worker crash (or parent interrupt) may leave tasks in
            # flight; terminate so the pool cannot touch the shared
            # segments after they are unlinked below.
            self.close()
            raise
        finally:
            if pack is not None:
                pack.close()
        return results

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear the process pool down (idempotent; serial is a no-op)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ChunkExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
