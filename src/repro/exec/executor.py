"""The chunk executor: one dispatch surface under every engine.

:class:`ChunkExecutor` runs a list of chunk tasks through a backend:

* ``backend="serial"`` — plain in-process iteration.  The degenerate
  case every engine already was; metrics and spans flow naturally.
* ``backend="process"`` — a ``fork``-context process pool.  Large
  read-only constants travel via :class:`~repro.exec.shm.SharedArrayPack`
  (zero pickling of the graph), per-chunk data travels pickled, and
  each task result carries the worker's metric dump and buffered span
  records back to the parent, where they are merged into the global
  registry and the active trace (:meth:`repro.obs.trace.Tracer.absorb`).

**Bit-identity discipline.**  The executor itself never touches an RNG
stream: callers draw randomness in the parent (preserving the exact
serial stream positions) or derive per-chunk counter-based substreams
(``SeedSequence.spawn`` children, one per grid cell), and workers
evaluate deterministically.  Results return in task order, so
``executor.map(fn, tasks)`` equals ``[fn(t, shared) for t in tasks]``
bit-for-bit — pinned at 1/2/4 workers by ``tests/exec``.

**Fault tolerance.**  Because every task is a pure function of its
index, re-execution is exactness-preserving — so the process backend
survives crashed and hung workers.  Tasks are dispatched individually
(``apply_async``) and collected by a poll loop that watches the pool's
worker PIDs: a SIGKILLed worker changes the PID set, at which point the
pool is respawned and every in-flight task is resubmitted (a task that
happened to complete twice is harmless: only the accepted execution's
result/metrics/spans are merged).  Per-task ``task_timeout_s`` treats a
stuck worker the same way.  Failures are retried on a bounded,
deterministic jittered-backoff schedule (:class:`~repro.resilience.retry.RetryPolicy`);
a task that exhausts its budget either re-raises in the parent
(default) or — with ``quarantine=True`` — yields a :class:`TaskFailure`
sentinel in its slot so a single poison cell cannot abort a 52-minute
grid.  The counters ``exec.retries``, ``exec.worker_deaths``,
``exec.timeouts`` and ``exec.poisoned`` record every such event and
flow into run manifests.

**Error propagation.**  With ``quarantine=False`` a task that exhausts
retries re-raises in the parent (the pool's remote-traceback plumbing),
after which the executor tears the map call down and unlinks any shared
segments — a crash of one worker never strands shared memory or
deadlocks siblings.

Workers reset the global metrics registry at the start of *every* task
(tasks run sequentially within a worker), so the end-of-task dump *is*
the task's delta; the parent folds each delta in as results arrive.
Fork-inherited tracers are disarmed in the worker initializer
(:func:`repro.obs.trace.drop_inherited_tracer`) so child spans are
buffered in memory and shipped — never double-written to the parent's
JSONL stream.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass

from repro.obs.metrics import REGISTRY, reset_metrics
from repro.obs.trace import (
    current_tracer,
    disable_tracing,
    drop_inherited_tracer,
    enable_tracing,
    span,
    tracing_enabled,
)
from repro.exec.shm import SharedArrayPack, attach_shared
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy

__all__ = [
    "ChunkExecutor",
    "TaskFailure",
    "TaskTimeoutError",
    "WorkerLostError",
    "effective_workers",
    "make_executor",
]

#: Poll cadence of the process-backend collection loop (seconds).
_POLL_S = 0.02


class WorkerLostError(RuntimeError):
    """A pool worker died (SIGKILL/OOM) and the task's retries ran out."""


class TaskTimeoutError(TimeoutError):
    """A task exceeded ``task_timeout_s`` and its retries ran out."""


@dataclass(frozen=True)
class TaskFailure:
    """Quarantine sentinel: the result slot of a poisoned task.

    Returned (in order, in place of a result) by ``map`` when
    ``quarantine=True`` and the task failed every attempt.  ``kind`` is
    ``"exception"``, ``"worker_lost"`` or ``"timeout"``; ``error`` is
    the stringified final failure.
    """

    index: int
    kind: str
    error: str
    retries: int


def effective_workers(workers: int | None) -> int:
    """Resolve a ``--workers`` value (``None``/``0`` → the CPU count)."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def make_executor(
    workers: int | None,
    *,
    task_timeout_s: float | None = None,
    retry: RetryPolicy | None = None,
    quarantine: bool = False,
) -> "ChunkExecutor":
    """The conventional ``--workers N`` mapping used by every driver.

    ``None``/``0``/``1`` → the serial backend; ``N > 1`` → a process
    pool of ``N`` workers.  (``0`` resolves to the CPU count first, so
    ``--workers 0`` means "all cores" and only falls back to serial on
    a single-core box.)  ``task_timeout_s``/``retry``/``quarantine``
    pass through to :class:`ChunkExecutor`.
    """
    resolved = effective_workers(workers)
    if resolved <= 1:
        return ChunkExecutor(
            backend="serial",
            task_timeout_s=task_timeout_s,
            retry=retry,
            quarantine=quarantine,
        )
    return ChunkExecutor(
        backend="process",
        workers=resolved,
        task_timeout_s=task_timeout_s,
        retry=retry,
        quarantine=quarantine,
    )


def _worker_init() -> None:
    """Per-process initialisation, run once right after fork."""
    drop_inherited_tracer()
    reset_metrics()


def _run_task(payload):
    """Worker-side task wrapper: metrics delta + buffered span capture."""
    fn, arg, descriptor, capture_spans, index, attempt = payload
    fault_point("exec.task.pre", index=index, attempt=attempt)
    shared = attach_shared(descriptor)
    reset_metrics()
    tracer = enable_tracing(None) if capture_spans else None
    try:
        result = fn(arg, shared)
    finally:
        if tracer is not None:
            disable_tracing()
    fault_point("exec.task.post", index=index, attempt=attempt)
    records = tracer.finished if tracer is not None else []
    return result, REGISTRY.dump(), records


class _TaskState:
    """Parent-side bookkeeping for one task of one ``map`` call."""

    __slots__ = (
        "index", "task", "attempt", "failures",
        "async_result", "submitted_at", "retry_at", "done", "value",
    )

    def __init__(self, index, task):
        self.index = index
        self.task = task
        self.attempt = 0          # execution count (fault-rule matching)
        self.failures = 0         # charged failures (retry budget)
        self.async_result = None  # in-flight handle, else None
        self.submitted_at = 0.0
        self.retry_at = 0.0       # backoff gate for the next submission
        self.done = False
        self.value = None         # (result, metrics, spans) | TaskFailure


class ChunkExecutor:
    """Ordered ``map`` of chunk tasks over a serial or process backend.

    Parameters
    ----------
    backend:
        ``"serial"`` or ``"process"``.
    workers:
        Pool size for the process backend (default: the CPU count).
        Ignored by the serial backend.
    task_timeout_s:
        Per-task wall-clock budget for a single execution attempt;
        ``None`` (default) disables the hung-task watchdog.
    retry:
        The :class:`~repro.resilience.retry.RetryPolicy` governing
        re-execution of failed/lost/timed-out tasks (default policy:
        2 retries, 50 ms seeded-jitter exponential backoff).
    quarantine:
        When ``True``, a task that exhausts its retries yields a
        :class:`TaskFailure` in its result slot instead of aborting the
        whole map.  Default ``False`` preserves raise-through semantics.

    Use as a context manager, or call :meth:`close` when done; the
    process pool is created lazily on first :meth:`map` and reused
    across calls (workers keep their attached shared segments and warm
    caches between maps).
    """

    def __init__(
        self,
        *,
        backend: str = "serial",
        workers: int | None = None,
        task_timeout_s: float | None = None,
        retry: RetryPolicy | None = None,
        quarantine: bool = False,
    ):
        if backend not in ("serial", "process"):
            raise ValueError(
                f"unknown backend {backend!r}; use serial/process"
            )
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError(f"task_timeout_s must be > 0, got {task_timeout_s}")
        self.backend = backend
        self.workers = effective_workers(workers) if backend == "process" else 1
        self.task_timeout_s = task_timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.quarantine = quarantine
        self._pool = None
        if backend == "process":
            methods = multiprocessing.get_all_start_methods()
            if "fork" not in methods:  # pragma: no cover - non-POSIX
                raise RuntimeError(
                    "the process backend needs the fork start method "
                    f"(available: {methods}); use backend='serial'"
                )

    # ------------------------------------------------------------------
    def map(self, fn, tasks, *, shared=None, on_result=None) -> list:
        """``[fn(task, shared_arrays) for task in tasks]``, maybe sharded.

        Parameters
        ----------
        fn:
            A **module-level** callable ``fn(task, shared) -> result``
            (workers import it by reference).  ``shared`` is a
            ``dict[str, np.ndarray]`` or ``None``.
        tasks:
            The per-chunk arguments, in result order.
        shared:
            Optional dict of large read-only arrays.  The serial
            backend passes it through untouched; the process backend
            exports it to shared memory for the duration of the call.
        on_result:
            Optional ``on_result(index, value)`` callback invoked for
            each accepted result **in task order** as soon as every
            earlier task has completed — the hook incremental
            checkpointing hangs off, so an interrupt mid-map keeps the
            finished prefix.  ``value`` is the task's result, or a
            :class:`TaskFailure` under quarantine.

        Results come back in task order regardless of which worker ran
        what — the property every seed-equivalence pin relies on.
        """
        tasks = list(tasks)
        if self.backend == "serial":
            return self._map_serial(fn, tasks, shared, on_result)
        return self._map_process(fn, tasks, shared, on_result)

    # -- serial backend ------------------------------------------------
    def _map_serial(self, fn, tasks, shared, on_result) -> list:
        results = []
        for index, task in enumerate(tasks):
            attempt = 0
            while True:
                try:
                    fault_point("exec.task.pre", index=index, attempt=attempt)
                    value = fn(task, shared)
                    fault_point("exec.task.post", index=index, attempt=attempt)
                    break
                except Exception as exc:
                    failures = attempt + 1
                    if self.retry.allows(failures):
                        REGISTRY.counter("exec.retries").add()
                        time.sleep(self.retry.backoff_s(index, failures - 1))
                        attempt += 1
                        continue
                    if not self.quarantine:
                        raise
                    REGISTRY.counter("exec.poisoned").add()
                    value = TaskFailure(
                        index=index, kind="exception",
                        error=f"{type(exc).__name__}: {exc}", retries=attempt,
                    )
                    break
            results.append(value)
            if on_result is not None:
                on_result(index, value)
        return results

    # -- process backend -----------------------------------------------
    def _map_process(self, fn, tasks, shared, on_result) -> list:
        if not tasks:
            return []
        self._ensure_pool()
        pack = SharedArrayPack(shared) if shared else None
        descriptor = pack.descriptor if pack is not None else None
        capture = tracing_enabled()
        tracer = current_tracer()
        results = []
        try:
            with span(
                "exec.map",
                backend=self.backend,
                workers=self.workers,
                tasks=len(tasks),
            ):
                states = [_TaskState(i, t) for i, t in enumerate(tasks)]
                for st in states:
                    self._submit(st, fn, descriptor, capture)
                known_pids = self._pool_pids()
                next_emit = 0
                while next_emit < len(states):
                    now = time.monotonic()
                    # 1. Worker-death watch: a SIGKILLed/OOMed worker
                    # changes the pool's PID set (or shows not-alive).
                    # Its in-flight task is silently lost by
                    # multiprocessing.Pool, so rebuild the pool and
                    # resubmit everything unfinished.
                    pids = self._pool_pids()
                    if pids != known_pids:
                        REGISTRY.counter("exec.worker_deaths").add()
                        self._handle_pool_loss(states, "worker_lost")
                        known_pids = self._pool_pids()
                        continue  # step 4 resubmits the invalidated tasks
                    # 2. Hung-task watchdog.
                    if self.task_timeout_s is not None:
                        timed_out = [
                            st for st in states
                            if st.async_result is not None and not st.done
                            and now - st.submitted_at > self.task_timeout_s
                        ]
                        if timed_out:
                            REGISTRY.counter("exec.timeouts").add(len(timed_out))
                            for st in timed_out:
                                st.failures += 1
                            # The stuck worker only dies with the pool;
                            # siblings' in-flight work is lost too, but
                            # uncharged — they resubmit for free.
                            self._handle_pool_loss(
                                states, "timeout", charged=timed_out
                            )
                            known_pids = self._pool_pids()
                            continue
                    # 3. Collect ready results / failures.
                    progressed = False
                    for st in states:
                        if st.done or st.async_result is None:
                            continue
                        if not st.async_result.ready():
                            continue
                        progressed = True
                        try:
                            st.value = st.async_result.get()
                            st.done = True
                        except Exception as exc:
                            st.async_result = None
                            self._charge_failure(st, "exception", exc, now)
                    # 4. Backoff gates: resubmit tasks whose retry
                    # delay has elapsed.
                    for st in states:
                        if (
                            not st.done
                            and st.async_result is None
                            and now >= st.retry_at
                        ):
                            st.attempt += 1
                            REGISTRY.counter("exec.retries").add()
                            self._submit(st, fn, descriptor, capture)
                            progressed = True
                    # 5. Emit accepted results in task order; merge the
                    # accepted execution's metrics/spans exactly once.
                    while next_emit < len(states) and states[next_emit].done:
                        st = states[next_emit]
                        if isinstance(st.value, TaskFailure):
                            value = st.value
                        else:
                            value, metrics_dump, records = st.value
                            REGISTRY.merge(metrics_dump)
                            if tracer is not None:
                                tracer.absorb(records)
                        results.append(value)
                        if on_result is not None:
                            on_result(st.index, value)
                        st.value = None
                        next_emit += 1
                        progressed = True
                    if not progressed:
                        time.sleep(_POLL_S)
        except BaseException:
            # A worker crash (or parent interrupt) may leave tasks in
            # flight; terminate so the pool cannot touch the shared
            # segments after they are unlinked below.
            self.close()
            raise
        finally:
            if pack is not None:
                pack.close()
        return results

    # -- process-backend internals -------------------------------------
    def _ensure_pool(self) -> None:
        if self._pool is None:
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(self.workers, initializer=_worker_init)

    def _pool_pids(self):
        try:
            procs = list(self._pool._pool)
            if any(not p.is_alive() for p in procs):
                return None  # never equals a pid tuple: forces the loss path
            return tuple(sorted(p.pid for p in procs))
        except Exception:  # pragma: no cover - pool mid-mutation
            return None

    def _submit(self, st: _TaskState, fn, descriptor, capture) -> None:
        payload = (fn, st.task, descriptor, capture, st.index, st.attempt)
        st.async_result = self._pool.apply_async(_run_task, (payload,))
        st.submitted_at = time.monotonic()

    def _handle_pool_loss(self, states, kind, charged=None) -> None:
        """Respawn the pool; charge (or just invalidate) in-flight tasks.

        ``charged=None`` (worker death — the lost task cannot be
        attributed) charges every in-flight task one failure; a list
        charges only those tasks.  A charged task over budget fails
        terminally here.
        """
        self._respawn_pool()
        for st in states:
            if st.done or st.async_result is None:
                continue
            st.async_result = None
            if charged is None:
                st.failures += 1
            elif st not in charged:
                continue
            if not self.retry.allows(st.failures):
                exc = (
                    TaskTimeoutError(
                        f"task {st.index} exceeded {self.task_timeout_s}s "
                        f"on {st.failures} attempts"
                    )
                    if kind == "timeout"
                    else WorkerLostError(
                        f"task {st.index} lost to worker death "
                        f"{st.failures} times"
                    )
                )
                self._finalize_failure(st, kind, exc)

    def _charge_failure(self, st: _TaskState, kind, exc, now) -> None:
        st.failures += 1
        if self.retry.allows(st.failures):
            st.retry_at = now + self.retry.backoff_s(st.index, st.failures - 1)
            return
        self._finalize_failure(st, kind, exc)

    def _finalize_failure(self, st: _TaskState, kind, exc) -> None:
        if not self.quarantine:
            raise exc
        REGISTRY.counter("exec.poisoned").add()
        st.value = TaskFailure(
            index=st.index, kind=kind,
            error=f"{type(exc).__name__}: {exc}", retries=st.failures - 1,
        )
        st.done = True

    def _respawn_pool(self) -> None:
        if self._pool is not None:
            try:
                self._pool.terminate()
                self._pool.join()
            except Exception:  # pragma: no cover - teardown race
                pass
            self._pool = None
        self._ensure_pool()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear the process pool down (idempotent; serial is a no-op)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ChunkExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
