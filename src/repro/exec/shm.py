"""Read-only NumPy arrays shared with worker processes without pickling.

The process backend of :class:`repro.exec.executor.ChunkExecutor` ships
each chunk's *own* data (packed keep bits, RNG substream seeds) through
the normal pickle channel — those are small.  What must **not** travel
per task are the large read-only constants every chunk shares: the
candidate-pair endpoint arrays, the sorted union incidence, the graph
edge array.  :class:`SharedArrayPack` copies those once into
``multiprocessing.shared_memory`` segments; workers attach by name and
get zero-copy NumPy views.

Lifecycle (see the README "Parallel execution" section):

* the parent creates the pack (one copy per array), passes its
  *descriptor* (names/shapes/dtypes — tiny and picklable) to workers,
  and calls :meth:`SharedArrayPack.close` (which unlinks) when the
  ``map`` call completes — normally via the executor, in a ``finally``;
* workers attach lazily, cache the attachment for the pack's lifetime
  (one attach per worker, not per chunk), and drop it when a new pack
  supersedes it;
* attachment suppresses ``resource_tracker`` registration in the
  child — the parent owns the segment, and fork children share the
  parent's tracker process, so worker-side registrations would corrupt
  its per-name accounting (a well-known CPython wart, fixed upstream
  only in 3.13's ``track=False``).

On Linux the segments live in ``/dev/shm``; a crashed *parent* can
therefore leak them until reboot.  The executor minimises the window by
unlinking in ``finally``, and ``SharedArrayPack`` doubles as a context
manager for direct use.
"""

from __future__ import annotations

import secrets
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.resilience.faults import fault_point

__all__ = ["SharedArrayPack", "attach_shared"]


class SharedArrayPack:
    """A named set of read-only arrays exported to shared memory."""

    def __init__(self, arrays: dict[str, np.ndarray]):
        #: Unique id: worker-side attachment caches key on this.
        self.uid = f"repro-{secrets.token_hex(8)}"
        self._segments: list[shared_memory.SharedMemory] = []
        self.descriptor: dict = {"uid": self.uid, "arrays": {}}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            seg = shared_memory.SharedMemory(
                create=True, size=max(array.nbytes, 1), name=f"{self.uid}-{len(self._segments)}"
            )
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
            view[...] = array
            self._segments.append(seg)
            self.descriptor["arrays"][name] = {
                "segment": seg.name,
                "shape": tuple(array.shape),
                "dtype": str(array.dtype),
            }

    def close(self) -> None:
        """Release and unlink every segment (idempotent)."""
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments = []

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class _Attachment:
    """A worker's view of one pack: open segments + array views."""

    def __init__(self, descriptor: dict):
        self.uid = descriptor["uid"]
        self.segments: list[shared_memory.SharedMemory] = []
        self.arrays: dict[str, np.ndarray] = {}
        for name, spec in descriptor["arrays"].items():
            # Fork children inherit the PARENT's resource-tracker pipe,
            # so attaching must not register the segment at all: the
            # tracker's cache is a set, and a register/unregister pair
            # from each worker would collapse into one entry and strand
            # the parent's own unregister on a KeyError.  Suppressing
            # registration during the open (the 3.13 ``track=False``
            # behaviour, hand-rolled for 3.11) leaves the parent as the
            # segment's sole owner.
            orig_register = resource_tracker.register
            resource_tracker.register = lambda *a, **k: None
            try:
                seg = shared_memory.SharedMemory(name=spec["segment"])
            finally:
                resource_tracker.register = orig_register
            self.segments.append(seg)
            view = np.ndarray(
                spec["shape"], dtype=np.dtype(spec["dtype"]), buffer=seg.buf
            )
            view.flags.writeable = False
            self.arrays[name] = view

    def close(self) -> None:
        self.arrays = {}
        for seg in self.segments:
            try:
                seg.close()
            except Exception:  # pragma: no cover
                pass
        self.segments = []


#: The worker's single cached attachment (packs supersede each other:
#: one ``map`` call is in flight at a time per executor).
_CACHED: _Attachment | None = None


def attach_shared(descriptor: dict | None) -> dict[str, np.ndarray] | None:
    """Worker-side: the descriptor's arrays as read-only views (cached)."""
    global _CACHED
    if descriptor is None:
        return None
    # Chaos site: a delay here widens the attach-vs-unlink race the
    # executor's retry path must absorb (FileNotFoundError → re-run).
    fault_point("exec.shm.attach", key=descriptor["uid"])
    if _CACHED is None or _CACHED.uid != descriptor["uid"]:
        if _CACHED is not None:
            _CACHED.close()
        _CACHED = _Attachment(descriptor)
    return _CACHED.arrays
