"""Fault tolerance primitives: atomic writes, retry, checkpoints, faults.

The package holds the pieces the execution and serving layers compose
into a failure story (see the README "Resilience" section):

* :mod:`repro.resilience.atomic` — crash-safe file publication
  (write-temp + ``os.replace``) for every receipt the repo emits;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, deterministic
  seeded-jitter exponential backoff shared by the executor and the
  serve client;
* :mod:`repro.resilience.checkpoint` — :class:`CheckpointStore`, the
  atomic per-cell JSONL + ``.npz`` record store behind
  ``--checkpoint``/``--resume``;
* :mod:`repro.resilience.faults` — :class:`FaultPlan`, the seeded
  deterministic fault-injection harness driving the chaos smokes.

Nothing here draws from a live RNG: backoff jitter and fault firing
are pure hash functions of (seed, site/key, attempt), so a retried or
resumed run reproduces the fault-free run bit for bit.
"""

from repro.resilience.atomic import atomic_write_bytes, atomic_write_text
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faults import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    fault_point,
    install_fault_plan,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CheckpointStore",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "active_plan",
    "atomic_write_bytes",
    "atomic_write_text",
    "fault_point",
    "install_fault_plan",
]
