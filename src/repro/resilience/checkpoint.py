"""Atomic per-cell checkpoint records behind ``--checkpoint``/``--resume``.

A :class:`CheckpointStore` is a directory holding one JSONL ledger
(``cells.jsonl``) plus one ``.npz`` blob per cell that carries arrays.
Every :meth:`record` republishes the whole ledger through the atomic
write helper, so an interrupt (SIGINT, SIGKILL, power loss) at *any*
instant leaves either the previous or the new ledger — never a torn
one.  A torn trailing line from a pre-atomic writer is tolerated on
load (skipped), matching the crash model.

Exactness: scalars ride JSON (``repr``-based float formatting
round-trips every float64 exactly) and arrays ride ``.npz`` (raw
dtype bytes), so a restored cell is bit-identical to a recomputed one —
the property the ``--resume`` byte-identity pin leans on.

The ledger's first record is a *fingerprint* of the run configuration
(datasets, grid, seed, worlds…).  ``--resume`` against a store written
by a different configuration is refused loudly rather than silently
mixing grids.
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
from pathlib import Path

import numpy as np

from repro.resilience.atomic import atomic_write_bytes, atomic_write_text

__all__ = ["CheckpointStore"]


class CheckpointStore:
    """Keyed, atomic, resumable per-cell results under one directory."""

    def __init__(self, directory):
        self.dir = Path(directory)
        self.ledger = self.dir / "cells.jsonl"
        self.arrays_dir = self.dir / "arrays"
        self._records: dict[str, dict] = {}
        self._fingerprint: dict | None = None
        self._load()

    # -- loading -------------------------------------------------------
    def _load(self) -> None:
        if not self.ledger.exists():
            return
        for line in self.ledger.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                # A torn trailing line from an interrupted legacy write:
                # drop it; the cell recomputes deterministically.
                continue
            if rec.get("kind") == "fingerprint":
                self._fingerprint = rec.get("config")
            elif rec.get("kind") == "cell":
                self._records[rec["key"]] = rec["payload"]

    # -- lifecycle -----------------------------------------------------
    def begin(self, fingerprint: dict, *, resume: bool) -> None:
        """Open the store for a run described by ``fingerprint``.

        With ``resume=False`` any prior records are discarded; with
        ``resume=True`` records are kept but a fingerprint mismatch —
        a different grid/seed/scale — raises ``ValueError`` instead of
        resuming the wrong run.
        """
        if resume and self._fingerprint is not None and self._fingerprint != fingerprint:
            raise ValueError(
                f"checkpoint at {self.dir} was written by a different run "
                f"configuration; refusing --resume "
                f"(stored {self._fingerprint!r} != current {fingerprint!r})"
            )
        if not resume:
            self._records = {}
            if self.arrays_dir.exists():
                for blob in self.arrays_dir.glob("*.npz"):
                    blob.unlink()
        self._fingerprint = fingerprint
        self._flush()

    # -- records -------------------------------------------------------
    def record(self, key: str, payload: dict, arrays: dict | None = None) -> None:
        """Persist one completed cell (atomically, immediately)."""
        payload = dict(payload)
        if arrays:
            blob_name = self._blob_name(key)
            buf = io.BytesIO()
            np.savez(buf, **{k: np.asarray(v) for k, v in arrays.items()})
            atomic_write_bytes(self.arrays_dir / blob_name, buf.getvalue())
            payload["__arrays__"] = blob_name
        self._records[key] = payload
        self._flush()

    def restore(self, key: str):
        """``(payload, arrays)`` for a completed cell, else ``None``."""
        payload = self._records.get(key)
        if payload is None:
            return None
        payload = dict(payload)
        arrays = {}
        blob_name = payload.pop("__arrays__", None)
        if blob_name is not None:
            blob_path = self.arrays_dir / blob_name
            try:
                with np.load(blob_path) as npz:
                    arrays = {k: npz[k] for k in npz.files}
            except (FileNotFoundError, ValueError, OSError, zipfile.BadZipFile):
                # The ledger committed but the blob did not (or is
                # torn): treat the cell as incomplete and recompute.
                return None
        return payload, arrays

    def completed_keys(self) -> set:
        return set(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    # -- internals -----------------------------------------------------
    @staticmethod
    def _blob_name(key: str) -> str:
        return hashlib.blake2b(key.encode(), digest_size=8).hexdigest() + ".npz"

    def _flush(self) -> None:
        lines = [json.dumps({"kind": "fingerprint", "config": self._fingerprint}, sort_keys=True)]
        for key in sorted(self._records):
            lines.append(
                json.dumps(
                    {"kind": "cell", "key": key, "payload": self._records[key]},
                    sort_keys=True,
                )
            )
        atomic_write_text(self.ledger, "\n".join(lines) + "\n")
