"""Deterministic retry budgets with seeded-jitter exponential backoff.

One policy object serves both retry surfaces — the executor's task
re-execution and the serve client's reconnect loop.  The backoff delay
is a *pure function* of ``(seed, key, attempt)``: capped exponential
growth scaled by a hashed jitter factor, no live RNG.  Two runs with
the same seed sleep the same milliseconds; two concurrent keys spread
out instead of thundering in phase.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic jittered exponential backoff.

    ``backoff_s(key, attempt)`` for attempt ``a`` lies in
    ``[base * 2**a * (1 - jitter), base * 2**a]``, capped at
    ``max_delay_s`` before jitter is applied.
    """

    max_retries: int = 2
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, key, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based) of ``key``."""
        raw = min(self.base_delay_s * (2.0**attempt), self.max_delay_s)
        blob = f"{self.seed}|{key!r}|{attempt}".encode()
        digest = hashlib.blake2b(blob, digest_size=8).digest()
        unit = int.from_bytes(digest, "big") / 2**64
        return raw * (1.0 - self.jitter * unit)

    def allows(self, failures: int) -> bool:
        """Whether a task that failed ``failures`` times may run again."""
        return failures <= self.max_retries
