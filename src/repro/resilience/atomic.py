"""Crash-safe file publication: write a temp sibling, then ``os.replace``.

Every receipt the repo emits — ``manifest.json``, results CSVs,
checkpoint records — goes through these two helpers, so a reader can
never observe a half-written file: POSIX ``rename(2)`` within one
directory is atomic, and the temp file lives *next to* the target (same
filesystem) so the replace never degrades to a copy.

A crash between the temp write and the replace leaves only a
``.<name>.tmp-<pid>`` stray, never a truncated target.  The
``io.atomic.truncate`` fault site simulates the *pre-fix* behaviour — a
direct partial write to the final path followed by a crash — which is
what ``repro trace``'s partial-manifest rejection is tested against.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.resilience.faults import FaultInjected, fault_point

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Publish ``data`` at ``path`` atomically (temp sibling + replace)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if fault_point("io.atomic.truncate", key=path.name):
        # Simulated crash mid-write of a NON-atomic writer: half the
        # payload lands at the final path, then the "process dies".
        with open(path, "wb") as fh:
            fh.write(data[: max(1, len(data) // 2)])
        raise FaultInjected("io.atomic.truncate", path.name)
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass


def atomic_write_text(
    path: str | os.PathLike, text: str, encoding: str = "utf-8"
) -> None:
    """Publish ``text`` at ``path`` atomically."""
    atomic_write_bytes(path, text.encode(encoding))
