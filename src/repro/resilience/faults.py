"""Deterministic fault injection: a seeded plan over named fault sites.

Production code is instrumented with cheap :func:`fault_point` calls at
the places where real systems break::

    exec.task.pre        worker, before a task body runs
    exec.task.post       worker, after the body, before the result ships
    exec.shm.attach      worker, before attaching a shared-memory pack
    serve.conn.drop      server, before writing a response line
    io.atomic.truncate   the atomic write helper (simulated torn write)

With no plan installed a site is a single module-global read — the
``perf_gate.py --fault-overhead`` gate pins the disabled-path cost at
≤5%.  With a plan installed, whether a site *fires* is a pure function
of ``(plan.seed, site, key, index, attempt)`` — no live RNG — so a
chaos run is replayable and a retried task does not re-trip a
first-attempt-only kill rule.

Plans travel to subprocesses through the ``REPRO_FAULT_PLAN``
environment variable (JSON); fork-pool workers inherit the installed
plan directly.  Actions:

* ``kill``  — ``SIGKILL`` the current process (worker crash).
* ``delay`` — sleep ``param`` seconds (straggler / race widening).
* ``raise`` — raise :class:`FaultInjected` (transient task error).
* ``flag``  — return ``True`` from the site; the caller implements the
  site-specific misbehaviour (drop a connection, tear a write).
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field

from repro.obs.metrics import REGISTRY

__all__ = [
    "ENV_VAR",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "fault_point",
    "install_fault_plan",
]

ENV_VAR = "REPRO_FAULT_PLAN"

_ACTIONS = ("kill", "delay", "raise", "flag")


class FaultInjected(RuntimeError):
    """Raised by a firing ``raise``-action fault site."""

    def __init__(self, site: str, key=None):
        self.site = site
        self.key = key
        super().__init__(f"injected fault at {site!r}" + (f" (key={key!r})" if key is not None else ""))

    def __reduce__(self):
        # Preserve (site, key) through the pool's remote-traceback
        # pickling instead of re-wrapping the rendered message.
        return (type(self), (self.site, self.key))


@dataclass(frozen=True)
class FaultRule:
    """One activation rule: *where* and *when* a fault fires.

    ``indices``/``attempts`` of ``None`` match anything; ``attempts``
    defaults to ``(0,)`` so a kill rule does not chase its own retry.
    ``times`` caps firings per process; ``probability`` thins firings
    deterministically through a seeded hash.
    """

    site: str
    action: str = "raise"
    indices: tuple | None = None
    attempts: tuple | None = (0,)
    key: str | None = None
    times: int | None = None
    probability: float = 1.0
    param: float = 0.0

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; use one of {_ACTIONS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.indices is not None:
            object.__setattr__(self, "indices", tuple(self.indices))
        if self.attempts is not None:
            object.__setattr__(self, "attempts", tuple(self.attempts))

    def matches(self, site: str, key, index, attempt: int) -> bool:
        if site != self.site:
            return False
        if self.key is not None and key != self.key:
            return False
        if self.indices is not None and index not in self.indices:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True


def _unit_hash(*parts) -> float:
    """A uniform float in ``[0, 1)`` as a pure function of ``parts``."""
    blob = "|".join(repr(p) for p in parts).encode()
    digest = hashlib.blake2b(blob, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s, JSON-portable."""

    seed: int = 0
    rules: tuple = ()
    _fired: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self):
        self.rules = tuple(
            r if isinstance(r, FaultRule) else FaultRule(**r) for r in self.rules
        )

    # -- wire format ---------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "rules": [
                    {
                        "site": r.site,
                        "action": r.action,
                        "indices": list(r.indices) if r.indices is not None else None,
                        "attempts": list(r.attempts) if r.attempts is not None else None,
                        "key": r.key,
                        "times": r.times,
                        "probability": r.probability,
                        "param": r.param,
                    }
                    for r in self.rules
                ],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, raw: str) -> "FaultPlan":
        data = json.loads(raw)
        rules = []
        for spec in data.get("rules", ()):
            spec = dict(spec)
            for key in ("indices", "attempts"):
                if spec.get(key) is not None:
                    spec[key] = tuple(spec[key])
            rules.append(FaultRule(**spec))
        return cls(seed=int(data.get("seed", 0)), rules=tuple(rules))

    # -- firing --------------------------------------------------------
    def fire(self, site: str, *, key=None, index=None, attempt: int = 0):
        """The matching rule that fires here, or ``None``."""
        for pos, rule in enumerate(self.rules):
            if not rule.matches(site, key, index, attempt):
                continue
            if rule.times is not None and self._fired.get(pos, 0) >= rule.times:
                continue
            if rule.probability < 1.0:
                if _unit_hash(self.seed, site, key, index, attempt) >= rule.probability:
                    continue
            self._fired[pos] = self._fired.get(pos, 0) + 1
            return rule
        return None


#: The process-wide plan.  ``None`` + env-not-yet-checked is the cold
#: state; after the first check the hot no-plan path is one global read.
_PLAN: FaultPlan | None = None
_ENV_LOADED = False


def install_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install (or with ``None`` clear) the process-wide fault plan.

    An explicit install overrides the ``REPRO_FAULT_PLAN`` environment
    variable for this process.
    """
    global _PLAN, _ENV_LOADED
    _PLAN = plan
    _ENV_LOADED = True
    return plan


def active_plan() -> FaultPlan | None:
    """The installed plan, loading ``REPRO_FAULT_PLAN`` once if unset."""
    global _PLAN, _ENV_LOADED
    if not _ENV_LOADED:
        _ENV_LOADED = True
        raw = os.environ.get(ENV_VAR)
        if raw:
            _PLAN = FaultPlan.from_json(raw)
    return _PLAN


def fault_point(site: str, *, key=None, index=None, attempt: int = 0) -> bool:
    """A named fault site.  Returns ``True`` iff a ``flag`` rule fired.

    ``kill``/``delay``/``raise`` actions are executed here; callers of
    ``flag`` sites implement the misbehaviour themselves.
    """
    plan = _PLAN
    if plan is None:
        if _ENV_LOADED:
            return False
        plan = active_plan()
        if plan is None:
            return False
    rule = plan.fire(site, key=key, index=index, attempt=attempt)
    if rule is None:
        return False
    REGISTRY.counter("faults.injected").add()
    if rule.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(60)  # pragma: no cover - SIGKILL delivery is async
    elif rule.action == "delay":
        time.sleep(rule.param)
        return False
    elif rule.action == "raise":
        raise FaultInjected(site, key)
    return True
