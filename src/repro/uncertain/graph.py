"""The uncertain graph ``G̃ = (V, p)`` (Definition 1 of the paper).

An uncertain graph assigns to every unordered vertex pair a probability
of being an edge.  Following §3 of the paper, only a sparse candidate set
``E_C ⊆ V2`` carries explicit probabilities; every other pair implicitly
has ``p = 0`` ("certain non-edge").  The class therefore stores a dict
keyed by ordered pairs ``(u, v), u < v`` and answers ``probability`` in
O(1) with a 0 default.

Possible-world semantics: each pair ``e ∈ E_C`` is an independent
Bernoulli with parameter ``p(e)``; a possible world is a subset
``E_W ⊆ E_C`` with probability ``Π_{e∈E_W} p(e) · Π_{e∉E_W} (1−p(e))``
(Equation 1).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.validation import check_probability, check_vertex


def _ordered(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


class UncertainGraph:
    """Sparse uncertain graph over vertices ``{0, ..., n-1}``.

    Parameters
    ----------
    n:
        Number of vertices (shared with the original graph G).

    Notes
    -----
    * Assigning probability ``0`` removes the pair from the candidate
      set — a pair with ``p = 0`` and an absent pair are semantically
      identical and the class keeps them identical physically, so
      ``num_candidate_pairs`` always counts pairs with ``p > 0`` unless
      explicitly retained via :meth:`set_probability` with
      ``keep_zero=True`` (Alg. 2 stores deleted true edges this way to
      honour ``|E_C| = c|E|`` accounting).
    """

    __slots__ = ("_n", "_probs", "_incident")

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"number of vertices must be non-negative, got {n}")
        self._n = int(n)
        self._probs: dict[tuple[int, int], float] = {}
        self._incident: list[set[tuple[int, int]]] = [set() for _ in range(n)]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "UncertainGraph":
        """Lift a certain graph: every edge gets probability 1."""
        ug = cls(graph.num_vertices)
        for u, v in graph.edges():
            ug.set_probability(u, v, 1.0)
        return ug

    @classmethod
    def from_pairs(
        cls, n: int, pairs: Iterable[tuple[int, int, float]]
    ) -> "UncertainGraph":
        """Build from ``(u, v, p)`` triples."""
        ug = cls(n)
        for u, v, p in pairs:
            ug.set_probability(u, v, p)
        return ug

    def copy(self) -> "UncertainGraph":
        """Deep copy."""
        ug = UncertainGraph(self._n)
        ug._probs = dict(self._probs)
        ug._incident = [set(s) for s in self._incident]
        return ug

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_candidate_pairs(self) -> int:
        """Number of pairs carrying an explicit probability (``|E_C|``)."""
        return len(self._probs)

    def probability(self, u: int, v: int) -> float:
        """``p(u, v)``; pairs outside the candidate set return 0."""
        u = check_vertex(u, self._n, "u")
        v = check_vertex(v, self._n, "v")
        if u == v:
            raise ValueError("pairs must have distinct endpoints")
        return self._probs.get(_ordered(u, v), 0.0)

    def candidate_pairs(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(u, v, p)`` triples of the candidate set (u < v)."""
        for (u, v), p in self._probs.items():
            yield (u, v, p)

    def incident_pairs(self, v: int) -> list[tuple[int, int, float]]:
        """Candidate pairs touching ``v`` as ``(u, w, p)`` triples."""
        check_vertex(v, self._n)
        return [(u, w, self._probs[(u, w)]) for (u, w) in self._incident[v]]

    def incident_probabilities(self, v: int) -> np.ndarray:
        """Probabilities of the candidate pairs incident to ``v``.

        This is the Bernoulli vector feeding the Poisson-binomial degree
        distribution of §4 (Equation 4 restricted to E_C).
        """
        check_vertex(v, self._n)
        return np.array(
            [self._probs[key] for key in self._incident[v]], dtype=np.float64
        )

    def expected_degree(self, v: int) -> float:
        """``E[d_v] = Σ p(e)`` over candidate pairs incident to v."""
        return float(self.incident_probabilities(v).sum())

    def expected_degrees(self) -> np.ndarray:
        """Vector of expected degrees for all vertices."""
        out = np.zeros(self._n, dtype=np.float64)
        for (u, v), p in self._probs.items():
            out[u] += p
            out[v] += p
        return out

    def expected_num_edges(self) -> float:
        """``E[S_NE] = Σ_e p(e)`` (the exact formula of §6.2)."""
        return float(sum(self._probs.values()))

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_probability(
        self, u: int, v: int, p: float, *, keep_zero: bool = False
    ) -> None:
        """Assign ``p(u, v) = p``.

        ``p = 0`` deletes the pair from the candidate set unless
        ``keep_zero`` is set (used when the zero must still count toward
        ``|E_C|`` bookkeeping, e.g. fully-deleted true edges in Alg. 2).
        """
        u = check_vertex(u, self._n, "u")
        v = check_vertex(v, self._n, "v")
        if u == v:
            raise ValueError("pairs must have distinct endpoints")
        check_probability(p, "p")
        key = _ordered(u, v)
        if p == 0.0 and not keep_zero:
            if key in self._probs:
                del self._probs[key]
                self._incident[u].discard(key)
                self._incident[v].discard(key)
            return
        self._probs[key] = float(p)
        self._incident[u].add(key)
        self._incident[v].add(key)

    # ------------------------------------------------------------------
    # possible-world semantics
    # ------------------------------------------------------------------
    def world_log_probability(self, world: Graph) -> float:
        """Natural-log probability of a possible world (Equation 1).

        ``world`` must be a graph on the same vertex set whose edges are
        a subset of the candidate pairs; otherwise the probability is 0
        (returns ``-inf``).
        """
        if world.num_vertices != self._n:
            raise ValueError("world must share the vertex set")
        log_p = 0.0
        world_edges = world.edge_set()
        for (u, v), p in self._probs.items():
            present = (u, v) in world_edges
            if present:
                if p == 0.0:
                    return -math.inf
                log_p += math.log(p)
            else:
                if p == 1.0:
                    return -math.inf
                log_p += math.log1p(-p)
        if world_edges - set(self._probs):
            return -math.inf
        return log_p

    def world_probability(self, world: Graph) -> float:
        """Probability of a possible world; see :meth:`world_log_probability`."""
        return math.exp(self.world_log_probability(world))

    def enumerate_worlds(self) -> Iterator[tuple[Graph, float]]:
        """Yield every possible world with its probability.

        Exponential in ``|E_C|`` — intended for tests and the worked
        examples of §3 only; guarded at 20 candidate pairs.
        """
        pairs = list(self._probs.items())
        if len(pairs) > 20:
            raise ValueError(
                f"refusing to enumerate 2^{len(pairs)} worlds; use sampling"
            )
        for mask in range(1 << len(pairs)):
            g = Graph(self._n)
            prob = 1.0
            for i, ((u, v), p) in enumerate(pairs):
                if mask >> i & 1:
                    prob *= p
                    if prob == 0.0:
                        break
                    g.add_edge(u, v)
                else:
                    prob *= 1.0 - p
                    if prob == 0.0:
                        break
            if prob > 0.0:
                yield g, prob

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UncertainGraph(n={self._n}, candidate_pairs={len(self._probs)}, "
            f"expected_edges={self.expected_num_edges():.2f})"
        )
