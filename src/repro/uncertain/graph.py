"""The uncertain graph ``G̃ = (V, p)`` (Definition 1 of the paper).

An uncertain graph assigns to every unordered vertex pair a probability
of being an edge.  Following §3 of the paper, only a sparse candidate set
``E_C ⊆ V2`` carries explicit probabilities; every other pair implicitly
has ``p = 0`` ("certain non-edge").

Possible-world semantics: each pair ``e ∈ E_C`` is an independent
Bernoulli with parameter ``p(e)``; a possible world is a subset
``E_W ⊆ E_C`` with probability ``Π_{e∈E_W} p(e) · Π_{e∉E_W} (1−p(e))``
(Equation 1).

Storage model
-------------
The class keeps **two interchangeable representations** of the candidate
set and materialises each lazily from the other:

* a dict keyed by ordered pairs ``(u, v), u < v`` — the mutation-friendly
  form behind :meth:`set_probability` / :meth:`probability`;
* flat **pair arrays** ``(us, vs, ps)`` — the vectorised form behind
  :meth:`pair_arrays` and :meth:`incident_probability_csr`, which the
  batched posterior engine and the world sampler consume.

``from_arrays`` builds only the array form, so the Algorithm-2 hot loop
(thousands of candidate graphs per binary-search probe) never pays a
Python-level dict insert per pair; the dict springs into existence only
if someone asks a per-pair question.  Mutation invalidates the cached
arrays.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.validation import check_probability, check_vertex


def _ordered(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


class UncertainGraph:
    """Sparse uncertain graph over vertices ``{0, ..., n-1}``.

    Parameters
    ----------
    n:
        Number of vertices (shared with the original graph G).

    Notes
    -----
    * Assigning probability ``0`` removes the pair from the candidate
      set — a pair with ``p = 0`` and an absent pair are semantically
      identical and the class keeps them identical physically, so
      ``num_candidate_pairs`` always counts pairs with ``p > 0`` unless
      explicitly retained via :meth:`set_probability` with
      ``keep_zero=True`` (Alg. 2 stores deleted true edges this way to
      honour ``|E_C| = c|E|`` accounting).
    """

    __slots__ = ("_n", "_probs", "_incident", "_arrays", "_csr")

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"number of vertices must be non-negative, got {n}")
        self._n = int(n)
        # Exactly one of _probs / _arrays may be None; both non-None means
        # both views are materialised and consistent.
        self._probs: dict[tuple[int, int], float] | None = {}
        self._incident: list[set[tuple[int, int]]] | None = None
        self._arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._csr: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "UncertainGraph":
        """Lift a certain graph: every edge gets probability 1."""
        edges = graph.edge_array()
        return cls.from_arrays(
            graph.num_vertices,
            edges[:, 0],
            edges[:, 1],
            np.ones(len(edges), dtype=np.float64),
        )

    @classmethod
    def from_pairs(
        cls, n: int, pairs: Iterable[tuple[int, int, float]]
    ) -> "UncertainGraph":
        """Build from ``(u, v, p)`` triples."""
        ug = cls(n)
        for u, v, p in pairs:
            ug.set_probability(u, v, p)
        return ug

    @classmethod
    def from_arrays(
        cls,
        n: int,
        us: np.ndarray,
        vs: np.ndarray,
        ps: np.ndarray,
        *,
        keep_zero: bool = False,
    ) -> "UncertainGraph":
        """Vectorised constructor from parallel ``(us, vs, ps)`` arrays.

        This is the Algorithm-2 fast path: validation, pair ordering and
        zero-dropping are single array passes, and **no dict is built** —
        the candidate set lives as the pair arrays until a per-pair query
        forces materialisation.

        Parameters
        ----------
        n:
            Number of vertices.
        us, vs:
            Pair endpoints (any order; normalised to ``u < v``).
        ps:
            Pair probabilities in [0, 1].
        keep_zero:
            Retain ``p = 0`` entries in the candidate set (Alg. 2 stores
            fully-deleted true edges this way); default drops them, like
            :meth:`set_probability`.

        Raises
        ------
        ValueError
            On length mismatch, out-of-range vertices/probabilities,
            self pairs, or duplicate pairs.
        """
        if n < 0:
            raise ValueError(f"number of vertices must be non-negative, got {n}")
        us = np.ascontiguousarray(us, dtype=np.int64).ravel()
        vs = np.ascontiguousarray(vs, dtype=np.int64).ravel()
        ps = np.ascontiguousarray(ps, dtype=np.float64).ravel()
        if not (len(us) == len(vs) == len(ps)):
            raise ValueError(
                f"us/vs/ps must have equal lengths, got "
                f"{len(us)}/{len(vs)}/{len(ps)}"
            )
        if len(us):
            if us.min(initial=0) < 0 or vs.min(initial=0) < 0:
                raise ValueError("vertex ids must be non-negative")
            if us.max(initial=-1) >= n or vs.max(initial=-1) >= n:
                raise ValueError(f"vertex ids must be < n={n}")
            if (us == vs).any():
                raise ValueError("pairs must have distinct endpoints")
            # NaN fails both comparisons, so it is rejected here too.
            if not ((ps >= 0.0) & (ps <= 1.0)).all():
                raise ValueError("probabilities must lie in [0, 1]")
        lo = np.minimum(us, vs)
        hi = np.maximum(us, vs)
        if not keep_zero:
            keep = ps != 0.0
            if not keep.all():
                lo, hi, ps = lo[keep], hi[keep], ps[keep]
        codes = lo * np.int64(n) + hi
        if len(np.unique(codes)) != len(codes):
            raise ValueError("duplicate pairs in from_arrays input")
        ug = cls(n)
        ug._probs = None
        ps = ps.copy()  # never freeze (or alias) the caller's buffer
        for arr in (lo, hi, ps):
            arr.setflags(write=False)
        ug._arrays = (lo, hi, ps)
        return ug

    @classmethod
    def _from_trusted_arrays(
        cls, n: int, us: np.ndarray, vs: np.ndarray, ps: np.ndarray
    ) -> "UncertainGraph":
        """Zero-validation constructor for callers that own their arrays.

        The Algorithm-2 array engine builds candidate sets whose pair
        arrays are sorted, duplicate-free, ``u < v``-ordered and
        in-range by construction, and whose probability buffer is fresh
        — re-validating (and re-copying) them per winning attempt is
        pure overhead.  The arrays are frozen in place, so the caller
        must not mutate them afterwards.  Everyone else should use
        :meth:`from_arrays`.
        """
        ug = cls(n)
        ug._probs = None
        for arr in (us, vs, ps):
            arr.setflags(write=False)
        ug._arrays = (us, vs, ps)
        return ug

    def copy(self) -> "UncertainGraph":
        """Deep copy (caches are shared copy-on-write where immutable)."""
        ug = UncertainGraph(self._n)
        ug._probs = dict(self._probs) if self._probs is not None else None
        ug._incident = None
        ug._arrays = self._arrays  # tuple of read-only arrays; safe to share
        ug._csr = self._csr
        return ug

    # ------------------------------------------------------------------
    # lazy materialisation
    # ------------------------------------------------------------------
    def _probs_dict(self) -> dict[tuple[int, int], float]:
        """The dict view, materialising it from the pair arrays if needed."""
        if self._probs is None:
            us, vs, ps = self._arrays
            self._probs = dict(
                zip(zip(us.tolist(), vs.tolist()), ps.tolist())
            )
        return self._probs

    def _incident_sets(self) -> list[set[tuple[int, int]]]:
        """Per-vertex incident key sets, materialised on demand."""
        if self._incident is None:
            incident: list[set[tuple[int, int]]] = [set() for _ in range(self._n)]
            for key in self._probs_dict():
                incident[key[0]].add(key)
                incident[key[1]].add(key)
            self._incident = incident
        return self._incident

    def _invalidate_caches(self) -> None:
        self._arrays = None
        self._csr = None

    # ------------------------------------------------------------------
    # array exports (the batched-engine fast path)
    # ------------------------------------------------------------------
    def pair_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Candidate set as parallel read-only ``(us, vs, ps)`` arrays.

        ``us[i] < vs[i]`` for every entry.  Built once and cached; any
        :meth:`set_probability` call invalidates the cache.  This is the
        input format of :class:`repro.uncertain.sampling.WorldSampler`
        and of :meth:`incident_probability_csr`.
        """
        if self._arrays is None:
            probs = self._probs  # non-None by invariant when _arrays is None
            m = len(probs)
            us = np.empty(m, dtype=np.int64)
            vs = np.empty(m, dtype=np.int64)
            ps = np.empty(m, dtype=np.float64)
            for i, ((u, v), p) in enumerate(probs.items()):
                us[i] = u
                vs[i] = v
                ps[i] = p
            for arr in (us, vs, ps):
                arr.setflags(write=False)
            self._arrays = (us, vs, ps)
        return self._arrays

    def incident_probability_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Incident candidate probabilities of *all* vertices, CSR-grouped.

        Returns
        -------
        (indptr, data):
            ``data[indptr[v]:indptr[v+1]]`` are the probabilities of the
            candidate pairs incident to ``v`` — the Bernoulli vector of
            Equation 4.  Each pair appears twice in ``data`` (once per
            endpoint); ``indptr`` has length ``n + 1``.

        Notes
        -----
        One vectorised pass over the pair arrays replaces ``n`` separate
        :meth:`incident_probabilities` calls; this is what feeds the
        batched Poisson-binomial engine of
        :mod:`repro.core.posterior_batch`.
        """
        if self._csr is None:
            us, vs, ps = self.pair_arrays()
            endpoints = np.concatenate([us, vs])
            duplicated = np.concatenate([ps, ps])
            counts = np.bincount(endpoints, minlength=self._n)
            indptr = np.zeros(self._n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            order = np.argsort(endpoints, kind="stable")
            data = duplicated[order]
            indptr.setflags(write=False)
            data.setflags(write=False)
            self._csr = (indptr, data)
        return self._csr

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_candidate_pairs(self) -> int:
        """Number of pairs carrying an explicit probability (``|E_C|``)."""
        if self._probs is not None:
            return len(self._probs)
        return len(self._arrays[0])

    def probability(self, u: int, v: int) -> float:
        """``p(u, v)``; pairs outside the candidate set return 0."""
        u = check_vertex(u, self._n, "u")
        v = check_vertex(v, self._n, "v")
        if u == v:
            raise ValueError("pairs must have distinct endpoints")
        return self._probs_dict().get(_ordered(u, v), 0.0)

    def candidate_pairs(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(u, v, p)`` triples of the candidate set (u < v)."""
        if self._probs is None:
            us, vs, ps = self._arrays
            yield from zip(us.tolist(), vs.tolist(), ps.tolist())
        else:
            for (u, v), p in self._probs.items():
                yield (u, v, p)

    def incident_pairs(self, v: int) -> list[tuple[int, int, float]]:
        """Candidate pairs touching ``v`` as ``(u, w, p)`` triples."""
        check_vertex(v, self._n)
        probs = self._probs_dict()
        return [(u, w, probs[(u, w)]) for (u, w) in self._incident_sets()[v]]

    def incident_probabilities(self, v: int) -> np.ndarray:
        """Probabilities of the candidate pairs incident to ``v``.

        This is the Bernoulli vector feeding the Poisson-binomial degree
        distribution of §4 (Equation 4 restricted to E_C).  Scalar
        counterpart of :meth:`incident_probability_csr`.
        """
        check_vertex(v, self._n)
        probs = self._probs_dict()
        return np.array(
            [probs[key] for key in self._incident_sets()[v]], dtype=np.float64
        )

    def expected_degree(self, v: int) -> float:
        """``E[d_v] = Σ p(e)`` over candidate pairs incident to v."""
        return float(self.incident_probabilities(v).sum())

    def expected_degrees(self) -> np.ndarray:
        """Vector of expected degrees for all vertices (one add.at pass)."""
        us, vs, ps = self.pair_arrays()
        out = np.zeros(self._n, dtype=np.float64)
        np.add.at(out, us, ps)
        np.add.at(out, vs, ps)
        return out

    def expected_num_edges(self) -> float:
        """``E[S_NE] = Σ_e p(e)`` (the exact formula of §6.2)."""
        return float(self.pair_arrays()[2].sum())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_probability(
        self, u: int, v: int, p: float, *, keep_zero: bool = False
    ) -> None:
        """Assign ``p(u, v) = p``.

        ``p = 0`` deletes the pair from the candidate set unless
        ``keep_zero`` is set (used when the zero must still count toward
        ``|E_C|`` bookkeeping, e.g. fully-deleted true edges in Alg. 2).
        """
        u = check_vertex(u, self._n, "u")
        v = check_vertex(v, self._n, "v")
        if u == v:
            raise ValueError("pairs must have distinct endpoints")
        check_probability(p, "p")
        probs = self._probs_dict()
        self._invalidate_caches()
        key = _ordered(u, v)
        if p == 0.0 and not keep_zero:
            if key in probs:
                del probs[key]
                if self._incident is not None:
                    self._incident[u].discard(key)
                    self._incident[v].discard(key)
            return
        probs[key] = float(p)
        if self._incident is not None:
            self._incident[u].add(key)
            self._incident[v].add(key)

    # ------------------------------------------------------------------
    # possible-world semantics
    # ------------------------------------------------------------------
    def world_log_probability(self, world: Graph) -> float:
        """Natural-log probability of a possible world (Equation 1).

        ``world`` must be a graph on the same vertex set whose edges are
        a subset of the candidate pairs; otherwise the probability is 0
        (returns ``-inf``).
        """
        if world.num_vertices != self._n:
            raise ValueError("world must share the vertex set")
        log_p = 0.0
        world_edges = world.edge_set()
        probs = self._probs_dict()
        for (u, v), p in probs.items():
            present = (u, v) in world_edges
            if present:
                if p == 0.0:
                    return -math.inf
                log_p += math.log(p)
            else:
                if p == 1.0:
                    return -math.inf
                log_p += math.log1p(-p)
        if world_edges - set(probs):
            return -math.inf
        return log_p

    def world_probability(self, world: Graph) -> float:
        """Probability of a possible world; see :meth:`world_log_probability`."""
        return math.exp(self.world_log_probability(world))

    def enumerate_worlds(self) -> Iterator[tuple[Graph, float]]:
        """Yield every possible world with its probability.

        Exponential in ``|E_C|`` — intended for tests and the worked
        examples of §3 only; guarded at 20 candidate pairs.
        """
        pairs = list(self._probs_dict().items())
        if len(pairs) > 20:
            raise ValueError(
                f"refusing to enumerate 2^{len(pairs)} worlds; use sampling"
            )
        for mask in range(1 << len(pairs)):
            g = Graph(self._n)
            prob = 1.0
            for i, ((u, v), p) in enumerate(pairs):
                if mask >> i & 1:
                    prob *= p
                    if prob == 0.0:
                        break
                    g.add_edge(u, v)
                else:
                    prob *= 1.0 - p
                    if prob == 0.0:
                        break
            if prob > 0.0:
                yield g, prob

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UncertainGraph(n={self._n}, "
            f"candidate_pairs={self.num_candidate_pairs}, "
            f"expected_edges={self.expected_num_edges():.2f})"
        )
