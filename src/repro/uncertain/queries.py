"""Query primitives over uncertain graphs.

§1 of the paper argues the published uncertain graph remains *useful*
because the uncertain-graph literature it cites ([14, 15, 24, 36–38])
already knows how to query such data.  This module implements the
standard primitives so the claim is demonstrable inside this repo:

* **two-terminal reliability** (Jin et al. [15]'s
  distance-constraint reachability in its unconstrained and
  hop-constrained forms) — the probability that ``t`` is reachable from
  ``s`` in a possible world;
* **expected reachable-set size**;
* **distance distribution between two vertices** (Potamias et al. [24]
  use exactly these per-pair distance distributions for k-NN over
  uncertain graphs), plus its median/majority summaries.

All are Monte-Carlo estimators over possible worlds; each returned
estimate is an average of [0, 1]-bounded (or [a, b]-bounded)
indicators, so Lemma 2 / Corollary 1 of the paper give the sample-size
guarantee (``repro.stats.hoeffding_sample_size``).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.traversal import bfs_distances
from repro.uncertain.graph import UncertainGraph
from repro.uncertain.sampling import WorldSampler
from repro.utils.rng import as_rng
from repro.utils.validation import check_vertex


def reliability(
    uncertain: UncertainGraph,
    source: int,
    target: int,
    *,
    worlds: int = 200,
    max_hops: int | None = None,
    seed=None,
) -> float:
    """Estimated probability that ``target`` is reachable from ``source``.

    Parameters
    ----------
    uncertain:
        The uncertain graph.
    source, target:
        Query endpoints.
    worlds:
        Monte-Carlo sample size (Corollary 1: ``r ≥ ln(2/δ)/(2ε²)``
        for ±ε at confidence 1−δ).
    max_hops:
        If given, reachability must occur within this many hops — the
        distance-constraint reachability of Jin et al. [15].
    seed:
        RNG seed/stream.

    Returns
    -------
    float
        Estimate in [0, 1].
    """
    n = uncertain.num_vertices
    source = check_vertex(source, n, "source")
    target = check_vertex(target, n, "target")
    if worlds < 1:
        raise ValueError(f"need at least one world, got {worlds}")
    if source == target:
        return 1.0
    rng = as_rng(seed)
    sampler = WorldSampler(uncertain)
    hits = 0
    for _ in range(worlds):
        world = sampler.sample(seed=rng)
        dist = bfs_distances(world, source)
        reachable = dist[target] >= 0
        if reachable and max_hops is not None:
            reachable = dist[target] <= max_hops
        hits += bool(reachable)
    return hits / worlds


def expected_reachable_set_size(
    uncertain: UncertainGraph,
    source: int,
    *,
    worlds: int = 200,
    seed=None,
) -> float:
    """Expected number of vertices reachable from ``source`` (incl. itself)."""
    n = uncertain.num_vertices
    source = check_vertex(source, n, "source")
    if worlds < 1:
        raise ValueError(f"need at least one world, got {worlds}")
    rng = as_rng(seed)
    sampler = WorldSampler(uncertain)
    total = 0
    for _ in range(worlds):
        world = sampler.sample(seed=rng)
        total += int((bfs_distances(world, source) >= 0).sum())
    return total / worlds


def distance_distribution(
    uncertain: UncertainGraph,
    source: int,
    target: int,
    *,
    worlds: int = 200,
    seed=None,
) -> dict[int | float, float]:
    """Empirical distribution of dist(source, target) across worlds.

    Returns a mapping ``distance → probability`` where the key
    ``float('inf')`` collects the disconnected worlds — the per-pair
    distance distribution Potamias et al. [24] build k-NN queries on.
    """
    n = uncertain.num_vertices
    source = check_vertex(source, n, "source")
    target = check_vertex(target, n, "target")
    if worlds < 1:
        raise ValueError(f"need at least one world, got {worlds}")
    rng = as_rng(seed)
    sampler = WorldSampler(uncertain)
    counts: dict[int | float, int] = {}
    for _ in range(worlds):
        world = sampler.sample(seed=rng)
        d = bfs_distances(world, source)[target]
        key: int | float = float("inf") if d < 0 else int(d)
        counts[key] = counts.get(key, 0) + 1
    return {key: c / worlds for key, c in counts.items()}


def median_distance(
    uncertain: UncertainGraph,
    source: int,
    target: int,
    *,
    worlds: int = 200,
    seed=None,
) -> float:
    """Median of the pairwise distance distribution ([24]'s robust choice).

    ``inf`` when the pair is disconnected in at least half the worlds.
    """
    dist = distance_distribution(
        uncertain, source, target, worlds=worlds, seed=seed
    )
    cumulative = 0.0
    for key in sorted(dist, key=lambda x: (x == float("inf"), x)):
        cumulative += dist[key]
        if cumulative >= 0.5:
            return float(key)
    return float("inf")


def majority_distance(
    uncertain: UncertainGraph,
    source: int,
    target: int,
    *,
    worlds: int = 200,
    seed=None,
) -> float:
    """Mode of the pairwise distance distribution.

    Probability ties break toward the *smaller* distance (``inf`` loses
    to any finite distance) — a canonical rule shared with the batched
    kernel so both paths return the identical mode.
    """
    dist = distance_distribution(
        uncertain, source, target, worlds=worlds, seed=seed
    )
    return majority_from_distribution(dist)


def majority_from_distribution(distribution: dict[int | float, float]) -> float:
    """Mode of a ``distance → probability`` mapping, ties to the smaller
    distance (``inf`` last).  Shared by the sequential oracle and
    :func:`repro.uncertain.batch_queries.majority_distance_from_batch` so
    the tie-break never depends on dict insertion order.
    """
    peak = max(distribution.values())
    return float(
        min(
            (d for d, p in distribution.items() if p == peak),
            key=lambda x: (x == float("inf"), x),
        )
    )


def k_nearest_neighbors(
    uncertain: UncertainGraph,
    source: int,
    k: int,
    *,
    worlds: int = 200,
    seed=None,
) -> list[tuple[int, float]]:
    """Majority-k-NN of Potamias et al. [24]: rank vertices by the
    fraction of worlds in which they are among the k closest to source.

    Returns **at most** k vertices as ``(vertex, support)`` pairs,
    where support is that fraction.  Only vertices with *positive*
    support appear: when fewer than k vertices are ever reachable from
    the source, the list is shorter than k rather than padded with
    zero-support vertices (the old padding made "never seen" — often
    including the source itself — indistinguishable from "weakly
    supported").  Ties inside a world are broken by vertex id
    (deterministic); the final ranking breaks support ties by vertex id
    as well.
    """
    n = uncertain.num_vertices
    source = check_vertex(source, n, "source")
    if k < 1 or k >= n:
        raise ValueError(f"need 1 <= k < n, got k={k}")
    if worlds < 1:
        raise ValueError(f"need at least one world, got {worlds}")
    rng = as_rng(seed)
    sampler = WorldSampler(uncertain)
    appearances = np.zeros(n, dtype=np.int64)
    for _ in range(worlds):
        world = sampler.sample(seed=rng)
        dist = bfs_distances(world, source)
        reachable = np.flatnonzero((dist > 0))
        if reachable.size == 0:
            continue
        order = reachable[np.lexsort((reachable, dist[reachable]))]
        appearances[order[:k]] += 1
    return rank_knn_appearances(appearances, k, worlds)


def rank_knn_appearances(
    appearances: np.ndarray, k: int, worlds: int
) -> list[tuple[int, float]]:
    """Top-k ``(vertex, support)`` from a per-vertex appearance count.

    Shared by the sequential oracle above and the batched kernel
    (:func:`repro.uncertain.batch_queries.k_nearest_neighbors_from_batch`)
    so both apply the identical ranking, tie-break, and zero-support
    drop.
    """
    n = len(appearances)
    ranked = np.lexsort((np.arange(n), -appearances))
    return [
        (int(v), appearances[v] / worlds)
        for v in ranked[:k]
        if appearances[v] > 0
    ]


def k_hop_reachable_size(
    uncertain: UncertainGraph,
    source: int,
    hops: int,
    *,
    worlds: int = 200,
    seed=None,
) -> float:
    """Expected number of vertices within ``hops`` of ``source``.

    The k-hop workload of the uncertain-graph serving literature: a
    hop-bounded :func:`expected_reachable_set_size` (to which it is
    equal for ``hops >= n``), counting the source itself.  Same
    Monte-Carlo contract as every estimator here — [0, n]-bounded
    per-world values, so Lemma 2 applies after rescaling.
    """
    n = uncertain.num_vertices
    source = check_vertex(source, n, "source")
    if hops < 0:
        raise ValueError(f"hops must be non-negative, got {hops}")
    if worlds < 1:
        raise ValueError(f"need at least one world, got {worlds}")
    rng = as_rng(seed)
    sampler = WorldSampler(uncertain)
    total = 0
    for _ in range(worlds):
        world = sampler.sample(seed=rng)
        dist = bfs_distances(world, source)
        total += int(((dist >= 0) & (dist <= hops)).sum())
    return total / worlds
