"""Batched query kernels over :class:`~repro.worlds.batch.WorldBatch`.

The sequential oracles in :mod:`repro.uncertain.queries` draw one world
at a time and BFS it — clear, but a serving layer answering many
concurrent per-pair queries cannot afford ``worlds`` Python-level BFS
passes *per request*.  These kernels produce bit-identical answers from
one shared :class:`WorldBatch`:

* sampling: ``WorldBatch.sample(ug, W, seed)`` consumes the RNG stream
  exactly like ``W`` sequential :meth:`WorldSampler.sample` calls from
  the same seed (pinned by the worlds tests), so batch row ``w`` *is*
  the ``w``-th sequential world;
* traversal: :func:`batch_distance_rows` runs ONE multi-root frontier
  BFS over the batch's ``W·n``-vertex disjoint-union CSR, with roots
  ``{w·n + source}`` — worlds are disjoint components, so the per-world
  rows equal ``bfs_distances(world_w, source)`` exactly (hop counts are
  integers: no tolerance needed);
* aggregation: reliability / k-hop / distance-distribution / k-NN
  reduce those integer rows with the same arithmetic as the oracles
  (same integer hit counts divided by the same ``worlds``), so equal
  seeds give equal floats bit-for-bit.

This is what the serving layer coalesces on: every query in a window
that shares ``(seed, worlds)`` shares one batch, every query that also
shares a source shares one distance-row computation.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.traversal import multi_range
from repro.uncertain.queries import (
    majority_from_distribution,
    rank_knn_appearances,
)
from repro.utils.validation import check_vertex
from repro.worlds.batch import WorldBatch

__all__ = [
    "batch_distance_rows",
    "distance_distribution_from_batch",
    "expected_reachable_set_size_from_batch",
    "k_hop_reachable_size_from_batch",
    "k_nearest_neighbors_from_batch",
    "majority_distance_from_batch",
    "median_distance_from_batch",
    "reliability_from_batch",
]


def batch_distance_rows(batch: WorldBatch, source: int) -> np.ndarray:
    """Per-world hop distances from ``source``: a ``(W, n)`` int64 matrix.

    One frontier BFS over the disjoint-union CSR with all ``W`` copies
    of ``source`` as simultaneous roots.  Because worlds occupy
    disjoint vertex ranges, levels advance exactly as ``W`` independent
    BFS runs; row ``w`` equals ``bfs_distances(batch.world_graph(w),
    source)`` elementwise (``-1`` marks unreachable).
    """
    n = batch.num_vertices
    W = batch.num_worlds
    source = check_vertex(source, n, "source")
    indptr, indices = batch.csr()
    dist = np.full(W * n, -1, dtype=np.int64)
    roots = np.arange(W, dtype=np.int64) * n + source
    dist[roots] = 0
    frontier = roots
    level = 0
    while frontier.size:
        level += 1
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        nbrs = indices[multi_range(starts, counts)]
        if nbrs.size == 0:
            break
        fresh = nbrs[dist[nbrs] < 0]
        if fresh.size == 0:
            break
        dist[fresh] = level
        frontier = np.unique(fresh)
    return dist.reshape(W, n)


def reliability_from_batch(
    batch: WorldBatch,
    source: int,
    target: int,
    *,
    max_hops: int | None = None,
    dist: np.ndarray | None = None,
) -> float:
    """Batched :func:`repro.uncertain.queries.reliability`.

    ``dist`` may pass precomputed :func:`batch_distance_rows` output to
    share one BFS across many queries (the serving layer's coalescing
    path).  ``source == target`` returns 1.0 like the oracle, without
    touching the batch.
    """
    n = batch.num_vertices
    source = check_vertex(source, n, "source")
    target = check_vertex(target, n, "target")
    if source == target:
        return 1.0
    if dist is None:
        dist = batch_distance_rows(batch, source)
    d = dist[:, target]
    reachable = d >= 0
    if max_hops is not None:
        reachable = reachable & (d <= max_hops)
    return int(reachable.sum()) / batch.num_worlds


def k_hop_reachable_size_from_batch(
    batch: WorldBatch,
    source: int,
    hops: int,
    *,
    dist: np.ndarray | None = None,
) -> float:
    """Batched :func:`repro.uncertain.queries.k_hop_reachable_size`."""
    source = check_vertex(source, batch.num_vertices, "source")
    if hops < 0:
        raise ValueError(f"hops must be non-negative, got {hops}")
    if dist is None:
        dist = batch_distance_rows(batch, source)
    total = int(((dist >= 0) & (dist <= hops)).sum())
    return total / batch.num_worlds


def expected_reachable_set_size_from_batch(
    batch: WorldBatch,
    source: int,
    *,
    dist: np.ndarray | None = None,
) -> float:
    """Batched :func:`repro.uncertain.queries.expected_reachable_set_size`."""
    source = check_vertex(source, batch.num_vertices, "source")
    if dist is None:
        dist = batch_distance_rows(batch, source)
    return int((dist >= 0).sum()) / batch.num_worlds


def distance_distribution_from_batch(
    batch: WorldBatch,
    source: int,
    target: int,
    *,
    dist: np.ndarray | None = None,
) -> dict[int | float, float]:
    """Batched :func:`repro.uncertain.queries.distance_distribution`.

    Same mapping as the oracle: ``distance → probability`` with
    ``float('inf')`` collecting disconnected worlds.
    """
    n = batch.num_vertices
    source = check_vertex(source, n, "source")
    target = check_vertex(target, n, "target")
    if dist is None:
        dist = batch_distance_rows(batch, source)
    d = dist[:, target]
    values, counts = np.unique(d, return_counts=True)
    W = batch.num_worlds
    return {
        (float("inf") if v < 0 else int(v)): int(c) / W
        for v, c in zip(values.tolist(), counts.tolist())
    }


def median_distance_from_batch(
    batch: WorldBatch,
    source: int,
    target: int,
    *,
    dist: np.ndarray | None = None,
) -> float:
    """Batched :func:`repro.uncertain.queries.median_distance`."""
    distribution = distance_distribution_from_batch(
        batch, source, target, dist=dist
    )
    cumulative = 0.0
    for key in sorted(distribution, key=lambda x: (x == float("inf"), x)):
        cumulative += distribution[key]
        if cumulative >= 0.5:
            return float(key)
    return float("inf")


def majority_distance_from_batch(
    batch: WorldBatch,
    source: int,
    target: int,
    *,
    dist: np.ndarray | None = None,
) -> float:
    """Batched :func:`repro.uncertain.queries.majority_distance`."""
    distribution = distance_distribution_from_batch(
        batch, source, target, dist=dist
    )
    return majority_from_distribution(distribution)


def k_nearest_neighbors_from_batch(
    batch: WorldBatch,
    source: int,
    k: int,
    *,
    dist: np.ndarray | None = None,
) -> list[tuple[int, float]]:
    """Batched :func:`repro.uncertain.queries.k_nearest_neighbors`.

    Vectorises the per-world "k closest, ties by vertex id" selection:
    within each world, vertices are ordered by ``(distance, id)`` via
    one lexsort over the ``(W, n)`` distance matrix, and the first
    ``k`` reachable entries per world increment the appearance counts.
    The final ranking (and the zero-support drop) is shared with the
    oracle via :func:`~repro.uncertain.queries.rank_knn_appearances`.
    """
    n = batch.num_vertices
    W = batch.num_worlds
    source = check_vertex(source, n, "source")
    if k < 1 or k >= n:
        raise ValueError(f"need 1 <= k < n, got k={k}")
    if dist is None:
        dist = batch_distance_rows(batch, source)
    # Exclude unreachable (-1) and the source itself (0) like the
    # oracle's ``dist > 0`` mask: give them a +inf-like sort key.  The
    # sentinel must match the caller's dtype (the serving layer caches
    # rows as int32) or it would wrap on conversion.
    big = np.iinfo(dist.dtype).max
    keyed = np.where(dist > 0, dist, big)
    # Per-row argsort by (distance, vertex id): np.argsort is stable
    # for kind="stable", and ties already break by column index.
    order = np.argsort(keyed, axis=1, kind="stable")[:, :k]
    picked_dist = np.take_along_axis(keyed, order, axis=1)
    valid = picked_dist < big
    appearances = np.bincount(order[valid].ravel(), minlength=n)
    return rank_knn_appearances(appearances, k, W)
