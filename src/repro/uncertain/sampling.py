"""Possible-world sampling (§6.1 of the paper).

A possible world is drawn by flipping every candidate pair independently
with its probability — the sampler vectorises this into a single uniform
draw over the pair array.  :class:`WorldSampler` pre-extracts the pair
arrays once so that drawing 100 worlds (the paper's sample size for the
utility tables) costs 100 vectorised Bernoulli passes, not 100 dict
traversals.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graphs.graph import Graph
from repro.uncertain.graph import UncertainGraph
from repro.utils.rng import as_rng


class WorldSampler:
    """Draws possible worlds from an uncertain graph.

    Parameters
    ----------
    uncertain:
        The uncertain graph to sample from.

    Examples
    --------
    >>> from repro.uncertain import UncertainGraph
    >>> ug = UncertainGraph.from_pairs(3, [(0, 1, 1.0), (1, 2, 0.0)])
    >>> sampler = WorldSampler(ug)
    >>> world = sampler.sample(seed=0)
    >>> world.has_edge(0, 1), world.has_edge(1, 2)
    (True, False)
    """

    def __init__(self, uncertain: UncertainGraph):
        self._n = uncertain.num_vertices
        # The graph's cached pair arrays (read-only) — no dict traversal,
        # and samplers over the same graph share one copy.
        self._us, self._vs, self._ps = uncertain.pair_arrays()

    @property
    def num_candidate_pairs(self) -> int:
        """Number of pairs the sampler flips per world."""
        return len(self._ps)

    def sample(self, *, seed=None) -> Graph:
        """Draw one possible world.

        One Bernoulli pass over the pair array plus one bulk
        :meth:`Graph.from_edge_array` materialisation — no per-edge
        Python calls.  This sequential path is the ground truth that the
        batched engine (:class:`repro.worlds.WorldBatch`) is pinned to:
        both consume the RNG stream identically, so equal seeds produce
        equal worlds.
        """
        rng = as_rng(seed)
        keep = rng.random(len(self._ps)) < self._ps
        return Graph.from_edge_array(
            self._n, np.column_stack([self._us[keep], self._vs[keep]])
        )

    def sample_many(self, count: int, *, seed=None) -> Iterator[Graph]:
        """Yield ``count`` independent possible worlds from one seed."""
        rng = as_rng(seed)
        for _ in range(count):
            yield self.sample(seed=rng)


def sample_world(uncertain: UncertainGraph, *, seed=None) -> Graph:
    """One-shot convenience wrapper around :class:`WorldSampler`."""
    return WorldSampler(uncertain).sample(seed=seed)
