"""Uncertain-graph substrate: model, possible-world sampling, IO."""

from repro.uncertain.batch_queries import (
    batch_distance_rows,
    distance_distribution_from_batch,
    expected_reachable_set_size_from_batch,
    k_hop_reachable_size_from_batch,
    k_nearest_neighbors_from_batch,
    majority_distance_from_batch,
    median_distance_from_batch,
    reliability_from_batch,
)
from repro.uncertain.graph import UncertainGraph
from repro.uncertain.io import read_uncertain_graph, write_uncertain_graph
from repro.uncertain.queries import (
    distance_distribution,
    expected_reachable_set_size,
    k_hop_reachable_size,
    k_nearest_neighbors,
    majority_distance,
    median_distance,
    reliability,
)
from repro.uncertain.sampling import WorldSampler, sample_world

__all__ = [
    "UncertainGraph",
    "WorldSampler",
    "sample_world",
    "read_uncertain_graph",
    "write_uncertain_graph",
    "reliability",
    "expected_reachable_set_size",
    "k_hop_reachable_size",
    "distance_distribution",
    "median_distance",
    "majority_distance",
    "k_nearest_neighbors",
]
