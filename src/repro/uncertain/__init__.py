"""Uncertain-graph substrate: model, possible-world sampling, IO."""

from repro.uncertain.graph import UncertainGraph
from repro.uncertain.io import read_uncertain_graph, write_uncertain_graph
from repro.uncertain.queries import (
    distance_distribution,
    expected_reachable_set_size,
    k_nearest_neighbors,
    majority_distance,
    median_distance,
    reliability,
)
from repro.uncertain.sampling import WorldSampler, sample_world

__all__ = [
    "UncertainGraph",
    "WorldSampler",
    "sample_world",
    "read_uncertain_graph",
    "write_uncertain_graph",
    "reliability",
    "expected_reachable_set_size",
    "distance_distribution",
    "median_distance",
    "majority_distance",
    "k_nearest_neighbors",
]
