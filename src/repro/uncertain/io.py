"""Plain-text IO for uncertain graphs.

Format: ``u v p`` per line (whitespace separated), ``#`` comments, and an
``# n=`` header for the vertex count — the natural extension of the
edge-list format of :mod:`repro.graphs.io`, and the shape in which an
obfuscated graph would actually be *published* per the paper's proposal.
"""

from __future__ import annotations

import os

from repro.uncertain.graph import UncertainGraph


def write_uncertain_graph(graph: UncertainGraph, path: str | os.PathLike) -> None:
    """Write ``graph`` as ``u v p`` lines with an ``# n=`` header."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            f"# n={graph.num_vertices} candidates={graph.num_candidate_pairs}\n"
        )
        for u, v, p in sorted(graph.candidate_pairs()):
            fh.write(f"{u} {v} {p:.17g}\n")


def read_uncertain_graph(
    path: str | os.PathLike, *, n: int | None = None
) -> UncertainGraph:
    """Read a file written by :func:`write_uncertain_graph`.

    The header is *checked*, not just parsed: a ``candidates=`` count
    that disagrees with the number of ``u v p`` lines (a truncated or
    concatenated release) and vertex ids at or above the header ``n``
    (a corrupted release, even when the caller supplies a larger ``n``)
    both raise ``ValueError`` instead of loading silently as a
    different graph.  Headerless files (no ``n=``/``candidates=``)
    remain accepted for interoperability, with ``n`` inferred from the
    largest id.
    """
    triples: list[tuple[int, int, float]] = []
    header_n: int | None = None
    header_candidates: int | None = None
    max_id = -1
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].replace(",", " ").split():
                    if token.startswith("n="):
                        header_n = int(token[2:])
                    elif token.startswith("candidates="):
                        header_candidates = int(token[11:])
                continue
            parts = line.split()
            if len(parts) < 3:
                raise ValueError(f"malformed uncertain-edge line: {line!r}")
            u, v, p = int(parts[0]), int(parts[1]), float(parts[2])
            triples.append((u, v, p))
            max_id = max(max_id, u, v)
    if header_candidates is not None and header_candidates != len(triples):
        raise ValueError(
            f"{os.fspath(path)}: header declares candidates="
            f"{header_candidates} but file holds {len(triples)} pair lines "
            "(truncated or corrupted release)"
        )
    if header_n is not None and max_id >= header_n:
        raise ValueError(
            f"{os.fspath(path)}: vertex id {max_id} out of range for "
            f"header n={header_n} (corrupted release)"
        )
    if n is None:
        n = header_n if header_n is not None else max_id + 1
    return UncertainGraph.from_pairs(n, triples)
