"""Plain-text IO for uncertain graphs.

Format: ``u v p`` per line (whitespace separated), ``#`` comments, and an
``# n=`` header for the vertex count — the natural extension of the
edge-list format of :mod:`repro.graphs.io`, and the shape in which an
obfuscated graph would actually be *published* per the paper's proposal.
"""

from __future__ import annotations

import os

from repro.uncertain.graph import UncertainGraph


def write_uncertain_graph(graph: UncertainGraph, path: str | os.PathLike) -> None:
    """Write ``graph`` as ``u v p`` lines with an ``# n=`` header."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            f"# n={graph.num_vertices} candidates={graph.num_candidate_pairs}\n"
        )
        for u, v, p in sorted(graph.candidate_pairs()):
            fh.write(f"{u} {v} {p:.17g}\n")


def read_uncertain_graph(
    path: str | os.PathLike, *, n: int | None = None
) -> UncertainGraph:
    """Read a file written by :func:`write_uncertain_graph`."""
    triples: list[tuple[int, int, float]] = []
    header_n: int | None = None
    max_id = -1
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].replace(",", " ").split():
                    if token.startswith("n="):
                        header_n = int(token[2:])
                continue
            parts = line.split()
            if len(parts) < 3:
                raise ValueError(f"malformed uncertain-edge line: {line!r}")
            u, v, p = int(parts[0]), int(parts[1]), float(parts[2])
            triples.append((u, v, p))
            max_id = max(max_id, u, v)
    if n is None:
        n = header_n if header_n is not None else max_id + 1
    return UncertainGraph.from_pairs(n, triples)
