"""Clients for the obfuscation server.

:class:`ServeClient` is the blocking convenience client (tests, shell
experiments): one socket, one request/response at a time, plus a
pipelined :meth:`request_many` that ships a whole batch of requests in
one write so they land in a single coalescing window on the server.

The open-loop workload generator (``benchmarks/workload.py``) uses the
asyncio helper :func:`open_connection` directly to keep many requests
in flight at target QPS.
"""

from __future__ import annotations

import asyncio
import json
import socket

from repro.serve.protocol import decode_response

__all__ = ["ServeClient", "ServeError", "open_connection"]


class ServeError(RuntimeError):
    """Server answered a request with ``ok: false``."""


def _encode_request(request_id, op: str, params: dict) -> bytes:
    obj = {"id": request_id, "op": op, **params}
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode()


class ServeClient:
    """Blocking line-JSON client."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    def close(self) -> None:
        self._file.close()
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, op: str, **params) -> dict:
        """One request, one response; raises :class:`ServeError` on errors."""
        return self.request_many([{"op": op, **params}])[0]

    def request_many(self, requests: list[dict]) -> list[dict]:
        """Pipeline a batch of ``{"op": ..., ...}`` requests.

        All requests go out in one write; responses (matched by id, so
        server-side reordering is fine) come back in request order.
        Raises :class:`ServeError` if *any* request failed.
        """
        ids = []
        out = bytearray()
        for req in requests:
            request_id = self._next_id
            self._next_id += 1
            params = {k: v for k, v in req.items() if k != "op"}
            out += _encode_request(request_id, req["op"], params)
            ids.append(request_id)
        self._sock.sendall(bytes(out))
        by_id: dict[object, dict] = {}
        for _ in ids:
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed connection mid-batch")
            response_id, payload = decode_response(line)
            by_id[response_id] = payload
        results = []
        for request_id in ids:
            payload = by_id[request_id]
            if "error" in payload:
                raise ServeError(payload["error"])
            results.append(payload["result"])
        return results


async def open_connection(
    host: str, port: int
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Asyncio connection to the server (workload-generator plumbing)."""
    return await asyncio.open_connection(host, port)
