"""Clients for the obfuscation server.

:class:`ServeClient` is the blocking convenience client (tests, shell
experiments): one socket, one request/response at a time, plus a
pipelined :meth:`request_many` that ships a whole batch of requests in
one write so they land in a single coalescing window on the server.

Resilience: the client owns transport-level retry.  A dropped
connection, a read timeout, or an ``overloaded`` shed response is
retried up to ``retries`` times with seeded jittered exponential
backoff (:class:`repro.resilience.retry.RetryPolicy`); every served op
is a pure read over an immutable release, so re-sending a batch is
always safe.  Application errors (unknown op, bad vertex id) are *not*
retried — they fail the same way every time.

The open-loop workload generator (``benchmarks/workload.py``) uses the
asyncio helper :func:`open_connection` directly to keep many requests
in flight at target QPS.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time

from repro.resilience.retry import RetryPolicy
from repro.serve.protocol import decode_response

__all__ = [
    "ServeClient",
    "ServeError",
    "ServeOverloadedError",
    "open_connection",
]


class ServeError(RuntimeError):
    """Server answered a request with ``ok: false``."""


class ServeOverloadedError(ServeError):
    """Server shed the request (bounded queue full or deadline passed).

    ``retry_after_ms`` carries the server's backoff hint, if it sent one.
    """

    def __init__(self, message: str, retry_after_ms: int | None = None):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


def _encode_request(request_id, op: str, params: dict) -> bytes:
    obj = {"id": request_id, "op": op, **params}
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode()


class ServeClient:
    """Blocking line-JSON client with transparent reconnect-and-retry.

    Parameters
    ----------
    host, port:
        Server address.
    connect_timeout:
        Budget for establishing the TCP connection.
    timeout:
        Per-read socket timeout; a server that stops answering surfaces
        as ``TimeoutError`` (and is retried) instead of hanging forever.
    retries:
        Transport-level retries per batch (connection drop, read
        timeout, ``overloaded`` shed).  ``0`` disables retry.
    retry_policy:
        Backoff schedule; defaults to the shared
        :class:`~repro.resilience.retry.RetryPolicy` defaults.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = 5.0,
        timeout: float = 30.0,
        retries: int = 2,
        retry_policy: RetryPolicy | None = None,
    ):
        self._host = host
        self._port = port
        self._connect_timeout = connect_timeout
        self._timeout = timeout
        self._retries = max(0, retries)
        self._retry_policy = retry_policy or RetryPolicy()
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 0
        self._connect()

    def _connect(self) -> None:
        self._close_socket()
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._connect_timeout
        )
        self._sock.settimeout(self._timeout)
        self._file = self._sock.makefile("rb")

    def _close_socket(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._close_socket()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, op: str, **params) -> dict:
        """One request, one response; raises :class:`ServeError` on errors."""
        return self.request_many([{"op": op, **params}])[0]

    def health(self) -> dict:
        """Server health/readiness (answered even when the queue is full)."""
        return self.request("health")

    def request_many(self, requests: list[dict]) -> list[dict]:
        """Pipeline a batch of ``{"op": ..., ...}`` requests.

        All requests go out in one write; responses (matched by id, so
        server-side reordering is fine) come back in request order.
        Transport failures and ``overloaded`` sheds are retried whole-
        batch (reads are idempotent); any other error raises
        :class:`ServeError`.
        """
        failures = 0
        while True:
            try:
                return self._request_many_once(requests)
            except ServeOverloadedError as exc:
                failures += 1
                if failures > self._retries:
                    raise
                backoff = self._retry_policy.backoff_s("serve", failures)
                if exc.retry_after_ms is not None:
                    backoff = max(backoff, exc.retry_after_ms / 1000.0)
                time.sleep(backoff)
            except (ConnectionError, TimeoutError, OSError, ValueError):
                # Dead/torn/hung connection (a mid-line abort surfaces as
                # a ValueError from decode_response on the torn tail).
                failures += 1
                if failures > self._retries:
                    raise
                time.sleep(self._retry_policy.backoff_s("serve", failures))
                self._connect()

    def _request_many_once(self, requests: list[dict]) -> list[dict]:
        ids = []
        out = bytearray()
        for req in requests:
            request_id = self._next_id
            self._next_id += 1
            params = {k: v for k, v in req.items() if k != "op"}
            out += _encode_request(request_id, req["op"], params)
            ids.append(request_id)
        assert self._sock is not None and self._file is not None
        self._sock.sendall(bytes(out))
        by_id: dict[object, dict] = {}
        for _ in ids:
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed connection mid-batch")
            if not line.endswith(b"\n"):
                raise ConnectionError("connection dropped mid-line")
            response_id, payload = decode_response(line)
            by_id[response_id] = payload
        results = []
        for request_id in ids:
            payload = by_id.get(request_id)
            if payload is None:
                raise ConnectionError(f"no response for request {request_id}")
            if "error" in payload:
                if payload["error"] == "overloaded":
                    raise ServeOverloadedError(
                        payload["error"], payload.get("retry_after_ms")
                    )
                raise ServeError(payload["error"])
            results.append(payload["result"])
        return results


async def open_connection(
    host: str, port: int
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Asyncio connection to the server (workload-generator plumbing)."""
    return await asyncio.open_connection(host, port)
