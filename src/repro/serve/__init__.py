"""Obfuscation-as-a-service: query a published release concurrently.

The paper's output is a *published* uncertain graph; §1 argues its value
is that the uncertain-graph query literature applies to it directly.
This package makes that operational: :class:`QueryEngine` answers the
standard query mix (degree / reliability / k-hop / distance
distribution / k-NN) over a release, and :class:`ObfuscationServer`
exposes it to many concurrent clients over a line-JSON TCP protocol,
**coalescing** queries that arrive within a window into shared
possible-world batches (one multi-source BFS pass per window instead of
``worlds`` sequential BFS runs per request).

Every served answer is seed-pinned: at equal ``(seed, worlds)`` it is
bit-identical to the sequential oracle in
:mod:`repro.uncertain.queries` (pinned by
``tests/serve/test_engine.py`` and the CI ``serve-smoke`` job).
"""

from repro.serve.client import ServeClient, ServeError, ServeOverloadedError
from repro.serve.engine import QueryEngine
from repro.serve.protocol import (
    OPS,
    Query,
    encode_response,
    parse_request,
)
from repro.serve.server import ObfuscationServer

__all__ = [
    "OPS",
    "ObfuscationServer",
    "Query",
    "QueryEngine",
    "ServeClient",
    "ServeError",
    "ServeOverloadedError",
    "encode_response",
    "parse_request",
]
