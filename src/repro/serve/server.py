"""Asyncio TCP front end with batched query coalescing.

Connection handling and kernel work are deliberately split:

* each client connection gets a reader coroutine that parses line-JSON
  requests (:func:`repro.serve.protocol.parse_request`) and enqueues
  ``(query, future)`` pairs on one shared queue;
* a single dispatcher coroutine drains the queue in **coalescing
  windows**: after the first query arrives it keeps collecting for
  ``window_ms`` (or until ``max_window`` queries), then hands the whole
  window to :meth:`QueryEngine.execute` on an executor thread — NumPy
  kernels release the GIL poorly from the event loop's perspective, so
  keeping them off the loop keeps accept/read latency flat;
* completed futures resolve back into per-connection writer order.

Because the engine's caches make window cost ≈ (distinct sources) ×
(one batched BFS) rather than (queries) × (worlds) BFS runs, throughput
rises with concurrency instead of collapsing — the point of the batched
kernels.  Coalescing changes *cost*, never answers (every payload is
seed-pinned to the sequential oracle).

Protocol errors on a connection (malformed JSON, unknown op) produce an
error response for that line and keep the connection open; EOF or
transport errors close it quietly.
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.obs.metrics import REGISTRY as _OBS
from repro.serve.engine import QueryEngine
from repro.serve.protocol import encode_response, parse_request

__all__ = ["ObfuscationServer"]

_CONNECTIONS = _OBS.counter("serve.connections")
_PROTOCOL_ERRORS = _OBS.counter("serve.protocol_errors")

#: requests larger than this are protocol errors, not memory pressure.
_MAX_LINE_BYTES = 1 << 20


class ObfuscationServer:
    """Serve a :class:`QueryEngine` over TCP line-JSON.

    Parameters
    ----------
    engine:
        The loaded query engine.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    window_ms:
        Coalescing window: how long the dispatcher keeps collecting
        after the first query of a window arrives.  ``0`` still
        coalesces whatever is already queued (zero added latency).
    max_window:
        Hard cap on queries per window.
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        window_ms: float = 2.0,
        max_window: int = 1024,
    ):
        self.engine = engine
        self.host = host
        self.port = port
        self.window_s = max(0.0, window_ms) / 1000.0
        self.max_window = max(1, max_window)
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind, start accepting, and launch the dispatcher."""
        self._queue = asyncio.Queue()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=_MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Stop accepting and cancel the dispatcher."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
            self._dispatcher = None

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI entry point)."""
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Reader loop: parse lines, enqueue, respond *asynchronously*.

        Each request gets its own responder task, so a client may
        pipeline many requests on one connection and they all land in
        the same coalescing window; responses are matched by ``id``
        (write order may interleave, each line is written atomically
        under ``write_lock``).
        """
        _CONNECTIONS.add()
        write_lock = asyncio.Lock()
        responders: set[asyncio.Task] = set()

        async def respond(request_id, query) -> None:
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            await self._queue.put((query, future))
            payload = await future
            async with write_lock:
                writer.write(encode_response(request_id, payload))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # oversized line
                    _PROTOCOL_ERRORS.add()
                    async with write_lock:
                        writer.write(
                            encode_response(
                                None, {"error": "request too large"}
                            )
                        )
                        await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request_id, query = parse_request(line)
                except ValueError as exc:
                    _PROTOCOL_ERRORS.add()
                    async with write_lock:
                        writer.write(
                            encode_response(None, {"error": str(exc)})
                        )
                        await writer.drain()
                    continue
                task = asyncio.create_task(respond(request_id, query))
                responders.add(task)
                task.add_done_callback(responders.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if responders:
                with contextlib.suppress(
                    ConnectionError, asyncio.CancelledError
                ):
                    await asyncio.gather(*responders, return_exceptions=True)
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    async def _drain_window(self) -> list[tuple]:
        """Block for the first query, then coalesce for the window."""
        assert self._queue is not None
        first = await self._queue.get()
        window = [first]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.window_s
        while len(window) < self.max_window:
            remaining = deadline - loop.time()
            if remaining <= 0:
                # Window expired: still sweep anything already queued —
                # coalescing what exists costs no latency.
                try:
                    window.append(self._queue.get_nowait())
                    continue
                except asyncio.QueueEmpty:
                    break
            try:
                item = await asyncio.wait_for(self._queue.get(), remaining)
            except asyncio.TimeoutError:
                break
            window.append(item)
        return window

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            window = await self._drain_window()
            queries = [query for query, _ in window]
            try:
                payloads = await loop.run_in_executor(
                    None, self.engine.execute, queries
                )
            except Exception as exc:  # engine bug: fail the window, not the loop
                payloads = [{"error": f"internal error: {exc}"}] * len(window)
            for (_, future), payload in zip(window, payloads):
                if not future.done():
                    future.set_result(payload)
