"""Asyncio TCP front end with batched query coalescing.

Connection handling and kernel work are deliberately split:

* each client connection gets a reader coroutine that parses line-JSON
  requests (:func:`repro.serve.protocol.parse_request`) and enqueues
  ``(query, future, deadline)`` triples on one shared **bounded** queue;
* a single dispatcher coroutine drains the queue in **coalescing
  windows**: after the first query arrives it keeps collecting for
  ``window_ms`` (or until ``max_window`` queries), then hands the whole
  window to :meth:`QueryEngine.execute` on an executor thread — NumPy
  kernels release the GIL poorly from the event loop's perspective, so
  keeping them off the loop keeps accept/read latency flat;
* completed futures resolve back into per-connection writer order.

Because the engine's caches make window cost ≈ (distinct sources) ×
(one batched BFS) rather than (queries) × (worlds) BFS runs, throughput
rises with concurrency instead of collapsing — the point of the batched
kernels.  Coalescing changes *cost*, never answers (every payload is
seed-pinned to the sequential oracle).

Overload story (the resilience layer):

* the dispatch queue is bounded (``max_queue``); when it is full new
  queries are **shed** immediately with ``{"error": "overloaded",
  "retry_after_ms": ...}`` instead of queueing unboundedly and hanging
  every client behind a backlog the engine can never clear;
* a request may carry ``timeout_ms``; queries whose deadline passes
  while still queued are answered ``deadline exceeded`` at window-build
  time rather than computed late for nobody;
* ``health`` requests are answered inline by the reader — never queued —
  so readiness checks work *especially* when the queue is full;
* idle connections are closed after ``idle_timeout_s`` and one
  oversized line is a protocol error, so a stuck or malicious client
  cannot pin memory;
* :meth:`stop` drains queued queries and the in-flight window before
  cancelling the dispatcher (graceful shutdown), unless ``drain=False``.

Protocol errors on a connection (malformed JSON, unknown op) produce an
error response for that line and keep the connection open; EOF or
transport errors close it quietly.  The ``serve.conn.drop`` fault site
(chaos harness) aborts a connection mid-response-line to exercise
client retry.
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.obs.metrics import REGISTRY as _OBS
from repro.resilience.faults import fault_point
from repro.serve.engine import QueryEngine
from repro.serve.protocol import encode_response, parse_request

__all__ = ["ObfuscationServer"]

_CONNECTIONS = _OBS.counter("serve.connections")
_PROTOCOL_ERRORS = _OBS.counter("serve.protocol_errors")
_SHED = _OBS.counter("serve.shed")
_DEADLINE_SHED = _OBS.counter("serve.deadline_shed")
_IDLE_CLOSED = _OBS.counter("serve.idle_closed")

#: requests larger than this are protocol errors, not memory pressure.
_MAX_LINE_BYTES = 1 << 20


class ObfuscationServer:
    """Serve a :class:`QueryEngine` over TCP line-JSON.

    Parameters
    ----------
    engine:
        The loaded query engine.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    window_ms:
        Coalescing window: how long the dispatcher keeps collecting
        after the first query of a window arrives.  ``0`` still
        coalesces whatever is already queued (zero added latency).
    max_window:
        Hard cap on queries per window.
    max_queue:
        Bound on queued-but-undispatched queries; beyond it new queries
        are shed with an ``overloaded`` error + retry-after hint.
    idle_timeout_s:
        Close a connection that sends nothing for this long
        (``None`` disables the idle reaper).
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        window_ms: float = 2.0,
        max_window: int = 1024,
        max_queue: int = 4096,
        idle_timeout_s: float | None = 300.0,
    ):
        self.engine = engine
        self.host = host
        self.port = port
        self.window_s = max(0.0, window_ms) / 1000.0
        self.max_window = max(1, max_window)
        self.max_queue = max(1, max_queue)
        self.idle_timeout_s = idle_timeout_s
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self._window_busy = False
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind, start accepting, and launch the dispatcher."""
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=_MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self, *, drain: bool = True, drain_timeout_s: float = 30.0) -> None:
        """Stop accepting; drain in-flight work; cancel the dispatcher.

        With ``drain=True`` (default) every query already accepted — in
        the queue or in the window being executed — is answered before
        the dispatcher dies; clients see responses, not resets.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain and self._queue is not None:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + max(0.0, drain_timeout_s)
            while (
                (not self._queue.empty() or self._window_busy)
                and loop.time() < deadline
            ):
                await asyncio.sleep(0.01)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
            self._dispatcher = None
        # Close lingering connection handlers so no coroutine outlives
        # the loop (idle keep-alive clients, half-read pipelines).
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            self._conn_tasks.clear()

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI entry point)."""
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _health_payload(self) -> dict:
        queued = self._queue.qsize() if self._queue is not None else 0
        return {
            "result": {
                "status": "ok",
                "ready": queued < self.max_queue,
                "queued": queued,
                "max_queue": self.max_queue,
            }
        }

    def _shed_payload(self) -> dict:
        # Retry-after: one window is roughly what clearing a queue slot
        # takes, so hint a couple of windows (floor 10 ms).
        hint = max(10, int(self.window_s * 2000))
        return {"error": "overloaded", "retry_after_ms": hint}

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Reader loop: parse lines, enqueue, respond *asynchronously*.

        Each request gets its own responder task, so a client may
        pipeline many requests on one connection and they all land in
        the same coalescing window; responses are matched by ``id``
        (write order may interleave, each line is written atomically
        under ``write_lock``).
        """
        _CONNECTIONS.add()
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._conn_tasks.add(conn_task)
        write_lock = asyncio.Lock()
        responders: set[asyncio.Task] = set()

        async def send(request_id, payload) -> None:
            data = encode_response(request_id, payload)
            async with write_lock:
                if fault_point("serve.conn.drop"):
                    # Chaos: cut the connection mid-line — clients must
                    # treat the torn tail as a dead server and retry.
                    writer.write(data[: max(1, len(data) // 2)])
                    with contextlib.suppress(Exception):
                        await writer.drain()
                    writer.transport.abort()
                    return
                writer.write(data)
                await writer.drain()

        async def respond(request_id, query, deadline) -> None:
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            try:
                self._queue.put_nowait((query, future, deadline))
            except asyncio.QueueFull:
                _SHED.add()
                await send(request_id, self._shed_payload())
                return
            payload = await future
            await send(request_id, payload)

        try:
            while True:
                try:
                    if self.idle_timeout_s is not None:
                        line = await asyncio.wait_for(
                            reader.readline(), self.idle_timeout_s
                        )
                    else:
                        line = await reader.readline()
                except asyncio.TimeoutError:
                    # Idle reaper: the client sent nothing for the
                    # whole window — close its connection cleanly.
                    _IDLE_CLOSED.add()
                    break
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # oversized line
                    _PROTOCOL_ERRORS.add()
                    await send(None, {"error": "request too large"})
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request_id, query, timeout_ms = parse_request(line)
                except ValueError as exc:
                    _PROTOCOL_ERRORS.add()
                    await send(None, {"error": str(exc)})
                    continue
                if query.op == "health":
                    # Answered inline, never queued: readiness probing
                    # must keep working when the queue is saturated.
                    await send(request_id, self._health_payload())
                    continue
                deadline = None
                if timeout_ms is not None:
                    deadline = (
                        asyncio.get_running_loop().time() + timeout_ms / 1000.0
                    )
                task = asyncio.create_task(respond(request_id, query, deadline))
                responders.add(task)
                task.add_done_callback(responders.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if conn_task is not None:
                self._conn_tasks.discard(conn_task)
            if responders:
                with contextlib.suppress(
                    ConnectionError, asyncio.CancelledError
                ):
                    await asyncio.gather(*responders, return_exceptions=True)
            with contextlib.suppress(RuntimeError):  # loop already closed
                writer.close()
            with contextlib.suppress(ConnectionError, RuntimeError):
                await writer.wait_closed()

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    async def _drain_window(self) -> list[tuple]:
        """Block for the first query, then coalesce for the window."""
        assert self._queue is not None
        first = await self._queue.get()
        window = [first]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.window_s
        while len(window) < self.max_window:
            remaining = deadline - loop.time()
            if remaining <= 0:
                # Window expired: still sweep anything already queued —
                # coalescing what exists costs no latency.
                try:
                    window.append(self._queue.get_nowait())
                    continue
                except asyncio.QueueEmpty:
                    break
            try:
                item = await asyncio.wait_for(self._queue.get(), remaining)
            except asyncio.TimeoutError:
                break
            window.append(item)
        return window

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            window = await self._drain_window()
            self._window_busy = True
            try:
                # Deadline shedding at dispatch: a query that waited out
                # its budget in the queue is answered late-and-cheap
                # (an error) instead of late-and-expensive (computed).
                now = loop.time()
                live: list[tuple] = []
                for query, future, deadline in window:
                    if deadline is not None and now > deadline:
                        _DEADLINE_SHED.add()
                        if not future.done():
                            future.set_result(
                                {"error": "deadline exceeded",
                                 "retry_after_ms": None}
                            )
                        continue
                    live.append((query, future, deadline))
                if not live:
                    continue
                queries = [query for query, _, _ in live]
                try:
                    payloads = await loop.run_in_executor(
                        None, self.engine.execute, queries
                    )
                except Exception as exc:  # engine bug: fail the window, not the loop
                    payloads = [{"error": f"internal error: {exc}"}] * len(live)
                for (_, future, _), payload in zip(live, payloads):
                    if not future.done():
                        future.set_result(payload)
            finally:
                self._window_busy = False
