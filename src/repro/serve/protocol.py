"""Line-JSON wire protocol for the obfuscation server.

One request per line, one response per line, UTF-8 JSON::

    → {"id": 7, "op": "reliability", "source": 3, "target": 42}
    ← {"id": 7, "ok": true, "result": {"value": 0.625}}

    → {"id": 8, "op": "knn", "source": 3, "k": 5}
    ← {"id": 8, "ok": true,
       "result": {"neighbors": [[17, 0.9375], [4, 0.75]]}}

    → {"id": 9, "op": "nope"}
    ← {"id": 9, "ok": false, "error": "unknown op 'nope' ..."}

``id`` is an opaque client token echoed back verbatim (responses to
pipelined requests are matched by it).  Optional ``worlds`` and
``seed`` fields override the engine's defaults per query — two queries
with the same ``(worlds, seed)`` share sampled worlds, which is what
the server coalesces on.

Infinite distances (disconnected pairs) cross the wire as the string
``"inf"`` so every response line is strict JSON.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

__all__ = [
    "OPS",
    "Query",
    "decode_response",
    "encode_response",
    "parse_request",
]

#: op name → required integer fields beyond the op itself.
OPS: dict[str, tuple[str, ...]] = {
    "degree": ("source",),
    "reliability": ("source", "target"),
    "khop": ("source", "hops"),
    "distance": ("source", "target"),
    "knn": ("source", "k"),
    "health": (),
}

#: optional integer fields accepted per op.
_OPTIONAL: dict[str, tuple[str, ...]] = {
    "degree": (),
    "reliability": ("max_hops",),
    "khop": (),
    "distance": (),
    "knn": (),
    "health": (),
}


@dataclass(frozen=True)
class Query:
    """A validated query; hashable so it doubles as an answer-cache key.

    ``worlds``/``seed`` of ``None`` mean "engine defaults" — the engine
    resolves them before grouping, so equal effective sampling keys
    coalesce whether they were spelled out or defaulted.  ``source``
    defaults to 0 for ops that take no vertex (``health``).
    """

    op: str
    source: int = 0
    target: int | None = None
    k: int | None = None
    hops: int | None = None
    max_hops: int | None = None
    worlds: int | None = None
    seed: int | None = None


def _require_int(obj: dict, field: str, *, minimum: int = 0) -> int:
    value = obj.get(field)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"field {field!r} must be an integer")
    if value < minimum:
        raise ValueError(f"field {field!r} must be >= {minimum}, got {value}")
    return value


def parse_request(line: str | bytes) -> tuple[object, Query, int | None]:
    """Parse one request line into ``(id, Query, timeout_ms)``.

    ``timeout_ms`` is the request's optional per-request deadline: the
    server sheds the query (instead of answering late) once that many
    milliseconds have passed since the request was read.

    Raises ``ValueError`` on malformed JSON, unknown ops, or missing /
    mistyped fields.  The caller still owns range-checking vertex ids
    against the loaded release (the protocol layer does not know ``n``).
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed JSON request: {exc}") from None
    if not isinstance(obj, dict):
        raise ValueError("request must be a JSON object")
    op = obj.get("op")
    if op not in OPS:
        raise ValueError(
            f"unknown op {op!r}; expected one of {sorted(OPS)}"
        )
    fields: dict[str, int] = {}
    for field in OPS[op]:
        fields[field] = _require_int(obj, field)
    for field in _OPTIONAL[op]:
        if obj.get(field) is not None:
            fields[field] = _require_int(obj, field)
    for field in ("worlds", "seed"):
        if obj.get(field) is not None:
            fields[field] = _require_int(
                obj, field, minimum=1 if field == "worlds" else 0
            )
    if op == "knn" and fields["k"] < 1:
        raise ValueError(f"field 'k' must be >= 1, got {fields['k']}")
    timeout_ms = None
    if obj.get("timeout_ms") is not None:
        timeout_ms = _require_int(obj, "timeout_ms", minimum=1)
    return obj.get("id"), Query(op=op, **fields), timeout_ms


def _wire_number(value: float):
    """JSON-safe scalar: ``inf`` becomes the string ``"inf"``."""
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return value


def wire_payload(query: Query, answer) -> dict:
    """Shape an engine answer for the wire (op-specific result object)."""
    if query.op == "distance":
        distribution, median, majority = answer
        return {
            "distribution": {
                str(_wire_number(d)): p for d, p in sorted(
                    distribution.items(),
                    key=lambda kv: (math.isinf(kv[0]), kv[0]),
                )
            },
            "median": _wire_number(median),
            "majority": _wire_number(majority),
        }
    if query.op == "knn":
        return {"neighbors": [[v, s] for v, s in answer]}
    return {"value": answer}


def encode_response(request_id, payload: dict) -> bytes:
    """Encode one response line; ``payload`` comes from the engine.

    Error payloads may carry ``retry_after_ms`` — the load-shedding
    hint clients use to back off before retrying an overloaded server.
    """
    if "error" in payload:
        obj = {"id": request_id, "ok": False, "error": payload["error"]}
        if payload.get("retry_after_ms") is not None:
            obj["retry_after_ms"] = int(payload["retry_after_ms"])
    else:
        obj = {"id": request_id, "ok": True, "result": payload["result"]}
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode()


def decode_response(line: str | bytes) -> tuple[object, dict]:
    """Parse one response line into ``(id, {"result": ...} | {"error": ...})``."""
    obj = json.loads(line)
    if not isinstance(obj, dict) or "ok" not in obj:
        raise ValueError(f"malformed response line: {line!r}")
    if obj["ok"]:
        return obj.get("id"), {"result": obj["result"]}
    payload = {"error": obj.get("error", "unknown error")}
    if obj.get("retry_after_ms") is not None:
        payload["retry_after_ms"] = obj["retry_after_ms"]
    return obj.get("id"), payload
