"""Coalescing query engine over a published uncertain graph.

The sequential oracles in :mod:`repro.uncertain.queries` cost ``worlds``
BFS passes *per query*.  The engine answers the same queries from
shared state, so a coalescing window of concurrent queries costs:

* **one world batch** per distinct ``(seed, worlds)`` in the window
  (usually one — almost all traffic uses the engine defaults), sampled
  once and kept in a small LRU;
* **one multi-source BFS pass** per distinct *source* in the window
  (:func:`repro.uncertain.batch_queries.batch_distance_rows` over the
  batch's disjoint-union CSR), with the resulting ``(W, n)`` distance
  rows LRU-cached across windows;
* **zero kernel work** for repeated ``(op, args)`` queries — a bounded
  answer cache absorbs the hot pairs of a zipfian workload.  Admission
  is frequency-gated (TinyLFU-style: a count-min sketch of request
  frequencies decides whether a miss may evict the LRU victim), so the
  workload's cold tail cannot churn its hot head out of the cache.

Every cache layer is *exactness-preserving*: a cached answer is the
same object the kernel would recompute, and the kernels are seed-pinned
bit-for-bit to the sequential oracle (``tests/uncertain/
test_batch_queries.py``), so coalescing never changes an answer — only
how many queries share its cost.

Thread-safety: one engine-wide lock serialises :meth:`execute`.  The
server funnels all kernel work through a single executor thread anyway;
the lock makes direct library use from threads safe too.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.obs.metrics import REGISTRY as _OBS
from repro.serve.protocol import Query, wire_payload
from repro.uncertain.batch_queries import (
    batch_distance_rows,
    distance_distribution_from_batch,
    k_hop_reachable_size_from_batch,
    k_nearest_neighbors_from_batch,
    majority_distance_from_batch,
    median_distance_from_batch,
    reliability_from_batch,
)
from repro.uncertain.graph import UncertainGraph
from repro.worlds.batch import WorldBatch

__all__ = ["QueryEngine"]

_QUERIES = _OBS.counter("serve.queries")
_ERRORS = _OBS.counter("serve.errors")
_ANSWER_HITS = _OBS.counter("serve.cache.answer_hits")
_ANSWER_ADMITTED = _OBS.counter("serve.cache.answer_admitted")
_ANSWER_REJECTED = _OBS.counter("serve.cache.answer_rejected")
_DIST_HITS = _OBS.counter("serve.cache.dist_hits")
_BFS_PASSES = _OBS.counter("serve.bfs.passes")
_BATCHES = _OBS.counter("serve.batches.sampled")
_WINDOW = _OBS.histogram("serve.window.queries")


class _LRU(OrderedDict):
    """Tiny bounded LRU: plain OrderedDict plus an eviction cap."""

    def __init__(self, cap: int):
        super().__init__()
        self.cap = cap

    def get_touch(self, key):
        if key not in self:
            return None
        self.move_to_end(key)
        return self[key]

    def put(self, key, value) -> None:
        self[key] = value
        self.move_to_end(key)
        while len(self) > self.cap:
            self.popitem(last=False)


class _FrequencySketch:
    """Count-min sketch with 4-bit counters and periodic halving.

    The TinyLFU frequency filter: four hash rows of saturating 4-bit
    counters estimate how often each key has been *requested* (not how
    often it was cached).  After ``8 × cap`` recorded accesses every
    counter halves — the aging step that makes the estimate a sliding
    window rather than an all-time count, so yesterday's hot keys decay
    instead of squatting on admission forever.
    """

    _SEEDS = (0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9,
              0x27D4EB2F165667C5)

    def __init__(self, cap: int):
        width = 64
        while width < 4 * cap:
            width <<= 1
        self._mask = width - 1
        self._rows = np.zeros((len(self._SEEDS), width), dtype=np.uint8)
        self._ops = 0
        self._sample = 8 * max(cap, 1)

    def _indices(self, h: int) -> list[int]:
        return [
            ((h ^ seed) * 0x9E3779B97F4A7C15 >> 32) & self._mask
            for seed in self._SEEDS
        ]

    def increment(self, h: int) -> None:
        for row, idx in enumerate(self._indices(h)):
            if self._rows[row, idx] < 15:
                self._rows[row, idx] += 1
        self._ops += 1
        if self._ops >= self._sample:
            self._rows >>= 1
            self._ops = 0

    def estimate(self, h: int) -> int:
        return min(
            int(self._rows[row, idx])
            for row, idx in enumerate(self._indices(h))
        )


class _TinyLFU:
    """Admission-gated LRU: evict only for candidates that earn it.

    A plain LRU admits every miss, so a long tail of one-off queries
    steadily evicts the zipfian head between its recurrences.  Here the
    LRU is fronted by a :class:`_FrequencySketch`: a miss is admitted
    only when its estimated request frequency is at least the eviction
    victim's, so cold singletons bounce off a warm cache instead of
    churning it.  Same ``get_touch``/``put`` surface as :class:`_LRU`;
    ``put`` returns whether the entry was admitted.
    """

    def __init__(self, cap: int):
        self.cap = cap
        self._store: OrderedDict = OrderedDict()
        self._sketch = _FrequencySketch(cap)
        self.hits = 0
        self.misses = 0
        self.admitted = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._store)

    def get_touch(self, key):
        self._sketch.increment(hash(key))
        value = self._store.get(key)
        if value is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> bool:
        if key in self._store:
            self._store[key] = value
            self._store.move_to_end(key)
            return True
        if len(self._store) >= self.cap:
            victim = next(iter(self._store))
            if self._sketch.estimate(hash(key)) < self._sketch.estimate(
                hash(victim)
            ):
                self.rejected += 1
                return False
            del self._store[victim]
        self._store[key] = value
        self.admitted += 1
        return True


class QueryEngine:
    """Answer degree/reliability/k-hop/distance/k-NN queries on a release.

    Parameters
    ----------
    uncertain:
        The published uncertain graph (e.g. from
        :func:`repro.uncertain.io.read_uncertain_graph`).
    worlds, seed:
        Default Monte-Carlo sample size and seed for queries that do
        not spell out their own — the Corollary-1 knob of the paper.
    max_batches, max_dist_rows, max_answers:
        Cache capacities: sampled world batches (LRU keyed by
        ``(seed, worlds)``), per-source distance-row matrices (LRU
        keyed by ``(seed, worlds, source)``), and finished answers
        (a :class:`_TinyLFU` admission-gated LRU keyed by the resolved
        :class:`~repro.serve.protocol.Query`).
    """

    def __init__(
        self,
        uncertain: UncertainGraph,
        *,
        worlds: int = 64,
        seed: int = 0,
        max_batches: int = 4,
        max_dist_rows: int = 128,
        max_answers: int = 65536,
    ):
        if worlds < 1:
            raise ValueError(f"need at least one world, got {worlds}")
        self.uncertain = uncertain
        self.worlds = int(worlds)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._batches: _LRU = _LRU(max_batches)
        self._dist_rows: _LRU = _LRU(max_dist_rows)
        self._answers: _TinyLFU = _TinyLFU(max_answers)
        # Deterministic aggregates the sampling layer never touches.
        self._expected_degrees = uncertain.expected_degrees()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, queries: list[Query]) -> list[dict]:
        """Answer a coalescing window of queries; one payload per query.

        Payloads are ``{"result": <wire object>}`` or
        ``{"error": <message>}`` in input order.  All sampling/BFS work
        for the window is shared as described in the module docstring.
        """
        with self._lock:
            return self._execute_locked(queries)

    def execute_one(self, query: Query) -> dict:
        """Single-query convenience wrapper around :meth:`execute`."""
        return self.execute([query])[0]

    def cache_stats(self) -> dict:
        """Sizes plus answer-cache hit/admission counts (for manifests)."""
        answers = self._answers
        lookups = answers.hits + answers.misses
        return {
            "batches": len(self._batches),
            "dist_rows": len(self._dist_rows),
            "answers": len(answers),
            "answer_hits": answers.hits,
            "answer_misses": answers.misses,
            "answer_hit_rate": answers.hits / lookups if lookups else 0.0,
            "answer_admitted": answers.admitted,
            "answer_rejected": answers.rejected,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve(self, query: Query) -> Query:
        """Pin defaulted ``worlds``/``seed`` so equal work keys coalesce."""
        if query.worlds is not None and query.seed is not None:
            return query
        return Query(
            op=query.op,
            source=query.source,
            target=query.target,
            k=query.k,
            hops=query.hops,
            max_hops=query.max_hops,
            worlds=self.worlds if query.worlds is None else query.worlds,
            seed=self.seed if query.seed is None else query.seed,
        )

    def _execute_locked(self, queries: list[Query]) -> list[dict]:
        _QUERIES.add(len(queries))
        _WINDOW.observe(len(queries))
        payloads: list[dict | None] = [None] * len(queries)
        # (batch_key, source) → list of (index, resolved query) still
        # needing kernel work after the answer cache.
        pending: dict[tuple, list[tuple[int, Query]]] = {}
        for i, raw in enumerate(queries):
            query = self._resolve(raw)
            cached = self._answers.get_touch(query)
            if cached is not None:
                _ANSWER_HITS.add()
                payloads[i] = cached
                continue
            try:
                self._validate(query)
            except ValueError as exc:
                _ERRORS.add()
                payloads[i] = {"error": str(exc)}
                continue
            if query.op == "health":
                # The server answers health inline without queueing; this
                # path covers direct engine use (tests, workload tools).
                payloads[i] = {"result": {"status": "ok", "ready": True}}
                continue
            if query.op == "degree":
                value = float(self._expected_degrees[query.source])
                payloads[i] = self._finish(query, value)
                continue
            key = ((query.seed, query.worlds), query.source)
            pending.setdefault(key, []).append((i, query))

        for (batch_key, source), group in pending.items():
            batch = self._batch(batch_key)
            dist = self._distance_rows(batch_key, batch, source)
            for i, query in group:
                try:
                    payloads[i] = self._finish(
                        query, self._answer(batch, dist, query)
                    )
                except ValueError as exc:
                    _ERRORS.add()
                    payloads[i] = {"error": str(exc)}
        return payloads  # type: ignore[return-value]

    def _validate(self, query: Query) -> None:
        n = self.uncertain.num_vertices
        for field in ("source", "target"):
            v = getattr(query, field)
            if v is not None and not 0 <= v < n:
                raise ValueError(
                    f"{field} {v} out of range for release with n={n}"
                )
        if query.op == "knn" and not 1 <= query.k < n:
            raise ValueError(f"need 1 <= k < n={n}, got k={query.k}")
        if query.op == "khop" and query.hops < 0:
            raise ValueError(f"hops must be non-negative, got {query.hops}")

    def _batch(self, batch_key: tuple[int, int]) -> WorldBatch:
        batch = self._batches.get_touch(batch_key)
        if batch is None:
            seed, worlds = batch_key
            batch = WorldBatch.sample(self.uncertain, worlds, seed=seed)
            self._batches.put(batch_key, batch)
            _BATCHES.add()
        return batch

    def _distance_rows(
        self, batch_key: tuple[int, int], batch: WorldBatch, source: int
    ) -> np.ndarray:
        key = (*batch_key, source)
        dist = self._dist_rows.get_touch(key)
        if dist is None:
            dist = batch_distance_rows(batch, source)
            # Hop counts fit comfortably in int32; a (W, n) row matrix
            # shrinks 2x in the cache without changing any comparison.
            dist = dist.astype(np.int32, copy=False)
            self._dist_rows.put(key, dist)
            _BFS_PASSES.add()
        else:
            _DIST_HITS.add()
        return dist

    def _answer(self, batch: WorldBatch, dist: np.ndarray, query: Query):
        if query.op == "reliability":
            return reliability_from_batch(
                batch,
                query.source,
                query.target,
                max_hops=query.max_hops,
                dist=dist,
            )
        if query.op == "khop":
            return k_hop_reachable_size_from_batch(
                batch, query.source, query.hops, dist=dist
            )
        if query.op == "distance":
            distribution = distance_distribution_from_batch(
                batch, query.source, query.target, dist=dist
            )
            median = median_distance_from_batch(
                batch, query.source, query.target, dist=dist
            )
            majority = majority_distance_from_batch(
                batch, query.source, query.target, dist=dist
            )
            return (distribution, median, majority)
        if query.op == "knn":
            return k_nearest_neighbors_from_batch(
                batch, query.source, query.k, dist=dist
            )
        raise ValueError(f"unknown op {query.op!r}")  # pragma: no cover

    def _finish(self, query: Query, answer) -> dict:
        payload = {"result": wire_payload(query, answer)}
        if self._answers.put(query, payload):
            _ANSWER_ADMITTED.add()
        else:
            _ANSWER_REJECTED.add()
        return payload
