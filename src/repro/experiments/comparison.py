"""Table 6 / Figure 4 machinery: matching and beating the baselines.

The paper's comparative protocol (§7.3):

1. pick a randomization parameter ``p`` whose release reaches the same
   (k, ε) anonymity as the uncertain-graph obfuscation — the achieved
   ``k`` of a release is the least anonymity level after disregarding
   the ``ε·n`` least-anonymous vertices;
2. sample releases (the paper used 50), compute every statistic on each,
   and compare means against the original values;
3. report the average relative error per method — Table 6 — and the
   cumulative anonymity curves — Figure 4.

:func:`calibrate_randomization` automates step 1 with a monotone scan
over a ``p`` grid (the paper hand-picked from the same {0.04, 0.32,
0.64} family).

Backends: every release-sampling step runs on one of two seed-equivalent
engines.  ``"batched"`` (the default) draws all releases of a scheme
through :func:`repro.worlds.releases.sample_releases` and evaluates the
ten statistics with the multi-world kernels of :mod:`repro.worlds` —
the engine behind the minutes-scale full Table-6 sweep.
``"sequential"`` is the pinned ground truth: one release at a time, one
``Graph → float`` callable per statistic.  Both consume the identical
RNG stream, so equal seeds give identical releases (edge-for-edge) and
table rows that agree to ≤1e-9 (pinned by
``tests/experiments/test_comparison_batched.py``).

Per-scheme RNG streams are derived from ``zlib.crc32`` of the scheme
name — a stable constant, unlike ``hash()``, which varies with
``PYTHONHASHSEED`` across interpreter runs.
"""

from __future__ import annotations

import logging
import zlib

import numpy as np

from repro.baselines.anonymity import (
    original_anonymity_levels,
    randomization_anonymity_levels_from_observed,
)
from repro.baselines.randomization import random_perturbation, random_sparsification
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import (
    SweepEntry,
    _original_statistics,
    evaluate_utility,
)
from repro.graphs.graph import Graph
from repro.obs.trace import span
from repro.stats.registry import PAPER_STATISTIC_NAMES, paper_statistics
from repro.utils.rng import as_rng
from repro.worlds.estimator import BatchStatisticsEngine
from repro.worlds.releases import sample_releases, stream_releases
from repro.worlds.stats_batch import degree_matrix

_log = logging.getLogger("repro.experiments.comparison")

#: Default calibration grid, containing the paper's hand-picked values.
DEFAULT_P_GRID: tuple[float, ...] = (0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 0.9)

#: Release-sampling engines accepted by every function below.
BASELINE_BACKENDS = ("batched", "sequential")


def _check_backend(backend: str) -> str:
    if backend not in BASELINE_BACKENDS:
        raise ValueError(
            f"unknown baseline backend {backend!r}; use batched/sequential"
        )
    return backend


def scheme_stream(seed, scheme: str) -> np.random.Generator:
    """Per-scheme child RNG: root seed + a *stable* scheme constant.

    ``zlib.crc32`` is deterministic across interpreter runs, unlike
    ``hash()`` whose value depends on ``PYTHONHASHSEED`` — the latter
    made Table-6 baseline rows irreproducible across processes.
    """
    return as_rng((seed, zlib.crc32(scheme.encode())))


def _sample_release(graph: Graph, scheme: str, p: float, rng) -> Graph:
    if scheme == "sparsification":
        return random_sparsification(graph, p, seed=rng)
    if scheme == "perturbation":
        return random_perturbation(graph, p, seed=rng)
    raise ValueError(f"unknown scheme {scheme!r}")


def achieved_k(
    graph: Graph,
    scheme: str,
    p: float,
    eps: float,
    *,
    releases: int = 3,
    seed=None,
    backend: str = "batched",
) -> float:
    """Anonymity level a randomized scheme reaches at tolerance ε.

    Averages over ``releases`` sampled releases the quantity "least
    anonymity after disregarding the ⌊ε·n⌋ least-anonymous vertices"
    (the skip index is clamped to the last vertex when ``ε·n ≥ n``).

    With ``backend="batched"`` all releases are drawn in one
    :func:`~repro.worlds.releases.sample_releases` pass and their degree
    sequences come from one :func:`~repro.worlds.stats_batch.degree_matrix`
    bincount — no per-release :class:`Graph` is materialised.  Values are
    identical to the sequential path (same stream → same releases → same
    entropy arithmetic).
    """
    _check_backend(backend)
    rng = as_rng(seed)
    n = graph.num_vertices
    skip = int(np.floor(eps * n))
    if backend == "batched":
        observed_rows = degree_matrix(
            sample_releases(graph, scheme, p, releases, seed=rng)
        )
    else:  # lazy: sampling stays interleaved with the entropy passes
        observed_rows = (
            _sample_release(graph, scheme, p, rng).degrees()
            for _ in range(releases)
        )
    values = []
    for observed in observed_rows:
        levels = np.sort(
            randomization_anonymity_levels_from_observed(graph, observed, scheme, p)
        )
        values.append(levels[min(skip, n - 1)])
    return float(np.mean(values))


def calibrate_randomization(
    graph: Graph,
    scheme: str,
    k: float,
    eps: float,
    *,
    p_grid: tuple[float, ...] = DEFAULT_P_GRID,
    releases: int = 3,
    seed=None,
    backend: str = "batched",
) -> float:
    """Smallest grid ``p`` whose release achieves anonymity ≥ k at tolerance ε.

    Returns ``nan`` when even the largest grid value falls short (the
    Hay-et-al. regime where randomization cannot reach the target
    without destroying the graph).
    """
    _check_backend(backend)
    rng = as_rng(seed)
    with span("calibrate_randomization", scheme=scheme, k=k) as sp:
        for p in p_grid:
            if (
                achieved_k(
                    graph, scheme, p, eps, releases=releases, seed=rng,
                    backend=backend,
                )
                >= k
            ):
                sp.set(p=p)
                _log.info("calibrated %s to p=%g for k>=%g", scheme, p, k)
                return p
    _log.warning(
        "calibration failed: %s cannot reach k>=%g on the grid %s",
        scheme, k, p_grid,
    )
    return float("nan")


def baseline_utility_row(
    graph: Graph,
    scheme: str,
    p: float,
    config: ExperimentConfig,
    *,
    label: str | None = None,
    original: dict[str, float] | None = None,
    executor=None,
) -> dict:
    """Mean statistics over sampled releases + avg relative error vs original.

    ``config.baseline_backend`` selects the engine: ``"batched"``
    streams the ``config.baseline_samples`` releases through bounded
    :class:`~repro.worlds.batch.WorldBatch` chunks
    (:func:`~repro.worlds.releases.stream_releases`, so the full
    cross-release union edge list of high-``p`` perturbation never
    materialises) and evaluates the ten paper statistics through the
    multi-world kernels; ``"sequential"`` measures one materialised
    release at a time.  Same seed ⇒ same releases ⇒ rows agreeing to
    ≤1e-9.

    ``original`` lets callers that emit several rows for one dataset
    (``table6_rows``) reuse the original graph's statistics instead of
    recomputing an ANF/BFS pass per row.
    """
    backend = _check_backend(config.baseline_backend)
    stats = paper_statistics(
        distance_backend=config.distance_backend, seed=config.seed
    )
    if original is None:
        original = {name: float(func(graph)) for name, func in stats.items()}
    rng = scheme_stream(config.seed, scheme)
    with span(
        "baseline_utility", scheme=scheme, p=p, samples=config.baseline_samples
    ):
        if backend == "batched":
            values = BatchStatisticsEngine(stats).evaluate_stream(
                stream_releases(
                    graph, scheme, p, config.baseline_samples, seed=rng
                ),
                list(PAPER_STATISTIC_NAMES),
                executor=executor,
            )
        else:
            sums = {name: [] for name in PAPER_STATISTIC_NAMES}
            for _ in range(config.baseline_samples):
                released = _sample_release(graph, scheme, p, rng)
                for name, func in stats.items():
                    sums[name].append(float(func(released)))
            values = {
                name: np.asarray(sums[name]) for name in PAPER_STATISTIC_NAMES
            }
    row: dict = {"variant": label or f"{scheme} p={p}"}
    rel = []
    for name in PAPER_STATISTIC_NAMES:
        mean = float(np.mean(values[name]))
        row[name] = mean
        ref = original[name]
        rel.append(abs(mean - ref) / abs(ref) if ref != 0 else float(mean != ref))
    row["rel_err"] = float(np.mean(rel))
    return row


def obfuscation_utility_row(
    entry: SweepEntry,
    config: ExperimentConfig,
    *,
    label: str | None = None,
    original: dict[str, float] | None = None,
    executor=None,
) -> dict:
    """Table-6 row for the uncertain-graph method at one sweep cell."""
    if original is None:
        original = _original_statistics(entry.graph, config)
    summaries = evaluate_utility(entry, config, executor=executor)
    row: dict = {
        "variant": label or f"obf. (k={entry.k}, eps={entry.paper_eps:g})"
    }
    rel = []
    for name in PAPER_STATISTIC_NAMES:
        mean = summaries[name].mean
        row[name] = mean
        ref = original[name]
        rel.append(abs(mean - ref) / abs(ref) if ref != 0 else float(mean != ref))
    row["rel_err"] = float(np.mean(rel))
    return row


def original_row(
    graph: Graph,
    config: ExperimentConfig,
    *,
    original: dict[str, float] | None = None,
) -> dict:
    """The "original" reference row of Table 6."""
    if original is None:
        original = _original_statistics(graph, config)
    row: dict = {"variant": "original"}
    row.update(original)
    row["rel_err"] = 0.0
    return row


def table6_rows(
    sweep: list[SweepEntry],
    config: ExperimentConfig,
    *,
    matchups: list[dict] | None = None,
    executor=None,
) -> list[dict]:
    """Full Table 6: original vs randomization vs obfuscation per dataset.

    ``matchups`` entries have keys ``dataset``, ``scheme``, ``k``,
    ``paper_eps`` (the obfuscation cell to match) and optionally a fixed
    ``p``; when ``p`` is absent it is calibrated.  The default matchups
    are the paper's §7.3 cases, restricted to datasets present in the
    sweep.  Baseline sampling and calibration run on
    ``config.baseline_backend``.
    """
    if matchups is None:
        # The paper's §7.3 cases, with one adaptation: its dblp
        # perturbation matchup used (k = 60, ε = 10⁻³), but under the
        # count-preserving ε rescale (EXPERIMENTS.md) the loose-ε cells
        # tolerate ~10% of the surrogate's vertices, which any tiny p
        # "achieves" — a degenerate calibration target.  All default
        # matchups therefore use the strict ε = 10⁻⁴ cells, which keep
        # both the tolerated count and a meaningful fraction.
        matchups = [
            {"dataset": "dblp", "scheme": "perturbation", "k": 20, "paper_eps": 1e-4},
            {"dataset": "dblp", "scheme": "sparsification", "k": 20, "paper_eps": 1e-4},
            {"dataset": "flickr", "scheme": "perturbation", "k": 20, "paper_eps": 1e-4},
            {
                "dataset": "flickr",
                "scheme": "sparsification",
                "k": 20,
                "paper_eps": 1e-4,
            },
        ]
    by_cell = {(e.dataset, e.k, e.paper_eps): e for e in sweep}
    rows: list[dict] = []
    # The original graph's ten statistics anchor every row of a dataset;
    # compute them once per dataset, not once per row (the ANF pass on
    # the original graph is as costly as evaluating several releases).
    originals: dict[str, dict[str, float]] = {}
    for match in matchups:
        dataset = match["dataset"]
        cell = by_cell.get((dataset, match["k"], match["paper_eps"]))
        if cell is None or not cell.result.success:
            continue
        graph = cell.graph
        if dataset not in originals:
            originals[dataset] = _original_statistics(graph, config)
            row = original_row(graph, config, original=originals[dataset])
            row["dataset"] = dataset
            rows.append(row)
        p = match.get("p")
        if p is None:
            p = calibrate_randomization(
                graph,
                match["scheme"],
                match["k"],
                cell.eps_used,
                seed=(config.seed, 17),
                backend=config.baseline_backend,
            )
        if not np.isnan(p):
            row = baseline_utility_row(
                graph,
                match["scheme"],
                p,
                config,
                label=f"rand.{match['scheme'][:5]}. (p={p:g})",
                original=originals[dataset],
                executor=executor,
            )
            row["dataset"] = dataset
            rows.append(row)
        row = obfuscation_utility_row(
            cell, config, original=originals[dataset], executor=executor
        )
        row["dataset"] = dataset
        rows.append(row)
    return rows
