"""Table 6 / Figure 4 machinery: matching and beating the baselines.

The paper's comparative protocol (§7.3):

1. pick a randomization parameter ``p`` whose release reaches the same
   (k, ε) anonymity as the uncertain-graph obfuscation — the achieved
   ``k`` of a release is the least anonymity level after disregarding
   the ``ε·n`` least-anonymous vertices;
2. sample releases (the paper used 50), compute every statistic on each,
   and compare means against the original values;
3. report the average relative error per method — Table 6 — and the
   cumulative anonymity curves — Figure 4.

:func:`calibrate_randomization` automates step 1 with a monotone scan
over a ``p`` grid (the paper hand-picked from the same {0.04, 0.32,
0.64} family).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.anonymity import (
    original_anonymity_levels,
    randomization_anonymity_levels,
)
from repro.baselines.randomization import random_perturbation, random_sparsification
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import SweepEntry, evaluate_utility
from repro.graphs.graph import Graph
from repro.stats.registry import PAPER_STATISTIC_NAMES, paper_statistics
from repro.utils.rng import as_rng

#: Default calibration grid, containing the paper's hand-picked values.
DEFAULT_P_GRID: tuple[float, ...] = (0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 0.9)


def _sample_release(graph: Graph, scheme: str, p: float, rng) -> Graph:
    if scheme == "sparsification":
        return random_sparsification(graph, p, seed=rng)
    if scheme == "perturbation":
        return random_perturbation(graph, p, seed=rng)
    raise ValueError(f"unknown scheme {scheme!r}")


def achieved_k(
    graph: Graph, scheme: str, p: float, eps: float, *, releases: int = 3, seed=None
) -> float:
    """Anonymity level a randomized scheme reaches at tolerance ε.

    Averages over ``releases`` sampled releases the quantity "least
    anonymity after disregarding the ⌊ε·n⌋ least-anonymous vertices".
    """
    rng = as_rng(seed)
    n = graph.num_vertices
    skip = int(np.floor(eps * n))
    values = []
    for _ in range(releases):
        published = _sample_release(graph, scheme, p, rng)
        levels = np.sort(randomization_anonymity_levels(graph, published, scheme, p))
        values.append(levels[min(skip, n - 1)])
    return float(np.mean(values))


def calibrate_randomization(
    graph: Graph,
    scheme: str,
    k: float,
    eps: float,
    *,
    p_grid: tuple[float, ...] = DEFAULT_P_GRID,
    releases: int = 3,
    seed=None,
) -> float:
    """Smallest grid ``p`` whose release achieves anonymity ≥ k at tolerance ε.

    Returns ``nan`` when even the largest grid value falls short (the
    Hay-et-al. regime where randomization cannot reach the target
    without destroying the graph).
    """
    rng = as_rng(seed)
    for p in p_grid:
        if achieved_k(graph, scheme, p, eps, releases=releases, seed=rng) >= k:
            return p
    return float("nan")


def baseline_utility_row(
    graph: Graph,
    scheme: str,
    p: float,
    config: ExperimentConfig,
    *,
    label: str | None = None,
) -> dict:
    """Mean statistics over sampled releases + avg relative error vs original."""
    stats = paper_statistics(
        distance_backend=config.distance_backend, seed=config.seed
    )
    original = {name: float(func(graph)) for name, func in stats.items()}
    rng = as_rng((config.seed, hash(scheme) & 0xFFFF))
    sums = {name: [] for name in PAPER_STATISTIC_NAMES}
    for _ in range(config.baseline_samples):
        released = _sample_release(graph, scheme, p, rng)
        for name, func in stats.items():
            sums[name].append(float(func(released)))
    row: dict = {"variant": label or f"{scheme} p={p}"}
    rel = []
    for name in PAPER_STATISTIC_NAMES:
        mean = float(np.mean(sums[name]))
        row[name] = mean
        ref = original[name]
        rel.append(abs(mean - ref) / abs(ref) if ref != 0 else float(mean != ref))
    row["rel_err"] = float(np.mean(rel))
    return row


def obfuscation_utility_row(
    entry: SweepEntry, config: ExperimentConfig, *, label: str | None = None
) -> dict:
    """Table-6 row for the uncertain-graph method at one sweep cell."""
    graph = entry.graph
    stats = paper_statistics(
        distance_backend=config.distance_backend, seed=config.seed
    )
    original = {name: float(func(graph)) for name, func in stats.items()}
    summaries = evaluate_utility(entry, config)
    row: dict = {
        "variant": label or f"obf. (k={entry.k}, eps={entry.paper_eps:g})"
    }
    rel = []
    for name in PAPER_STATISTIC_NAMES:
        mean = summaries[name].mean
        row[name] = mean
        ref = original[name]
        rel.append(abs(mean - ref) / abs(ref) if ref != 0 else float(mean != ref))
    row["rel_err"] = float(np.mean(rel))
    return row


def original_row(graph: Graph, config: ExperimentConfig) -> dict:
    """The "original" reference row of Table 6."""
    stats = paper_statistics(
        distance_backend=config.distance_backend, seed=config.seed
    )
    row: dict = {"variant": "original"}
    row.update({name: float(func(graph)) for name, func in stats.items()})
    row["rel_err"] = 0.0
    return row


def table6_rows(
    sweep: list[SweepEntry],
    config: ExperimentConfig,
    *,
    matchups: list[dict] | None = None,
) -> list[dict]:
    """Full Table 6: original vs randomization vs obfuscation per dataset.

    ``matchups`` entries have keys ``dataset``, ``scheme``, ``k``,
    ``paper_eps`` (the obfuscation cell to match) and optionally a fixed
    ``p``; when ``p`` is absent it is calibrated.  The default matchups
    are the paper's §7.3 cases, restricted to datasets present in the
    sweep.
    """
    if matchups is None:
        # The paper's §7.3 cases, with one adaptation: its dblp
        # perturbation matchup used (k = 60, ε = 10⁻³), but under the
        # count-preserving ε rescale (EXPERIMENTS.md) the loose-ε cells
        # tolerate ~10% of the surrogate's vertices, which any tiny p
        # "achieves" — a degenerate calibration target.  All default
        # matchups therefore use the strict ε = 10⁻⁴ cells, which keep
        # both the tolerated count and a meaningful fraction.
        matchups = [
            {"dataset": "dblp", "scheme": "perturbation", "k": 20, "paper_eps": 1e-4},
            {"dataset": "dblp", "scheme": "sparsification", "k": 20, "paper_eps": 1e-4},
            {"dataset": "flickr", "scheme": "perturbation", "k": 20, "paper_eps": 1e-4},
            {
                "dataset": "flickr",
                "scheme": "sparsification",
                "k": 20,
                "paper_eps": 1e-4,
            },
        ]
    by_cell = {(e.dataset, e.k, e.paper_eps): e for e in sweep}
    rows: list[dict] = []
    seen_datasets: set[str] = set()
    for match in matchups:
        dataset = match["dataset"]
        cell = by_cell.get((dataset, match["k"], match["paper_eps"]))
        if cell is None or not cell.result.success:
            continue
        graph = cell.graph
        if dataset not in seen_datasets:
            row = original_row(graph, config)
            row["dataset"] = dataset
            rows.append(row)
            seen_datasets.add(dataset)
        p = match.get("p")
        if p is None:
            p = calibrate_randomization(
                graph,
                match["scheme"],
                match["k"],
                cell.eps_used,
                seed=(config.seed, 17),
            )
        if not np.isnan(p):
            row = baseline_utility_row(
                graph,
                match["scheme"],
                p,
                config,
                label=f"rand.{match['scheme'][:5]}. (p={p:g})",
            )
            row["dataset"] = dataset
            rows.append(row)
        row = obfuscation_utility_row(cell, config)
        row["dataset"] = dataset
        rows.append(row)
    return rows
