"""Experiment harness: every paper table and figure as a callable runner."""

from repro.experiments.comparison import (
    DEFAULT_P_GRID,
    achieved_k,
    baseline_utility_row,
    calibrate_randomization,
    obfuscation_utility_row,
    table6_rows,
)
from repro.experiments.config import (
    PAPER_EPS_VALUES,
    PAPER_K_VALUES,
    ExperimentConfig,
    quick_config,
    scaled_eps,
)
from repro.experiments.figures import (
    BoxplotSeries,
    figure2_data,
    figure3_data,
    figure4_data,
)
from repro.experiments.harness import (
    SweepEntry,
    evaluate_utility,
    run_obfuscation_sweep,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)
from repro.experiments.report import (
    render_boxplot_series,
    render_curves,
    render_table,
    save_csv,
)

__all__ = [
    "ExperimentConfig",
    "quick_config",
    "scaled_eps",
    "PAPER_K_VALUES",
    "PAPER_EPS_VALUES",
    "SweepEntry",
    "run_obfuscation_sweep",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "table6_rows",
    "evaluate_utility",
    "achieved_k",
    "calibrate_randomization",
    "baseline_utility_row",
    "obfuscation_utility_row",
    "DEFAULT_P_GRID",
    "BoxplotSeries",
    "figure2_data",
    "figure3_data",
    "figure4_data",
    "render_table",
    "render_boxplot_series",
    "render_curves",
    "save_csv",
]
