"""``python -m repro.experiments`` regenerates all tables/figures."""

import sys

from repro.experiments.runall import main

if __name__ == "__main__":
    sys.exit(main())
