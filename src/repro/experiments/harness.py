"""Experiment runners: one function per paper table.

``run_obfuscation_sweep`` executes Algorithm 1 over the (dataset, k, ε)
grid once; Tables 2–5 and Figures 2–3 are all views over that single
sweep, exactly as in the paper (its Tables 2 and 3 report σ and
throughput "of the same experiments").
"""

from __future__ import annotations

import logging
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.search import obfuscate_with_fallback
from repro.core.types import ObfuscationParams, ObfuscationResult
from repro.exec.executor import TaskFailure
from repro.exec.plan import ChunkPlan
from repro.experiments.config import ExperimentConfig
from repro.graphs.graph import Graph
from repro.obs.trace import span
from repro.stats.registry import PAPER_STATISTIC_NAMES, paper_statistics
from repro.stats.sampling import SampleSummary, WorldStatisticsEstimator
from repro.uncertain.graph import UncertainGraph
from repro.utils.rng import spawn_seed_sequences

_log = logging.getLogger("repro.experiments.harness")


@dataclass
class SweepEntry:
    """One (dataset, k, ε) cell of the obfuscation sweep."""

    dataset: str
    k: int
    paper_eps: float
    eps_used: float
    result: ObfuscationResult
    graph: Graph

    @property
    def c_used(self) -> float:
        """The candidate-set multiplier that succeeded (2, or 3 on fallback)."""
        return self.result.params.c


#: Worker-local graph cache: one entry, keyed on the live shared dict
#: (a new ``map`` call exports a new pack, hence a new dict object).
_GRAPH_MEMO: tuple | None = None


def _shared_graph(shared: dict, dataset: str, n: int) -> Graph:
    """Rebuild (once per pack per dataset) a graph from shared edges."""
    global _GRAPH_MEMO
    if _GRAPH_MEMO is None or _GRAPH_MEMO[0] is not shared:
        _GRAPH_MEMO = (shared, {})
    graphs = _GRAPH_MEMO[1]
    if dataset not in graphs:
        graphs[dataset] = Graph.from_edge_array(n, shared[f"edges:{dataset}"])
    return graphs[dataset]


def _sweep_cell_task(arg, shared) -> ObfuscationResult:
    """One grid cell, runnable in any process.

    The cell's generator is its ``SeedSequence.spawn`` child — a pure
    function of ``(config.seed, len(cells), cell index)`` — so a worker
    building it from the pickled sequence gets the byte-identical stream
    the serial loop would hand :func:`obfuscate_with_fallback`.
    """
    (dataset, k, paper_eps, eps_used, n, c_chain, q, attempts, delta, child) = arg
    graph = _shared_graph(shared, dataset, n)
    with span("sweep_cell", dataset=dataset, k=k, eps=paper_eps) as sp:
        result = obfuscate_with_fallback(
            graph,
            k,
            eps_used,
            c_values=c_chain,
            seed=np.random.default_rng(child),
            q=q,
            attempts=attempts,
            delta=delta,
        )
        sp.set(success=result.success, sigma=result.sigma, c=result.params.c)
    return result


# ----------------------------------------------------------------------
# checkpoint (de)serialisation: exact ObfuscationResult round-trips
# ----------------------------------------------------------------------

def _sweep_cell_key(dataset: str, k: int, paper_eps: float) -> str:
    return f"sweep:{dataset}:k={k}:eps={paper_eps!r}"


def _result_to_checkpoint(result: ObfuscationResult):
    """``(payload, arrays)`` for a finished sweep cell.

    Scalars ride JSON (exact float round-trip), the uncertain graph's
    pair arrays ride ``.npz`` — a restored cell reproduces table rows
    and downstream world sampling bit for bit.  The search ``trace`` is
    dropped: no table reads it.
    """
    payload = {
        "sigma": result.sigma,
        "eps_achieved": result.eps_achieved,
        "params": asdict(result.params),
        "edges_processed": int(result.edges_processed),
        "rows_folded": int(result.rows_folded),
        "rows_recomputed": int(result.rows_recomputed),
        "elapsed_seconds": result.elapsed_seconds,
        "n": None,
    }
    arrays = None
    if result.uncertain is not None:
        us, vs, ps = result.uncertain.pair_arrays()
        payload["n"] = int(result.uncertain.num_vertices)
        arrays = {"us": us, "vs": vs, "ps": ps}
    return payload, arrays


def _result_from_checkpoint(payload: dict, arrays: dict) -> ObfuscationResult:
    uncertain = None
    if payload.get("n") is not None:
        uncertain = UncertainGraph._from_trusted_arrays(
            int(payload["n"]), arrays["us"], arrays["vs"], arrays["ps"]
        )
    return ObfuscationResult(
        uncertain=uncertain,
        sigma=payload["sigma"],
        eps_achieved=payload["eps_achieved"],
        params=ObfuscationParams(**payload["params"]),
        edges_processed=payload["edges_processed"],
        rows_folded=payload["rows_folded"],
        rows_recomputed=payload["rows_recomputed"],
        elapsed_seconds=payload["elapsed_seconds"],
    )


def _poisoned_result(k: int, eps_used: float, failure: TaskFailure) -> ObfuscationResult:
    """The flagged stand-in for a quarantined (poisoned) grid cell."""
    _log.error("sweep cell %d quarantined: %s", failure.index, failure.error)
    return ObfuscationResult(
        uncertain=None,
        sigma=float("nan"),
        eps_achieved=float("inf"),
        params=ObfuscationParams(k=k, eps=eps_used),
    )


def run_obfuscation_sweep(
    config: ExperimentConfig,
    *,
    eps_values: tuple[float, ...] | None = None,
    executor=None,
    checkpoint=None,
) -> list[SweepEntry]:
    """Run Algorithm 1 for every (dataset, k, ε) combination.

    Parameters
    ----------
    config:
        The experiment grid.
    eps_values:
        Optional ε subset override (Table 4 uses only ε = 10⁻⁴).
    executor:
        Optional :class:`~repro.exec.executor.ChunkExecutor`.  Grid
        cells are independent (each owns a counter-derived child
        stream), so a process backend runs them across workers; entries
        come back in the paper's row order with values bit-identical to
        the serial loop.
    checkpoint:
        Optional :class:`~repro.resilience.checkpoint.CheckpointStore`.
        Each finished cell is recorded atomically *as it completes* (so
        an interrupt keeps the finished prefix) and already-recorded
        cells are restored instead of recomputed — bit-identically,
        because every cell's seed child is a pure function of its grid
        index.  Quarantined (poisoned) cells are *not* recorded: a
        resumed run retries them.

    Returns
    -------
    list[SweepEntry]
        In dataset-major, k-minor, ε-innermost order (the paper's row
        order).
    """
    eps_values = eps_values if eps_values is not None else config.eps_values
    cells = [
        (d, k, e) for d in config.datasets for k in config.k_values for e in eps_values
    ]
    children = spawn_seed_sequences(config.seed, len(cells))
    plan = ChunkPlan.cells(len(cells))
    graphs = {dataset: config.graph(dataset) for dataset in config.datasets}
    tasks = []
    for (dataset, k, paper_eps), child in zip(cells, children):
        eps_used = config.eps_for(dataset, paper_eps)
        _log.info(
            "sweep cell %s k=%d eps=%g (scaled %g)",
            dataset, k, paper_eps, eps_used,
        )
        tasks.append(
            (
                dataset,
                k,
                paper_eps,
                eps_used,
                graphs[dataset].num_vertices,
                config.c_chain,
                config.q,
                config.attempts,
                config.delta,
                child,
            )
        )
    assert len(plan) == len(tasks)
    restored: dict[int, ObfuscationResult] = {}
    if checkpoint is not None:
        for i, (dataset, k, paper_eps) in enumerate(cells):
            rec = checkpoint.restore(_sweep_cell_key(dataset, k, paper_eps))
            if rec is not None:
                restored[i] = _result_from_checkpoint(*rec)
        if restored:
            _log.info("sweep: restored %d/%d cells from checkpoint",
                      len(restored), len(cells))
    pending = [i for i in range(len(cells)) if i not in restored]
    pending_tasks = [tasks[i] for i in pending]

    def _record(j: int, value) -> None:
        # In-order per-cell checkpoint hook: flushed atomically before
        # the next cell's result is accepted, so an interrupt at any
        # point keeps every finished cell.
        if checkpoint is None or isinstance(value, TaskFailure):
            return
        i = pending[j]
        dataset, k, paper_eps = cells[i]
        payload, arrays = _result_to_checkpoint(value)
        checkpoint.record(_sweep_cell_key(dataset, k, paper_eps), payload, arrays)

    global _GRAPH_MEMO
    if executor is not None and getattr(executor, "backend", "serial") == "process":
        # The config (it caches Graph objects) never crosses the pickle
        # channel: cells travel as primitives + their seed child, and
        # each dataset's edge list travels once via shared memory.
        shared = {
            f"edges:{dataset}": graph.edge_array()
            for dataset, graph in graphs.items()
        }
        results = executor.map(
            _sweep_cell_task, pending_tasks, shared=shared, on_result=_record
        )
    else:
        # Serial: hand the task the parent's own Graph objects by
        # prefilling the memo against a sentinel dict.
        shared = {}
        _GRAPH_MEMO = (shared, dict(graphs))
        try:
            if executor is not None:
                results = executor.map(
                    _sweep_cell_task, pending_tasks, shared=shared,
                    on_result=_record,
                )
            else:
                results = []
                for j, task in enumerate(pending_tasks):
                    value = _sweep_cell_task(task, shared)
                    _record(j, value)
                    results.append(value)
        finally:
            _GRAPH_MEMO = None
    values: list = [restored.get(i) for i in range(len(cells))]
    for j, i in enumerate(pending):
        values[i] = results[j]
    entries: list[SweepEntry] = []
    for (dataset, k, paper_eps), task, result in zip(cells, tasks, values):
        if isinstance(result, TaskFailure):
            result = _poisoned_result(task[1], task[3], result)
        if not result.success:
            _log.warning(
                "sweep cell %s k=%d eps=%g failed at every c in %s",
                dataset, k, paper_eps, config.c_chain,
            )
        entries.append(
            SweepEntry(
                dataset=dataset,
                k=k,
                paper_eps=paper_eps,
                eps_used=task[3],
                result=result,
                graph=graphs[dataset],
            )
        )
    return entries


def table2_rows(sweep: list[SweepEntry]) -> list[dict]:
    """Table 2: minimal σ achieving (k, ε)-obfuscation per grid cell."""
    return [
        {
            "dataset": e.dataset,
            "k": e.k,
            "eps": e.paper_eps,
            "eps_scaled": e.eps_used,
            "sigma": e.result.sigma if e.result.success else float("nan"),
            "c": e.c_used,
            "success": e.result.success,
        }
        for e in sweep
    ]


def table3_rows(sweep: list[SweepEntry]) -> list[dict]:
    """Table 3: obfuscation throughput in candidate pairs ("edges") /sec."""
    return [
        {
            "dataset": e.dataset,
            "k": e.k,
            "eps": e.paper_eps,
            "edges_per_sec": e.result.edges_per_second,
            "elapsed_sec": e.result.elapsed_seconds,
            "c": e.c_used,
        }
        for e in sweep
    ]


def _original_statistics(graph: Graph, config: ExperimentConfig) -> dict[str, float]:
    stats = paper_statistics(
        distance_backend=config.distance_backend, seed=config.seed
    )
    return {name: float(func(graph)) for name, func in stats.items()}


def _utility_cell_key(entry: SweepEntry, config: ExperimentConfig) -> str:
    return (
        f"utility:{entry.dataset}:k={entry.k}:eps={entry.paper_eps!r}"
        f":worlds={config.worlds}:seed={config.seed}"
    )


def evaluate_utility(
    entry: SweepEntry,
    config: ExperimentConfig,
    *,
    cache: dict | None = None,
    executor=None,
    checkpoint=None,
) -> dict[str, SampleSummary]:
    """Sample ``config.worlds`` possible worlds and summarise all statistics.

    ``cache`` (keyed by (dataset, k, paper_eps)) lets Tables 4 and 5 —
    which report different views of the same 100-world sample — share one
    sampling pass, as the paper's tables do.  ``executor`` (batched
    backend only) shards world evaluation across processes — the parent
    draws every world, so summaries stay bit-identical to serial.
    ``checkpoint`` records each cell's raw per-world statistic values
    (exactly, via ``.npz``) and restores them on resume instead of
    re-sampling.
    """
    assert entry.result.uncertain is not None, "cannot evaluate a failed cell"
    key = (entry.dataset, entry.k, entry.paper_eps)
    if cache is not None and key in cache:
        return cache[key]
    if checkpoint is not None:
        rec = checkpoint.restore(_utility_cell_key(entry, config))
        if rec is not None:
            payload, arrays = rec
            summaries = {
                name: SampleSummary(name, arrays[name]) for name in payload["names"]
            }
            _log.info(
                "utility %s k=%d: restored from checkpoint", entry.dataset, entry.k
            )
            if cache is not None:
                cache[key] = summaries
            return summaries
    stats = paper_statistics(
        distance_backend=config.distance_backend, seed=config.seed
    )
    backend_options = (
        # Mirror the registry configuration so the batched kernels
        # compute exactly what the sequential callables would.
        {"distance_backend": config.distance_backend, "distance_seed": config.seed}
        if config.world_backend == "batched"
        else {}
    )
    if executor is not None and config.world_backend == "batched":
        backend_options["executor"] = executor
    estimator = WorldStatisticsEstimator(
        entry.result.uncertain,
        stats,
        backend=config.world_backend,
        **backend_options,
    )
    _log.info(
        "utility %s k=%d: sampling %d worlds (%s backend)",
        entry.dataset, entry.k, config.worlds, config.world_backend,
    )
    with span(
        "evaluate_utility",
        dataset=entry.dataset,
        k=entry.k,
        worlds=config.worlds,
    ):
        summaries = estimator.run(
            worlds=config.worlds, seed=(config.seed, entry.k)
        )
    if checkpoint is not None:
        checkpoint.record(
            _utility_cell_key(entry, config),
            {"names": list(summaries)},
            {name: s.values for name, s in summaries.items()},
        )
    if cache is not None:
        cache[key] = summaries
    return summaries


def table4_rows(
    sweep: list[SweepEntry],
    config: ExperimentConfig,
    *,
    cache: dict | None = None,
    executor=None,
    checkpoint=None,
) -> list[dict]:
    """Table 4: sample means vs original values + average relative error.

    Emits one ``real`` row per dataset followed by one row per k (the
    sweep should be restricted to ε = 10⁻⁴ as in the paper).
    """
    rows: list[dict] = []
    by_dataset: dict[str, list[SweepEntry]] = {}
    for e in sweep:
        by_dataset.setdefault(e.dataset, []).append(e)
    for dataset, entries in by_dataset.items():
        graph = entries[0].graph
        original = _original_statistics(graph, config)
        real_row = {"dataset": dataset, "variant": "real", **original, "rel_err": 0.0}
        rows.append(real_row)
        for e in entries:
            if not e.result.success:
                rows.append(
                    {"dataset": dataset, "variant": f"k={e.k}", "rel_err": float("nan")}
                )
                continue
            summaries = evaluate_utility(
                e, config, cache=cache, executor=executor, checkpoint=checkpoint
            )
            rel_errors = []
            row: dict = {"dataset": dataset, "variant": f"k={e.k}"}
            for name in PAPER_STATISTIC_NAMES:
                summary = summaries[name]
                row[name] = summary.mean
                rel_errors.append(summary.relative_error(original[name]))
            row["rel_err"] = float(np.mean(rel_errors))
            rows.append(row)
    return rows


def table5_rows(
    sweep: list[SweepEntry],
    config: ExperimentConfig,
    *,
    cache: dict | None = None,
    executor=None,
    checkpoint=None,
) -> list[dict]:
    """Table 5: relative sample SEM of every statistic per (dataset, k)."""
    rows: list[dict] = []
    for e in sweep:
        if not e.result.success:
            continue
        summaries = evaluate_utility(
            e, config, cache=cache, executor=executor, checkpoint=checkpoint
        )
        row: dict = {"dataset": e.dataset, "k": e.k}
        sems = []
        for name in PAPER_STATISTIC_NAMES:
            rel_sem = summaries[name].relative_sem
            row[name] = rel_sem
            sems.append(rel_sem)
        row["average"] = float(np.mean(sems))
        rows.append(row)
    return rows
