"""Experiment runners: one function per paper table.

``run_obfuscation_sweep`` executes Algorithm 1 over the (dataset, k, ε)
grid once; Tables 2–5 and Figures 2–3 are all views over that single
sweep, exactly as in the paper (its Tables 2 and 3 report σ and
throughput "of the same experiments").
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.core.search import obfuscate_with_fallback
from repro.core.types import ObfuscationResult
from repro.exec.plan import ChunkPlan
from repro.experiments.config import ExperimentConfig
from repro.graphs.graph import Graph
from repro.obs.trace import span
from repro.stats.registry import PAPER_STATISTIC_NAMES, paper_statistics
from repro.stats.sampling import SampleSummary, WorldStatisticsEstimator
from repro.utils.rng import spawn_seed_sequences

_log = logging.getLogger("repro.experiments.harness")


@dataclass
class SweepEntry:
    """One (dataset, k, ε) cell of the obfuscation sweep."""

    dataset: str
    k: int
    paper_eps: float
    eps_used: float
    result: ObfuscationResult
    graph: Graph

    @property
    def c_used(self) -> float:
        """The candidate-set multiplier that succeeded (2, or 3 on fallback)."""
        return self.result.params.c


#: Worker-local graph cache: one entry, keyed on the live shared dict
#: (a new ``map`` call exports a new pack, hence a new dict object).
_GRAPH_MEMO: tuple | None = None


def _shared_graph(shared: dict, dataset: str, n: int) -> Graph:
    """Rebuild (once per pack per dataset) a graph from shared edges."""
    global _GRAPH_MEMO
    if _GRAPH_MEMO is None or _GRAPH_MEMO[0] is not shared:
        _GRAPH_MEMO = (shared, {})
    graphs = _GRAPH_MEMO[1]
    if dataset not in graphs:
        graphs[dataset] = Graph.from_edge_array(n, shared[f"edges:{dataset}"])
    return graphs[dataset]


def _sweep_cell_task(arg, shared) -> ObfuscationResult:
    """One grid cell, runnable in any process.

    The cell's generator is its ``SeedSequence.spawn`` child — a pure
    function of ``(config.seed, len(cells), cell index)`` — so a worker
    building it from the pickled sequence gets the byte-identical stream
    the serial loop would hand :func:`obfuscate_with_fallback`.
    """
    (dataset, k, paper_eps, eps_used, n, c_chain, q, attempts, delta, child) = arg
    graph = _shared_graph(shared, dataset, n)
    with span("sweep_cell", dataset=dataset, k=k, eps=paper_eps) as sp:
        result = obfuscate_with_fallback(
            graph,
            k,
            eps_used,
            c_values=c_chain,
            seed=np.random.default_rng(child),
            q=q,
            attempts=attempts,
            delta=delta,
        )
        sp.set(success=result.success, sigma=result.sigma, c=result.params.c)
    return result


def run_obfuscation_sweep(
    config: ExperimentConfig,
    *,
    eps_values: tuple[float, ...] | None = None,
    executor=None,
) -> list[SweepEntry]:
    """Run Algorithm 1 for every (dataset, k, ε) combination.

    Parameters
    ----------
    config:
        The experiment grid.
    eps_values:
        Optional ε subset override (Table 4 uses only ε = 10⁻⁴).
    executor:
        Optional :class:`~repro.exec.executor.ChunkExecutor`.  Grid
        cells are independent (each owns a counter-derived child
        stream), so a process backend runs them across workers; entries
        come back in the paper's row order with values bit-identical to
        the serial loop.

    Returns
    -------
    list[SweepEntry]
        In dataset-major, k-minor, ε-innermost order (the paper's row
        order).
    """
    eps_values = eps_values if eps_values is not None else config.eps_values
    cells = [
        (d, k, e) for d in config.datasets for k in config.k_values for e in eps_values
    ]
    children = spawn_seed_sequences(config.seed, len(cells))
    plan = ChunkPlan.cells(len(cells))
    graphs = {dataset: config.graph(dataset) for dataset in config.datasets}
    tasks = []
    for (dataset, k, paper_eps), child in zip(cells, children):
        eps_used = config.eps_for(dataset, paper_eps)
        _log.info(
            "sweep cell %s k=%d eps=%g (scaled %g)",
            dataset, k, paper_eps, eps_used,
        )
        tasks.append(
            (
                dataset,
                k,
                paper_eps,
                eps_used,
                graphs[dataset].num_vertices,
                config.c_chain,
                config.q,
                config.attempts,
                config.delta,
                child,
            )
        )
    assert len(plan) == len(tasks)
    global _GRAPH_MEMO
    if executor is not None and getattr(executor, "backend", "serial") == "process":
        # The config (it caches Graph objects) never crosses the pickle
        # channel: cells travel as primitives + their seed child, and
        # each dataset's edge list travels once via shared memory.
        shared = {
            f"edges:{dataset}": graph.edge_array()
            for dataset, graph in graphs.items()
        }
        results = executor.map(_sweep_cell_task, tasks, shared=shared)
    else:
        # Serial: hand the task the parent's own Graph objects by
        # prefilling the memo against a sentinel dict.
        shared = {}
        _GRAPH_MEMO = (shared, dict(graphs))
        results = [_sweep_cell_task(task, shared) for task in tasks]
        _GRAPH_MEMO = None
    entries: list[SweepEntry] = []
    for (dataset, k, paper_eps), task, result in zip(cells, tasks, results):
        if not result.success:
            _log.warning(
                "sweep cell %s k=%d eps=%g failed at every c in %s",
                dataset, k, paper_eps, config.c_chain,
            )
        entries.append(
            SweepEntry(
                dataset=dataset,
                k=k,
                paper_eps=paper_eps,
                eps_used=task[3],
                result=result,
                graph=graphs[dataset],
            )
        )
    return entries


def table2_rows(sweep: list[SweepEntry]) -> list[dict]:
    """Table 2: minimal σ achieving (k, ε)-obfuscation per grid cell."""
    return [
        {
            "dataset": e.dataset,
            "k": e.k,
            "eps": e.paper_eps,
            "eps_scaled": e.eps_used,
            "sigma": e.result.sigma if e.result.success else float("nan"),
            "c": e.c_used,
            "success": e.result.success,
        }
        for e in sweep
    ]


def table3_rows(sweep: list[SweepEntry]) -> list[dict]:
    """Table 3: obfuscation throughput in candidate pairs ("edges") /sec."""
    return [
        {
            "dataset": e.dataset,
            "k": e.k,
            "eps": e.paper_eps,
            "edges_per_sec": e.result.edges_per_second,
            "elapsed_sec": e.result.elapsed_seconds,
            "c": e.c_used,
        }
        for e in sweep
    ]


def _original_statistics(graph: Graph, config: ExperimentConfig) -> dict[str, float]:
    stats = paper_statistics(
        distance_backend=config.distance_backend, seed=config.seed
    )
    return {name: float(func(graph)) for name, func in stats.items()}


def evaluate_utility(
    entry: SweepEntry,
    config: ExperimentConfig,
    *,
    cache: dict | None = None,
    executor=None,
) -> dict[str, SampleSummary]:
    """Sample ``config.worlds`` possible worlds and summarise all statistics.

    ``cache`` (keyed by (dataset, k, paper_eps)) lets Tables 4 and 5 —
    which report different views of the same 100-world sample — share one
    sampling pass, as the paper's tables do.  ``executor`` (batched
    backend only) shards world evaluation across processes — the parent
    draws every world, so summaries stay bit-identical to serial.
    """
    assert entry.result.uncertain is not None, "cannot evaluate a failed cell"
    key = (entry.dataset, entry.k, entry.paper_eps)
    if cache is not None and key in cache:
        return cache[key]
    stats = paper_statistics(
        distance_backend=config.distance_backend, seed=config.seed
    )
    backend_options = (
        # Mirror the registry configuration so the batched kernels
        # compute exactly what the sequential callables would.
        {"distance_backend": config.distance_backend, "distance_seed": config.seed}
        if config.world_backend == "batched"
        else {}
    )
    if executor is not None and config.world_backend == "batched":
        backend_options["executor"] = executor
    estimator = WorldStatisticsEstimator(
        entry.result.uncertain,
        stats,
        backend=config.world_backend,
        **backend_options,
    )
    _log.info(
        "utility %s k=%d: sampling %d worlds (%s backend)",
        entry.dataset, entry.k, config.worlds, config.world_backend,
    )
    with span(
        "evaluate_utility",
        dataset=entry.dataset,
        k=entry.k,
        worlds=config.worlds,
    ):
        summaries = estimator.run(
            worlds=config.worlds, seed=(config.seed, entry.k)
        )
    if cache is not None:
        cache[key] = summaries
    return summaries


def table4_rows(
    sweep: list[SweepEntry],
    config: ExperimentConfig,
    *,
    cache: dict | None = None,
    executor=None,
) -> list[dict]:
    """Table 4: sample means vs original values + average relative error.

    Emits one ``real`` row per dataset followed by one row per k (the
    sweep should be restricted to ε = 10⁻⁴ as in the paper).
    """
    rows: list[dict] = []
    by_dataset: dict[str, list[SweepEntry]] = {}
    for e in sweep:
        by_dataset.setdefault(e.dataset, []).append(e)
    for dataset, entries in by_dataset.items():
        graph = entries[0].graph
        original = _original_statistics(graph, config)
        real_row = {"dataset": dataset, "variant": "real", **original, "rel_err": 0.0}
        rows.append(real_row)
        for e in entries:
            if not e.result.success:
                rows.append(
                    {"dataset": dataset, "variant": f"k={e.k}", "rel_err": float("nan")}
                )
                continue
            summaries = evaluate_utility(e, config, cache=cache, executor=executor)
            rel_errors = []
            row: dict = {"dataset": dataset, "variant": f"k={e.k}"}
            for name in PAPER_STATISTIC_NAMES:
                summary = summaries[name]
                row[name] = summary.mean
                rel_errors.append(summary.relative_error(original[name]))
            row["rel_err"] = float(np.mean(rel_errors))
            rows.append(row)
    return rows


def table5_rows(
    sweep: list[SweepEntry],
    config: ExperimentConfig,
    *,
    cache: dict | None = None,
    executor=None,
) -> list[dict]:
    """Table 5: relative sample SEM of every statistic per (dataset, k)."""
    rows: list[dict] = []
    for e in sweep:
        if not e.result.success:
            continue
        summaries = evaluate_utility(e, config, cache=cache, executor=executor)
        row: dict = {"dataset": e.dataset, "k": e.k}
        sems = []
        for name in PAPER_STATISTIC_NAMES:
            rel_sem = summaries[name].relative_sem
            row[name] = rel_sem
            sems.append(rel_sem)
        row["average"] = float(np.mean(sems))
        rows.append(row)
    return rows
