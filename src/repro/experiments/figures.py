"""Figure data builders: distance/degree distributions and anonymity curves.

The paper's figures are boxplots (Figs. 2–3) and cumulative curves
(Fig. 4); here each builder returns the underlying numbers — per-bin
quartiles across sampled worlds, or per-k vertex counts — which the
benchmarks render as text and CSV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.anonymity import (
    cumulative_anonymity_curve,
    original_anonymity_levels,
    randomization_anonymity_levels_from_observed,
)
from repro.core.obfuscation_check import compute_degree_posterior
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import SweepEntry
from repro.stats.degree import degree_distribution
from repro.stats.distance import distance_histogram
from repro.anf.distance_stats import anf_distance_histogram
from repro.uncertain.sampling import WorldSampler
from repro.utils.rng import as_rng
from repro.worlds.releases import sample_releases
from repro.worlds.stats_batch import degree_matrix


@dataclass
class BoxplotSeries:
    """Per-bin five-number summaries across sampled worlds.

    Attributes
    ----------
    bins:
        Bin labels (distances or degrees).
    original:
        The original graph's value per bin (the red dots of Figs. 2–3).
    minimum, q1, median, q3, maximum:
        Whisker/box values per bin across worlds.
    """

    bins: np.ndarray
    original: np.ndarray
    minimum: np.ndarray
    q1: np.ndarray
    median: np.ndarray
    q3: np.ndarray
    maximum: np.ndarray


def _boxplot_stats(matrix: np.ndarray) -> dict[str, np.ndarray]:
    return {
        "minimum": matrix.min(axis=0),
        "q1": np.percentile(matrix, 25, axis=0),
        "median": np.percentile(matrix, 50, axis=0),
        "q3": np.percentile(matrix, 75, axis=0),
        "maximum": matrix.max(axis=0),
    }


def _pad(rows: list[np.ndarray], width: int) -> np.ndarray:
    out = np.zeros((len(rows), width), dtype=np.float64)
    for i, row in enumerate(rows):
        out[i, : min(len(row), width)] = row[:width]
    return out


def figure2_data(
    entry: SweepEntry, config: ExperimentConfig, *, max_distance: int = 15
) -> BoxplotSeries:
    """Figure 2: pairwise-distance distribution boxplots vs original.

    Samples ``config.worlds`` possible worlds of the obfuscated graph and
    collects, for each distance 0..``max_distance``, the fraction of
    vertex pairs at that distance (disconnected pairs excluded from the
    numerator, as in the paper's fraction-of-pairs axis).
    """
    assert entry.result.uncertain is not None
    if config.distance_backend == "exact":
        hist_fn = lambda g: distance_histogram(g).fractions()
    elif config.distance_backend == "sampled":
        hist_fn = lambda g: distance_histogram(
            g, sample_size=min(g.num_vertices, 256), seed=config.seed
        ).fractions()
    else:
        hist_fn = lambda g: anf_distance_histogram(g, seed=config.seed).fractions()

    original = _pad([hist_fn(entry.graph)], max_distance + 1)[0]
    sampler = WorldSampler(entry.result.uncertain)
    rng = as_rng((config.seed, 2))
    rows = [hist_fn(sampler.sample(seed=rng)) for _ in range(config.worlds)]
    matrix = _pad(rows, max_distance + 1)
    stats = _boxplot_stats(matrix)
    return BoxplotSeries(
        bins=np.arange(max_distance + 1), original=original, **stats
    )


def figure3_data(
    entry: SweepEntry, config: ExperimentConfig, *, max_degree: int = 8
) -> BoxplotSeries:
    """Figure 3: degree-distribution boxplots vs original (degrees 0..max)."""
    assert entry.result.uncertain is not None
    original = _pad([degree_distribution(entry.graph)], max_degree + 1)[0]
    sampler = WorldSampler(entry.result.uncertain)
    rng = as_rng((config.seed, 3))
    rows = [
        degree_distribution(sampler.sample(seed=rng)) for _ in range(config.worlds)
    ]
    matrix = _pad(rows, max_degree + 1)
    stats = _boxplot_stats(matrix)
    return BoxplotSeries(bins=np.arange(max_degree + 1), original=original, **stats)


def figure4_data(
    sweep: list[SweepEntry],
    config: ExperimentConfig,
    dataset: str,
    *,
    baselines: list[tuple[str, float]] | None = None,
    k_max: int = 80,
) -> dict[str, np.ndarray]:
    """Figure 4: cumulative anonymity curves for every method.

    Returns a mapping ``label → counts`` over the grid ``k = 1..k_max``
    (plus a ``"k"`` entry holding the grid), with one curve for the
    original graph, one per successful obfuscation cell of ``dataset``
    in the sweep, and one per requested baseline ``(scheme, p)``.
    """
    graph = config.graph(dataset)
    k_grid = np.arange(1, k_max + 1, dtype=np.float64)
    curves: dict[str, np.ndarray] = {"k": k_grid}
    curves["original"] = cumulative_anonymity_curve(
        original_anonymity_levels(graph), k_grid
    )
    for entry in sweep:
        if entry.dataset != dataset or not entry.result.success:
            continue
        posterior = compute_degree_posterior(
            entry.result.uncertain, width=int(graph.degrees().max()) + 2
        )
        levels = posterior.obfuscation_levels(graph.degrees())
        label = f"obf. k={entry.k}, eps={entry.paper_eps:g}"
        curves[label] = cumulative_anonymity_curve(levels, k_grid)
    rng = as_rng((config.seed, 4))
    for scheme, p in baselines or []:
        # One batched possible-world draw (stream-identical to the old
        # per-release `_sample_release`) whose degree sequence feeds the
        # vectorised anonymity pass — no published Graph materialised.
        observed = degree_matrix(
            sample_releases(graph, scheme, p, 1, seed=rng)
        )[0]
        levels = randomization_anonymity_levels_from_observed(
            graph, observed, scheme, p
        )
        curves[f"{scheme} p={p:g}"] = cumulative_anonymity_curve(levels, k_grid)
    return curves
