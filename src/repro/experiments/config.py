"""Experiment configuration mirroring §7.1 of the paper.

The parameter grid is the paper's — ``k ∈ {20, 60, 100}``,
``ε ∈ {10⁻³, 10⁻⁴}``, ``q = 0.01``, ``c = 2`` with ``c = 3`` fallback —
with one documented adaptation: **ε is rescaled to preserve the
tolerance budget in vertex counts.**  The paper's ε is a fraction of
``n``; on dblp (n = 226,413) ε = 10⁻³ licenses ≈ 226 under-obfuscated
vertices.  Our surrogates are ~50× smaller, so the same fraction would
license *less than one* vertex — a strictly harsher requirement than the
paper evaluated, and one that no amount of uncertainty can satisfy for
heavy-tail hubs.  ``scaled_eps`` therefore maps each paper ε to the
fraction that yields the same *number* of tolerated vertices at the
surrogate's size (see EXPERIMENTS.md for the numerical mapping).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.graphs.datasets import DATASET_SPECS, load_dataset
from repro.graphs.graph import Graph
from repro.obs.trace import span

_log = logging.getLogger("repro.experiments.config")

#: The paper's obfuscation levels (§7.1).
PAPER_K_VALUES: tuple[int, ...] = (20, 60, 100)

#: The paper's tolerance values (§7.1); keys of the ε rescaling.
PAPER_EPS_VALUES: tuple[float, ...] = (1e-3, 1e-4)


def scaled_eps(paper_eps: float, dataset: str, n_actual: int) -> float:
    """Rescale a paper ε to preserve the tolerated-vertex *count*.

    ``ε_scaled = ε_paper · n_paper / n_actual``, capped at 0.5.
    At ``scale = 1`` for dblp this sends 10⁻³ → ≈ 0.05 (≈ 226 vertices
    either way).
    """
    spec = DATASET_SPECS[dataset]
    return min(0.5, paper_eps * spec.paper_n / max(n_actual, 1))


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every table/figure runner.

    Attributes
    ----------
    datasets:
        Which surrogates to run (paper order: dblp, flickr, Y360).
    scale:
        Surrogate size multiplier (1.0 ≈ 1/50th of the paper's graphs).
    k_values / eps_values:
        The privacy grid; ``eps_values`` are *paper* values, rescaled per
        dataset by :func:`scaled_eps` at run time.
    c, q:
        Candidate-set multiplier and white-noise level (§7.1 defaults).
    c_chain:
        Escalation sequence tried in order when ``c`` fails to bracket a
        feasible σ — the paper's Table 2 resolves such cells with c = 3;
        our smaller surrogates occasionally need c = 5 for the hardest
        (flickr, k = 100) cell, for the same structural reason (too few
        near-hub vertices to blend with).
    attempts:
        Algorithm-2 tries per σ probe (paper: 5).
    delta:
        Binary-search width; the paper's effective floor was 2⁻²⁴, ours
        is coarser by default to keep sweeps fast.
    worlds:
        Possible worlds sampled for Tables 4–5 (paper: 100).
    baseline_samples:
        Releases sampled per randomized baseline for Table 6 (paper: 50).
    seed:
        Root seed; every runner derives child streams from it.
    distance_backend:
        ``"anf"`` (paper-faithful), ``"sampled"``, or ``"exact"``.
    world_backend:
        World-sampling engine for Tables 4–5: ``"batched"`` (default —
        the :mod:`repro.worlds` multi-world kernels) or
        ``"sequential"`` (the one-world-at-a-time ground-truth path).
        Both are seed-equivalent: same worlds, same table values.
    baseline_backend:
        Release-sampling engine for the Table-6 baselines:
        ``"batched"`` (default — randomization releases drawn as one
        :class:`~repro.worlds.batch.WorldBatch` via
        :mod:`repro.worlds.releases` and measured by the multi-world
        kernels) or ``"sequential"`` (one release at a time, the pinned
        ground truth).  Both consume the identical RNG stream: same
        releases edge-for-edge, rows within 1e-9.
    """

    datasets: tuple[str, ...] = ("dblp", "flickr", "y360")
    scale: float = 1.0
    k_values: tuple[int, ...] = PAPER_K_VALUES
    eps_values: tuple[float, ...] = PAPER_EPS_VALUES
    c: float = 2.0
    q: float = 0.01
    c_chain: tuple[float, ...] = (2.0, 3.0, 5.0)
    attempts: int = 3
    delta: float = 1e-3
    worlds: int = 100
    baseline_samples: int = 50
    seed: int = 0
    distance_backend: str = "anf"
    world_backend: str = "batched"
    baseline_backend: str = "batched"
    dataset_seed: int = 0
    _graph_cache: dict = field(default_factory=dict, compare=False, hash=False)

    def graph(self, dataset: str) -> Graph:
        """Load (and memoise) one surrogate graph."""
        key = (dataset, self.scale, self.dataset_seed)
        if key not in self._graph_cache:
            with span("load_dataset", dataset=dataset, scale=self.scale):
                graph = load_dataset(
                    dataset, scale=self.scale, seed=self.dataset_seed
                )
            _log.info(
                "loaded %s surrogate: n=%d m=%d (scale=%g)",
                dataset, graph.num_vertices, graph.num_edges, self.scale,
            )
            self._graph_cache[key] = graph
        return self._graph_cache[key]

    def eps_for(self, dataset: str, paper_eps: float) -> float:
        """Dataset-specific effective ε for a paper ε value."""
        return scaled_eps(paper_eps, dataset, self.graph(dataset).num_vertices)


def quick_config(**overrides) -> ExperimentConfig:
    """A small config for tests and smoke runs (seconds, not minutes)."""
    defaults = dict(
        datasets=("dblp",),
        scale=0.2,
        k_values=(10, 20),
        eps_values=(1e-3,),
        attempts=2,
        delta=1e-2,
        worlds=20,
        baseline_samples=10,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)
