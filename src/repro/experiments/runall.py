"""Standalone experiment driver: regenerate the paper without pytest.

Usage::

    python -m repro.experiments                # default (quick) settings
    python -m repro.experiments --scale 1.0 --worlds 100 --out results/

Runs the obfuscation sweep once and emits every table and figure the
paper reports, as text to stdout and CSV files under ``--out``.  The
pytest benchmarks wrap the same harness with assertions; this driver is
for interactive exploration and for regenerating artefacts on machines
without the test toolchain.

Every run writes a ``manifest.json`` receipt (config, seed, git SHA,
versions, per-phase span tree, metrics dump) next to the CSVs; pass
``--trace`` to also record the full span stream as ``trace.jsonl``.
Both are readable with ``repro trace <out-dir>``.
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from pathlib import Path

from repro.experiments.comparison import table6_rows
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import figure2_data, figure3_data, figure4_data
from repro.experiments.harness import (
    run_obfuscation_sweep,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)
from repro.experiments.report import (
    render_boxplot_series,
    render_curves,
    render_table,
    save_csv,
)
from repro.obs import (
    build_manifest,
    disable_tracing,
    enable_tracing,
    setup_logging,
    span,
    write_manifest,
)
from repro.resilience import CheckpointStore


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate every table and figure of the paper",
    )
    parser.add_argument("--scale", type=float, default=0.35,
                        help="surrogate size multiplier (default 0.35)")
    parser.add_argument("--worlds", type=int, default=50,
                        help="possible worlds per utility cell")
    parser.add_argument("--baseline-samples", type=int, default=25,
                        help="randomized releases per Table-6 baseline")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=Path("experiment_results"),
                        help="directory for CSV artefacts")
    parser.add_argument("--skip-figures", action="store_true",
                        help="emit tables only")
    parser.add_argument("--datasets", nargs="+", default=["dblp", "flickr", "y360"],
                        help="subset of datasets to run")
    parser.add_argument("--k", nargs="+", type=int, default=[20, 60, 100],
                        dest="k_values", help="obfuscation levels")
    parser.add_argument("--eps", nargs="+", type=float, default=[1e-3, 1e-4],
                        dest="eps_values", help="paper tolerance values")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="log progress to stderr (-vv for debug)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="errors only")
    parser.add_argument("--trace", action="store_true",
                        help="record a span trace to <out>/trace.jsonl")
    parser.add_argument("--workers", type=int, default=1,
                        help="processes for sweep cells and world/release "
                        "evaluation (0 = all cores); every table is "
                        "bit-identical at any worker count")
    parser.add_argument("--checkpoint", type=Path, default=None,
                        help="directory for atomic per-cell checkpoint records")
    parser.add_argument("--resume", action="store_true",
                        help="skip cells already recorded in --checkpoint "
                        "(tables stay byte-identical to an uninterrupted run)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help="per-cell wall-clock budget (seconds) before the "
                        "hung-worker watchdog respawns the pool and retries")
    args = parser.parse_args(argv)
    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint")
    return args


def run_all(args) -> None:
    """Execute the full experiment battery with the given settings."""
    config = ExperimentConfig(
        datasets=tuple(args.datasets),
        k_values=tuple(args.k_values),
        eps_values=tuple(args.eps_values),
        scale=args.scale,
        worlds=args.worlds,
        baseline_samples=args.baseline_samples,
        attempts=3,
        delta=1e-3,
        seed=args.seed,
    )
    args.out.mkdir(parents=True, exist_ok=True)
    checkpoint = None
    restored_cells = 0
    if getattr(args, "checkpoint", None) is not None:
        checkpoint = CheckpointStore(args.checkpoint)
        checkpoint.begin(
            {
                "command": "repro.experiments",
                "datasets": list(config.datasets),
                "k_values": list(config.k_values),
                "eps_values": list(config.eps_values),
                "scale": config.scale,
                "worlds": config.worlds,
                "seed": config.seed,
            },
            resume=bool(getattr(args, "resume", False)),
        )
        restored_cells = len(checkpoint)
        if restored_cells:
            print(f"# resuming: {restored_cells} cell(s) restored from {args.checkpoint}")
    tracer = enable_tracing(args.out / "trace.jsonl" if args.trace else None)
    t0 = time.perf_counter()
    from repro.exec import make_executor

    executor = make_executor(
        getattr(args, "workers", 1),
        task_timeout_s=getattr(args, "task_timeout", None),
        quarantine=True,
    )

    print(f"# sweep: datasets={config.datasets} k={config.k_values} "
          f"eps={config.eps_values} scale={config.scale} "
          f"workers={executor.workers}")
    with span("sweep"):
        sweep = run_obfuscation_sweep(config, executor=executor, checkpoint=checkpoint)
    print(f"# sweep finished in {time.perf_counter() - t0:.1f}s\n")

    with span("tables_2_3"):
        for title, rows, name in (
            ("Table 2: minimal sigma", table2_rows(sweep), "table2"),
            ("Table 3: throughput (edges/sec)", table3_rows(sweep), "table3"),
        ):
            print(render_table(rows, title=title))
            print()
            save_csv(rows, args.out / f"{name}.csv")

    strict = [e for e in sweep if e.paper_eps == min(config.eps_values)]
    cache: dict = {}
    with span("tables_4_5"):
        rows4 = table4_rows(
            strict, config, cache=cache, executor=executor, checkpoint=checkpoint
        )
        print(render_table(rows4, title="Table 4: sample means (strict eps)"))
        print()
        save_csv(rows4, args.out / "table4.csv")

        rows5 = table5_rows(
            strict, config, cache=cache, executor=executor, checkpoint=checkpoint
        )
        print(render_table(rows5, title="Table 5: relative sample SEM"))
        print()
        save_csv(rows5, args.out / "table5.csv")

    with span("table_6"):
        rows6 = table6_rows(sweep, config, executor=executor)
        print(render_table(rows6, title="Table 6: comparison vs randomization"))
        print()
        save_csv(rows6, args.out / "table6.csv")

    if not args.skip_figures:
        with span("figures"):
            cells = {(e.dataset, e.k, e.paper_eps): e for e in sweep}
            easy = cells.get(("dblp", config.k_values[0], max(config.eps_values)))
            if easy is not None and easy.result.success:
                fig2 = figure2_data(easy, config)
                print(render_boxplot_series(fig2, label="distance"))
                print()
                fig3 = figure3_data(easy, config)
                print(render_boxplot_series(fig3, label="degree"))
                print()
            for dataset in config.datasets:
                curves = figure4_data(
                    sweep, config, dataset,
                    baselines=[("perturbation", 0.32), ("sparsification", 0.64)],
                )
                print(render_curves(curves))
                print()
                rows = [
                    {"k": float(k), **{
                        label: float(values[i])
                        for label, values in curves.items() if label != "k"
                    }}
                    for i, k in enumerate(curves["k"])
                ]
                save_csv(rows, args.out / f"fig4_{dataset}.csv")

    elapsed = time.perf_counter() - t0
    executor.close()
    disable_tracing()
    manifest = build_manifest(
        "python -m repro.experiments",
        config={
            "datasets": list(config.datasets),
            "k_values": list(config.k_values),
            "eps_values": list(config.eps_values),
            "scale": config.scale,
            "worlds": config.worlds,
            "baseline_samples": config.baseline_samples,
            "attempts": config.attempts,
            "delta": config.delta,
            "workers": executor.workers,
            "checkpoint": getattr(args, "checkpoint", None),
            "resumed": bool(getattr(args, "resume", False)),
        },
        seed=args.seed,
        tracer=tracer,
        elapsed_s=elapsed,
        results={"cells": len(sweep),
                 "failures": sum(not e.result.success for e in sweep),
                 "cells_restored": restored_cells},
    )
    write_manifest(args.out / "manifest.json", manifest)
    print(f"# total {elapsed:.1f}s; CSVs in {args.out}/")


def main(argv=None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    args = _parse_args(argv)
    setup_logging(args.verbose, args.quiet)

    # SIGTERM unwinds like SIGINT; checkpoint records were flushed
    # atomically as cells completed, so --resume picks up from there.
    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:  # pragma: no cover - called from a non-main thread
        pass
    try:
        run_all(args)
    except ValueError as exc:
        if "refusing --resume" not in str(exc):
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        disable_tracing()
        if getattr(args, "checkpoint", None) is not None:
            print(
                f"# interrupted; checkpoint under {args.checkpoint} — "
                "rerun with --resume to continue",
                file=sys.stderr,
            )
        else:
            print("# interrupted (no --checkpoint: a rerun starts from zero)",
                  file=sys.stderr)
        return 130
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
