"""Plain-text edge-list IO for certain graphs.

Format: one ``u v`` pair per line, whitespace-separated, ``#`` comments
allowed — the de-facto standard used by SNAP/KONECT dumps, so real
datasets can be dropped in place of the synthetic surrogates without code
changes.  A header comment carrying the vertex count makes isolated
trailing vertices round-trip.
"""

from __future__ import annotations

import os

from repro.graphs.graph import Graph


def write_edge_list(graph: Graph, path: str | os.PathLike) -> None:
    """Write ``graph`` to ``path`` in edge-list format with an ``# n=`` header."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v in sorted(graph.edges()):
            fh.write(f"{u} {v}\n")


def read_edge_list(path: str | os.PathLike, *, n: int | None = None) -> Graph:
    """Read an edge list written by :func:`write_edge_list` (or SNAP-style).

    Parameters
    ----------
    path:
        File to read.
    n:
        Vertex count override.  If omitted, an ``# n=...`` header is used
        when present, otherwise ``max vertex id + 1``.
    """
    edges: list[tuple[int, int]] = []
    header_n: int | None = None
    max_id = -1
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].replace(",", " ").split():
                    if token.startswith("n="):
                        header_n = int(token[2:])
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            u, v = int(parts[0]), int(parts[1])
            edges.append((u, v))
            max_id = max(max_id, u, v)
    if n is None:
        n = header_n if header_n is not None else max_id + 1
    return Graph.from_edges(n, edges)
