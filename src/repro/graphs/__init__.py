"""Certain-graph substrate: data structure, algorithms, generators, datasets."""

from repro.graphs.datasets import (
    DATASET_SPECS,
    DatasetSpec,
    dblp_like,
    flickr_like,
    load_dataset,
    paper_degree_exponent,
    paper_scale_dataset,
    y360_like,
)
from repro.graphs.generators import (
    affiliation_graph,
    barabasi_albert,
    configuration_model,
    configuration_model_edges,
    configuration_model_powerlaw,
    erdos_renyi,
    powerlaw_cluster,
    powerlaw_degree_sequence,
    watts_strogatz,
)
from repro.graphs.graph import Graph, all_pairs, pair_index
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.traversal import (
    all_pairs_distances,
    bfs_distances,
    connected_components,
    eccentricity,
    largest_component_size,
)
from repro.graphs.triangles import (
    average_local_clustering,
    centered_triple_count,
    clustering_coefficient,
    connected_triple_count,
    local_clustering,
    transitivity,
    triangle_count,
)

__all__ = [
    "Graph",
    "all_pairs",
    "pair_index",
    "bfs_distances",
    "all_pairs_distances",
    "connected_components",
    "largest_component_size",
    "eccentricity",
    "triangle_count",
    "centered_triple_count",
    "connected_triple_count",
    "clustering_coefficient",
    "average_local_clustering",
    "local_clustering",
    "transitivity",
    "erdos_renyi",
    "affiliation_graph",
    "barabasi_albert",
    "powerlaw_cluster",
    "watts_strogatz",
    "powerlaw_degree_sequence",
    "configuration_model",
    "configuration_model_edges",
    "configuration_model_powerlaw",
    "DatasetSpec",
    "DATASET_SPECS",
    "dblp_like",
    "flickr_like",
    "y360_like",
    "load_dataset",
    "paper_degree_exponent",
    "paper_scale_dataset",
    "read_edge_list",
    "write_edge_list",
]
