"""Breadth-first traversal kernels: distances, components, eccentricities.

Two implementations are provided:

* :func:`bfs_distances` — a vectorised frontier BFS over the CSR export;
  the per-level neighbour gather is a single ``np.take``/boolean-mask
  pass, which keeps the Python interpreter out of the inner loop.  This is
  the workhorse of the exact distance statistics.
* plain set/queue BFS is used implicitly by small helpers where clarity
  beats throughput.

All distances are hop counts on the undirected graph; unreachable
vertices get ``-1``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.validation import check_vertex


def multi_range(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``[s, s+c)`` integer ranges without a Python loop.

    The classic repeat/cumsum multi-range-gather trick: build the flat
    index vector ``[s0, s0+1, .., s0+c0-1, s1, ...]`` from per-range
    starts and lengths.  Zero-length ranges contribute nothing.  Shared
    by the BFS frontier gather below and the batched world kernels
    (:mod:`repro.worlds`), which use it to slice CSR blocks en masse.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    nonzero = counts > 0
    if not nonzero.all():
        starts, counts = starts[nonzero], counts[nonzero]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    deltas = np.ones(total, dtype=np.int64)
    ends = np.cumsum(counts)
    deltas[0] = starts[0]
    deltas[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(deltas)


def _gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """Concatenate the CSR neighbour lists of every vertex in ``frontier``."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    return indices[multi_range(starts, counts)]


def bfs_distances(
    graph: Graph | tuple[np.ndarray, np.ndarray],
    source: int,
    *,
    n: int | None = None,
) -> np.ndarray:
    """Hop distances from ``source`` to every vertex.

    Parameters
    ----------
    graph:
        Either a :class:`Graph` or a pre-computed ``(indptr, indices)``
        CSR pair (pass ``n`` in that case).  Accepting CSR directly lets
        all-sources sweeps amortise the export.
    source:
        Source vertex.
    n:
        Vertex count when ``graph`` is a CSR pair.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of distances; ``-1`` marks unreachable vertices.
    """
    if isinstance(graph, Graph):
        indptr, indices = graph.to_csr()
        n = graph.num_vertices
    else:
        indptr, indices = graph
        if n is None:
            n = len(indptr) - 1
    source = check_vertex(source, n, "source")

    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        nbrs = _gather_neighbors(indptr, indices, frontier)
        if nbrs.size == 0:
            break
        fresh = nbrs[dist[nbrs] < 0]
        if fresh.size == 0:
            break
        # fresh may contain duplicates discovered from several parents
        dist[fresh] = level
        frontier = np.unique(fresh)
    return dist


def all_pairs_distances(
    graph: Graph, *, sources: np.ndarray | None = None
) -> np.ndarray:
    """Distance rows from each source (default: every vertex).

    Returns an ``(s, n)`` matrix with ``-1`` for unreachable pairs.  For
    large graphs pass a subset of ``sources`` — the distance statistics in
    :mod:`repro.stats.distance` support sampled-source estimation exactly
    like the BFS-sampling estimators cited by the paper [6, 18].
    """
    csr = graph.to_csr()
    n = graph.num_vertices
    if sources is None:
        sources = np.arange(n, dtype=np.int64)
    rows = np.empty((len(sources), n), dtype=np.int64)
    for i, s in enumerate(sources):
        rows[i] = bfs_distances(csr, int(s), n=n)
    return rows


def connected_components(graph: Graph) -> np.ndarray:
    """Label vertices by connected component.

    Returns
    -------
    numpy.ndarray
        ``labels[v]`` is the component id of ``v``; ids are dense,
        assigned in order of discovery (0-based).
    """
    n = graph.num_vertices
    csr = graph.to_csr()
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for v in range(n):
        if labels[v] >= 0:
            continue
        dist = bfs_distances(csr, v, n=n)
        labels[dist >= 0] = current
        current += 1
    return labels


def largest_component_size(graph: Graph) -> int:
    """Size of the largest connected component (0 for the empty graph)."""
    if graph.num_vertices == 0:
        return 0
    labels = connected_components(graph)
    return int(np.bincount(labels).max())


def eccentricity(graph: Graph, v: int) -> int:
    """Eccentricity of ``v`` restricted to its component (max hop count)."""
    dist = bfs_distances(graph, v)
    return int(dist.max())
