"""Undirected simple graph with integer vertices ``0..n-1``.

This is the certain-graph substrate the whole library builds on.  Design
choices:

* **Adjacency sets** for O(1) edge queries and cheap mutation — the
  obfuscation algorithm (Alg. 2 of the paper) toggles candidate pairs in
  a tight loop.
* **CSR export** (:meth:`Graph.to_csr`) for the vectorised BFS and
  HyperANF kernels, which need flat ``indptr``/``indices`` arrays.
* Vertices are dense integers; name mapping (if any) is the caller's
  concern.  Self-loops and parallel edges are rejected, matching the
  paper's model of simple social graphs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.utils.validation import check_vertex


class Graph:
    """An undirected simple graph on vertices ``{0, ..., n-1}``.

    Parameters
    ----------
    n:
        Number of vertices.  The vertex set is fixed at construction;
        edges may be added/removed freely.

    Examples
    --------
    >>> g = Graph(4)
    >>> g.add_edge(0, 1)
    >>> g.add_edge(1, 2)
    >>> g.num_edges
    2
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"number of vertices must be non-negative, got {n}")
        self._adj: list[set[int]] = [set() for _ in range(n)]
        self._num_edges: int = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "Graph":
        """Build a graph from an iterable of (u, v) pairs.

        Duplicate pairs and (u, v)/(v, u) mirrors are collapsed; self
        loops raise.
        """
        g = cls(n)
        for u, v in edges:
            if not g.has_edge(u, v):
                g.add_edge(u, v)
        return g

    @classmethod
    def from_edge_array(cls, n: int, edges: np.ndarray) -> "Graph":
        """Bulk-build a graph from an ``(m, 2)`` integer edge array.

        The vectorised counterpart of :meth:`from_edges`: validation,
        ``(u, v)``/``(v, u)`` normalisation and duplicate collapsing are
        single array passes, and the adjacency sets are constructed one
        whole neighbour block at a time instead of via ``2m`` Python-level
        ``add_edge`` calls.  This is the materialisation fast path of the
        possible-world engine (:mod:`repro.worlds`), where every sampled
        world becomes a graph.

        Parameters
        ----------
        n:
            Number of vertices.
        edges:
            Integer array of shape ``(m, 2)`` (any endpoint order;
            duplicates and mirrors are collapsed, as in
            :meth:`from_edges`).  Self loops raise.
        """
        edges = np.ascontiguousarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
        if len(edges) == 0:
            return cls(n)
        if edges.min() < 0 or edges.max() >= n:
            raise ValueError(f"vertex ids must lie in [0, {n})")
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        if (lo == hi).any():
            raise ValueError("self loops are not allowed")
        codes = np.unique(lo * np.int64(n) + hi)  # dedupe + sort
        lo, hi = codes // n, codes % n
        heads = np.concatenate([lo, hi])
        tails = np.concatenate([hi, lo])
        order = np.argsort(heads, kind="stable")
        counts = np.bincount(heads, minlength=n)
        blocks = np.split(tails[order], np.cumsum(counts)[:-1])
        g = cls(n)
        g._adj = [set(block.tolist()) for block in blocks]
        g._num_edges = len(codes)
        return g

    def copy(self) -> "Graph":
        """Return a deep copy (independent adjacency sets)."""
        g = Graph(self.num_vertices)
        g._adj = [set(nbrs) for nbrs in self._adj]
        g._num_edges = self._num_edges
        return g

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges ``m``."""
        return self._num_edges

    @property
    def num_pairs(self) -> int:
        """``n·(n-1)/2`` — the size of the pair universe ``V2``."""
        n = self.num_vertices
        return n * (n - 1) // 2

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return len(self._adj[check_vertex(v, self.num_vertices)])

    def degrees(self) -> np.ndarray:
        """Degree sequence as an ``int64`` array indexed by vertex."""
        return np.array([len(nbrs) for nbrs in self._adj], dtype=np.int64)

    def neighbors(self, v: int) -> frozenset[int]:
        """Neighbour set of ``v`` (read-only view as a frozenset)."""
        return frozenset(self._adj[check_vertex(v, self.num_vertices)])

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the undirected edge (u, v) exists."""
        u = check_vertex(u, self.num_vertices, "u")
        v = check_vertex(v, self.num_vertices, "v")
        return v in self._adj[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges as ordered pairs ``(u, v)`` with ``u < v``."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` int64 array with ``u < v`` rows."""
        if self._num_edges == 0:
            return np.empty((0, 2), dtype=np.int64)
        return np.array(sorted(self.edges()), dtype=np.int64)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge (u, v).

        Raises
        ------
        ValueError
            On self loops or if the edge already exists (callers that
            may re-add should test :meth:`has_edge` first; failing loudly
            catches double-insertion bugs in the perturbation loops).
        """
        u = check_vertex(u, self.num_vertices, "u")
        v = check_vertex(v, self.num_vertices, "v")
        if u == v:
            raise ValueError(f"self loops are not allowed (vertex {u})")
        if v in self._adj[u]:
            raise ValueError(f"edge ({u}, {v}) already present")
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the undirected edge (u, v); raises if absent."""
        u = check_vertex(u, self.num_vertices, "u")
        v = check_vertex(v, self.num_vertices, "v")
        if v not in self._adj[u]:
            raise ValueError(f"edge ({u}, {v}) not present")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def to_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Export adjacency in CSR form.

        Returns
        -------
        (indptr, indices):
            ``indices[indptr[v]:indptr[v+1]]`` are the (sorted)
            neighbours of ``v``.  Both arrays are ``int64``.
        """
        n = self.num_vertices
        indptr = np.zeros(n + 1, dtype=np.int64)
        indptr[1:] = np.cumsum([len(nbrs) for nbrs in self._adj])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for v, nbrs in enumerate(self._adj):
            block = sorted(nbrs)
            indices[indptr[v] : indptr[v + 1]] = block
        return indptr, indices

    def edge_set(self) -> set[tuple[int, int]]:
        """Edges as a set of ordered ``(u, v)`` tuples with ``u < v``."""
        return set(self.edges())

    def edge_codes(self) -> np.ndarray:
        """Edges as sorted scalar codes ``u·n + v`` (``u < v``).

        The flat form lets callers answer "which of these pairs are true
        edges?" for a whole pair array at once via ``np.isin`` — the
        vectorised counterpart of an :meth:`has_edge` loop (used by the
        Algorithm-2 probability-assignment step).
        """
        if self._num_edges == 0:
            return np.empty(0, dtype=np.int64)
        edges = self.edge_array()
        codes = edges[:, 0] * np.int64(self.num_vertices) + edges[:, 1]
        codes.sort()
        return codes

    # ------------------------------------------------------------------
    # dunder sugar
    # ------------------------------------------------------------------
    def __contains__(self, edge: tuple[int, int]) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __len__(self) -> int:
        return self.num_vertices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.num_vertices == other.num_vertices and self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"


def pair_index(u: int, v: int, n: int) -> int:
    """Map an unordered pair ``{u, v}`` to a unique index in ``[0, n(n-1)/2)``.

    The mapping enumerates pairs in lexicographic order of ``(min, max)``.
    Used by tests and by brute-force possible-world enumeration.
    """
    u = check_vertex(u, n, "u")
    v = check_vertex(v, n, "v")
    if u == v:
        raise ValueError("pairs must have distinct endpoints")
    if u > v:
        u, v = v, u
    # pairs starting at u' < u: sum_{i<u} (n-1-i); then offset within row
    return u * (n - 1) - u * (u - 1) // 2 + (v - u - 1)


def all_pairs(n: int) -> Iterator[tuple[int, int]]:
    """Iterate all unordered vertex pairs of an ``n``-vertex graph."""
    for u in range(n):
        for v in range(u + 1, n):
            yield (u, v)
