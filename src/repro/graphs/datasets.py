"""Laptop-scale surrogates for the paper's three evaluation networks.

The paper evaluates on dblp (226,413 vertices / 716,460 edges, avg degree
6.33, clustering 0.38), flickr (588,166 vertices, avg degree 19.73,
clustering 0.12) and Y360 (1,226,311 vertices, avg degree 4.27,
clustering 0.04).  The raw snapshots are not redistributable, and this
reproduction is offline, so each dataset is replaced by a Holme–Kim
power-law-cluster surrogate that matches the features the obfuscation
algorithm is actually sensitive to:

* **average degree / density** — drives the size of the candidate set
  ``E_C = c|E|`` and the Poisson-binomial supports;
* **degree-distribution skew** — drives vertex uniqueness, hence how much
  uncertainty the unique tail needs;
* **clustering level** — drives the utility statistics S_CC and the
  triangle-sensitive comparisons of Table 6.

Sizes default to roughly 1/50th of the originals (see DESIGN.md §3);
``scale`` rescales vertex counts while preserving density, so users with
more time can re-run everything closer to the paper's scale.

:func:`paper_scale_dataset` is the real-scale path: a configuration-model
graph at the paper's full Table-1 size (dblp n = 226,413 at
``scale=1.0``), with the power-law exponent calibrated so the expected
degree matches the paper's ``2m/n``, and an on-disk checksummed ``.npz``
edge cache so benchmark runs don't regenerate a 226k-vertex graph per
process.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.graphs.generators import (
    configuration_model_edges,
    powerlaw_cluster,
    powerlaw_degree_sequence,
)
from repro.graphs.graph import Graph
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Shape parameters of one surrogate dataset.

    Attributes
    ----------
    name:
        Paper dataset this surrogate stands in for.
    base_n:
        Vertex count at ``scale=1.0``.
    attach_m:
        Holme–Kim attachment parameter (≈ half the average degree).
    triad_p:
        Triangle-closure probability, tuned to land near the paper's
        clustering coefficient for the dataset.
    paper_n, paper_m:
        The real network's size, kept for documentation and reporting.
    """

    name: str
    base_n: int
    attach_m: int
    triad_p: float
    paper_n: int
    paper_m: int


#: The three surrogate specifications (see module docstring for rationale).
DATASET_SPECS: dict[str, DatasetSpec] = {
    "dblp": DatasetSpec(
        name="dblp", base_n=4500, attach_m=3, triad_p=0.75,
        paper_n=226_413, paper_m=716_460,
    ),
    "flickr": DatasetSpec(
        name="flickr", base_n=3000, attach_m=10, triad_p=0.25,
        paper_n=588_166, paper_m=5_801_442,
    ),
    "y360": DatasetSpec(
        name="y360", base_n=6000, attach_m=2, triad_p=0.10,
        paper_n=1_226_311, paper_m=2_618_645,
    ),
}


def _build(spec: DatasetSpec, scale: float, seed) -> Graph:
    n = max(spec.attach_m + 2, int(round(spec.base_n * scale)))
    return powerlaw_cluster(n, spec.attach_m, spec.triad_p, seed=seed)


def dblp_like(*, scale: float = 1.0, seed=0) -> Graph:
    """Surrogate for the dblp co-authorship graph (avg degree ≈ 6.3, clustered)."""
    return _build(DATASET_SPECS["dblp"], scale, seed)


def flickr_like(*, scale: float = 1.0, seed=0) -> Graph:
    """Surrogate for the flickr contact graph (dense, avg degree ≈ 20)."""
    return _build(DATASET_SPECS["flickr"], scale, seed)


def y360_like(*, scale: float = 1.0, seed=0) -> Graph:
    """Surrogate for the Yahoo! 360 friendship graph (sparse, avg degree ≈ 4.3)."""
    return _build(DATASET_SPECS["y360"], scale, seed)


def load_dataset(name: str, *, scale: float = 1.0, seed=0) -> Graph:
    """Load a surrogate dataset by paper name (``dblp``/``flickr``/``y360``)."""
    key = name.lower()
    if key not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASET_SPECS)}")
    return _build(DATASET_SPECS[key], scale, seed)


# ----------------------------------------------------------------------
# paper-scale datasets (real Table-1 sizes)
# ----------------------------------------------------------------------

def _powerlaw_mean(exponent: float, d_max: int) -> float:
    """Expected value of ``Pr(d) ∝ d^(−exponent)`` on ``[1, d_max]``."""
    support = np.arange(1, d_max + 1, dtype=np.float64)
    weights = support ** (-exponent)
    return float((support * weights).sum() / weights.sum())


def paper_degree_exponent(
    target_mean: float, d_max: int, *, tol: float = 1e-9
) -> float:
    """Power-law exponent whose mean degree on ``[1, d_max]`` hits the target.

    The expected degree of ``Pr(d) ∝ d^(−γ)`` is strictly decreasing in
    ``γ``, so a bisection over ``γ ∈ [1.01, 8]`` pins the exponent that
    makes the sampled degree sequence match the paper's average degree
    ``2m/n`` — the calibration behind :func:`paper_scale_dataset`.
    """
    lo, hi = 1.01, 8.0
    if not _powerlaw_mean(hi, d_max) <= target_mean <= _powerlaw_mean(lo, d_max):
        raise ValueError(
            f"target mean degree {target_mean} unreachable on [1, {d_max}]"
        )
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if _powerlaw_mean(mid, d_max) > target_mean:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def _paper_cache_dir(cache_dir) -> Path | None:
    """Resolve the edge-cache directory: explicit > env > disabled."""
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get("REPRO_DATASET_CACHE")
    return Path(env) if env else None


def _load_cached_edges(path: Path, n: int) -> np.ndarray | None:
    """Validated cache read; ``None`` on any mismatch (then regenerate)."""
    try:
        with np.load(path) as stored:
            edges = np.asarray(stored["edges"], dtype=np.int64)
            n_stored = int(stored["n"][()])
            checksum = int(stored["crc32"][()])
    except (OSError, KeyError, ValueError, zlib.error):
        return None
    if n_stored != n or edges.ndim != 2 or edges.shape[1] != 2:
        return None
    if zlib.crc32(np.ascontiguousarray(edges).tobytes()) != checksum:
        return None
    return edges


def paper_scale_dataset(
    name: str, *, scale: float = 1.0, seed=0, cache_dir=None
) -> Graph:
    """Configuration-model graph at the paper's real Table-1 scale.

    Unlike the Holme–Kim surrogates above (laptop-sized, clustering
    matched), this path targets *size fidelity*: ``scale=1.0`` builds a
    graph with the dataset's actual vertex count (dblp: n = 226,413) and
    a power-law degree sequence whose exponent is bisected so the
    expected degree equals the paper's ``2m/n``
    (:func:`paper_degree_exponent`).  The erased configuration model
    then realises the sequence through the fully vectorised
    :func:`repro.graphs.generators.configuration_model_edges`.

    Parameters
    ----------
    name:
        ``"dblp"`` / ``"flickr"`` / ``"y360"``.
    scale:
        Fraction of the paper's vertex count (``0.1`` → a ~20k-vertex
        smoke variant of dblp with the same calibrated density).
    seed:
        Degree-sequence + stub-matching seed.
    cache_dir:
        Directory for the checksummed ``.npz`` edge cache.  Defaults to
        the ``REPRO_DATASET_CACHE`` environment variable; with neither
        set, caching is disabled and the graph is regenerated.  A stale
        or corrupt cache entry (size or CRC-32 mismatch) is regenerated
        and rewritten, never trusted.
    """
    key = name.lower()
    if key not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASET_SPECS)}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    spec = DATASET_SPECS[key]
    n = max(3, int(round(spec.paper_n * scale)))
    directory = _paper_cache_dir(cache_dir)
    path = (
        directory / f"paper_{key}_scale{scale:g}_seed{seed}.npz"
        if directory is not None
        else None
    )
    if path is not None and path.exists():
        edges = _load_cached_edges(path, n)
        if edges is not None:
            return Graph.from_edge_array(n, edges)
    d_max = max(2, int(np.sqrt(n)))
    target_mean = 2.0 * spec.paper_m / spec.paper_n
    exponent = paper_degree_exponent(target_mean, d_max)
    rng = as_rng(seed)
    degrees = powerlaw_degree_sequence(n, exponent, d_max=d_max, seed=rng)
    edges = configuration_model_edges(degrees, seed=rng)
    if path is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            edges=edges,
            n=np.int64(n),
            crc32=np.int64(zlib.crc32(np.ascontiguousarray(edges).tobytes())),
        )
    return Graph.from_edge_array(n, edges)
